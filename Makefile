PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-stats test-stats-matrix bench bench-smoke \
	bench-backends bench-spectral bench-hosking-blocked \
	bench-aggregate bench-aggregate-scale bench-chunked bench-bakeoff \
	bench-ipc

# Statistical/property harness: seeded-randomized eq. 7 transform
# properties, the Appendix A Hurst-invariance check, the ESS closed
# form, the aggregate-engine statistics, and the paired known-H
# estimator regression (MAVAR vs R/S vs variance-time).  Split out so
# it can be run (or rerun) on its own; the default `make test` runs it
# as a prerequisite and then the rest of the suite.
STATS_TESTS := tests/test_properties_transform.py \
	tests/test_hurst_invariance.py \
	tests/test_ess.py \
	tests/test_aggregate_stats.py \
	tests/test_estimator_regression.py

test: test-stats
	$(PYTHON) -m pytest tests/ -q $(addprefix --ignore=,$(STATS_TESTS))

test-stats:
	$(PYTHON) -m pytest $(STATS_TESTS) -q

# Flakiness canary for the statistical harness: rerun every
# STATS_TESTS module with its seed matrix shifted by --seed-offset
# 0/1/2.  A tolerance tuned to one lucky seed family fails here; the
# documented design (seed, alpha, power) in each module docstring is
# what this target enforces empirically.
test-stats-matrix:
	for off in 0 1 2; do \
		$(PYTHON) -m pytest $(STATS_TESTS) -q --seed-offset $$off \
		    || exit 1; \
	done

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Quick CI smoke pass over the ablations: runs the batching,
# coefficient-table, backend-registry, observability-overhead, and
# spectral-cache benches at reduced scale and records machine-readable
# results (timings, speedups, cache stats, metric snapshots) in
# BENCH_hosking.json.  The observability bench asserts the disabled
# (null-sink) instrumentation costs < 2% of a Fig. 16 sweep; the
# spectral bench asserts the shared-table path is >= 3x the per-call
# embedding and that the cache-bypass bookkeeping stays < 2% of a
# generation; the blocked-kernel bench asserts >= 3x over the per-step
# loop at the acceptance workload and a < 2% block_size=1 bypass
# overhead; the bake-off bench snapshots the cross-estimator
# bias/RMSE matrix and asserts MAVAR beats R/S and variance-time plus
# the < 2% metrics-off overhead bound.
bench-smoke:
	REPRO_BENCH_SCALE=0.2 REPRO_BENCH_JSON=BENCH_hosking.json \
	$(PYTHON) -m pytest benchmarks/test_ablation_hosking_batch.py \
	    benchmarks/test_ablation_coeff_table.py \
	    benchmarks/test_ablation_backend_registry.py \
	    benchmarks/test_ablation_observability.py \
	    benchmarks/test_ablation_spectral_cache.py \
	    benchmarks/test_ablation_hosking_blocked.py \
	    benchmarks/test_ablation_aggregate.py \
	    benchmarks/test_ablation_aggregate_scale.py \
	    benchmarks/test_ablation_chunked.py \
	    benchmarks/test_ablation_bakeoff.py \
	    benchmarks/test_ablation_ipc.py -q

# Backend ablation alone: Davies-Harte vs Hosking vs FARIMA through the
# registry on a Fig. 8-sized (2^14-sample) unconditional path.
bench-backends:
	REPRO_BENCH_JSON=BENCH_hosking.json \
	$(PYTHON) -m pytest benchmarks/test_ablation_backend_registry.py -q

# Spectral-cache ablation alone: shared ACVF/eigenvalue tables with
# batched legs vs the seed's per-call circulant embedding on a
# Fig. 16-style plain-MC buffer sweep.  Asserts bit-identity, >= 3x
# speedup, and the < 2% cache-bypass bookkeeping bound.
bench-spectral:
	REPRO_BENCH_JSON=BENCH_hosking.json \
	$(PYTHON) -m pytest benchmarks/test_ablation_spectral_cache.py -q

# Blocked-kernel ablation alone: the BLAS-3 Hosking engine vs the
# per-step loop over a (replications, horizon) grid ending at the
# unscaled 256 x 4096 acceptance workload (lands around 7x; asserts
# >= 3x so the scaled smoke pass stays meaningful), plus the < 2%
# block_size=1 exact-bypass overhead bound.
bench-hosking-blocked:
	REPRO_BENCH_JSON=BENCH_hosking.json \
	$(PYTHON) -m pytest benchmarks/test_ablation_hosking_blocked.py -q

# Aggregate-engine ablation alone: the sharded batched engine vs the
# naive per-source generation loop at N=1024 (asserts >= 3x and a
# near-flat 16-shard grouping overhead), plus the N=1e5 heterogeneous
# capacity-planning acceptance sweep — bit-identical across shard
# counts, O(batch x horizon) peak memory, loss-vs-N within 1.2 decades
# of the analytic bufferless reference.
bench-aggregate:
	REPRO_BENCH_JSON=BENCH_hosking.json \
	$(PYTHON) -m pytest benchmarks/test_ablation_aggregate.py -q

# Scale acceptance alone: the process-parallel real-FFT engine at
# N=1e6 heterogeneous sources over a 2048-slot horizon — records
# source-slots/s, asserts the 256 MiB feed-memory budget, real-FFT
# synthesis no slower than the legacy full FFT, bit-identity across
# process and shard counts, and (core-gated at >= 4 cores) >= 3x the
# recorded 4.4M source-slots/s single-process baseline.
bench-aggregate-scale:
	REPRO_BENCH_JSON=BENCH_hosking.json \
	$(PYTHON) -m pytest benchmarks/test_ablation_aggregate_scale.py -q

# Chunked-pipeline ablation alone: the scene-chunked multiprocess
# generator at the 2^22-frame acceptance horizon — bit-identical at any
# process count, >= 3x over the single-process pipeline when >= 4 cores
# are available (the assertion is core-gated; the ratio is always
# recorded), in-line chunking within 2x of single-pass generation, and
# the O(chunk x window) tracemalloc budget at two horizons.
bench-chunked:
	REPRO_BENCH_JSON=BENCH_hosking.json \
	$(PYTHON) -m pytest benchmarks/test_ablation_chunked.py -q

# Bake-off ablation alone: the paired cross-estimator study on known-H
# Davies-Harte paths at the 2^14 acceptance horizon — snapshots the
# per-estimator bias/RMSE matrix into REPRO_BENCH_JSON, asserts MAVAR
# RMSE <= R/S and <= variance-time at every H in {0.6, 0.7, 0.8, 0.9},
# and holds the metrics-off run to the < 2% observability bound.
bench-bakeoff:
	REPRO_BENCH_JSON=BENCH_hosking.json \
	$(PYTHON) -m pytest benchmarks/test_ablation_bakeoff.py -q

# IPC ablation alone: pool lifetime and result transport on the
# N=10^6 aggregate workload — shm vs pickle partial-sum transport
# (bit-identical, >= 90% of result bytes zero-copy) and the
# persistent shared pool vs per-call pools on a 4-replication
# loss_vs_n sweep (>= 2x on >= 4 cores), with a zero-leaked-segments
# check after every phase.  Results land in REPRO_BENCH_JSON.
bench-ipc:
	REPRO_BENCH_JSON=BENCH_hosking.json \
	$(PYTHON) -m pytest benchmarks/test_ablation_ipc.py -q
