PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench bench-smoke bench-backends

test:
	$(PYTHON) -m pytest tests/ -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# Quick CI smoke pass over the Hosking ablations: runs the batching,
# coefficient-table, and backend-registry benches at reduced scale and
# records machine-readable results (timings, speedups, cache stats) in
# BENCH_hosking.json.
bench-smoke:
	REPRO_BENCH_SCALE=0.2 REPRO_BENCH_JSON=BENCH_hosking.json \
	$(PYTHON) -m pytest benchmarks/test_ablation_hosking_batch.py \
	    benchmarks/test_ablation_coeff_table.py \
	    benchmarks/test_ablation_backend_registry.py -q

# Backend ablation alone: Davies-Harte vs Hosking vs FARIMA through the
# registry on a Fig. 8-sized (2^14-sample) unconditional path.
bench-backends:
	REPRO_BENCH_JSON=BENCH_hosking.json \
	$(PYTHON) -m pytest benchmarks/test_ablation_backend_registry.py -q
