"""Capacity planning for VBR video with theory + simulation.

A network engineer's workflow on top of the fitted model:

1. fit the unified model to the trace;
2. get a first-cut capacity from the **Norros effective-bandwidth**
   formula (instant, analytic, fBm approximation);
3. verify the candidate capacity with **importance sampling** on the
   actual fitted model (minutes, exact marginal + SRD structure);
4. see how the answer changes with the buffer — and how little large
   buffers help when H is close to 1 (the paper's core warning,
   in provisioning units).

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro import SyntheticCodecConfig, SyntheticMPEGCodec, UnifiedVBRModel
from repro.queueing import norros_effective_bandwidth
from repro.simulation import is_overflow_probability

TARGET_OVERFLOW = 1e-3
BUFFERS = [25.0, 100.0, 400.0]


def main() -> None:
    trace = SyntheticMPEGCodec(
        SyntheticCodecConfig.intraframe_paper_like(num_frames=120_000)
    ).generate(random_state=41)
    model = UnifiedVBRModel(max_lag=400).fit(trace, random_state=42)
    print(f"fitted: {model}")

    # Norros inputs from the fitted model: unit-mean arrivals, so the
    # variance coefficient is the squared coefficient of variation.
    hurst = model.hurst
    cv2 = model.marginal_.variance / model.marginal_.mean**2
    print(
        f"source: H = {hurst:.3f}, coefficient of variation "
        f"{np.sqrt(cv2):.2f}\n"
    )

    print(
        f"capacity for P(Q > b) <= {TARGET_OVERFLOW:g} "
        "(service in units of the mean rate):"
    )
    print("  buffer b   Norros capacity   utilization at that capacity")
    candidates = {}
    for b in BUFFERS:
        mu = norros_effective_bandwidth(
            hurst=hurst,
            mean_rate=1.0,
            variance_coefficient=cv2,
            buffer_size=b,
            epsilon=TARGET_OVERFLOW,
        )
        candidates[b] = mu
        print(f"  {b:>8.0f}   {mu:>15.2f}   {1.0 / mu:>10.2f}")
    print(
        "  (note how weakly the requirement falls with the buffer: "
        f"H = {hurst:.2f} means\n   the b^(H-1)/H discount is nearly "
        "flat — extra buffer buys little)"
    )

    # Verify the middle candidate against the actual fitted model.
    b = BUFFERS[1]
    mu = candidates[b]
    estimate = is_overflow_probability(
        model.background_correlation,
        model.arrival_transform(),
        service_rate=mu,
        buffer_size=b,
        horizon=int(10 * b),
        twisted_mean=2.0,
        replications=800,
        random_state=43,
    )
    print(
        f"\nIS verification at b = {b:.0f}, capacity {mu:.2f}: "
        f"P(Q > b) = {estimate.probability:.2e} "
        f"(target {TARGET_OVERFLOW:g}, relative error "
        f"{estimate.relative_error:.2f})"
    )
    if estimate.probability <= TARGET_OVERFLOW * 3:
        print(
            "the analytic first cut is confirmed within its "
            "approximation accuracy."
        )
        return
    print(
        "the fitted model needs more capacity than the fBm "
        "approximation suggests\n(heavy-tailed marginal, SRD "
        "correlation mass) — iterating:"
    )
    # Simple provisioning loop: scale the capacity up until the IS
    # estimate meets the target.
    for step in range(1, 8):
        mu *= 1.15
        estimate = is_overflow_probability(
            model.background_correlation,
            model.arrival_transform(),
            service_rate=mu,
            buffer_size=b,
            horizon=int(10 * b),
            twisted_mean=max(2.0 - 0.2 * step, 0.8),
            replications=800,
            random_state=43 + step,
        )
        p_text = (
            f"{estimate.probability:.2e}"
            if estimate.probability > 0
            else f"< {1.0 / 800:.1e} (no hits)"
        )
        print(f"  capacity {mu:.2f}: P(Q > b) = {p_text}")
        if estimate.probability <= TARGET_OVERFLOW:
            print(
                f"\nprovisioned capacity: {mu:.2f}x the mean rate "
                f"(utilization {1.0 / mu:.2f}) — "
                f"{mu / candidates[b] - 1.0:+.0%} over the fBm "
                "first cut."
            )
            break
    else:
        print("target not reached within the search range; the source "
              "needs a lower utilization than scanned.")


if __name__ == "__main__":
    main()
