"""Rare-event cell-loss estimation in an ATM multiplexer (paper §4).

A single-buffer multiplexer with deterministic service is fed by the
fitted self-similar VBR video model.  Buffer-overflow probabilities at
low utilization are far too small for plain Monte Carlo, so we:

1. fit the unified model to the trace;
2. scan the twisted mean m* of the background process and locate the
   normalized-variance "valley" (the paper's Fig. 14 heuristic);
3. estimate log10 P(Q > b) across buffer sizes with importance
   sampling at the favorable twist (Fig. 16-style curve), and compare
   against the time-average of a trace-driven queue where the trace
   has resolution.

Run:  python examples/atm_cell_loss_importance_sampling.py
"""

import numpy as np

from repro import (
    SyntheticCodecConfig,
    SyntheticMPEGCodec,
    UnifiedVBRModel,
)
from repro.queueing import (
    service_rate_for_utilization,
    steady_state_overflow_from_trace,
)
from repro.simulation import (
    overflow_vs_buffer_curve,
    search_twisted_mean,
)

UTILIZATION = 0.4
BUFFER_SIZES = [25.0, 50.0, 100.0, 150.0, 200.0]
REPLICATIONS = 400


def main() -> None:
    trace = SyntheticMPEGCodec(
        SyntheticCodecConfig.intraframe_paper_like(num_frames=120_000)
    ).generate(random_state=21)
    model = UnifiedVBRModel(max_lag=400).fit(trace, random_state=22)
    arrivals = model.arrival_transform()
    mu = service_rate_for_utilization(1.0, UTILIZATION)
    print(f"fitted: {model}")
    print(f"utilization {UTILIZATION} -> service rate {mu:.2f} "
          "(unit-mean arrivals)")

    # ------------------------------------------------------------------
    # Twist search (Fig. 14): find the normalized-variance valley.
    # ------------------------------------------------------------------
    search = search_twisted_mean(
        model.background_correlation,
        arrivals,
        service_rate=mu,
        buffer_size=50.0,
        horizon=500,
        twist_values=[0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0],
        replications=REPLICATIONS,
        random_state=23,
    )
    print("\ntwist search (normalized variance, scaled to max 1):")
    print("  m*    P estimate   norm. var   hits")
    for m_star, est, nv in zip(
        search.twist_values, search.estimates, search.scaled_variances
    ):
        print(
            f"  {m_star:>3.1f}  {est.probability:>10.3e}  {nv:>9.4f}"
            f"  {est.hits:>5}"
        )
    best = search.best_twist
    print(f"favorable twist m* = {best:.1f}; variance reduction vs MC: "
          f"{search.variance_reduction_vs(0):.0f}x")

    # ------------------------------------------------------------------
    # Overflow curve (Fig. 16 style) at the favorable twist.
    # ------------------------------------------------------------------
    curve = overflow_vs_buffer_curve(
        model.background_correlation,
        arrivals,
        utilization=UTILIZATION,
        buffer_sizes=BUFFER_SIZES,
        replications=REPLICATIONS,
        twisted_mean=best,
        random_state=24,
    )
    trace_estimates = steady_state_overflow_from_trace(
        trace.normalized_sizes(), mu, BUFFER_SIZES
    )

    print("\nlog10 P(Q > b):")
    print("  buffer b   model (IS)   trace time-average")
    for b, model_est, trace_est in zip(
        BUFFER_SIZES, curve.estimates, trace_estimates
    ):
        trace_log = (
            f"{trace_est.log10_probability:.2f}"
            if trace_est.probability > 0
            else "-inf (trace too short)"
        )
        print(
            f"  {b:>8.0f}   {model_est.log10_probability:>10.2f}"
            f"   {trace_log}"
        )
    print(
        "\nnote the slow decay with b — the self-similar signature the "
        "paper contrasts\nwith the exponential decay of traditional SRD "
        "models (its Fig. 17)."
    )


if __name__ == "__main__":
    main()
