"""A tour of Hurst-parameter estimators on exact self-similar processes.

The paper estimates H with variance-time plots and R/S analysis
(Figs. 3-4).  This example generates exact fractional Gaussian noise
at several Hurst values and runs four estimators — variance-time, R/S,
periodogram, and DFA — showing their agreement and their biases, plus
the invariance of H under a monotone marginal transform (Appendix A).

Run:  python examples/hurst_estimation_tour.py
"""

import numpy as np

from repro import (
    GammaDistribution,
    MarginalTransform,
    dfa_estimate,
    fgn_generate,
    periodogram_estimate,
    rs_estimate,
    variance_time_estimate,
)

SERIES_LENGTH = 1 << 17


def main() -> None:
    print(f"estimators on exact fGn, n = {SERIES_LENGTH}:")
    print("  true H   var-time    R/S    periodogram   DFA")
    for hurst in (0.6, 0.7, 0.8, 0.9):
        x = fgn_generate(
            hurst, SERIES_LENGTH, random_state=int(hurst * 1000)
        )
        vt = variance_time_estimate(x).hurst
        rs = rs_estimate(x).hurst
        pg = periodogram_estimate(x).hurst
        df = dfa_estimate(x).hurst
        print(
            f"  {hurst:>6.2f}  {vt:>8.3f}  {rs:>6.3f}  {pg:>11.3f}"
            f"  {df:>5.3f}"
        )

    # ------------------------------------------------------------------
    # Appendix A in action: a monotone marginal transform preserves H.
    # ------------------------------------------------------------------
    print("\nHurst invariance under the marginal transform (Appendix A):")
    hurst = 0.85
    x = fgn_generate(hurst, SERIES_LENGTH, random_state=77)
    transform = MarginalTransform(GammaDistribution(2.0, 1000.0))
    y = np.asarray(transform(x))
    print(f"  background X ~ fGn(H={hurst})")
    print(f"  foreground Y = h(X) with a Gamma(2, 1000) marginal")
    print(f"  var-time H of X: {variance_time_estimate(x).hurst:.3f}")
    print(f"  var-time H of Y: {variance_time_estimate(y).hurst:.3f}")
    print(
        "  (equal within estimator noise: the transform attenuates the "
        "ACF by a\n   constant factor asymptotically but cannot change "
        "the decay exponent)"
    )


if __name__ == "__main__":
    main()
