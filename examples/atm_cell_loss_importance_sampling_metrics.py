"""Instrumented rare-event cell-loss estimation (paper §4 + metrics).

The same pipeline as ``atm_cell_loss_importance_sampling.py`` — fit the
unified model, locate the variance valley (Fig. 14), run the Fig. 16
buffer sweep — but with the run-metrics observability layer attached:

1. a :class:`repro.observability.RunContext` is threaded through the
   fit, the twist search, and the buffer sweep (each under its own
   ``phase=`` scope);
2. afterwards the snapshot is interrogated for importance-sampling
   convergence diagnostics: effective sample size (ESS) per twist, the
   likelihood-ratio weight spread, per-leg wall times, and
   coefficient-cache hit rates;
3. the snapshot is exported both as JSON lines (the ``--metrics-out``
   format) and as Prometheus-style text.

Attaching metrics never perturbs the estimates: the instrumentation
records around the simulation without touching any random stream, so
this run's numbers are bit-identical to the uninstrumented example at
the same seeds and sizes.

Run:  python examples/atm_cell_loss_importance_sampling_metrics.py
"""

from repro import (
    RunContext,
    SyntheticCodecConfig,
    SyntheticMPEGCodec,
    UnifiedVBRModel,
    render_prometheus,
    to_json_lines,
)
from repro.queueing import service_rate_for_utilization
from repro.simulation import (
    overflow_vs_buffer_curve,
    search_twisted_mean,
)

UTILIZATION = 0.4
BUFFER_SIZES = [25.0, 50.0, 100.0]
REPLICATIONS = 300


def main() -> None:
    ctx = RunContext(scope={"example": "atm-cell-loss"})

    trace = SyntheticMPEGCodec(
        SyntheticCodecConfig.intraframe_paper_like(num_frames=120_000)
    ).generate(random_state=21)
    model = UnifiedVBRModel(
        max_lag=400, metrics=ctx.scoped(phase="fit")
    ).fit(trace, random_state=22)
    arrivals = model.arrival_transform()
    mu = service_rate_for_utilization(1.0, UTILIZATION)
    print(f"fitted: {model}")

    search = search_twisted_mean(
        model.background_correlation,
        arrivals,
        service_rate=mu,
        buffer_size=50.0,
        horizon=500,
        twist_values=[0.0, 1.0, 2.0, 3.0],
        replications=REPLICATIONS,
        random_state=23,
        metrics=ctx.scoped(phase="search"),
    )
    best = search.best_twist
    print(f"favorable twist m* = {best:.1f}")

    curve = overflow_vs_buffer_curve(
        model.background_correlation,
        arrivals,
        utilization=UTILIZATION,
        buffer_sizes=BUFFER_SIZES,
        replications=REPLICATIONS,
        twisted_mean=best,
        random_state=24,
        metrics=ctx.scoped(phase="curve"),
    )
    for b, estimate in zip(BUFFER_SIZES, curve.estimates):
        print(f"  b={b:>5.0f}: log10 P = {estimate.log10_probability:.2f}"
              f"  (hits {estimate.hits}, ESS {estimate.ess:.1f})")

    # ------------------------------------------------------------------
    # Interrogate the snapshot: IS convergence diagnostics.
    # ------------------------------------------------------------------
    snapshot = ctx.snapshot()

    print("\nESS per twist point (search phase):")
    for entry in snapshot:
        if (
            entry["name"] == "is.ess"
            and entry["labels"].get("phase") == "search"
        ):
            print(f"  m* = {entry['labels']['twist']:>4}: "
                  f"ESS = {entry['value']:.1f}")

    print("\nlikelihood-ratio weight spread per sweep leg:")
    for entry in snapshot:
        if (
            entry["name"] == "is.weight"
            and entry["labels"].get("phase") == "curve"
        ):
            print(f"  buffer {entry['labels'].get('buffer'):>5}: "
                  f"mean {entry['mean']:.3e}, "
                  f"max/mean {entry['max'] / entry['mean']:.1f}")

    print("\nper-leg wall time and cache activity:")
    for entry in snapshot:
        if entry["name"] == "is.leg_seconds":
            print(f"  leg {entry['labels'].get('leg', '-'):>2} "
                  f"(phase {entry['labels'].get('phase')}): "
                  f"{entry['total']:.2f}s")
    for entry in snapshot:
        if entry["name"].startswith("coeff_table."):
            print(f"  {entry['name']}: {entry['value']:.0f} "
                  f"(phase {entry['labels'].get('phase')})")

    # ------------------------------------------------------------------
    # Export: JSON lines (the CLI --metrics-out format) + Prometheus.
    # ------------------------------------------------------------------
    json_text = to_json_lines(
        snapshot, header={"example": "atm-cell-loss", "best_twist": best}
    )
    prom_text = render_prometheus(snapshot)
    print(f"\nJSON-lines export: {len(json_text.splitlines())} records; "
          f"Prometheus export: {len(prom_text.splitlines())} lines")
    print("first JSON record:", json_text.splitlines()[0])


if __name__ == "__main__":
    main()
