"""Quickstart: fit the unified VBR model to a trace and regenerate it.

This walks the paper's §3.2 pipeline end to end:

1. obtain an "empirical" trace (here: the synthetic MPEG-1 codec that
   substitutes for the proprietary "Last Action Hero" recording);
2. fit the unified model — Hurst estimation, composite SRD+LRD ACF
   fit, attenuation measurement, background compensation;
3. generate a synthetic trace and compare its statistics with the
   original.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    SyntheticCodecConfig,
    SyntheticMPEGCodec,
    UnifiedVBRModel,
    fit_report,
    sample_acf,
)


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The "empirical" trace (120k frames keeps this example quick;
    #    use the default 238,626 for the paper's full length).
    # ------------------------------------------------------------------
    config = SyntheticCodecConfig.intraframe_paper_like(num_frames=120_000)
    trace = SyntheticMPEGCodec(config).generate(random_state=1)
    print(f"trace: {trace}")
    stats = trace.summary()
    print(
        f"  mean {stats.mean:.0f} bytes/frame, "
        f"p99 {stats.p99:.0f}, max {stats.maximum:.0f}, "
        f"mean rate {trace.mean_rate_bps / 1e3:.0f} kbit/s"
    )

    # ------------------------------------------------------------------
    # 2. Fit the unified model (Steps 1-4 of the paper's §3.2).
    # ------------------------------------------------------------------
    model = UnifiedVBRModel(max_lag=400).fit(trace, random_state=2)
    print("\nfitted model parameters:")
    print(fit_report(model))

    # ------------------------------------------------------------------
    # 3. Generate a synthetic trace and compare.
    # ------------------------------------------------------------------
    synthetic = model.generate(
        trace.num_frames, method="davies-harte", random_state=3
    )
    trace_acf = sample_acf(trace.sizes, 300)
    model_acf = sample_acf(synthetic, 300)

    print("\nACF comparison (empirical vs synthetic):")
    print("  lag   empirical   synthetic")
    for lag in (1, 10, 30, 60, 100, 200, 300):
        print(
            f"  {lag:>4}  {trace_acf[lag]:>9.4f}  {model_acf[lag]:>9.4f}"
        )

    print("\nmarginal comparison (quantiles, bytes/frame):")
    print("  level   empirical   synthetic")
    for q in (0.25, 0.5, 0.75, 0.9, 0.99):
        print(
            f"  {q:>5}  {np.quantile(trace.sizes, q):>9.0f}"
            f"  {np.quantile(synthetic, q):>9.0f}"
        )


if __name__ == "__main__":
    main()
