"""Composite MPEG (I/B/P) modeling — the paper's §3.3.

Interframe-coded MPEG video mixes three very different frame
populations.  The composite model keeps one background Gaussian
process (so all frames share a single dependence structure), fits the
background correlation on the I-frame subsequence, rescales it to
frame resolution (eq. 15), and applies a separate histogram-inversion
transform per frame type.

This example fits the composite model to a synthetic interframe trace
and reports per-frame-type statistics and the oscillating frame-level
ACF that the GOP structure imprints (the paper's Figs. 9-13).

Run:  python examples/mpeg_composite_modeling.py
"""

import numpy as np

from repro import (
    CompositeMPEGModel,
    FrameType,
    SyntheticCodecConfig,
    SyntheticMPEGCodec,
    sample_acf,
)


def main() -> None:
    # An interframe trace with the paper's IBBPBBPBBPBB GOP pattern.
    config = SyntheticCodecConfig.paper_like(num_frames=120_000)
    trace = SyntheticMPEGCodec(config).generate(random_state=11)
    print(f"trace: {trace}")
    print(f"GOP pattern: {trace.gop.pattern_string} "
          f"(I period {trace.gop.i_period})")

    print("\nper-frame-type statistics (bytes/frame):")
    print("  type   count     mean      p95")
    for frame_type, summary in trace.type_summaries().items():
        print(
            f"  {frame_type:>4}  {summary.count:>6}  {summary.mean:>8.0f}"
            f"  {summary.p95:>8.0f}"
        )

    # Fit the composite model: unified fit on I frames + rescaling.
    model = CompositeMPEGModel(max_lag_i=41).fit(trace, random_state=12)
    print(f"\nfitted: {model}")
    i_model = model.i_model
    print(
        f"I-frame submodel: H = {i_model.hurst:.3f}, "
        f"knee (I lags) = {i_model.acf_fit_.knee} "
        f"(~{i_model.acf_fit_.knee * trace.gop.i_period} frame lags), "
        f"attenuation a = {i_model.attenuation:.3f}"
    )

    # Regenerate and compare the oscillating frame-level ACF.
    synthetic = model.generate(
        trace.num_frames, method="davies-harte", random_state=13
    )
    emp_acf = sample_acf(trace.sizes, 60)
    mod_acf = sample_acf(synthetic.sizes, 60)
    print("\nframe-level ACF (note the period-12 GOP oscillation):")
    print("  lag   empirical   model")
    for lag in (1, 3, 6, 12, 18, 24, 36, 48, 60):
        print(f"  {lag:>4}  {emp_acf[lag]:>9.4f}  {mod_acf[lag]:>7.4f}")

    print("\nper-type means, model vs trace:")
    for frame_type in FrameType:
        real = trace.sizes_of(frame_type)
        generated = synthetic.sizes_of(frame_type)
        if real.size:
            print(
                f"  {frame_type.value}: trace {real.mean():.0f}  "
                f"model {generated.mean():.0f}"
            )


if __name__ == "__main__":
    main()
