"""Statistical multiplexing gain and bandwidth forecasting.

Two applications built on the fitted unified model:

1. **Multiplexing gain** (the paper's §1 motivation): aggregates of
   1/4/16 homogeneous video sources share one multiplexer at the same
   utilization.  Short-term burstiness averages out — overflow
   probabilities fall steeply with the number of sources — while the
   long-range dependence they all share keeps the decay with buffer
   size slow at every aggregate size.

2. **Bandwidth forecasting**: exact Gaussian conditional prediction of
   a source's near future from its recent history (the machinery a
   connection-admission controller would use), mapped through the
   marginal transform into byte forecasts with prediction bands.

Run:  python examples/multiplexing_and_forecasting.py
"""

import numpy as np

from repro import (
    SyntheticCodecConfig,
    SyntheticMPEGCodec,
    UnifiedVBRModel,
    conditional_forecast,
)
from repro.core import AggregateVBRModel
from repro.simulation import is_overflow_probability

UTILIZATION = 0.4
BUFFER_SIZE = 25.0


def main() -> None:
    trace = SyntheticMPEGCodec(
        SyntheticCodecConfig.intraframe_paper_like(num_frames=120_000)
    ).generate(random_state=31)
    model = UnifiedVBRModel(max_lag=400).fit(trace, random_state=32)
    print(f"fitted: {model}\n")

    # ------------------------------------------------------------------
    # 1. Multiplexing gain.
    # ------------------------------------------------------------------
    print(f"multiplexing gain at utilization {UTILIZATION}, "
          f"normalized buffer {BUFFER_SIZE:.0f}:")
    print("  sources   attenuation a   log10 P(Q > b)")
    for n in (1, 4, 16):
        aggregate = AggregateVBRModel(model, n, random_state=33)
        estimate = is_overflow_probability(
            aggregate.background_correlation,
            aggregate.arrival_transform(),
            service_rate=1.0 / UTILIZATION,
            buffer_size=BUFFER_SIZE,
            horizon=250,
            twisted_mean=1.5,
            replications=500,
            random_state=34,
        )
        log_p = (
            f"{estimate.log10_probability:.2f}"
            if estimate.probability > 0
            else "below IS resolution"
        )
        print(f"  {n:>7}   {aggregate.attenuation:>12.3f}   {log_p}")
    print(
        "  (burstiness averages out with n; the shared LRD does not — "
        "the decay\n   with buffer size stays slow for every aggregate)"
    )

    # ------------------------------------------------------------------
    # 2. Forecasting the near future of one source.
    # ------------------------------------------------------------------
    history_frames = 300
    horizon = 12
    observed = trace.sizes[:history_frames]
    # Gaussianize the observed history, forecast, map bands back.
    z_history = np.asarray(model.transform_.inverse(observed))
    z_history = np.clip(z_history, -6.0, 6.0)
    forecast = conditional_forecast(
        model.background_correlation, z_history, horizon
    )
    low_z, high_z = forecast.interval()
    mean_bytes = np.asarray(model.transform_(forecast.mean))
    low_bytes = np.asarray(model.transform_(low_z))
    high_bytes = np.asarray(model.transform_(high_z))

    print(f"\nforecast of the next {horizon} frames after frame "
          f"{history_frames} (bytes):")
    print("  step   predicted   95% band")
    for j in range(horizon):
        print(
            f"  {j + 1:>4}   {mean_bytes[j]:>9.0f}   "
            f"[{low_bytes[j]:.0f}, {high_bytes[j]:.0f}]"
        )
    actual = trace.sizes[history_frames:history_frames + horizon]
    inside = np.mean((actual >= low_bytes) & (actual <= high_bytes))
    print(f"  actual values inside the band: {inside * 100:.0f}%")


if __name__ == "__main__":
    main()
