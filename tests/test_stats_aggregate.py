"""Tests for m-aggregation utilities."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats.aggregate import aggregate_series, aggregation_levels


class TestAggregateSeries:
    def test_m1_is_identity(self):
        x = np.array([1.0, 2.0, 3.0])
        np.testing.assert_array_equal(aggregate_series(x, 1), x)

    def test_block_means(self):
        x = np.array([1.0, 3.0, 5.0, 7.0])
        np.testing.assert_array_equal(aggregate_series(x, 2), [2.0, 6.0])

    def test_trailing_partial_block_dropped(self):
        x = np.arange(7, dtype=float)
        out = aggregate_series(x, 3)
        np.testing.assert_array_equal(out, [1.0, 4.0])

    def test_mean_preserved_for_exact_blocks(self):
        x = np.random.default_rng(0).normal(size=120)
        assert aggregate_series(x, 4).mean() == pytest.approx(x.mean())

    def test_rejects_m_larger_than_series(self):
        with pytest.raises(ValidationError, match="exceeds"):
            aggregate_series([1.0, 2.0], 3)

    def test_variance_shrinks_for_iid(self):
        x = np.random.default_rng(1).normal(size=10_000)
        v1 = x.var()
        v10 = aggregate_series(x, 10).var()
        # iid: var(X^(m)) ~ var(X)/m.
        assert v10 == pytest.approx(v1 / 10, rel=0.25)


class TestAggregationLevels:
    def test_levels_sorted_unique(self):
        levels = aggregation_levels(100_000)
        assert levels == sorted(set(levels))

    def test_respects_min_blocks(self):
        levels = aggregation_levels(1000, min_blocks=10)
        assert max(levels) <= 100

    def test_single_level_when_degenerate(self):
        assert aggregation_levels(10, min_m=2, max_m=2) == [2]

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValidationError):
            aggregation_levels(100, min_m=50, max_m=10)

    def test_log_spacing_roughly_uniform(self):
        levels = aggregation_levels(1_000_000, min_m=10, points_per_decade=5)
        ratios = np.diff(np.log10(levels))
        assert np.all(ratios < 0.6)
