"""Tests for detrended fluctuation analysis."""

import numpy as np
import pytest

from repro.estimators.dfa import dfa_estimate
from repro.exceptions import EstimationError, ValidationError
from repro.processes.fgn import fgn_generate


class TestDfa:
    @pytest.mark.parametrize("h", [0.6, 0.9])
    def test_recovers_hurst_of_fgn(self, h):
        x = fgn_generate(h, 1 << 16, random_state=int(h * 17))
        est = dfa_estimate(x)
        assert est.hurst == pytest.approx(h, abs=0.08)

    def test_iid_near_half(self):
        x = np.random.default_rng(0).normal(size=1 << 15)
        est = dfa_estimate(x)
        assert est.hurst == pytest.approx(0.5, abs=0.07)

    def test_robust_to_linear_trend(self):
        x = fgn_generate(0.8, 1 << 14, random_state=1)
        trended = x + np.linspace(0, 5, x.size)
        est_plain = dfa_estimate(x)
        est_trend = dfa_estimate(trended)
        assert est_trend.hurst == pytest.approx(est_plain.hurst, abs=0.08)

    def test_explicit_box_sizes(self):
        x = fgn_generate(0.7, 4096, random_state=2)
        est = dfa_estimate(x, box_sizes=[16, 64, 256])
        assert est.box_sizes.size == 3

    def test_fluctuations_increasing(self):
        x = fgn_generate(0.85, 1 << 14, random_state=3)
        est = dfa_estimate(x)
        assert est.fluctuations[-1] > est.fluctuations[0]

    def test_rejects_short_series(self):
        with pytest.raises(ValidationError):
            dfa_estimate(np.ones(8))

    def test_rejects_unusable_boxes(self):
        x = np.random.default_rng(4).normal(size=64)
        with pytest.raises(EstimationError):
            dfa_estimate(x, box_sizes=[2, 3])
