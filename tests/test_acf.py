"""Tests for sample ACF/ACVF estimation."""

import numpy as np
import pytest

from repro.estimators.acf import sample_acf, sample_acvf
from repro.exceptions import EstimationError, ValidationError


def direct_acvf(x, k, mean=None):
    """Reference O(n*k) implementation."""
    m = x.mean() if mean is None else mean
    c = x - m
    n = x.size
    return np.array(
        [np.sum(c[: n - lag] * c[lag:]) / n for lag in range(k + 1)]
    )


class TestSampleAcvf:
    def test_matches_direct_computation(self):
        x = np.random.default_rng(0).normal(size=500)
        fft_result = sample_acvf(x, 20)
        ref = direct_acvf(x, 20)
        np.testing.assert_allclose(fft_result, ref, atol=1e-10)

    def test_known_mean_variant(self):
        x = np.random.default_rng(1).normal(size=300) + 5.0
        fft_result = sample_acvf(x, 10, mean=5.0)
        ref = direct_acvf(x, 10, mean=5.0)
        np.testing.assert_allclose(fft_result, ref, atol=1e-10)

    def test_lag_zero_is_variance(self):
        x = np.random.default_rng(2).normal(size=1000)
        assert sample_acvf(x, 0)[0] == pytest.approx(x.var())

    def test_rejects_max_lag_too_large(self):
        with pytest.raises(ValidationError):
            sample_acvf([1.0, 2.0, 3.0], 3)

    def test_rejects_too_short(self):
        with pytest.raises(ValidationError):
            sample_acvf([1.0], 0)


class TestSampleAcf:
    def test_normalized_head(self):
        x = np.random.default_rng(3).normal(size=400)
        assert sample_acf(x, 5)[0] == 1.0

    def test_iid_near_zero(self):
        x = np.random.default_rng(4).normal(size=50_000)
        acf = sample_acf(x, 10)
        np.testing.assert_allclose(acf[1:], 0.0, atol=0.02)

    def test_ar1_matches_theory(self):
        phi = 0.8
        rng = np.random.default_rng(5)
        x = np.empty(100_000)
        x[0] = rng.standard_normal()
        eps = rng.standard_normal(x.size) * np.sqrt(1 - phi**2)
        for i in range(1, x.size):
            x[i] = phi * x[i - 1] + eps[i]
        acf = sample_acf(x, 5)
        for k in range(1, 6):
            assert acf[k] == pytest.approx(phi**k, abs=0.03)

    def test_constant_series_raises(self):
        with pytest.raises(EstimationError, match="zero sample variance"):
            sample_acf(np.full(100, 3.0), 5)

    def test_result_bounded(self):
        x = np.random.default_rng(6).exponential(size=5000)
        acf = sample_acf(x, 100)
        assert np.all(np.abs(acf) <= 1.0 + 1e-12)
