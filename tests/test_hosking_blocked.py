"""Tests for the blocked BLAS-3 Hosking kernel.

Covers the exactness contract spelled out in
``repro.processes.hosking_blocked``:

* ``block_size=1`` (and ``None``) is **bitwise identical** to the
  historical per-step loop — including the ``coeff_table=False``
  incremental bypass, whose reversed-view matmul hits numpy's pairwise
  summation fallback and therefore must not be re-laid-out.
* ``block_size > 1`` is ``allclose`` at ``rtol <= 1e-10`` (same
  conditional law, different floating-point accumulation order).
* Blocked output is distributionally indistinguishable from per-step
  output (paired Hurst + empirical-ACF test).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.observability import RunContext
from repro.processes import registry
from repro.processes.coeff_table import CoefficientTable
from repro.processes.correlation import (
    ExponentialCorrelation,
    FGNCorrelation,
)
from repro.processes.hosking import HoskingProcess, hosking_generate
from repro.processes.hosking_blocked import (
    block_width,
    gemm_fraction,
    is_block_start,
    iter_blocks,
    resolve_block_size,
    stack_old_rows,
)
from repro.processes.source import HoskingSource

FAST = settings(max_examples=25, deadline=None)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


# ---------------------------------------------------------------------------
# Block geometry helpers
# ---------------------------------------------------------------------------


class TestBlockGeometry:
    def test_resolve_defaults(self):
        assert resolve_block_size(None) == 1
        assert resolve_block_size(1) == 1
        assert resolve_block_size(64) == 64

    @pytest.mark.parametrize("bad", [0, -3, True, False, 2.5, "8"])
    def test_resolve_rejects(self, bad):
        with pytest.raises(ValidationError):
            resolve_block_size(bad)

    @pytest.mark.parametrize("n", [2, 3, 17, 64, 65, 100])
    @pytest.mark.parametrize("B", [1, 2, 3, 7, 16, 97])
    def test_iter_blocks_partitions_steps(self, n, B):
        blocks = list(iter_blocks(n, B))
        # Blocks tile [1, n) exactly, in order, without gaps.
        assert blocks[0][0] == 1
        k = 1
        for k0, width in blocks:
            assert k0 == k
            assert width == block_width(k0, B, n)
            assert width >= 1
            # Every block ends on a multiple of B (or at the horizon).
            assert (k0 + width) % B == 0 or k0 + width == n
            k += width
        assert k == n

    @pytest.mark.parametrize("n", [5, 64, 100])
    @pytest.mark.parametrize("B", [2, 8, 33])
    def test_is_block_start_matches_iteration(self, n, B):
        starts = {k0 for k0, _ in iter_blocks(n, B)}
        for k in range(1, n):
            assert is_block_start(k, B) == (k in starts)

    def test_gemm_fraction_bounds(self):
        frac = gemm_fraction(4096, 64)
        assert 0.9 < frac < 1.0
        # Larger blocks shift less work into the GEMM.
        assert gemm_fraction(4096, 256) < frac

    def test_stack_old_rows(self):
        rows = [np.arange(10, dtype=float) + i for i in range(3)]
        out = stack_old_rows(rows, 4)
        assert out.shape == (3, 4)
        for i in range(3):
            np.testing.assert_array_equal(out[i], rows[i][i : i + 4])


# ---------------------------------------------------------------------------
# Numerical equivalence of the blocked kernel
# ---------------------------------------------------------------------------


def _shared_innovations(seed, size, n):
    return np.random.default_rng(seed).standard_normal((size, n))


class TestBlockedEquivalence:
    @given(seed=seeds, block=st.integers(2, 40), n=st.integers(2, 120))
    @FAST
    def test_blocked_allclose_to_per_step(self, seed, block, n):
        corr = FGNCorrelation(0.8)
        z = _shared_innovations(seed, 4, n)
        base = hosking_generate(corr, n, size=4, innovations=z,
                                block_size=1)
        blocked = hosking_generate(corr, n, size=4, innovations=z,
                                   block_size=block)
        np.testing.assert_allclose(blocked, base, rtol=1e-10, atol=1e-12)

    @pytest.mark.parametrize("B", [2, 3, 16, 200])
    @pytest.mark.parametrize(
        "corr", [FGNCorrelation(0.6), ExponentialCorrelation(0.9)]
    )
    def test_blocked_allclose_incremental_path(self, B, corr):
        # coeff_table=False exercises the DurbinLevinson block advance.
        n = 70
        z = _shared_innovations(11, 3, n)
        base = hosking_generate(corr, n, size=3, innovations=z,
                                coeff_table=False, block_size=1)
        blocked = hosking_generate(corr, n, size=3, innovations=z,
                                   coeff_table=False, block_size=B)
        np.testing.assert_allclose(blocked, base, rtol=1e-10, atol=1e-12)

    def test_flat_path_blocked(self):
        corr = FGNCorrelation(0.75)
        z = np.random.default_rng(3).standard_normal(60)
        base = hosking_generate(corr, 60, innovations=z)
        blocked = hosking_generate(corr, 60, innovations=z, block_size=8)
        assert blocked.shape == (60,)
        np.testing.assert_allclose(blocked, base, rtol=1e-10, atol=1e-12)


class TestBypassBitIdentity:
    """``block_size in (None, 1)`` must reproduce historical bits.

    The legacy conditional-mean products run on a *negative-strided*
    reversed view, which numpy reduces with pairwise summation rather
    than BLAS; any re-layout (contiguous copy, positive strides)
    changes the accumulation order and hence the low-order bits.  The
    bypass therefore keeps the original formulation verbatim — these
    tests pin that contract against inline references.
    """

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_table_path_bitwise_vs_legacy_reference(self, seed):
        corr = FGNCorrelation(0.8)
        n, size = 60, 5
        z = _shared_innovations(seed, size, n)
        table = CoefficientTable(np.asarray([corr(k) for k in range(n)]))
        table.ensure(n - 1)

        # Inline re-statement of the historical per-step loop.
        x = np.empty((size, n))
        x[:, 0] = np.sqrt(table.variance(0)) * z[:, 0]
        for k in range(1, n):
            phi = table.phi_row(k)
            mean_k = x[:, k - 1 :: -1][:, :k] @ phi
            x[:, k] = mean_k + table.sqrt_variance(k) * z[:, k]

        for bs in (None, 1):
            got = hosking_generate(corr, n, size=size, innovations=z,
                                   coeff_table=table, block_size=bs)
            np.testing.assert_array_equal(got, x)

    @pytest.mark.parametrize("seed", [1, 42])
    def test_incremental_bypass_bitwise_vs_legacy_reference(self, seed):
        # Satellite: the coeff_table=False bypass reads the SAME
        # reversed-view formulation as the table path; pin its bits.
        from repro.processes.coeff_table import resolve_acvf
        from repro.processes.partial_corr import DurbinLevinson

        corr = ExponentialCorrelation(0.85)
        n, size = 45, 4
        z = _shared_innovations(seed, size, n)
        acvf = resolve_acvf(corr, n)

        state = DurbinLevinson(acvf)
        x = np.empty((size, n))
        x[:, 0] = np.sqrt(acvf[0]) * z[:, 0]
        for k in range(1, n):
            phi, variance = state.advance()
            mean_k = x[:, k - 1 :: -1][:, :k] @ phi
            x[:, k] = mean_k + np.sqrt(variance) * z[:, k]

        for bs in (None, 1):
            got = hosking_generate(corr, n, size=size, innovations=z,
                                   coeff_table=False, block_size=bs)
            np.testing.assert_array_equal(got, x)

    @given(seed=seeds)
    @FAST
    def test_bypass_matches_default_across_seeds(self, seed):
        corr = FGNCorrelation(0.7)
        a = hosking_generate(corr, 40, size=3, random_state=seed)
        b = hosking_generate(corr, 40, size=3, random_state=seed,
                             block_size=1)
        np.testing.assert_array_equal(a, b)

    def test_process_bypass_bitwise(self):
        corr = FGNCorrelation(0.8)
        base = HoskingProcess(corr, 30, size=4, random_state=5).run()
        bypass = HoskingProcess(corr, 30, size=4, random_state=5,
                                block_size=1).run()
        np.testing.assert_array_equal(base, bypass)


class TestBlockedProcess:
    def _fixed(self, table):
        class _FixedRng:
            def __init__(self, tbl):
                self._table = tbl
                self._i = 0

            def standard_normal(self, count):
                col = self._table[:, self._i]
                self._i += 1
                return col.copy()

        return _FixedRng(table)

    def test_blocked_process_matches_per_step(self):
        corr = FGNCorrelation(0.85)
        n, size = 50, 6
        z = _shared_innovations(21, size, n)
        base = HoskingProcess(corr, n, size=size)
        base._rng = self._fixed(z)
        blocked = HoskingProcess(corr, n, size=size, block_size=8)
        blocked._rng = self._fixed(z)
        for _ in range(n):
            a = base.step()
            b = blocked.step()
            np.testing.assert_allclose(b.values, a.values,
                                       rtol=1e-10, atol=1e-12)
            np.testing.assert_allclose(b.cond_mean, a.cond_mean,
                                       rtol=1e-10, atol=1e-10)
            assert b.cond_variance == pytest.approx(a.cond_variance)
            assert b.phi_sum == pytest.approx(a.phi_sum)

    def test_blocked_retirement_alignment(self):
        # Retiring mid-block must not disturb the innovation stream or
        # the surviving rows' values.
        corr = FGNCorrelation(0.8)
        n, size = 40, 5
        z = _shared_innovations(33, size, n)
        base = HoskingProcess(corr, n, size=size)
        base._rng = self._fixed(z)
        blocked = HoskingProcess(corr, n, size=size, block_size=8)
        blocked._rng = self._fixed(z)
        for k in range(n):
            a = base.step()
            b = blocked.step()
            if k == 5:
                base.retire(np.array([1, 3]))
                blocked.retire(np.array([1, 3]))
            if k == 20:
                base.retire(np.array([0]))
                blocked.retire(np.array([0]))
            active = base.active_mask
            np.testing.assert_allclose(
                b.values[active], a.values[active],
                rtol=1e-10, atol=1e-12,
            )
        np.testing.assert_allclose(
            blocked.history[base.active_mask],
            base.history[base.active_mask],
            rtol=1e-10, atol=1e-12,
        )

    def test_blocked_metrics(self):
        ctx = RunContext()
        proc = HoskingProcess(FGNCorrelation(0.7), 33, size=3,
                              block_size=8, metrics=ctx)
        proc.retire(np.array([2]))
        proc.run()
        values = {
            (e["name"], tuple(sorted(e["labels"].items()))): e["value"]
            for e in ctx.snapshot()
        }
        flat = {name: v for (name, _), v in values.items()}
        assert flat["hosking.block_size"] == 8
        assert 0.0 < flat["hosking.gemm_fraction"] < 1.0
        assert flat["hosking.blocks"] == len(list(iter_blocks(33, 8)))
        # One compaction event per opened block while a row is retired.
        assert flat["hosking.compaction_events"] == flat["hosking.blocks"]

    def test_generate_metrics(self):
        ctx = RunContext()
        hosking_generate(FGNCorrelation(0.7), 65, size=2, block_size=16,
                         metrics=ctx, random_state=0)
        flat = {e["name"]: e["value"] for e in ctx.snapshot()}
        assert flat["hosking.block_size"] == 16
        assert flat["hosking.blocks"] == len(list(iter_blocks(65, 16)))


class TestSourceAndRegistry:
    def test_source_block_size_threading(self):
        src = HoskingSource(FGNCorrelation(0.8), block_size=4)
        assert src.describe()["block_size"] == 4
        z_free = HoskingSource(FGNCorrelation(0.8))
        a = z_free.sample(30, size=2, random_state=9)
        b = src.sample(30, size=2, random_state=9)
        np.testing.assert_allclose(b, a, rtol=1e-10, atol=1e-12)

    def test_source_rejects_bad_block_size(self):
        with pytest.raises(ValidationError):
            HoskingSource(FGNCorrelation(0.8), block_size=0)

    def test_registry_block_size_option(self):
        src = registry.resolve("hosking", FGNCorrelation(0.75),
                               block_size=8)
        base = registry.resolve("hosking", FGNCorrelation(0.75))
        a = base.sample(40, size=3, random_state=2)
        b = src.sample(40, size=3, random_state=2)
        np.testing.assert_allclose(b, a, rtol=1e-10, atol=1e-12)

    def test_registry_block_size_one_bitwise(self):
        src = registry.resolve("hosking", FGNCorrelation(0.75),
                               block_size=1)
        base = registry.resolve("hosking", FGNCorrelation(0.75))
        np.testing.assert_array_equal(
            src.sample(40, size=3, random_state=2),
            base.sample(40, size=3, random_state=2),
        )


# ---------------------------------------------------------------------------
# Paired statistical indistinguishability
# ---------------------------------------------------------------------------


class TestBlockedStatistics:
    SEEDS = (11, 12, 13, 14)
    N = 8_192
    HURST = 0.8

    def _paths(self, seed):
        z = np.random.default_rng(seed).standard_normal(self.N)
        corr = FGNCorrelation(self.HURST)
        per_step = hosking_generate(corr, self.N, innovations=z,
                                    block_size=1)
        blocked = hosking_generate(corr, self.N, innovations=z,
                                   block_size=64)
        return per_step, blocked

    def test_paired_hurst_estimates(self):
        from repro.estimators import variance_time_estimate, whittle_estimate

        shifts = []
        for seed in self.SEEDS:
            per_step, blocked = self._paths(seed)
            # Variance-time is a closed-form regression: paired
            # estimates on allclose paths agree to near machine
            # precision.
            vt_shift = (
                variance_time_estimate(blocked).hurst
                - variance_time_estimate(per_step).hurst
            )
            assert abs(vt_shift) < 1e-8
            # Whittle runs a bounded scalar minimization whose
            # stopping tolerance dominates the path difference.
            shifts.append(
                whittle_estimate(blocked).hurst
                - whittle_estimate(per_step).hurst
            )
            assert abs(shifts[-1]) < 1e-3
        assert abs(float(np.mean(shifts))) < 1e-3

    def test_paired_empirical_acf(self):
        from repro.estimators import sample_acf

        for seed in self.SEEDS[:2]:
            per_step, blocked = self._paths(seed)
            np.testing.assert_allclose(
                sample_acf(blocked, 50),
                sample_acf(per_step, 50),
                atol=1e-8,
            )
