"""Failure semantics and worker resolution of the leg pool.

The runners lean on :func:`repro.simulation.parallel.run_legs` for
every figure; a leg that raises must surface the *original* exception
to the caller — same type, same message — whether the pool is bypassed
(``workers=1``) or threaded (``workers>1``), with no hang and no
partial result list.
"""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError, ValidationError
from repro.simulation.parallel import (
    WORKERS_ENV,
    default_workers,
    resolve_workers,
    run_legs,
)


class BoomError(RuntimeError):
    pass


def make_jobs(results, failing_index=None, exc=None):
    """Zero-argument jobs returning their index, one optionally raising."""

    def job(i):
        def run():
            if i == failing_index:
                raise exc
            results.append(i)
            return i

        return run

    return [job(i) for i in range(4)]


class TestRunLegsFailure:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_original_exception_propagates(self, workers):
        exc = BoomError("leg 2 exploded")
        with pytest.raises(BoomError, match="leg 2 exploded"):
            run_legs(make_jobs([], failing_index=2, exc=exc), workers)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_repro_exceptions_keep_their_type(self, workers):
        exc = SimulationError("no finite variance")
        with pytest.raises(SimulationError, match="no finite variance"):
            run_legs(make_jobs([], failing_index=0, exc=exc), workers)

    def test_serial_stops_at_failing_leg(self):
        # In-line execution is sequential, so legs after the failure
        # never run.
        results = []
        with pytest.raises(BoomError):
            run_legs(
                make_jobs(results, failing_index=1, exc=BoomError("x")), 1
            )
        assert results == [0]

    def test_threaded_failure_returns_no_partial_results(self):
        # All legs are submitted, but the caller sees only the
        # exception — never a truncated result list.
        outcome = None
        try:
            outcome = run_legs(
                make_jobs([], failing_index=3, exc=BoomError("late leg")), 3
            )
        except BoomError as caught:
            assert str(caught) == "late leg"
        assert outcome is None

    @pytest.mark.parametrize("workers", [1, 3])
    def test_success_returns_submission_order(self, workers):
        assert run_legs(make_jobs([]), workers) == [0, 1, 2, 3]

    def test_empty_jobs(self):
        assert run_legs([], 3) == []


class TestWorkerResolution:
    def test_explicit_workers_validated(self):
        with pytest.raises(ValidationError, match="workers"):
            resolve_workers(0)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_unparsable_env_means_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        assert default_workers() == 1

    def test_unset_env_means_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert default_workers() == 1
