"""Failure semantics and worker resolution of the leg pool.

The runners lean on :func:`repro.simulation.parallel.run_legs` for
every figure; a leg that raises must surface the *original* exception
to the caller — same type, same message — whether the pool is bypassed
(``workers=1``) or threaded (``workers>1``), with no hang and no
partial result list.

Also covered: the shared :func:`repro.simulation.parallel.run_tasks`
engine — executor injection (a caller-managed pool is used as-is and
never shut down), the ``kind="process"`` flavour the chunked pipeline
runs on, and the independence of ``REPRO_WORKERS`` (thread legs) from
``REPRO_PROCESSES`` (chunk jobs).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.exceptions import SimulationError, ValidationError
from repro.observability import RunContext
from repro.simulation.parallel import (
    PROCESSES_ENV,
    WORKERS_ENV,
    default_processes,
    default_workers,
    resolve_processes,
    resolve_workers,
    run_legs,
    run_tasks,
)


class BoomError(RuntimeError):
    pass


def make_jobs(results, failing_index=None, exc=None):
    """Zero-argument jobs returning their index, one optionally raising."""

    def job(i):
        def run():
            if i == failing_index:
                raise exc
            results.append(i)
            return i

        return run

    return [job(i) for i in range(4)]


class TestRunLegsFailure:
    @pytest.mark.parametrize("workers", [1, 3])
    def test_original_exception_propagates(self, workers):
        exc = BoomError("leg 2 exploded")
        with pytest.raises(BoomError, match="leg 2 exploded"):
            run_legs(make_jobs([], failing_index=2, exc=exc), workers)

    @pytest.mark.parametrize("workers", [1, 3])
    def test_repro_exceptions_keep_their_type(self, workers):
        exc = SimulationError("no finite variance")
        with pytest.raises(SimulationError, match="no finite variance"):
            run_legs(make_jobs([], failing_index=0, exc=exc), workers)

    def test_serial_stops_at_failing_leg(self):
        # In-line execution is sequential, so legs after the failure
        # never run.
        results = []
        with pytest.raises(BoomError):
            run_legs(
                make_jobs(results, failing_index=1, exc=BoomError("x")), 1
            )
        assert results == [0]

    def test_threaded_failure_returns_no_partial_results(self):
        # All legs are submitted, but the caller sees only the
        # exception — never a truncated result list.
        outcome = None
        try:
            outcome = run_legs(
                make_jobs([], failing_index=3, exc=BoomError("late leg")), 3
            )
        except BoomError as caught:
            assert str(caught) == "late leg"
        assert outcome is None

    @pytest.mark.parametrize("workers", [1, 3])
    def test_success_returns_submission_order(self, workers):
        assert run_legs(make_jobs([]), workers) == [0, 1, 2, 3]

    def test_empty_jobs(self):
        assert run_legs([], 3) == []


class TestWorkerResolution:
    def test_explicit_workers_validated(self):
        with pytest.raises(ValidationError, match="workers"):
            resolve_workers(0)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "5")
        assert resolve_workers(None) == 5

    def test_surrounding_whitespace_tolerated(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, " 5 ")
        assert default_workers() == 5

    def test_unset_env_means_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert default_workers() == 1

    def test_empty_env_means_serial(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "")
        assert default_workers() == 1

    @pytest.mark.parametrize(
        "raw", ["many", "0", "-3", "2.5", "   "],
        ids=["non-integer", "zero", "negative", "float", "whitespace"],
    )
    def test_malformed_env_raises_naming_variable_and_value(
        self, monkeypatch, raw
    ):
        # A set-but-broken variable must fail loudly (naming both the
        # variable and the offending value), not silently run serial.
        monkeypatch.setenv(WORKERS_ENV, raw)
        with pytest.raises(ValidationError) as err:
            default_workers()
        assert WORKERS_ENV in str(err.value)
        assert repr(raw) in str(err.value)

    @pytest.mark.parametrize(
        "raw", ["many", "0", "-3", "2.5", "   "],
        ids=["non-integer", "zero", "negative", "float", "whitespace"],
    )
    def test_malformed_processes_env_raises(self, monkeypatch, raw):
        monkeypatch.setenv(PROCESSES_ENV, raw)
        with pytest.raises(ValidationError) as err:
            default_processes()
        assert PROCESSES_ENV in str(err.value)
        assert repr(raw) in str(err.value)

    def test_malformed_env_raises_through_resolve(self, monkeypatch):
        # resolve_*(None) defers to the env, so it surfaces the same
        # error; an explicit argument never consults the env.
        monkeypatch.setenv(PROCESSES_ENV, "garbage")
        with pytest.raises(ValidationError, match=PROCESSES_ENV):
            resolve_processes(None)
        assert resolve_processes(3) == 3


def _double(x):
    """Module-level task so it can cross a process boundary."""
    return 2 * x


class TestRunTasks:
    @pytest.mark.parametrize("kind", ["thread", "process"])
    @pytest.mark.parametrize("workers", [1, 3])
    def test_submission_order(self, kind, workers):
        out = run_tasks(_double, [3, 1, 2], workers=workers, kind=kind)
        assert out == [6, 2, 4]

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValidationError, match="kind"):
            run_tasks(_double, [1], kind="fork")

    def test_injected_executor_used_and_not_shut_down(self):
        with ThreadPoolExecutor(max_workers=2) as pool:
            out = run_tasks(_double, [1, 2, 3], executor=pool)
            assert out == [2, 4, 6]
            # Still alive for the caller: run_tasks never shuts a
            # caller-managed pool down.
            again = run_tasks(_double, [4], executor=pool)
            assert again == [8]
            assert pool.submit(_double, 5).result() == 10

    def test_injected_executor_validated(self):
        with pytest.raises(ValidationError, match="[Ee]xecutor"):
            run_tasks(_double, [1], executor=object())

    def test_run_legs_accepts_executor(self):
        with ThreadPoolExecutor(max_workers=2) as pool:
            out = run_legs(
                [lambda i=i: i for i in range(4)], executor=pool
            )
            assert out == [0, 1, 2, 3]

    def test_metrics_record_workers_and_occupancy(self):
        ctx = RunContext()
        run_tasks(
            _double,
            [1, 2, 3, 4],
            workers=2,
            metrics=ctx,
            prefix="chunked",
        )
        snapshot = {e["name"]: e for e in ctx.snapshot()}
        assert snapshot["chunked.workers"]["value"] == 2
        assert snapshot["chunked.legs"]["value"] == 4
        assert "chunked.job_seconds" in snapshot
        assert snapshot["chunked.occupancy"]["value"] > 0.0


class TestProcessResolution:
    def test_explicit_processes_validated(self):
        with pytest.raises(ValidationError, match="processes"):
            resolve_processes(0)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv(PROCESSES_ENV, "4")
        assert resolve_processes(None) == 4

    def test_unset_env_means_inline(self, monkeypatch):
        monkeypatch.delenv(PROCESSES_ENV, raising=False)
        assert default_processes() == 1

    def test_workers_env_does_not_leak_into_processes(self, monkeypatch):
        # The two knobs are independent: a threaded leg pool must not
        # silently inflate the chunk-job process pool, or vice versa.
        monkeypatch.setenv(WORKERS_ENV, "8")
        monkeypatch.delenv(PROCESSES_ENV, raising=False)
        assert default_processes() == 1
        monkeypatch.setenv(PROCESSES_ENV, "2")
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert default_workers() == 1
        assert default_processes() == 2


def _boom_on_two(x):
    if x == 2:
        raise SimulationError("task 2 failed")
    return 2 * x


class TestReduceTasks:
    @pytest.mark.parametrize("kind,workers", [
        ("thread", 1), ("thread", 3), ("process", 1), ("process", 3),
    ])
    def test_reducer_sees_submission_order(self, kind, workers):
        from repro.simulation.parallel import reduce_tasks

        seen = []
        count = reduce_tasks(
            _double,
            [5, 1, 4, 2, 3],
            lambda result, index: seen.append((index, result)),
            workers=workers,
            kind=kind,
        )
        assert count == 5
        assert seen == [(0, 10), (1, 2), (2, 8), (3, 4), (4, 6)]

    def test_max_pending_bounds_the_window(self):
        # A window of 1 forces strict submit -> fold -> submit
        # alternation; the fold order must still be submission order.
        from repro.simulation.parallel import reduce_tasks

        seen = []
        with ThreadPoolExecutor(max_workers=2) as pool:
            reduce_tasks(
                _double,
                list(range(6)),
                lambda result, index: seen.append(index),
                workers=2,
                executor=pool,
                max_pending=1,
            )
        assert seen == list(range(6))

    def test_max_pending_validated(self):
        from repro.simulation.parallel import reduce_tasks

        with pytest.raises(ValidationError, match="max_pending"):
            reduce_tasks(_double, [1, 2], lambda r, i: None, max_pending=0)

    def test_exception_propagates(self):
        from repro.simulation.parallel import reduce_tasks

        with pytest.raises(SimulationError, match="task 2 failed"):
            reduce_tasks(
                _boom_on_two,
                [1, 2, 3],
                lambda r, i: None,
                workers=2,
                kind="thread",
            )

    def test_metrics_recorded(self):
        from repro.simulation.parallel import reduce_tasks

        ctx = RunContext()
        reduce_tasks(
            _double,
            [1, 2, 3, 4],
            lambda r, i: None,
            workers=2,
            kind="thread",
            metrics=ctx,
            prefix="aggregate_pool",
        )
        snapshot = {e["name"]: e for e in ctx.snapshot()}
        assert snapshot["aggregate_pool.workers"]["value"] == 2
        assert snapshot["aggregate_pool.legs"]["value"] == 4
        assert "aggregate_pool.job_seconds" in snapshot
