"""Property-based tests (hypothesis) on core invariants.

These cover structural guarantees that must hold for *any* valid input,
not just hand-picked cases:

- Durbin-Levinson on any exponential-mixture ACF yields positive,
  non-increasing conditional variances and |pacf| < 1;
- the marginal transform is monotone and respects the target's support
  for arbitrary Gamma targets;
- the Lindley recursion is monotone in arrivals and initial content and
  never negative;
- histogram round trips conserve mass;
- FGN/FARIMA correlation models stay within [-1, 1] and are symmetric.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.marginals.parametric import GammaDistribution
from repro.marginals.transform import MarginalTransform
from repro.processes.correlation import (
    CompositeCorrelation,
    ExponentialMixtureCorrelation,
    FARIMACorrelation,
    FGNCorrelation,
)
from repro.processes.partial_corr import DurbinLevinson
from repro.queueing.lindley import lindley_recursion
from repro.stats.histogram import frequency_histogram

# Keep examples small so the suite stays fast.
FAST = settings(max_examples=30, deadline=None)


hurst_values = st.floats(min_value=0.05, max_value=0.95,
                         allow_nan=False, allow_infinity=False)


class TestCorrelationProperties:
    @FAST
    @given(hurst=hurst_values, lag=st.integers(min_value=0, max_value=500))
    def test_fgn_bounded_and_symmetric(self, hurst, lag):
        model = FGNCorrelation(hurst)
        value = model(lag)
        assert -1.0 - 1e-9 <= value <= 1.0 + 1e-9
        assert model(-lag) == pytest.approx(value)

    @FAST
    @given(d=st.floats(min_value=0.01, max_value=0.49))
    def test_farima_acf_positive_decreasing(self, d):
        model = FARIMACorrelation(d)
        values = model(np.arange(1, 50))
        assert np.all(values > 0)
        assert np.all(np.diff(values) <= 1e-12)

    @FAST
    @given(
        weights=st.lists(
            st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=4
        ),
        rates=st.lists(
            st.floats(min_value=0.001, max_value=2.0), min_size=4, max_size=4
        ),
    )
    def test_exponential_mixture_durbin_levinson_valid(self, weights, rates):
        w = np.asarray(weights[: len(weights)])
        r = np.asarray(rates[: len(weights)])
        w = w / w.sum()
        model = ExponentialMixtureCorrelation(w, r)
        state = DurbinLevinson(model.acvf(40))
        last_variance = state.variance
        for _ in range(39):
            _, variance = state.advance()
            assert 0 < variance <= last_variance + 1e-12
            last_variance = variance
        assert np.all(np.abs(state.partials) < 1.0)

    @FAST
    @given(
        rate=st.floats(min_value=0.001, max_value=0.1),
        exponent=st.floats(min_value=0.05, max_value=0.9),
        knee=st.floats(min_value=10.0, max_value=120.0),
        nugget=st.floats(min_value=0.0, max_value=0.4),
    )
    def test_composite_with_continuity_is_pd_when_polya_convex(
        self, rate, exponent, knee, nugget
    ):
        model = CompositeCorrelation(
            srd_weights=[1.0],
            srd_rates=[rate],
            lrd_amplitude=min(0.99, 0.9 * knee**exponent),
            lrd_exponent=exponent,
            knee=knee,
            nugget=nugget,
        ).with_continuity()
        # Polya's criterion only covers the convex regime (head decays
        # at least as steeply as the tail at the knee); outside it,
        # positive definiteness is not guaranteed.
        assume(model.polya_convex)
        state = DurbinLevinson(model.acvf(120))
        for _ in range(119):
            state.advance()
        assert np.all(np.abs(state.partials) < 1.0)

    def test_polya_convex_flags_known_cases(self):
        paper = CompositeCorrelation.paper_fit().with_continuity()
        assert paper.polya_convex
        # Slow head + aggressive tail at a small knee is non-convex.
        bad = CompositeCorrelation(
            srd_weights=[1.0],
            srd_rates=[0.0156],
            lrd_amplitude=0.9 * 10**0.5,
            lrd_exponent=0.5,
            knee=10.0,
        ).with_continuity()
        assert not bad.polya_convex


class TestTransformProperties:
    @FAST
    @given(
        shape=st.floats(min_value=0.5, max_value=10.0),
        scale=st.floats(min_value=0.1, max_value=1000.0),
    )
    def test_transform_monotone_and_in_support(self, shape, scale):
        tr = MarginalTransform(GammaDistribution(shape, scale))
        x = np.linspace(-5, 5, 101)
        y = np.asarray(tr(x))
        assert np.all(np.diff(y) >= -1e-12)
        assert np.all(y >= 0.0)

    @FAST
    @given(
        shape=st.floats(min_value=0.5, max_value=5.0),
        scale=st.floats(min_value=0.5, max_value=100.0),
        x=st.floats(min_value=-4.0, max_value=4.0),
    )
    def test_inverse_is_left_inverse(self, shape, scale, x):
        tr = MarginalTransform(GammaDistribution(shape, scale))
        assert tr.inverse(tr(x)) == pytest.approx(x, abs=1e-5)


class TestLindleyProperties:
    arrivals_strategy = st.lists(
        st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=50
    )

    @FAST
    @given(arrivals=arrivals_strategy,
           mu=st.floats(min_value=0.1, max_value=5.0))
    def test_queue_never_negative(self, arrivals, mu):
        q = lindley_recursion(np.asarray(arrivals), mu)
        assert np.all(q >= 0.0)

    @FAST
    @given(arrivals=arrivals_strategy,
           mu=st.floats(min_value=0.1, max_value=5.0),
           bump=st.floats(min_value=0.0, max_value=3.0))
    def test_monotone_in_arrivals(self, arrivals, mu, bump):
        base = np.asarray(arrivals)
        q_low = lindley_recursion(base, mu)
        q_high = lindley_recursion(base + bump, mu)
        assert np.all(q_high >= q_low - 1e-12)

    @FAST
    @given(arrivals=arrivals_strategy,
           mu=st.floats(min_value=0.1, max_value=5.0),
           initial=st.floats(min_value=0.0, max_value=20.0))
    def test_monotone_in_initial_content(self, arrivals, mu, initial):
        base = np.asarray(arrivals)
        q_zero = lindley_recursion(base, mu, initial=0.0)
        q_init = lindley_recursion(base, mu, initial=initial)
        assert np.all(q_init >= q_zero - 1e-12)
        # And the head start never exceeds the initial content itself.
        assert np.all(q_init - q_zero <= initial + 1e-12)


class TestHistogramProperties:
    @FAST
    @given(
        data=st.lists(
            st.floats(min_value=-1e6, max_value=1e6,
                      allow_nan=False, allow_infinity=False),
            min_size=2,
            max_size=200,
        ),
        bins=st.integers(min_value=1, max_value=50),
    )
    def test_mass_conserved(self, data, bins):
        arr = np.asarray(data)
        if np.ptp(arr) == 0:
            arr = arr + np.linspace(0, 1, arr.size)
        h = frequency_histogram(arr, bins=bins)
        assert h.total == arr.size
        assert h.frequencies.sum() == pytest.approx(1.0)


class TestMixtureProperties:
    @FAST
    @given(
        hursts=st.lists(
            st.floats(min_value=0.55, max_value=0.95),
            min_size=1, max_size=3,
        ),
        weights=st.lists(
            st.floats(min_value=0.1, max_value=5.0),
            min_size=3, max_size=3,
        ),
    )
    def test_mixture_of_fgn_bounded_and_pd(self, hursts, weights):
        from repro.processes.correlation import MixtureCorrelation
        from repro.processes.partial_corr import validate_acvf_pd

        components = [FGNCorrelation(h) for h in hursts]
        mix = MixtureCorrelation(components, weights[: len(components)])
        values = mix(np.arange(0, 60))
        assert np.all(np.abs(values) <= 1.0 + 1e-9)
        assert validate_acvf_pd(mix.acvf(60))


class TestSpreadingProperties:
    @FAST
    @given(
        frames=st.lists(
            st.floats(min_value=0.0, max_value=100.0),
            min_size=1, max_size=30,
        ),
        factor=st.integers(min_value=1, max_value=20),
    )
    def test_totals_preserved(self, frames, factor):
        from repro.queueing.spreading import spread_arrivals

        arr = np.asarray(frames)
        out = spread_arrivals(arr, factor)
        np.testing.assert_allclose(
            out.reshape(arr.size, factor).sum(axis=1), arr, atol=1e-9
        )

    @FAST
    @given(
        frames=st.lists(
            st.floats(min_value=0.0, max_value=50.0),
            min_size=2, max_size=20,
        ),
        factor=st.integers(min_value=2, max_value=10),
        mu=st.floats(min_value=0.5, max_value=10.0),
    )
    def test_spreading_never_increases_peak_queue(self, frames, factor,
                                                  mu):
        from repro.queueing.spreading import (
            slice_service_rate,
            spread_arrivals,
        )

        arr = np.asarray(frames)
        q_frames = lindley_recursion(arr, mu)
        q_slices = lindley_recursion(
            spread_arrivals(arr, factor), slice_service_rate(mu, factor)
        )
        assert q_slices.max() <= q_frames.max() + 1e-9


class TestEmpiricalDistributionProperties:
    @FAST
    @given(
        data=st.lists(
            st.floats(min_value=-1e5, max_value=1e5,
                      allow_nan=False, allow_infinity=False),
            min_size=4, max_size=120,
        ),
        q=st.floats(min_value=0.01, max_value=0.99),
    )
    def test_cdf_ppf_consistency(self, data, q):
        from repro.marginals.empirical import EmpiricalDistribution

        arr = np.asarray(data)
        if np.ptp(arr) == 0:
            arr = arr + np.linspace(0, 1, arr.size)
        dist = EmpiricalDistribution(arr, bins=20)
        value = float(dist.ppf(q))
        # ppf is within support, cdf(ppf(q)) ~ q for the histogram CDF.
        assert arr.min() - 1e-9 <= value <= arr.max() + 1e-9
        assert float(dist.cdf(value)) == pytest.approx(q, abs=1e-6)


class TestNorrosProperties:
    @FAST
    @given(
        hurst=st.floats(min_value=0.55, max_value=0.95),
        b1=st.floats(min_value=0.1, max_value=100.0),
        scale=st.floats(min_value=1.1, max_value=10.0),
    )
    def test_monotone_decreasing_in_buffer(self, hurst, b1, scale):
        from repro.queueing.theory import norros_overflow_approximation

        p = norros_overflow_approximation(
            [b1, b1 * scale],
            hurst=hurst,
            mean_rate=1.0,
            service_rate=2.0,
            variance_coefficient=1.0,
        )
        assert p[1] <= p[0]

    @FAST
    @given(
        hurst=st.floats(min_value=0.55, max_value=0.95),
        epsilon=st.floats(min_value=1e-6, max_value=0.4),
    )
    def test_effective_bandwidth_inverts_approximation(self, hurst,
                                                       epsilon):
        from repro.queueing.theory import (
            norros_effective_bandwidth,
            norros_overflow_approximation,
        )

        mu = norros_effective_bandwidth(
            hurst=hurst, mean_rate=1.0, variance_coefficient=1.0,
            buffer_size=37.0, epsilon=epsilon,
        )
        p = norros_overflow_approximation(
            [37.0], hurst=hurst, mean_rate=1.0, service_rate=mu,
            variance_coefficient=1.0,
        )[0]
        assert p == pytest.approx(epsilon, rel=1e-5)


class TestCoefficientTableProperties:
    """Table-backed generation must be bit-identical to the incremental
    Durbin-Levinson path for any Hurst parameter, horizon, and batch."""

    @FAST
    @given(
        hurst=hurst_values,
        n=st.integers(min_value=1, max_value=40),
        size=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_generate_bit_identical(self, hurst, n, size, seed):
        from repro.processes.hosking import hosking_generate

        model = FGNCorrelation(hurst)
        z = np.random.default_rng(seed).standard_normal((size, n))
        with_table = hosking_generate(
            model, n, size=size, innovations=z, coeff_table=True
        )
        without = hosking_generate(
            model, n, size=size, innovations=z, coeff_table=False
        )
        np.testing.assert_array_equal(with_table, without)

    @FAST
    @given(
        hurst=hurst_values,
        n=st.integers(min_value=2, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_process_bit_identical(self, hurst, n, seed):
        from repro.processes.hosking import HoskingProcess

        model = FGNCorrelation(hurst)
        a = HoskingProcess(model, n, size=2, random_state=seed,
                           coeff_table=True)
        b = HoskingProcess(model, n, size=2, random_state=seed,
                           coeff_table=False)
        np.testing.assert_array_equal(a.run(), b.run())

    @FAST
    @given(
        hurst=hurst_values,
        n=st.integers(min_value=2, max_value=40),
    )
    def test_table_rows_match_recursion(self, hurst, n):
        from repro.processes.coeff_table import CoefficientTable

        acvf = FGNCorrelation(hurst).acvf(n)
        table = CoefficientTable(acvf)
        state = DurbinLevinson(acvf)
        for k in range(1, n):
            phi, variance = state.advance()
            np.testing.assert_array_equal(table.phi_row(k), phi)
            assert table.variance(k) == variance
