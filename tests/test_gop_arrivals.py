"""Tests for GOP-phase-aware arrival transforms and slice views."""

import numpy as np
import pytest

from repro.core.composite import GopPhaseArrivalTransform
from repro.exceptions import NotFittedError, ValidationError
from repro.simulation.importance import is_overflow_probability
from repro.video.trace import VideoTrace


class TestGopPhaseArrivalTransform:
    def test_requires_fitted_model(self):
        from repro.core.composite import CompositeMPEGModel

        with pytest.raises(NotFittedError):
            GopPhaseArrivalTransform(CompositeMPEGModel())

    def test_time_varying_flag(self, fitted_composite):
        transform = fitted_composite.arrival_transform()
        assert transform.time_varying is True

    def test_mean_frame_size_matches_trace(self, fitted_composite,
                                           ibp_trace):
        transform = fitted_composite.arrival_transform()
        assert transform.mean_frame_size == pytest.approx(
            float(ibp_trace.sizes.mean()), rel=0.01
        )

    def test_gop_position_ordering(self, fitted_composite, rng):
        """I slots produce the largest arrivals, B the smallest."""
        transform = fitted_composite.arrival_transform()
        x = rng.standard_normal(5000)
        i_mean = float(np.mean(transform(x, 0)))    # I position
        p_mean = float(np.mean(transform(x, 3)))    # P position
        b_mean = float(np.mean(transform(x, 1)))    # B position
        assert i_mean > p_mean > b_mean

    def test_unit_mean_over_gop(self, fitted_composite, rng):
        transform = fitted_composite.arrival_transform()
        period = fitted_composite.gop_.i_period
        means = [
            float(np.mean(transform(rng.standard_normal(4000), step)))
            for step in range(period)
        ]
        assert float(np.mean(means)) == pytest.approx(1.0, abs=0.05)

    def test_period_wraparound(self, fitted_composite, rng):
        transform = fitted_composite.arrival_transform()
        x = rng.standard_normal(100)
        period = fitted_composite.gop_.i_period
        np.testing.assert_array_equal(
            transform(x, 0), transform(x, period)
        )

    def test_drives_importance_sampling(self, fitted_composite):
        estimate = is_overflow_probability(
            fitted_composite.background_correlation,
            fitted_composite.arrival_transform(),
            service_rate=1.0 / 0.6,
            buffer_size=30.0,
            horizon=200,
            twisted_mean=1.0,
            replications=200,
            random_state=5,
        )
        assert 0.0 <= estimate.probability <= 1.0
        assert estimate.hits > 0


class TestToSlices:
    def test_per_frame_sums_preserved(self):
        trace = VideoTrace(sizes=np.array([150.0, 300.0]))
        slices = trace.to_slices(15)
        assert slices.size == 30
        np.testing.assert_allclose(
            slices.reshape(2, 15).sum(axis=1), trace.sizes
        )

    def test_default_fifteen(self, intra_trace):
        slices = intra_trace.to_slices()
        assert slices.size == intra_trace.num_frames * 15

    def test_rejects_nonpositive(self):
        trace = VideoTrace(sizes=np.ones(3))
        with pytest.raises(ValidationError):
            trace.to_slices(0)
