"""Tests for seeded random-generator helpers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats.random import make_rng, spawn_rngs


class TestMakeRng:
    def test_none_gives_generator(self):
        assert isinstance(make_rng(None), np.random.Generator)

    def test_int_seed_is_reproducible(self):
        a = make_rng(7).standard_normal(5)
        b = make_rng(7).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert make_rng(gen) is gen


class TestSpawnRngs:
    def test_count_matches(self):
        assert len(spawn_rngs(0, 4)) == 4

    def test_children_are_independent_and_reproducible(self):
        first = [g.standard_normal(3) for g in spawn_rngs(42, 3)]
        second = [g.standard_normal(3) for g in spawn_rngs(42, 3)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)
        # Different children produce different streams.
        assert not np.allclose(first[0], first[1])

    def test_child_i_stable_under_count(self):
        few = spawn_rngs(9, 2)
        many = spawn_rngs(9, 5)
        np.testing.assert_array_equal(
            few[0].standard_normal(4), many[0].standard_normal(4)
        )

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(3)
        children = spawn_rngs(parent, 2)
        assert len(children) == 2
        assert all(isinstance(c, np.random.Generator) for c in children)

    def test_rejects_zero_count(self):
        with pytest.raises(ValidationError):
            spawn_rngs(0, 0)
