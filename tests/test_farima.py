"""Tests for FARIMA generation and fractional differencing."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.processes.correlation import FARIMACorrelation
from repro.processes.farima import (
    farima_generate,
    fractional_diff_weights,
    fractional_integrate,
)


class TestFractionalDiffWeights:
    def test_first_weight_is_one(self):
        assert fractional_diff_weights(0.3, 5)[0] == 1.0

    def test_d_zero_is_identity_filter(self):
        w = fractional_diff_weights(0.0, 5)
        np.testing.assert_allclose(w, [1, 0, 0, 0, 0], atol=1e-15)

    def test_d_one_is_first_difference(self):
        w = fractional_diff_weights(1.0, 4)
        np.testing.assert_allclose(w, [1, -1, 0, 0], atol=1e-15)

    def test_recursion_identity(self):
        d = 0.4
        w = fractional_diff_weights(d, 10)
        for j in range(1, 10):
            assert w[j] == pytest.approx(w[j - 1] * (j - 1 - d) / j)

    def test_integration_weights_positive(self):
        # (1-B)^{-d} has all positive weights for d in (0, 1).
        w = fractional_diff_weights(-0.3, 20)
        assert np.all(w > 0)


class TestFractionalIntegrate:
    def test_inverse_of_differencing(self):
        d = 0.35
        rng = np.random.default_rng(0)
        noise = rng.standard_normal(200)
        integrated = fractional_integrate(noise, d)
        # Difference back: convolve with (1-B)^d weights.
        diff_w = fractional_diff_weights(d, 200)
        recovered = np.convolve(integrated, diff_w)[:200]
        np.testing.assert_allclose(recovered, noise, atol=1e-8)

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            fractional_integrate(np.zeros((2, 3)), 0.3)


class TestFarimaGenerate:
    def test_shapes(self):
        assert farima_generate(100, 0.3, random_state=0).shape == (100,)
        assert farima_generate(
            100, 0.3, size=4, random_state=0
        ).shape == (4, 100)

    def test_pure_farima_variance(self):
        x = farima_generate(512, 0.2, size=60, random_state=1)
        assert x.var() == pytest.approx(1.0, abs=0.1)

    def test_pure_farima_lag1(self):
        d = 0.3
        x = farima_generate(256, d, size=3000, random_state=2)
        target = float(FARIMACorrelation(d)(1))
        sample = np.mean(x[:, 100] * x[:, 101])
        assert sample == pytest.approx(target, abs=0.05)

    def test_hosking_method(self):
        x = farima_generate(64, 0.25, method="hosking", random_state=3)
        assert x.shape == (64,)

    def test_invalid_method(self):
        with pytest.raises(ValidationError, match="method"):
            farima_generate(10, 0.3, method="nope")

    def test_arma_terms_change_short_range(self):
        base = farima_generate(4096, 0.3, random_state=4)
        with_ar = farima_generate(4096, 0.3, ar=[0.8], random_state=4)
        # AR(1) with phi=0.8 inflates short-range variance.
        assert with_ar.var() > base.var()

    def test_burn_in_applied_with_arma(self):
        x = farima_generate(100, 0.3, ar=[0.5], random_state=5)
        assert x.shape == (100,)

    def test_rejects_2d_ar(self):
        with pytest.raises(ValidationError):
            farima_generate(10, 0.3, ar=[[0.5]])

    def test_rejects_d_out_of_range(self):
        with pytest.raises(ValidationError):
            farima_generate(10, 0.6)
