"""Tests for the marginal inversion transform (eq. 7)."""

import numpy as np
import pytest
from scipy import stats

from repro.exceptions import ValidationError
from repro.marginals.empirical import EmpiricalDistribution
from repro.marginals.parametric import (
    GammaDistribution,
    NormalDistribution,
)
from repro.marginals.transform import MarginalTransform


class TestMarginalTransform:
    def test_identity_for_standard_normal_target(self):
        tr = MarginalTransform(NormalDistribution(0.0, 1.0))
        x = np.linspace(-3, 3, 50)
        np.testing.assert_allclose(tr(x), x, atol=1e-9)

    def test_monotone(self):
        tr = MarginalTransform(GammaDistribution(2.0, 1.0))
        x = np.linspace(-4, 4, 100)
        y = tr(x)
        assert np.all(np.diff(y) >= 0)

    def test_output_has_target_marginal(self, rng):
        target = GammaDistribution(3.0, 2.0)
        tr = MarginalTransform(target)
        x = rng.standard_normal(100_000)
        y = tr(x)
        assert y.mean() == pytest.approx(target.mean, rel=0.02)
        assert np.quantile(y, 0.9) == pytest.approx(
            float(target.ppf(0.9)), rel=0.02
        )

    def test_inverse_roundtrip(self):
        tr = MarginalTransform(GammaDistribution(2.0, 1.0))
        x = np.linspace(-3, 3, 25)
        np.testing.assert_allclose(tr.inverse(tr(x)), x, atol=1e-7)

    def test_empirical_target(self, rng):
        data = rng.gamma(2.0, 1000.0, size=5000)
        tr = MarginalTransform(EmpiricalDistribution(data, bins=100))
        y = tr(rng.standard_normal(50_000))
        assert y.mean() == pytest.approx(data.mean(), rel=0.05)
        assert y.min() >= data.min() - 1e-9
        assert y.max() <= data.max() + 1e-9

    def test_scalar_dispatch(self):
        tr = MarginalTransform(NormalDistribution(5.0, 2.0))
        assert isinstance(tr(0.0), float)
        assert tr(0.0) == pytest.approx(5.0)

    def test_shape_preserved(self):
        tr = MarginalTransform(GammaDistribution(2.0, 1.0))
        x = np.zeros((3, 4))
        assert tr(x).shape == (3, 4)

    def test_table_matches_call(self):
        tr = MarginalTransform(GammaDistribution(2.0, 1.0))
        grid = np.linspace(-6, 6, 13)
        np.testing.assert_allclose(tr.table(grid), tr(grid))

    def test_rejects_non_distribution(self):
        with pytest.raises(ValidationError):
            MarginalTransform(lambda x: x)

    def test_hurst_preserved_by_transform(self):
        """Numerical check of the Appendix A theorem: Y = h(X) keeps H."""
        from repro.estimators.variance_time import variance_time_estimate
        from repro.processes.fgn import fgn_generate

        h_true = 0.85
        x = fgn_generate(h_true, 1 << 16, random_state=7)
        tr = MarginalTransform(GammaDistribution(2.0, 1.0))
        y = tr(x)
        est = variance_time_estimate(np.asarray(y))
        assert est.hurst == pytest.approx(h_true, abs=0.1)


class TestFastPaths:
    """Closed-form fast paths of the aggregate engine's hot loop."""

    def test_gamma_fast_path_bitwise_matches_frozen_scipy(self):
        # The direct gammaincinv(shape, ndtr(x)) * scale ufunc chain
        # must reproduce the frozen-distribution roundtrip bit for bit
        # — this is the pin that lets the engine skip scipy's per-call
        # dispatch without changing any generated feed.
        target = GammaDistribution(4.0, 0.5)
        tr = MarginalTransform(target)
        x = np.random.default_rng(3).normal(size=(4, 257))
        u = np.clip(stats.norm.cdf(x), 1e-300, float(np.nextafter(1, 0)))
        legacy = target.ppf(u)
        np.testing.assert_array_equal(tr(x), legacy)

    def test_normal_fast_path_is_affine(self):
        target = NormalDistribution(10.0, 2.5)
        tr = MarginalTransform(target)
        x = np.random.default_rng(5).normal(size=1024)
        np.testing.assert_array_equal(tr(x), 10.0 + 2.5 * x)
        # The affine form is the exact h; the copula roundtrip only
        # agrees to ppf rounding.
        u = np.clip(stats.norm.cdf(x), 1e-300, float(np.nextafter(1, 0)))
        np.testing.assert_allclose(tr(x), target.ppf(u), rtol=1e-12)

    def test_normal_fast_path_survives_extreme_arguments(self):
        # Beyond |x| ~ 8 the copula path saturates at Phi(x) == 1 and
        # needs clipping; the affine path is exact out to any x.
        tr = MarginalTransform(NormalDistribution(0.0, 1.0))
        x = np.array([-40.0, -9.0, 9.0, 40.0])
        np.testing.assert_array_equal(tr(x), x)
        assert np.all(np.isfinite(tr(x)))

    def test_generic_path_still_used_for_empirical(self):
        values = np.random.default_rng(11).gamma(3.0, 1.0, size=500)
        target = EmpiricalDistribution(values)
        tr = MarginalTransform(target)
        assert tr._fast == "generic"
        x = np.linspace(-3, 3, 64)
        u = np.clip(stats.norm.cdf(x), 1e-300, float(np.nextafter(1, 0)))
        np.testing.assert_array_equal(tr(x), target.ppf(u))

    def test_scalar_inputs_keep_float_semantics(self):
        tr = MarginalTransform(GammaDistribution(2.0, 1.5))
        out = tr(0.3)
        assert isinstance(out, float)
        tr_norm = MarginalTransform(NormalDistribution(1.0, 2.0))
        assert isinstance(tr_norm(0.0), float)
        assert tr_norm(0.0) == pytest.approx(1.0)
