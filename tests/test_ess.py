"""Closed-form tests of the Kish effective sample size.

``ESS = (sum w)^2 / sum w^2`` measures how many equally-weighted
samples the importance-sampling estimate is "worth": n equal weights
give exactly n, one dominant weight collapses it toward 1, and an
empty or all-zero weight vector carries no information (0).

Statistical design
------------------
These are *closed-form identity* checks, not statistical tests: the
pinned generators (seeds 0/1/2) only produce arbitrary weight
vectors, and every assertion compares against the exact Kish formula
to float tolerance.  There is no alpha and no seed sensitivity —
``make test-stats-matrix`` reruns them unchanged — the module rides
in STATS_TESTS because it guards the denominator of every ESS-based
statistical gate in the simulation suite.
"""

import math

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.simulation import effective_sample_size
from repro.simulation.estimators import ISEstimate


class TestClosedForm:
    def test_matches_definition_on_random_weights(self):
        rng = np.random.default_rng(0)
        w = rng.exponential(1.0, size=200)
        expected = w.sum() ** 2 / np.square(w).sum()
        assert effective_sample_size(w) == pytest.approx(expected)

    @pytest.mark.parametrize("n", [1, 2, 17, 1000])
    @pytest.mark.parametrize("scale", [1e-12, 1.0, 1e9])
    def test_all_equal_weights_give_n(self, n, scale):
        w = np.full(n, scale)
        assert effective_sample_size(w) == pytest.approx(n)

    def test_scale_invariance(self):
        rng = np.random.default_rng(1)
        w = rng.exponential(1.0, size=50)
        assert effective_sample_size(w) == pytest.approx(
            effective_sample_size(1e6 * w)
        )

    def test_one_dominant_weight_collapses_to_one(self):
        w = np.full(100, 1e-9)
        w[17] = 1.0
        assert effective_sample_size(w) == pytest.approx(1.0, abs=1e-3)

    def test_two_equal_dominant_weights_give_two(self):
        w = np.full(100, 1e-12)
        w[3] = w[71] = 1.0
        assert effective_sample_size(w) == pytest.approx(2.0, abs=1e-6)

    def test_bounds(self):
        rng = np.random.default_rng(2)
        for _ in range(20):
            w = rng.exponential(1.0, size=30)
            ess = effective_sample_size(w)
            assert 1.0 <= ess <= 30.0


class TestDegenerateInputs:
    def test_empty_is_zero(self):
        assert effective_sample_size([]) == 0.0
        assert effective_sample_size(np.empty(0)) == 0.0

    def test_all_zero_is_zero(self):
        assert effective_sample_size(np.zeros(10)) == 0.0

    def test_zero_weights_are_ignored_in_effect(self):
        # Padding with zero weights must not change the ESS: a
        # replication that never hit contributes nothing.
        w = np.array([0.5, 1.5, 1.0])
        padded = np.concatenate([w, np.zeros(7)])
        assert effective_sample_size(padded) == pytest.approx(
            effective_sample_size(w)
        )

    def test_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            effective_sample_size([1.0, -0.5])

    def test_accepts_nested_shape(self):
        w = np.array([[1.0, 1.0], [1.0, 1.0]])
        assert effective_sample_size(w) == pytest.approx(4.0)


class TestISEstimateField:
    def test_default_is_nan(self):
        estimate = ISEstimate(
            probability=0.1,
            variance=0.01,
            replications=10,
            hits=3,
            twisted_mean=1.0,
            mean_hit_time=5.0,
        )
        assert math.isnan(estimate.ess)

    def test_field_threads_through(self):
        estimate = ISEstimate(
            probability=0.1,
            variance=0.01,
            replications=10,
            hits=3,
            twisted_mean=1.0,
            mean_hit_time=5.0,
            ess=2.5,
        )
        assert estimate.ess == 2.5
