"""Tests for the unified VBR model (§3.2 pipeline)."""

import numpy as np
import pytest

from repro.core.unified import UnifiedVBRModel
from repro.exceptions import NotFittedError, ValidationError
from repro.processes.correlation import CompositeCorrelation


class TestConstruction:
    def test_rejects_bad_attenuation_method(self):
        with pytest.raises(ValidationError):
            UnifiedVBRModel(attenuation_method="magic")

    def test_rejects_bad_background_method(self):
        with pytest.raises(ValidationError):
            UnifiedVBRModel(background_method="magic")

    def test_unfitted_accessors_raise(self):
        model = UnifiedVBRModel()
        with pytest.raises(NotFittedError):
            _ = model.background_correlation
        with pytest.raises(NotFittedError):
            model.generate(10)
        with pytest.raises(NotFittedError):
            model.arrival_transform()


class TestFit:
    def test_fitted_state_populated(self, fitted_unified):
        m = fitted_unified
        assert m.marginal_ is not None
        assert m.transform_ is not None
        assert isinstance(m.background_correlation, CompositeCorrelation)
        assert 0.5 < m.hurst < 1.0
        assert 0.0 < m.attenuation <= 1.0

    def test_hurst_near_codec_truth(self, fitted_unified):
        # The codec's ground truth is H = 0.9.
        assert fitted_unified.hurst == pytest.approx(0.9, abs=0.08)

    def test_knee_in_plausible_range(self, fitted_unified):
        # The codec's activity knee is at lag 60.
        assert 20 <= fitted_unified.acf_fit_.knee <= 160

    def test_background_is_positive_definite(self, fitted_unified):
        from repro.processes.partial_corr import validate_acvf_pd

        assert validate_acvf_pd(
            fitted_unified.background_correlation.acvf(500)
        )

    def test_hurst_override_skips_estimation(self, intra_trace):
        m = UnifiedVBRModel(
            max_lag=200, hurst_override=0.9, knee=60
        ).fit(intra_trace, random_state=1)
        assert m.hurst == 0.9
        assert m.variance_time_ is None
        assert m.rs_ is None
        assert m.acf_fit_.model.lrd_exponent == pytest.approx(0.2)

    def test_fit_accepts_plain_series(self, intra_trace):
        m = UnifiedVBRModel(max_lag=150).fit(
            intra_trace.sizes[:40_000], random_state=2
        )
        assert m.background_ is not None

    def test_fit_rejects_short_series(self):
        with pytest.raises(ValidationError, match="at least"):
            UnifiedVBRModel(max_lag=500).fit(np.random.default_rng(0)
                                             .normal(size=100))

    def test_fit_rejects_antipersistent_series(self):
        # Differenced noise has H ~ 0, clearly failing the LRD check.
        # (Plain iid data can sneak past it because the R/S estimator
        # is biased upward at finite lengths.)
        rng = np.random.default_rng(3)
        series = np.diff(rng.normal(size=50_001)) * 100.0 + 1000.0
        with pytest.raises(ValidationError, match="long-range"):
            UnifiedVBRModel(max_lag=100).fit(series)

    def test_analytic_attenuation_method(self, intra_trace):
        m = UnifiedVBRModel(
            max_lag=150, attenuation_method="analytic"
        ).fit(intra_trace.sizes[:40_000])
        assert 0.0 < m.attenuation <= 1.0

    def test_gamma_pareto_marginal_method(self, intra_trace):
        from repro.marginals.parametric import GammaParetoDistribution

        m = UnifiedVBRModel(
            max_lag=150, marginal_method="gamma-pareto"
        ).fit(intra_trace.sizes[:40_000], random_state=4)
        assert isinstance(m.marginal_, GammaParetoDistribution)
        y = m.generate(500, random_state=5)
        assert np.all(y >= 0)

    def test_rejects_bad_marginal_method(self):
        with pytest.raises(ValidationError):
            UnifiedVBRModel(marginal_method="kde")


class TestGenerate:
    def test_marginal_matches_trace(self, fitted_unified, intra_trace):
        """Pooled over replications: a single LRD path's marginal
        wanders with its low-frequency excursion, but the ensemble
        marginal is exactly the inverted histogram."""
        from tests.conftest import pooled_generation

        y = pooled_generation(fitted_unified, paths=192, length=800,
                              seed=5)
        assert y.mean() == pytest.approx(
            intra_trace.sizes.mean(), rel=0.05
        )
        assert np.quantile(y, 0.9) == pytest.approx(
            np.quantile(intra_trace.sizes, 0.9), rel=0.05
        )
        assert y.min() >= intra_trace.sizes.min() - 1e-6

    def test_generate_shapes(self, fitted_unified):
        assert fitted_unified.generate(500, random_state=6).shape == (500,)
        assert fitted_unified.generate(
            500, size=3, random_state=6
        ).shape == (3, 500)

    def test_generate_background_unit_variance(self, fitted_unified):
        x = fitted_unified.generate_background(
            2000, size=20, random_state=7
        )
        assert x.var() == pytest.approx(1.0, abs=0.15)

    def test_invalid_generation_method(self, fitted_unified):
        with pytest.raises(ValidationError):
            fitted_unified.generate(100, method="nope")

    def test_acf_of_generated_matches_empirical(self, fitted_unified):
        """The headline claim (Fig. 8): the synthetic foreground ACF
        tracks the empirical one."""
        from repro.estimators.acf import sample_acf

        y = fitted_unified.generate(
            120_000, method="davies-harte", random_state=8
        )
        model_acf = sample_acf(y, 300)
        emp_acf = fitted_unified.empirical_acf_
        for lag in (1, 30, 60, 150, 300):
            assert model_acf[lag] == pytest.approx(
                emp_acf[lag], abs=0.12
            )

    def test_hermite_inverse_background(self, intra_trace):
        m = UnifiedVBRModel(
            max_lag=200, background_method="hermite-inverse"
        ).fit(intra_trace.sizes[:40_000], random_state=9)
        assert m.background_ is not None
        y = m.generate(1000, random_state=10)
        assert y.shape == (1000,)


class TestArrivalTransform:
    def test_unit_mean(self, fitted_unified, rng):
        arrivals = fitted_unified.arrival_transform()
        y = arrivals(rng.standard_normal(200_000))
        assert y.mean() == pytest.approx(1.0, abs=0.05)

    def test_nonnegative(self, fitted_unified, rng):
        arrivals = fitted_unified.arrival_transform()
        assert np.all(arrivals(rng.standard_normal(10_000)) >= 0)


class TestRepr:
    def test_unfitted(self):
        assert "unfitted" in repr(UnifiedVBRModel())

    def test_fitted(self, fitted_unified):
        assert "hurst=" in repr(fitted_unified)
