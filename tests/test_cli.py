"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.video.io import load_trace, save_trace
from repro.video.trace import VideoTrace


@pytest.fixture()
def small_trace_file(tmp_path, intra_trace):
    path = tmp_path / "trace.txt"
    save_trace(intra_trace.slice(0, 30_000), path)
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_synthesize_defaults(self):
        args = build_parser().parse_args(["synthesize", "out.txt"])
        assert args.frames == 238_626
        assert args.mode == "intraframe"


class TestSynthesize:
    def test_writes_file(self, tmp_path):
        out = tmp_path / "syn.txt"
        code = main([
            "synthesize", str(out), "--frames", "3000", "--seed", "1",
        ])
        assert code == 0
        trace = load_trace(out)
        assert trace.num_frames == 3000

    def test_ibp_mode_has_gop(self, tmp_path):
        out = tmp_path / "ibp.txt"
        code = main([
            "synthesize", str(out), "--frames", "1200",
            "--mode", "ibp", "--seed", "2",
        ])
        assert code == 0
        trace = load_trace(out)
        assert trace.gop is not None
        assert trace.gop.i_period == 12

    def test_reproducible_with_seed(self, tmp_path):
        a, b = tmp_path / "a.txt", tmp_path / "b.txt"
        main(["synthesize", str(a), "--frames", "500", "--seed", "9"])
        main(["synthesize", str(b), "--frames", "500", "--seed", "9"])
        np.testing.assert_array_equal(
            load_trace(a).sizes, load_trace(b).sizes
        )


class TestAnalyze:
    def test_prints_summary_and_hurst(self, small_trace_file, capsys):
        code = main(["analyze", str(small_trace_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Hurst estimates" in out
        assert "variance-time" in out
        assert "mean rate" in out

    def test_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["analyze", str(tmp_path / "nope.txt")])
        assert code == 1
        assert "error" in capsys.readouterr().err


class TestFit:
    def test_fit_report_printed(self, small_trace_file, capsys):
        code = main([
            "fit", str(small_trace_file), "--max-lag", "120",
            "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Hurst (adopted)" in out
        assert "Attenuation a" in out

    def test_generate_requires_output(self, small_trace_file, capsys):
        code = main([
            "fit", str(small_trace_file), "--max-lag", "120",
            "--generate", "100",
        ])
        assert code == 2
        assert "--output" in capsys.readouterr().err

    def test_generate_writes_synthetic(self, small_trace_file,
                                       tmp_path, capsys):
        out = tmp_path / "synthetic.txt"
        code = main([
            "fit", str(small_trace_file), "--max-lag", "120",
            "--generate", "400", "--output", str(out), "--seed", "4",
        ])
        assert code == 0
        synthetic = load_trace(out)
        assert synthetic.num_frames == 400

    def test_generate_chunked_matches_any_process_count(
        self, small_trace_file, tmp_path, capsys
    ):
        # --processes only changes scheduling, never the trace bits.
        paths = [tmp_path / "one.txt", tmp_path / "two.txt"]
        for path, procs in zip(paths, ("1", "2")):
            code = main([
                "fit", str(small_trace_file), "--max-lag", "120",
                "--generate", "400", "--output", str(path),
                "--seed", "4", "--chunk-frames", "128",
                "--processes", procs,
            ])
            assert code == 0
        np.testing.assert_array_equal(
            load_trace(paths[0]).sizes, load_trace(paths[1]).sizes
        )


class TestOverflow:
    def test_table_printed(self, small_trace_file, capsys):
        code = main([
            "overflow", str(small_trace_file),
            "--utilization", "0.6",
            "--buffers", "10", "50",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "buffer b" in out
        assert "util 0.6" in out
        assert "log10" in out


SIMULATE_ARGS = [
    "--max-lag", "100",
    "--buffers", "3", "6",
    "--twists", "0", "1.5", "3",
    "--replications", "50",
    "--seed", "11",
]


class TestSimulate:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["simulate", "trace.txt"])
        assert args.utilization == 0.8
        assert args.twists == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert args.horizon_factor == 10
        assert args.metrics_out is None

    def test_tables_printed(self, small_trace_file, capsys):
        code = main(["simulate", str(small_trace_file)] + SIMULATE_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "twist scan" in out
        assert "favorable twist" in out
        assert "variance reduction" in out
        assert "overflow sweep" in out
        assert "ESS" in out

    def test_metrics_out_writes_json_lines(self, small_trace_file,
                                           tmp_path, capsys):
        metrics_path = tmp_path / "metrics.jsonl"
        code = main(
            ["simulate", str(small_trace_file)]
            + SIMULATE_ARGS
            + ["--metrics-out", str(metrics_path)]
        )
        assert code == 0
        assert "wrote metrics" in capsys.readouterr().out
        records = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        header = records[0]
        assert header["record"] == "header"
        assert header["command"] == "simulate"
        assert header["seed"] == 11
        assert "coefficient_cache" in header
        metrics = [r for r in records[1:]]
        assert all(r["record"] == "metric" for r in metrics)
        names = {r["name"] for r in metrics}
        # The acceptance triple: cache activity, per-leg wall time,
        # ESS per twist point.
        assert "coeff_table.tables" in names
        assert "is.leg_seconds" in names
        assert "is.ess" in names
        ess_twists = {
            r["labels"]["twist"] for r in metrics
            if r["name"] == "is.ess" and r["labels"].get("phase") == "search"
        }
        assert ess_twists == {"0", "1.5", "3"}
        phases = {
            r["labels"].get("phase") for r in metrics
        }
        assert {"fit", "search", "curve"} <= phases

    def test_metrics_do_not_change_results(self, small_trace_file,
                                           tmp_path, capsys):
        main(["simulate", str(small_trace_file)] + SIMULATE_ARGS)
        plain = capsys.readouterr().out
        main(
            ["simulate", str(small_trace_file)]
            + SIMULATE_ARGS
            + ["--metrics-out", str(tmp_path / "m.jsonl")]
        )
        instrumented = capsys.readouterr().out
        # Identical up to the trailing "wrote metrics" line.
        assert instrumented.startswith(plain)

    def test_aggregate_parser_defaults(self):
        args = build_parser().parse_args(["simulate", "trace.txt"])
        assert args.num_sources == 1
        assert args.shards == 1


BAKEOFF_ARGS = [
    "--hurst", "0.8",
    "--horizons", "1024",
    "--estimators", "mavar", "rs",
    "--replications", "2",
    "--seed", "13",
]


class TestBakeoff:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bakeoff"])
        assert args.hurst == [0.6, 0.7, 0.8, 0.9]
        assert args.horizons == [4096, 16384]
        assert args.backends == ["davies_harte"]
        assert args.estimators is None
        assert args.format == "table"

    def test_table_printed(self, capsys):
        code = main(["bakeoff"] + BAKEOFF_ARGS)
        assert code == 0
        out = capsys.readouterr().out
        assert "bake-off:" in out
        assert "mavar" in out and "rs" in out
        assert "winner (pooled RMSE):" in out

    def test_json_format(self, capsys):
        code = main(["bakeoff"] + BAKEOFF_ARGS + ["--format", "json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["estimators"] == ["mavar", "rs"]
        assert payload["replications"] == 2
        assert len(payload["cells"]) == 2

    def test_metrics_out_writes_json_lines(self, tmp_path, capsys):
        metrics_path = tmp_path / "bakeoff.jsonl"
        code = main(
            ["bakeoff"] + BAKEOFF_ARGS
            + ["--metrics-out", str(metrics_path)]
        )
        assert code == 0
        assert "wrote metrics" in capsys.readouterr().out
        records = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        header = records[0]
        assert header["record"] == "header"
        assert header["command"] == "bakeoff"
        assert header["trace"] is None
        assert header["winner"] in ("mavar", "rs")
        names = {r["name"] for r in records[1:]}
        assert {"bakeoff.cells", "bakeoff.rmse",
                "bakeoff.estimator_seconds"} <= names

    def test_seeded_runs_identical(self, capsys):
        def statistical_payload():
            main(["bakeoff"] + BAKEOFF_ARGS + ["--format", "json"])
            payload = json.loads(capsys.readouterr().out)
            # Wall-clock fields legitimately vary between runs; every
            # statistical quantity must not.
            for cell in payload["cells"]:
                cell.pop("seconds")
            for row in payload["summary"].values():
                row.pop("seconds")
            return payload

        assert statistical_payload() == statistical_payload()

    def test_aggregate_capacity_panel(self, small_trace_file, capsys):
        code = main(
            ["simulate", str(small_trace_file)]
            + SIMULATE_ARGS
            + ["--num-sources", "3", "--shards", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "aggregate:" in out
        assert "aggregate engine feed" in out
        assert "shards=2" in out
        assert "effective bandwidth vs N" in out
        assert "admissible sources" in out
        assert "bufferless Gaussian loss" in out

    def test_single_source_output_unchanged_by_new_flags(
        self, small_trace_file, capsys
    ):
        # The aggregate flags must not disturb the historical seeding
        # of the default path: explicit --num-sources 1 --shards 1 is
        # byte-identical to not passing the flags at all.
        main(["simulate", str(small_trace_file)] + SIMULATE_ARGS)
        plain = capsys.readouterr().out
        main(
            ["simulate", str(small_trace_file)]
            + SIMULATE_ARGS
            + ["--num-sources", "1", "--shards", "1"]
        )
        assert capsys.readouterr().out == plain

    def test_chunked_panel_printed(self, small_trace_file, capsys):
        code = main(
            ["simulate", str(small_trace_file)]
            + SIMULATE_ARGS
            + ["--chunk-frames", "30", "--processes", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chunked generation" in out
        assert "mode=bridge" in out
        assert "stitch" in out
        assert "peak chunk" in out

    def test_chunked_panel_leaves_sweeps_unchanged(
        self, small_trace_file, capsys
    ):
        # The chunked panel spawns its RNG child *after* the historical
        # phase streams, so the twist scan and buffer sweep above it
        # print byte-identically with or without the new flags.
        main(["simulate", str(small_trace_file)] + SIMULATE_ARGS)
        plain = capsys.readouterr().out
        main(
            ["simulate", str(small_trace_file)]
            + SIMULATE_ARGS
            + ["--chunk-frames", "30"]
        )
        chunked = capsys.readouterr().out
        assert chunked.startswith(plain)
        assert "chunked generation" in chunked

    def test_fit_metrics_out(self, small_trace_file, tmp_path):
        metrics_path = tmp_path / "fit_metrics.jsonl"
        code = main([
            "fit", str(small_trace_file), "--max-lag", "120",
            "--seed", "3", "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        records = [
            json.loads(line)
            for line in metrics_path.read_text().splitlines()
        ]
        assert records[0]["record"] == "header"
        names = {r["name"] for r in records[1:]}
        assert "model.fit_seconds" in names
        assert "model.hurst" in names


class TestSpectralCacheColdWarm:
    """CLI outputs are bit-identical with a cold and a warm cache."""

    def test_synthesize_cold_equals_warm(self, tmp_path):
        from repro.processes.spectral_cache import clear_spectral_cache

        cold_out = tmp_path / "cold.txt"
        warm_out = tmp_path / "warm.txt"
        clear_spectral_cache()
        assert main([
            "synthesize", str(cold_out), "--frames", "2000", "--seed", "5",
        ]) == 0
        # Second run reuses whatever the first left in the cache.
        assert main([
            "synthesize", str(warm_out), "--frames", "2000", "--seed", "5",
        ]) == 0
        np.testing.assert_array_equal(
            load_trace(cold_out).sizes, load_trace(warm_out).sizes
        )

    def test_fit_generate_cold_equals_warm(self, small_trace_file,
                                           tmp_path):
        from repro.processes.spectral_cache import clear_spectral_cache

        cold_out = tmp_path / "cold.txt"
        warm_out = tmp_path / "warm.txt"
        args = [
            "fit", str(small_trace_file), "--max-lag", "120",
            "--generate", "400", "--seed", "6",
        ]
        clear_spectral_cache()
        assert main(args + ["--output", str(cold_out)]) == 0
        assert main(args + ["--output", str(warm_out)]) == 0
        np.testing.assert_array_equal(
            load_trace(cold_out).sizes, load_trace(warm_out).sizes
        )

    def test_metrics_header_snapshots_spectral_cache(
        self, small_trace_file, tmp_path
    ):
        import json as _json

        metrics_path = tmp_path / "metrics.jsonl"
        code = main([
            "fit", str(small_trace_file), "--max-lag", "100",
            "--seed", "7", "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        header = _json.loads(
            metrics_path.read_text().splitlines()[0]
        )
        assert header["record"] == "header"
        snapshot = header["spectral_cache"]
        for key in ("hits", "misses", "extensions", "evictions",
                    "eigenvalue_builds", "tables"):
            assert key in snapshot


class TestSimulateAggregateProcesses:
    def test_processes_flag_leaves_capacity_panel_unchanged(
        self, small_trace_file, capsys
    ):
        # --processes only moves aggregate block generation onto a
        # pool; every printed number must be identical.
        args = (
            ["simulate", str(small_trace_file)]
            + SIMULATE_ARGS
            + ["--num-sources", "3", "--shards", "2"]
        )
        main(args)
        serial = capsys.readouterr().out
        main(args + ["--processes", "2"])
        pooled = capsys.readouterr().out
        assert pooled.replace(
            "processes=2", "processes=1"
        ) == serial
        assert "processes=2" in pooled
