"""Tests for MixtureCorrelation and golden-section twist refinement."""

import numpy as np
import pytest

from repro.exceptions import SimulationError, ValidationError
from repro.processes.correlation import (
    ExponentialCorrelation,
    FGNCorrelation,
    MixtureCorrelation,
    WhiteNoiseCorrelation,
)
from repro.processes.partial_corr import validate_acvf_pd
from repro.simulation.twist_search import refine_twisted_mean


class TestMixtureCorrelation:
    def test_weighted_average(self):
        mix = MixtureCorrelation(
            [ExponentialCorrelation(0.1), WhiteNoiseCorrelation()],
            [3.0, 1.0],
        )
        k = 5.0
        expected = 0.75 * np.exp(-0.5)
        assert mix(k) == pytest.approx(expected)

    def test_head_is_one(self):
        mix = MixtureCorrelation(
            [FGNCorrelation(0.8), ExponentialCorrelation(0.2)],
            [1.0, 1.0],
        )
        assert mix(0) == 1.0

    def test_pd_preserved(self):
        mix = MixtureCorrelation(
            [FGNCorrelation(0.9), ExponentialCorrelation(0.05),
             WhiteNoiseCorrelation()],
            [0.5, 0.4, 0.1],
        )
        assert validate_acvf_pd(mix.acvf(200))

    def test_hurst_is_max_component(self):
        mix = MixtureCorrelation(
            [FGNCorrelation(0.7), FGNCorrelation(0.9)], [1.0, 1.0]
        )
        assert mix.hurst == 0.9

    def test_hurst_none_for_srd_only(self):
        mix = MixtureCorrelation(
            [ExponentialCorrelation(0.1), WhiteNoiseCorrelation()],
            [1.0, 1.0],
        )
        assert mix.hurst is None

    def test_superposition_law(self, rng):
        """The mixture equals the sample correlation of superposed
        independent processes with matching variances."""
        from repro.processes.davies_harte import davies_harte_generate
        from repro.estimators.acf import sample_acf

        c1, c2 = FGNCorrelation(0.85), ExponentialCorrelation(0.3)
        v1, v2 = 2.0, 1.0
        n = 1 << 15
        x1 = davies_harte_generate(c1, n, random_state=1) * np.sqrt(v1)
        x2 = davies_harte_generate(c2, n, random_state=2) * np.sqrt(v2)
        combined_acf = sample_acf(x1 + x2, 20, mean=0.0)
        mix = MixtureCorrelation([c1, c2], [v1, v2])
        for k in (1, 5, 20):
            assert combined_acf[k] == pytest.approx(
                float(mix(k)), abs=0.05
            )

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            MixtureCorrelation([], [])

    def test_rejects_weight_mismatch(self):
        with pytest.raises(ValidationError):
            MixtureCorrelation([WhiteNoiseCorrelation()], [1.0, 2.0])

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValidationError):
            MixtureCorrelation(
                [WhiteNoiseCorrelation(), WhiteNoiseCorrelation()],
                [1.0, 0.0],
            )

    def test_rejects_non_model_component(self):
        with pytest.raises(ValidationError):
            MixtureCorrelation(["nope"], [1.0])


class TestRefineTwistedMean:
    def _refine(self, bracket=(0.5, 3.5), iterations=5):
        return refine_twisted_mean(
            ExponentialCorrelation(0.3),
            lambda x: x + 2.0,
            service_rate=3.5,
            buffer_size=8.0,
            horizon=80,
            bracket=bracket,
            replications=800,
            iterations=iterations,
            random_state=11,
        )

    def test_probes_inside_bracket(self):
        result = self._refine()
        assert np.all(result.twist_values >= 0.5)
        assert np.all(result.twist_values <= 3.5)
        assert len(result.estimates) == 6  # 2 initial + 4 refinements

    def test_best_twist_beats_bracket_edges(self):
        result = self._refine()
        # The refined point's normalized variance is no worse than a
        # direct probe at the bracket edges.
        from repro.simulation.importance import is_overflow_probability

        edge = is_overflow_probability(
            ExponentialCorrelation(0.3),
            lambda x: x + 2.0,
            service_rate=3.5,
            buffer_size=8.0,
            horizon=80,
            twisted_mean=0.5,
            replications=800,
            random_state=12,
        )
        assert (
            result.best_estimate.normalized_variance
            <= edge.normalized_variance * 1.5
        )

    def test_rejects_bad_bracket(self):
        with pytest.raises(SimulationError):
            self._refine(bracket=(2.0, 1.0))
