"""Tests for the periodogram Hurst estimator."""

import numpy as np
import pytest

from repro.estimators.periodogram import periodogram_estimate
from repro.exceptions import ValidationError
from repro.processes.fgn import fgn_generate


class TestPeriodogram:
    @pytest.mark.parametrize("h", [0.65, 0.8, 0.9])
    def test_recovers_hurst_of_fgn(self, h):
        x = fgn_generate(h, 1 << 16, random_state=int(h * 1000))
        est = periodogram_estimate(x)
        assert est.hurst == pytest.approx(h, abs=0.08)

    def test_iid_near_half(self):
        x = np.random.default_rng(0).normal(size=1 << 15)
        est = periodogram_estimate(x)
        assert est.hurst == pytest.approx(0.5, abs=0.1)

    def test_frequency_fraction_controls_points(self):
        x = fgn_generate(0.8, 2048, random_state=1)
        small = periodogram_estimate(x, frequency_fraction=0.05)
        large = periodogram_estimate(x, frequency_fraction=0.5)
        assert small.frequencies.size < large.frequencies.size

    def test_rejects_bad_fraction(self):
        x = fgn_generate(0.8, 256, random_state=2)
        with pytest.raises(ValidationError):
            periodogram_estimate(x, frequency_fraction=0.0)

    def test_rejects_short_series(self):
        with pytest.raises(ValidationError):
            periodogram_estimate(np.ones(8))

    def test_power_positive(self):
        x = fgn_generate(0.7, 1024, random_state=3)
        est = periodogram_estimate(x)
        assert np.all(est.power >= 0)
