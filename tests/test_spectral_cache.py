"""Tests for the shared circulant-embedding spectral cache."""

import threading
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CorrelationError, ValidationError
from repro.observability import RunContext
from repro.processes import registry
from repro.processes.davies_harte import davies_harte_generate
from repro.processes.correlation import (
    CompositeCorrelation,
    ExponentialCorrelation,
    FGNCorrelation,
)
from repro.processes.spectral_cache import (
    EigenvalueEntry,
    SpectralTable,
    apply_eigenvalue_policy,
    build_eigenvalue_entry,
    circulant_eigenvalues,
    clear_spectral_cache,
    get_spectral_table,
    set_spectral_cache_limits,
    spectral_cache_info,
    spectral_cache_metrics,
)

# Keep examples small so the suite stays fast.
FAST = settings(max_examples=25, deadline=None)


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate every test from the process-global spectral cache."""
    clear_spectral_cache()
    set_spectral_cache_limits(
        max_tables=8, max_cached_length=1 << 20, max_entries_per_table=32
    )
    yield
    clear_spectral_cache()
    set_spectral_cache_limits(
        max_tables=8, max_cached_length=1 << 20, max_entries_per_table=32
    )


def non_embeddable_acvf(lags=33):
    """An explicit acvf whose circulant embedding has negative modes."""
    acvf = np.zeros(lags)
    acvf[0] = 1.0
    acvf[1] = 0.9
    acvf[2] = 0.2
    assert circulant_eigenvalues(acvf).min() < 0
    return acvf


class TestCirculantSpectrumContract:
    """The satellite bugfix: one FFT feeds both spectrum views."""

    def test_half_is_prefix_of_full_bitwise(self):
        acvf = CompositeCorrelation.paper_fit().acvf(129)
        full = circulant_eigenvalues(acvf, spectrum="full")
        half = circulant_eigenvalues(acvf, spectrum="half")
        assert full.shape == (2 * 128,)
        assert half.shape == (129,)
        np.testing.assert_array_equal(half, full[:129])

    def test_full_spectrum_is_symmetric(self):
        full = circulant_eigenvalues(
            FGNCorrelation(0.85).acvf(65), spectrum="full"
        )
        # Real even embedding: eig[2n - j] == eig[j] (the computed FFT
        # realizes the symmetry to rounding).
        np.testing.assert_allclose(
            full[1:], full[1:][::-1], rtol=1e-12, atol=1e-12
        )

    def test_default_is_half(self):
        acvf = ExponentialCorrelation(0.3).acvf(33)
        np.testing.assert_array_equal(
            circulant_eigenvalues(acvf),
            circulant_eigenvalues(acvf, spectrum="half"),
        )

    def test_rejects_unknown_spectrum(self):
        with pytest.raises(ValidationError, match="spectrum"):
            circulant_eigenvalues([1.0, 0.5], spectrum="both")


class TestEigenvalueEntry:
    def test_embeddable_records_no_clipping(self):
        entry = build_eigenvalue_entry(FGNCorrelation(0.7).acvf(65))
        assert entry.clipped_count == 0
        assert entry.clipped_mass == 0.0
        assert entry.min_eigenvalue == 0.0
        assert not entry.material

    def test_clipping_bookkeeping(self):
        acvf = non_embeddable_acvf()
        raw = circulant_eigenvalues(acvf, spectrum="full")
        entry = build_eigenvalue_entry(acvf)
        assert entry.clipped_count == int(np.count_nonzero(raw < 0))
        assert entry.clipped_mass == pytest.approx(
            float(-raw[raw < 0].sum())
        )
        assert entry.min_eigenvalue == raw.min()
        assert entry.max_eigenvalue == raw.max()
        assert entry.material
        assert entry.eigenvalues.min() == 0.0
        np.testing.assert_array_equal(
            entry.eigenvalues, np.where(raw < 0, 0.0, raw)
        )

    def test_eigenvalues_read_only(self):
        entry = build_eigenvalue_entry(FGNCorrelation(0.6).acvf(17))
        with pytest.raises(ValueError):
            entry.eigenvalues[0] = 5.0

    def test_material_threshold_ignores_numerical_noise(self):
        entry = EigenvalueEntry(
            eigenvalues=np.ones(4),
            clipped_count=2,
            clipped_mass=1e-14,
            min_eigenvalue=-1e-14,
            max_eigenvalue=10.0,
        )
        assert not entry.material


class TestEigenvaluePolicy:
    def test_raise_mode_message(self):
        entry = build_eigenvalue_entry(non_embeddable_acvf())
        with pytest.raises(
            CorrelationError, match="not embeddable"
        ):
            apply_eigenvalue_policy(entry, "raise")

    def test_clip_warning_includes_count_and_mass(self):
        entry = build_eigenvalue_entry(non_embeddable_acvf())
        with pytest.warns(RuntimeWarning) as record:
            apply_eigenvalue_policy(entry, "clip")
        message = str(record[0].message)
        assert f"clipped {entry.clipped_count} negative" in message
        assert f"total mass {entry.clipped_mass:.3e}" in message
        assert "approximate" in message

    def test_clip_counts_module_stat_and_metrics(self):
        entry = build_eigenvalue_entry(non_embeddable_acvf())
        ctx = RunContext()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            apply_eigenvalue_policy(entry, "clip", metrics=ctx)
            apply_eigenvalue_policy(entry, "clip", metrics=ctx)
        assert spectral_cache_info().clipped_eigenvalues == (
            2 * entry.clipped_count
        )
        counter = next(
            e for e in ctx.snapshot()
            if e["name"] == "spectral.clipped_eigenvalues"
        )
        assert counter["value"] == 2 * entry.clipped_count

    def test_immaterial_clip_is_silent(self):
        entry = EigenvalueEntry(
            eigenvalues=np.ones(4),
            clipped_count=1,
            clipped_mass=1e-15,
            min_eigenvalue=-1e-15,
            max_eigenvalue=1.0,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            out = apply_eigenvalue_policy(entry, "clip")
        np.testing.assert_array_equal(out, entry.eigenvalues)

    def test_clean_entry_is_passthrough(self):
        entry = build_eigenvalue_entry(FGNCorrelation(0.7).acvf(33))
        out = apply_eigenvalue_policy(entry, "raise")
        assert out is entry.eigenvalues


class TestSpectralTable:
    def test_rejects_correlation_model(self):
        with pytest.raises(ValidationError, match="get_spectral_table"):
            SpectralTable(FGNCorrelation(0.8))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValidationError):
            SpectralTable([1.0])
        with pytest.raises(ValidationError):
            SpectralTable(np.ones((2, 3)))

    def test_horizon_and_max_length(self):
        table = SpectralTable(FGNCorrelation(0.8).acvf(65))
        assert table.horizon == 65
        assert table.max_length == 64

    def test_acvf_prefix_is_bitwise_slice(self):
        model = CompositeCorrelation.paper_fit()
        table = SpectralTable(model.acvf(129))
        np.testing.assert_array_equal(
            table.acvf_prefix(33), model.acvf(33)
        )
        with pytest.raises(ValidationError, match="holds 129 lags"):
            table.acvf_prefix(130)

    def test_views_read_only(self):
        table = SpectralTable(FGNCorrelation(0.7).acvf(17))
        with pytest.raises(ValueError):
            table.acvf[0] = 9.0
        with pytest.raises(ValueError):
            table.acvf_prefix(4)[0] = 9.0

    def test_entry_built_once_and_cached(self):
        table = SpectralTable(FGNCorrelation(0.8).acvf(65))
        first = table.eigenvalues(32)
        again = table.eigenvalues(32)
        assert again is first
        assert table.entry_count == 1
        expected = build_eigenvalue_entry(
            FGNCorrelation(0.8).acvf(33)
        )
        np.testing.assert_array_equal(
            first.eigenvalues, expected.eigenvalues
        )

    def test_requests_beyond_horizon_rejected(self):
        table = SpectralTable(FGNCorrelation(0.8).acvf(33))
        with pytest.raises(
            ValidationError, match="up to 32, requested 40"
        ):
            table.eigenvalues(40)

    def test_entry_eviction_in_insertion_order(self):
        set_spectral_cache_limits(max_entries_per_table=2)
        table = SpectralTable(FGNCorrelation(0.8).acvf(65))
        table.eigenvalues(8)
        table.eigenvalues(16)
        table.eigenvalues(24)
        assert table.entry_count == 2
        # n=8 was evicted; a rebuild is bit-identical anyway.
        rebuilt = table.eigenvalues(8)
        np.testing.assert_array_equal(
            rebuilt.eigenvalues,
            build_eigenvalue_entry(
                FGNCorrelation(0.8).acvf(9)
            ).eigenvalues,
        )

    def test_extend_requires_exact_prefix(self):
        model = FGNCorrelation(0.8)
        table = SpectralTable(model.acvf(17))
        other = model.acvf(33)
        other[3] += 1e-9
        with pytest.raises(ValidationError, match="disagrees"):
            table.extend(other)

    def test_extend_keeps_entries_valid(self):
        model = CompositeCorrelation.paper_fit()
        table = SpectralTable(model.acvf(33))
        short = table.eigenvalues(32)
        table.extend(model.acvf(129))
        assert table.horizon == 129
        assert table.eigenvalues(32) is short
        longer = table.eigenvalues(128)
        np.testing.assert_array_equal(
            longer.eigenvalues,
            build_eigenvalue_entry(model.acvf(129)).eigenvalues,
        )

    def test_extend_with_shorter_is_noop(self):
        model = FGNCorrelation(0.8)
        table = SpectralTable(model.acvf(65))
        table.extend(model.acvf(17))
        assert table.horizon == 65

    def test_nbytes_counts_entries(self):
        table = SpectralTable(FGNCorrelation(0.8).acvf(65))
        empty = table.nbytes()
        table.eigenvalues(64)
        assert table.nbytes() > empty


class TestGetSpectralTable:
    def test_miss_then_hit(self):
        model = CompositeCorrelation.paper_fit()
        first = get_spectral_table(model, 64)
        second = get_spectral_table(model, 64)
        assert second is first
        info = spectral_cache_info()
        assert (info.misses, info.hits, info.tables) == (1, 1, 1)

    def test_extension_grows_shared_table(self):
        model = CompositeCorrelation.paper_fit()
        table = get_spectral_table(model, 64)
        longer = get_spectral_table(model, 256)
        assert longer is table
        assert table.horizon == 257
        assert spectral_cache_info().extensions == 1

    def test_fingerprint_shares_across_equal_models(self):
        a = FGNCorrelation(0.8)
        b = FGNCorrelation(0.8)
        table_a = get_spectral_table(a, 64)
        table_b = get_spectral_table(b, 64)
        assert table_b is table_a
        info = spectral_cache_info()
        assert (info.misses, info.hits) == (1, 1)

    def test_model_memo_skips_acvf_evaluation(self):
        calls = []
        model = FGNCorrelation(0.8)
        original = model.acvf

        def counting_acvf(lags):
            calls.append(lags)
            return original(lags)

        model.acvf = counting_acvf
        get_spectral_table(model, 64)
        assert calls == [65]
        # Memo hit: covered request never re-evaluates the acvf.
        get_spectral_table(model, 32)
        get_spectral_table(model, 64)
        assert calls == [65]
        # A longer request must evaluate (to extend).
        get_spectral_table(model, 128)
        assert calls == [65, 129]

    def test_explicit_sequence_supported(self):
        acvf = ExponentialCorrelation(0.25).acvf(65)
        table = get_spectral_table(acvf, 64)
        assert get_spectral_table(acvf, 64) is table
        np.testing.assert_array_equal(table.acvf, acvf)

    def test_sequence_with_too_few_lags_rejected(self):
        with pytest.raises(ValidationError, match="too few lags"):
            get_spectral_table(np.ones(10), 32)

    def test_over_cap_requests_bypass_cache(self):
        set_spectral_cache_limits(max_cached_length=100)
        model = FGNCorrelation(0.8)
        table = get_spectral_table(model, 200)
        assert table.horizon == 201
        info = spectral_cache_info()
        assert info.tables == 0
        assert info.misses == 0
        # And a second request builds a fresh, unshared table.
        assert get_spectral_table(model, 200) is not table

    def test_lru_eviction_counts(self):
        set_spectral_cache_limits(max_tables=2)
        for hurst in (0.6, 0.7, 0.8, 0.9):
            get_spectral_table(FGNCorrelation(hurst), 32)
        info = spectral_cache_info()
        assert info.tables == 2
        assert info.evictions == 2

    def test_rejects_bad_n(self):
        with pytest.raises(ValidationError):
            get_spectral_table(FGNCorrelation(0.8), 0)


class TestCacheMetricsContext:
    def test_deltas_recorded(self):
        model = CompositeCorrelation.paper_fit()
        ctx = RunContext()
        with spectral_cache_metrics(ctx, step="warm"):
            table = get_spectral_table(model, 64)
            table.eigenvalues(64)
            get_spectral_table(model, 64)
            table.eigenvalues(64)
        entries = {
            (e["name"], e["labels"].get("step")): e
            for e in ctx.snapshot()
        }
        assert entries[("spectral.misses", "warm")]["value"] == 1
        assert entries[("spectral.hits", "warm")]["value"] == 1
        assert entries[("spectral.eigenvalue_builds", "warm")]["value"] == 1
        assert entries[("spectral.eigenvalue_hits", "warm")]["value"] == 1
        assert entries[("spectral.tables", "warm")]["value"] == 1
        build = entries[("spectral.eigenvalue_build_seconds", "warm")]
        assert build["kind"] == "summary"

    def test_null_metrics_is_free(self):
        with spectral_cache_metrics(None):
            get_spectral_table(FGNCorrelation(0.8), 32)
        assert spectral_cache_info().misses == 1


class TestConcurrency:
    def test_parallel_entry_builds_are_single_flight(self):
        model = CompositeCorrelation.paper_fit()
        table = get_spectral_table(model, 512)
        lengths = [64, 128, 256, 512]
        results = {}
        barrier = threading.Barrier(8)

        def worker(idx):
            barrier.wait()
            out = [table.eigenvalues(n) for n in lengths]
            results[idx] = out

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Every thread saw the same immutable entries...
        for idx in range(1, 8):
            for a, b in zip(results[0], results[idx]):
                assert a is b
        # ...and each length was built exactly once.
        assert spectral_cache_info().eigenvalue_builds == len(lengths)
        for n, entry in zip(lengths, results[0]):
            np.testing.assert_array_equal(
                entry.eigenvalues,
                build_eigenvalue_entry(model.acvf(n + 1)).eigenvalues,
            )

    def test_racing_lookups_and_extensions(self):
        model = CompositeCorrelation.paper_fit()
        lengths = [32, 64, 128, 256, 96, 192]
        tables = {}
        barrier = threading.Barrier(len(lengths))

        def worker(n):
            barrier.wait()
            table = get_spectral_table(model, n)
            entry = table.eigenvalues(n)
            tables[n] = (table, entry)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in lengths
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All requests converged on one shared table whose prefix covers
        # the longest request, and every entry matches a serial build.
        shared = {id(table) for table, _ in tables.values()}
        assert len(shared) == 1
        table = tables[256][0]
        assert table.horizon >= 257
        for n, (_, entry) in tables.items():
            np.testing.assert_array_equal(
                entry.eigenvalues,
                build_eigenvalue_entry(model.acvf(n + 1)).eigenvalues,
            )

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_concurrent_generation_matches_serial(self):
        model = CompositeCorrelation.paper_fit()
        lengths = [50, 100, 150, 200]
        serial = {
            n: davies_harte_generate(
                model, n, random_state=n, spectral_table=False
            )
            for n in lengths
        }
        clear_spectral_cache()
        out = {}
        barrier = threading.Barrier(len(lengths))

        def worker(n):
            barrier.wait()
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                out[n] = davies_harte_generate(model, n, random_state=n)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in lengths
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for n in lengths:
            np.testing.assert_array_equal(out[n], serial[n])


class TestPrefixStabilityProperty:
    """Sliced cached ACVF == fresh short evaluation, for any model."""

    @FAST
    @given(
        weight=st.floats(min_value=0.05, max_value=1.0),
        rate=st.floats(min_value=1e-4, max_value=1.0),
        gamma=st.floats(min_value=0.05, max_value=1.0),
        knee=st.integers(min_value=4, max_value=120),
        nugget=st.floats(min_value=0.0, max_value=0.5),
        short=st.integers(min_value=2, max_value=257),
    )
    def test_cached_prefix_matches_fresh_acvf(
        self, weight, rate, gamma, knee, nugget, short
    ):
        model = CompositeCorrelation(
            srd_weights=[weight, 1.0 - weight * 0.5],
            srd_rates=[rate, rate * 3.0],
            lrd_amplitude=min(0.999, float(knee) ** gamma),
            lrd_exponent=gamma,
            knee=float(knee),
            nugget=nugget,
        )
        clear_spectral_cache()
        table = get_spectral_table(model, 256)
        np.testing.assert_array_equal(
            table.acvf_prefix(short), model.acvf(short)
        )
        # The eigenvalue entry for the short length is likewise
        # bit-identical to one built from a fresh short evaluation.
        n = short - 1
        if n >= 1:
            np.testing.assert_array_equal(
                table.eigenvalues(n).eigenvalues,
                build_eigenvalue_entry(model.acvf(short)).eigenvalues,
            )


class TestBitIdentityAcrossBackends:
    """Cached generation == cold-cache generation for every backend."""

    BACKENDS = ["davies_harte", "fgn", "farima", "hosking", "rmd",
                "mg_infinity"]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cold_equals_warm(self, backend):
        if backend == "davies_harte":
            correlation = CompositeCorrelation.paper_fit()
        elif backend == "hosking":
            correlation = FGNCorrelation(0.8)
        else:
            correlation = 0.8
        clear_spectral_cache()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            cold = registry.create(backend, correlation).sample(
                200, random_state=7
            )
            # Warm: same request, now served from the shared cache.
            warm = registry.create(backend, correlation).sample(
                200, random_state=7
            )
        np.testing.assert_array_equal(cold, warm)

    def test_davies_harte_cached_equals_uncached_batched(self):
        model = CompositeCorrelation.paper_fit()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            uncached = davies_harte_generate(
                model, 300, size=4, random_state=11, spectral_table=False
            )
            clear_spectral_cache()
            cached = davies_harte_generate(
                model, 300, size=4, random_state=11
            )
        np.testing.assert_array_equal(cached, uncached)
        assert spectral_cache_info().misses == 1


class TestRealFFTLegacyAgreement:
    """The rfft eigenvalue path pinned against the legacy full FFT."""

    @pytest.mark.parametrize("correlation", [
        FGNCorrelation(0.55),
        FGNCorrelation(0.85),
        ExponentialCorrelation(0.3),
        CompositeCorrelation.paper_fit(),
    ], ids=["fgn_low", "fgn_high", "exponential", "composite"])
    @pytest.mark.parametrize("lags", [17, 65, 257])
    def test_matches_legacy_full_fft(self, correlation, lags):
        from repro.processes.correlation import (
            FARIMACorrelation,
            WhiteNoiseCorrelation,
        )

        models = [
            correlation,
            FARIMACorrelation(0.3),
            WhiteNoiseCorrelation(),
        ]
        for model in models:
            acvf = model.acvf(lags)
            r = np.asarray(acvf, dtype=float)
            legacy = np.fft.fft(
                np.concatenate([r, r[-2:0:-1]])
            ).real
            full = circulant_eigenvalues(acvf, spectrum="full")
            half = circulant_eigenvalues(acvf, spectrum="half")
            np.testing.assert_allclose(full, legacy, rtol=1e-10, atol=1e-12)
            np.testing.assert_allclose(
                half, legacy[:lags], rtol=1e-10, atol=1e-12
            )

    def test_all_registered_backends_share_the_contract(self):
        # Every backend's davies_harte-eligible correlation (an FGN
        # law at H=0.8 here) produces eigenvalues agreeing with the
        # legacy transform — the bake-off harness relies on identical
        # spectra whichever backend's correlation feeds the cache.
        assert len(registry.names()) == 6
        acvf = FGNCorrelation(0.8).acvf(129)
        r = np.asarray(acvf, dtype=float)
        legacy = np.fft.fft(np.concatenate([r, r[-2:0:-1]])).real
        for name in registry.names():
            spec = registry.get(name)
            assert spec.name == name
            np.testing.assert_allclose(
                circulant_eigenvalues(acvf, spectrum="full"),
                legacy,
                rtol=1e-10,
            )
