"""Tests for the Table 1 parameter report."""

import pytest

from repro.exceptions import ValidationError
from repro.video.table1 import paper_table1, trace_parameters


class TestPaperTable1:
    def test_matches_paper_values(self):
        t = paper_table1()
        assert t.num_frames == 238_626
        assert t.coder == "MPEG-1"
        assert "2 hours, 12 minutes, 36 seconds" == t.duration
        assert t.frame_dimensions == "320x240 pixels"

    def test_rows_complete(self):
        rows = paper_table1().rows()
        assert len(rows) == 8
        assert rows["Number of frames"] == "238,626"


class TestTraceParameters:
    def test_duration_formatting(self, intra_trace):
        params = trace_parameters(intra_trace)
        assert params.num_frames == intra_trace.num_frames
        assert "hours" in params.duration

    def test_full_length_trace_close_to_paper_duration(self):
        import numpy as np

        from repro.video.trace import VideoTrace

        trace = VideoTrace(sizes=np.ones(238_626), frame_rate=30.0)
        params = trace_parameters(trace)
        # 238,626 frames at exactly 30 fps is 2h12m34s; the paper prints
        # 2h12m36s (NTSC 29.97 fps rounding).  Accept the 2-second gap.
        assert params.duration.startswith("2 hours, 12 minutes")
        assert params.num_frames == paper_table1().num_frames

    def test_rejects_non_trace(self):
        with pytest.raises(ValidationError):
            trace_parameters([1.0, 2.0])
