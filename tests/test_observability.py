"""Unit tests for the repro.observability metrics subsystem."""

import json
import math
import threading

import pytest

from repro.exceptions import ValidationError
from repro.observability import (
    NULL_CONTEXT,
    InMemorySink,
    JsonLinesSink,
    MetricsRegistry,
    NullRunContext,
    PrometheusTextSink,
    RunContext,
    canonical_labels,
    ensure_context,
    render_prometheus,
    to_json_lines,
)


class TestCanonicalLabels:
    def test_empty_and_none_are_identical(self):
        assert canonical_labels(None) == ()
        assert canonical_labels({}) == ()

    def test_sorted_by_key(self):
        assert canonical_labels({"b": 1, "a": 2}) == (("a", "2"), ("b", "1"))

    def test_float_formatting_merges_equivalent_values(self):
        assert canonical_labels({"buffer": 50.0}) == canonical_labels(
            {"buffer": 50}
        )


class TestCounter:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("hits")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            reg.counter("hits").inc(-1)

    def test_zero_increment_registers_the_series(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(0)
        assert [e["name"] for e in reg.snapshot()] == ["hits"]


class TestGauge:
    def test_set_overwrites(self):
        reg = MetricsRegistry()
        g = reg.gauge("occupancy")
        g.set(1.0)
        g.set(4.0)
        assert g.value == 4.0

    def test_unwritten_gauge_does_not_clobber_on_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(7.0)
        b.gauge("g")  # created but never written
        a.merge_from(b)
        assert a.gauge("g").value == 7.0

    def test_merge_is_last_write_in_merge_order(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        a.merge_from(b)
        assert a.gauge("g").value == 2.0


class TestSummaryAndTimer:
    def test_summary_statistics(self):
        reg = MetricsRegistry()
        s = reg.summary("weights")
        s.observe_many([1.0, 3.0, 2.0])
        assert s.count == 3
        assert s.total == 6.0
        assert s.min == 1.0
        assert s.max == 3.0
        assert s.mean == 2.0

    def test_empty_summary_mean_is_nan(self):
        reg = MetricsRegistry()
        assert math.isnan(reg.summary("empty").mean)

    def test_timer_records_positive_duration(self):
        reg = MetricsRegistry()
        with reg.timer("t").time():
            pass
        t = reg.timer("t")
        assert t.count == 1
        assert t.total >= 0.0

    def test_merge_combines_extremes(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.summary("s").observe(5.0)
        b.summary("s").observe(1.0)
        a.merge_from(b)
        merged = a.summary("s")
        assert merged.count == 2
        assert merged.min == 1.0
        assert merged.max == 5.0


class TestHistogram:
    def test_le_bucketing(self):
        reg = MetricsRegistry()
        h = reg.histogram("q", (1.0, 2.0))
        for v in (0.5, 1.0, 1.5, 2.0, 99.0):
            h.observe(v)
        # le semantics: 1.0 lands in the first bucket, 2.0 in the second.
        assert h.counts == [2, 2, 1]
        assert h.count == 5

    def test_bounds_must_increase(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            reg.histogram("bad", (2.0, 1.0))

    def test_add_counts_bulk(self):
        reg = MetricsRegistry()
        h = reg.histogram("q", (1.0, 2.0))
        h.add_counts([3, 2, 1], total=7.5, count=6)
        assert h.counts == [3, 2, 1]
        assert h.count == 6
        assert h.total == 7.5

    def test_add_counts_wrong_length_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValidationError):
            reg.histogram("q", (1.0, 2.0)).add_counts([1, 2])

    def test_merge_requires_equal_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("q", (1.0,)).observe(0.5)
        b.histogram("q", (2.0,)).observe(0.5)
        with pytest.raises(ValidationError):
            a.merge_from(b)


class TestRegistry:
    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValidationError):
            reg.gauge("x")

    def test_snapshot_sorted_and_labelled(self):
        reg = MetricsRegistry()
        reg.counter("b", {"k": 2}).inc()
        reg.counter("b", {"k": 1}).inc()
        reg.counter("a").inc()
        names = [(e["name"], e["labels"]) for e in reg.snapshot()]
        assert names == [
            ("a", {}),
            ("b", {"k": "1"}),
            ("b", {"k": "2"}),
        ]

    def test_operation_count_tracks_mutations(self):
        reg = MetricsRegistry()
        before = reg.operation_count
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.summary("s").observe(1.0)
        assert reg.operation_count == before + 3

    def test_operation_count_survives_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c").inc()
        b.counter("c").inc()
        b.summary("s").observe(1.0)
        a.merge_from(b)
        assert a.operation_count == 3

    def test_concurrent_increments_are_not_lost(self):
        reg = MetricsRegistry()
        counter = reg.counter("n")

        def work():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestRunContext:
    def test_scope_labels_stamped(self):
        ctx = RunContext(scope={"run": "r1"})
        ctx.inc("hits", twist=2.0)
        entry = ctx.snapshot()[0]
        assert entry["labels"] == {"run": "r1", "twist": "2"}

    def test_call_site_labels_override_scope(self):
        ctx = RunContext(scope={"twist": 1.0})
        ctx.inc("hits", twist=2.0)
        assert ctx.snapshot()[0]["labels"] == {"twist": "2"}

    def test_scoped_shares_registry(self):
        ctx = RunContext()
        ctx.scoped(leg=0).inc("hits")
        assert ctx.snapshot()[0]["value"] == 1.0

    def test_child_is_isolated_until_merged(self):
        ctx = RunContext()
        child = ctx.child(leg=0)
        child.inc("hits")
        assert ctx.snapshot() == []
        ctx.merge_children([child])
        entry = ctx.snapshot()[0]
        assert entry["value"] == 1.0
        assert entry["labels"] == {"leg": "0"}

    def test_merge_children_deterministic_order(self):
        def merged_gauge(order):
            ctx = RunContext()
            children = {i: ctx.child() for i in (0, 1)}
            children[0].set("g", 10.0)
            children[1].set("g", 20.0)
            ctx.merge_children([children[i] for i in order])
            return ctx.snapshot()[0]["value"]

        # Gauges are last-write-wins in *merge* (submission) order, so
        # the result depends only on the order the caller fixes, never
        # on which worker finished first.
        assert merged_gauge([0, 1]) == 20.0
        assert merged_gauge([1, 0]) == 10.0

    def test_merge_children_skips_null(self):
        ctx = RunContext()
        ctx.merge_children([None, NULL_CONTEXT])
        assert ctx.snapshot() == []

    def test_registry_passthrough(self):
        reg = MetricsRegistry()
        ctx = ensure_context(reg)
        assert ctx.registry is reg

    def test_ensure_context_rejects_junk(self):
        with pytest.raises(ValidationError):
            ensure_context(42)


class TestNullContext:
    def test_singleton_and_disabled(self):
        assert ensure_context(None) is NULL_CONTEXT
        assert isinstance(NULL_CONTEXT, NullRunContext)
        assert NULL_CONTEXT.enabled is False

    def test_nesting_allocates_nothing(self):
        assert NULL_CONTEXT.scoped(a=1) is NULL_CONTEXT
        assert NULL_CONTEXT.child(b=2) is NULL_CONTEXT

    def test_all_recording_is_noop(self):
        NULL_CONTEXT.inc("c")
        NULL_CONTEXT.set("g", 1.0)
        NULL_CONTEXT.observe("s", 1.0)
        NULL_CONTEXT.observe_many("s", [1.0])
        with NULL_CONTEXT.time("t"):
            pass
        NULL_CONTEXT.timer("t").observe(1.0)
        NULL_CONTEXT.histogram("h", (1.0,)).add_counts([0, 0])
        NULL_CONTEXT.summary("s").observe(1.0)
        assert NULL_CONTEXT.snapshot() == []


class TestSinks:
    def _snapshot(self):
        ctx = RunContext()
        ctx.inc("coeff_table.hits", 3)
        ctx.set("is.ess", 41.5, twist=3.2)
        ctx.summary("is.weight").observe_many([0.5, 1.5])
        ctx.histogram("mux.queue_occupancy", (1.0, 10.0)).observe(4.0)
        return ctx.snapshot()

    def test_json_lines_strict_json(self):
        text = to_json_lines(
            self._snapshot(), header={"trace": "t.txt", "inf": float("inf")}
        )
        lines = text.strip().split("\n")
        records = [json.loads(line) for line in lines]
        assert records[0]["record"] == "header"
        assert records[0]["inf"] == "inf"  # sanitized for strict JSON
        assert all(r["record"] == "metric" for r in records[1:])
        names = {r["name"] for r in records[1:]}
        assert "coeff_table.hits" in names
        assert "is.ess" in names

    def test_json_lines_empty_snapshot(self):
        assert to_json_lines([]) == ""

    def test_prometheus_rendering(self):
        text = render_prometheus(self._snapshot())
        assert "# TYPE coeff_table_hits counter" in text
        assert 'is_ess{twist="3.2"} 41.5' in text
        assert "is_weight_count 2" in text
        # Cumulative le buckets, with the implicit +Inf bucket.
        assert 'mux_queue_occupancy_bucket{le="1"} 0' in text
        assert 'mux_queue_occupancy_bucket{le="10"} 1' in text
        assert 'mux_queue_occupancy_bucket{le="+Inf"} 1' in text

    def test_file_sinks(self, tmp_path):
        snapshot = self._snapshot()
        jl = tmp_path / "m.jsonl"
        prom = tmp_path / "m.prom"
        JsonLinesSink(jl).export(snapshot, header={"run": 1})
        PrometheusTextSink(prom).export(snapshot)
        assert jl.read_text().count("\n") == len(snapshot) + 1
        assert "# TYPE" in prom.read_text()
        mem = InMemorySink()
        mem.export(snapshot)
        assert mem.latest == snapshot
