"""Tests for fractional Gaussian noise helpers."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.processes.correlation import FGNCorrelation
from repro.processes.fgn import fbm_from_fgn, fgn_acvf, fgn_generate


class TestFgnAcvf:
    def test_matches_correlation_model(self):
        h = 0.8
        np.testing.assert_allclose(
            fgn_acvf(h, 20), FGNCorrelation(h).acvf(20)
        )

    def test_rejects_invalid_hurst(self):
        with pytest.raises(ValidationError):
            fgn_acvf(0.0, 10)


class TestFgnGenerate:
    def test_both_methods_produce_shape(self):
        for method in ("davies-harte", "hosking"):
            x = fgn_generate(0.75, 64, method=method, random_state=1)
            assert x.shape == (64,)

    def test_invalid_method(self):
        with pytest.raises(ValidationError):
            fgn_generate(0.7, 10, method="magic")

    def test_self_similarity_of_variance(self):
        """var of aggregated fGn scales like m^{2H-2}."""
        h = 0.9
        x = fgn_generate(h, 1 << 16, random_state=2)
        from repro.stats.aggregate import aggregate_series

        v1 = x.var()
        v16 = aggregate_series(x, 16).var()
        expected_ratio = 16.0 ** (2 * h - 2)
        assert v16 / v1 == pytest.approx(expected_ratio, rel=0.25)


class TestFbmFromFgn:
    def test_starts_at_zero(self):
        path = fbm_from_fgn([1.0, 2.0])
        assert path[0] == 0.0

    def test_cumsum(self):
        np.testing.assert_array_equal(
            fbm_from_fgn([1.0, -1.0, 2.0]), [0.0, 1.0, 0.0, 2.0]
        )

    def test_length(self):
        assert fbm_from_fgn(np.ones(10)).size == 11

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            fbm_from_fgn(np.ones((2, 2)))
