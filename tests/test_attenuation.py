"""Tests for attenuation-factor analysis (Appendix A)."""

import numpy as np
import pytest

from repro.exceptions import EstimationError, ValidationError
from repro.marginals.attenuation import (
    analytic_attenuation,
    hermite_coefficients,
    measured_attenuation,
    transformed_acf,
)
from repro.marginals.parametric import (
    GammaDistribution,
    LognormalDistribution,
    NormalDistribution,
)
from repro.marginals.transform import MarginalTransform


class TestAnalyticAttenuation:
    def test_identity_transform_gives_one(self):
        assert analytic_attenuation(lambda x: x) == pytest.approx(1.0)

    def test_affine_transform_gives_one(self):
        assert analytic_attenuation(lambda x: 3.0 * x + 7.0) == (
            pytest.approx(1.0)
        )

    def test_bounded_by_one(self):
        for target in (
            GammaDistribution(2.0, 1.0),
            LognormalDistribution(0.0, 1.0),
        ):
            a = analytic_attenuation(MarginalTransform(target))
            assert 0.0 < a <= 1.0 + 1e-9

    def test_known_lognormal_value(self):
        # For h(x) = exp(sigma x): E[hX] = sigma e^{sigma^2/2},
        # var h = e^{sigma^2}(e^{sigma^2} - 1) => a = sigma^2/(e^{s^2}-1).
        sigma = 0.8
        a = analytic_attenuation(lambda x: np.exp(sigma * x))
        expected = sigma**2 / (np.exp(sigma**2) - 1.0)
        assert a == pytest.approx(expected, rel=1e-4)

    def test_even_transform_degenerates_to_zero(self):
        # h(x) = x^2 has E[hX] = 0 => a = 0 (theorem requires it nonzero).
        a = analytic_attenuation(lambda x: x**2)
        assert a == pytest.approx(0.0, abs=1e-10)

    def test_constant_transform_raises(self):
        with pytest.raises(EstimationError):
            analytic_attenuation(lambda x: np.ones_like(x))


class TestHermiteCoefficients:
    def test_linear_transform(self):
        c = hermite_coefficients(lambda x: 2.0 * x + 1.0, 4)
        np.testing.assert_allclose(c[:3], [1.0, 2.0, 0.0], atol=1e-8)

    def test_quadratic_transform(self):
        # x^2 = He_2(x) + 1: c_0 = 1, c_2 = 2! * 1 = 2.
        c = hermite_coefficients(lambda x: x**2, 4)
        assert c[0] == pytest.approx(1.0, abs=1e-8)
        assert c[1] == pytest.approx(0.0, abs=1e-8)
        assert c[2] == pytest.approx(2.0, abs=1e-6)

    def test_parseval_for_smooth_transform(self):
        # sum c_m^2/m! = E[h^2] for square-integrable h.
        sigma = 0.5
        h = lambda x: np.exp(sigma * x)  # noqa: E731
        c = hermite_coefficients(h, 25)
        import math

        total = sum(
            c[m] ** 2 / math.factorial(m) for m in range(c.size)
        )
        expected = np.exp(2 * sigma**2)  # E[e^{2 sigma X}]
        assert total == pytest.approx(expected, rel=1e-6)


class TestTransformedAcf:
    def test_identity_transform_preserves_acf(self):
        r = np.array([1.0, 0.8, 0.5, 0.2])
        out = transformed_acf(r, lambda x: x)
        np.testing.assert_allclose(out, r, atol=1e-8)

    def test_monte_carlo_agreement(self, rng):
        """Hermite prediction matches bivariate-normal Monte Carlo."""
        tr = MarginalTransform(GammaDistribution(2.0, 1.0))
        rho = 0.7
        z1 = rng.standard_normal(500_000)
        z2 = rho * z1 + np.sqrt(1 - rho**2) * rng.standard_normal(
            500_000
        )
        mc = np.corrcoef(np.asarray(tr(z1)), np.asarray(tr(z2)))[0, 1]
        pred = transformed_acf(np.array([1.0, rho]), tr)[1]
        assert pred == pytest.approx(mc, abs=0.02)

    def test_attenuation_is_small_rho_limit(self):
        tr = MarginalTransform(GammaDistribution(2.0, 1.0))
        a = analytic_attenuation(tr)
        rho = 0.01
        pred = transformed_acf(np.array([1.0, rho]), tr)[1]
        assert pred / rho == pytest.approx(a, rel=0.05)

    def test_output_head_is_one(self):
        tr = MarginalTransform(GammaDistribution(2.0, 1.0))
        out = transformed_acf(np.array([1.0, 0.5]), tr)
        assert out[0] == pytest.approx(1.0, rel=1e-6)


class TestMeasuredAttenuation:
    def test_exact_ratio(self):
        r = np.linspace(1.0, 0.4, 401)
        rh = 0.9 * r
        a = measured_attenuation(r, rh, lag_range=(100, 400))
        assert a == pytest.approx(0.9)

    def test_clipped_to_one(self):
        r = np.linspace(1.0, 0.4, 401)
        rh = 1.1 * r
        assert measured_attenuation(r, rh) == 1.0

    def test_skips_unstable_lags(self):
        r = np.concatenate([np.linspace(1.0, 0.5, 200), np.zeros(201)])
        rh = 0.8 * r
        a = measured_attenuation(r, rh, lag_range=(100, 400))
        assert a == pytest.approx(0.8)

    def test_all_unstable_raises(self):
        r = np.zeros(401)
        r[0] = 1.0
        with pytest.raises(EstimationError):
            measured_attenuation(r, r, lag_range=(100, 400))

    def test_length_mismatch(self):
        with pytest.raises(ValidationError):
            measured_attenuation(np.ones(10), np.ones(5))

    def test_bad_lag_range(self):
        with pytest.raises(ValidationError):
            measured_attenuation(
                np.ones(100), np.ones(100), lag_range=(50, 10)
            )
