"""Tests for parametric marginal distributions."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.marginals.parametric import (
    GammaDistribution,
    GammaParetoDistribution,
    LognormalDistribution,
    NormalDistribution,
    ParetoDistribution,
)


class TestGamma:
    def test_moments(self):
        d = GammaDistribution(shape=3.0, scale=2.0)
        assert d.mean == pytest.approx(6.0)
        assert d.variance == pytest.approx(12.0)

    def test_cdf_ppf_roundtrip(self):
        d = GammaDistribution(2.5, 1.5)
        q = np.array([0.05, 0.5, 0.95])
        np.testing.assert_allclose(d.cdf(d.ppf(q)), q, atol=1e-10)

    def test_sampling_mean(self, rng):
        d = GammaDistribution(2.0, 3.0)
        s = d.sample(50_000, rng)
        assert s.mean() == pytest.approx(6.0, rel=0.03)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValidationError):
            GammaDistribution(-1.0, 1.0)


class TestPareto:
    def test_tail_law(self):
        d = ParetoDistribution(alpha=2.0, xm=3.0)
        # P(X > x) = (xm/x)^alpha.
        x = 6.0
        assert 1 - d.cdf(x) == pytest.approx((3.0 / 6.0) ** 2)

    def test_support_starts_at_xm(self):
        d = ParetoDistribution(1.5, 2.0)
        assert d.ppf(0.0) == pytest.approx(2.0)

    def test_mean(self):
        d = ParetoDistribution(3.0, 1.0)
        assert d.mean == pytest.approx(1.5)


class TestLognormalAndNormal:
    def test_lognormal_median(self):
        d = LognormalDistribution(mu=1.0, sigma=0.5)
        assert d.ppf(0.5) == pytest.approx(np.exp(1.0))

    def test_normal_symmetry(self):
        d = NormalDistribution(2.0, 3.0)
        assert d.ppf(0.5) == pytest.approx(2.0)
        assert d.mean == 2.0
        assert d.variance == pytest.approx(9.0)


class TestGammaPareto:
    def _dist(self, alpha=3.0):
        return GammaParetoDistribution(
            shape=2.0, scale=1000.0, tail_alpha=alpha, splice_quantile=0.95
        )

    def test_cdf_continuous_at_splice(self):
        d = self._dist()
        eps = 1e-6 * d.splice_point
        below = d.cdf(d.splice_point - eps)
        above = d.cdf(d.splice_point + eps)
        assert above - below < 1e-4

    def test_cdf_at_splice_equals_quantile(self):
        d = self._dist()
        assert d.cdf(d.splice_point) == pytest.approx(0.95)

    def test_ppf_roundtrip_both_pieces(self):
        d = self._dist()
        for q in (0.1, 0.5, 0.9, 0.97, 0.999):
            assert d.cdf(d.ppf(q)) == pytest.approx(q, abs=1e-9)

    def test_ppf_monotone(self):
        d = self._dist()
        q = np.linspace(0.001, 0.999, 500)
        values = np.asarray(d.ppf(q))
        assert np.all(np.diff(values) >= 0)

    def test_tail_heavier_than_gamma(self):
        d = self._dist(alpha=1.5)
        pure_gamma = GammaDistribution(2.0, 1000.0)
        q = 0.9999
        assert d.ppf(q) > pure_gamma.ppf(q)

    def test_mean_matches_sampling(self, rng):
        d = self._dist(alpha=4.0)
        s = d.sample(200_000, rng)
        assert s.mean() == pytest.approx(d.mean, rel=0.03)

    def test_infinite_mean_for_alpha_below_one(self):
        d = self._dist(alpha=0.9)
        assert d.mean == float("inf")

    def test_infinite_variance_for_alpha_below_two(self):
        d = self._dist(alpha=1.5)
        assert d.variance == float("inf")

    def test_finite_variance_matches_sampling(self, rng):
        d = self._dist(alpha=6.0)
        s = d.sample(400_000, rng)
        assert d.variance == pytest.approx(float(s.var()), rel=0.1)

    def test_scalar_in_scalar_out(self):
        d = self._dist()
        assert isinstance(d.cdf(100.0), float)
        assert isinstance(d.ppf(0.5), float)

    def test_rejects_bad_splice(self):
        with pytest.raises(ValidationError):
            GammaParetoDistribution(2.0, 1.0, 2.0, splice_quantile=1.0)
