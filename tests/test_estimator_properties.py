"""Property tests: every Hurst estimator is affine-invariant and
rejects short series through ``repro._validation``.

A Hurst estimate is a statement about the *correlation structure* of a
series, so rescaling the measurement units (``a x + b``, e.g. bytes to
bits, or subtracting a base rate) must not move it:

- the four regression estimators (variance-time, R/S, periodogram,
  DFA) center or difference the data and read H off a log-log slope —
  the scale moves only the intercept, so the invariance is exact to
  float precision;
- the two optimizer-based estimators (Whittle, MAVAR) minimize
  scale-profiled objectives that shift by an additive constant under
  rescaling, so the argmin is invariant up to the optimizer tolerance.

Short input must fail the same way everywhere: a
:class:`~repro.exceptions.ValidationError` from
:func:`repro._validation.check_min_length` naming the argument and the
offending length — never a data-dependent ``EstimationError`` from
somewhere inside the estimator (the pre-bake-off behaviour, which
varied per estimator).

Statistical design
------------------
Hypothesis draws (seed, a, b) per example (15 examples, no deadline);
the paths are cached per seed so the suite stays fast.  The
assertions are deterministic identities, not statistical gates —
``--seed-offset`` does not apply.
"""

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators import bakeoff as bakeoff_mod
from repro.estimators.bakeoff import HURST_ESTIMATORS
from repro.exceptions import ValidationError
from repro.processes import fgn_generate

FAST = settings(max_examples=15, deadline=None)

HURST = 0.75
N = 512

seeds = st.integers(min_value=0, max_value=7)
scales = st.one_of(
    st.floats(min_value=0.05, max_value=20.0),
    st.floats(min_value=-20.0, max_value=-0.05),
)
offsets = st.floats(min_value=-1e3, max_value=1e3)

#: Exact (slope-reading) vs optimizer-tolerance invariance.
EXACT_TOL = 1e-9
OPTIMIZER_TOL = 1e-3
TOLERANCES = {
    "variance_time": EXACT_TOL,
    "rs": EXACT_TOL,
    "periodogram": EXACT_TOL,
    "dfa": EXACT_TOL,
    "whittle": OPTIMIZER_TOL,
    "mavar": OPTIMIZER_TOL,
}


@lru_cache(maxsize=16)
def cached_path(seed):
    path = fgn_generate(HURST, N, random_state=seed)
    path.flags.writeable = False
    return path


@pytest.mark.parametrize("name", sorted(HURST_ESTIMATORS))
class TestAffineInvariance:
    @FAST
    @given(seed=seeds, a=scales, b=offsets)
    def test_affine_rescaling_preserves_hurst(self, name, seed, a, b):
        spec = HURST_ESTIMATORS[name]
        x = cached_path(seed)
        base = spec.estimate(x)
        moved = spec.estimate(a * x + b)
        assert moved == pytest.approx(base, abs=TOLERANCES[name])

    def test_negative_unit_scale_is_exact_for_slope_readers(self, name):
        # a = -1, b = 0: pure reflection.  The slope readers see the
        # identical log-log points, so even float noise vanishes.
        spec = HURST_ESTIMATORS[name]
        x = cached_path(0)
        assert spec.estimate(-x) == pytest.approx(
            spec.estimate(x), abs=TOLERANCES[name]
        )


@pytest.mark.parametrize("name", sorted(HURST_ESTIMATORS))
class TestShortSeriesRejection:
    def test_below_minimum_raises_validation_error(self, name):
        spec = HURST_ESTIMATORS[name]
        short = np.ones(spec.min_length - 1)
        with pytest.raises(ValidationError) as excinfo:
            spec.estimate(short)
        message = str(excinfo.value)
        # The _validation-routed message names the argument AND the
        # offending length, uniformly across estimators.
        assert "values" in message
        assert f"at least {spec.min_length}" in message
        assert f"got {spec.min_length - 1}" in message

    def test_at_minimum_is_accepted(self, name):
        spec = HURST_ESTIMATORS[name]
        rng = np.random.default_rng(hash(name) % (2**32))
        x = rng.standard_normal(spec.min_length)
        hurst = spec.estimate(x)
        assert np.isfinite(hurst)

    def test_min_length_matches_module_constant(self, name):
        module = {
            "variance_time": "variance_time",
            "rs": "rs_analysis",
            "periodogram": "periodogram",
            "dfa": "dfa",
            "whittle": "whittle",
            "mavar": "mavar",
        }[name]
        mod = getattr(bakeoff_mod, module)
        assert HURST_ESTIMATORS[name].min_length == mod.MIN_LENGTH
