"""Tests for the Whittle Hurst estimator."""

import numpy as np
import pytest

from repro.estimators.whittle import fgn_spectral_density, whittle_estimate
from repro.exceptions import ValidationError
from repro.processes.correlation import FGNCorrelation
from repro.processes.fgn import fgn_generate


class TestFgnSpectralDensity:
    def test_white_noise_flat(self):
        freqs = np.linspace(0.1, 3.0, 20)
        density = fgn_spectral_density(0.5, freqs)
        np.testing.assert_allclose(
            density, 1.0 / (2 * np.pi), rtol=1e-3
        )

    def test_lrd_divergence_at_origin(self):
        low = fgn_spectral_density(0.9, [0.001])[0]
        high = fgn_spectral_density(0.9, [1.0])[0]
        assert low > 50 * high

    def test_low_frequency_power_law(self):
        # f(lam) ~ c lam^{1-2H} near 0.
        h = 0.8
        f1 = fgn_spectral_density(h, [0.002])[0]
        f2 = fgn_spectral_density(h, [0.004])[0]
        measured_exponent = np.log(f2 / f1) / np.log(2.0)
        assert measured_exponent == pytest.approx(1 - 2 * h, abs=0.06)

    def test_parseval_total_power(self):
        # integral over (-pi, pi) of f equals r(0) = 1:
        # 2 * integral_0^pi f = 1.
        lam = (np.arange(4096) + 0.5) * np.pi / 4096
        f = fgn_spectral_density(0.75, lam)
        total = 2.0 * float(f.sum()) * (np.pi / 4096)
        assert total == pytest.approx(1.0, rel=0.02)

    def test_rejects_bad_hurst(self):
        with pytest.raises(ValidationError):
            fgn_spectral_density(1.0, [0.1])


class TestWhittleEstimate:
    @pytest.mark.parametrize("h", [0.6, 0.75, 0.9])
    def test_recovers_hurst_of_fgn(self, h):
        x = fgn_generate(h, 1 << 15, random_state=int(h * 100))
        est = whittle_estimate(x)
        assert est.hurst == pytest.approx(h, abs=0.04)

    def test_more_precise_than_variance_time(self):
        """Whittle is the efficient estimator: across seeds its error
        on exact fGn beats the variance-time estimator's."""
        from repro.estimators.variance_time import variance_time_estimate

        h = 0.8
        whittle_errors = []
        vt_errors = []
        for seed in range(5):
            x = fgn_generate(h, 1 << 14, random_state=seed)
            whittle_errors.append(abs(whittle_estimate(x).hurst - h))
            vt_errors.append(abs(variance_time_estimate(x).hurst - h))
        assert np.mean(whittle_errors) < np.mean(vt_errors)

    def test_objective_minimised_at_estimate(self):
        x = fgn_generate(0.85, 1 << 13, random_state=9)
        est = whittle_estimate(x)
        # Perturbed H values give larger objective.
        from repro.estimators.whittle import fgn_spectral_density as fsd

        def objective(h):
            density = fsd(h, est.frequencies)
            ratio = est.periodogram / density
            return float(
                np.log(np.mean(ratio)) + np.mean(np.log(density))
            )

        assert objective(est.hurst) <= objective(est.hurst + 0.05) + 1e-9
        assert objective(est.hurst) <= objective(est.hurst - 0.05) + 1e-9

    def test_frequency_fraction(self):
        x = fgn_generate(0.8, 4096, random_state=2)
        small = whittle_estimate(x, frequency_fraction=0.1)
        assert 0.5 < small.hurst < 1.0
        assert small.frequencies.size < 4096 // 2

    def test_rejects_short_series(self):
        with pytest.raises(ValidationError):
            whittle_estimate(np.ones(32))
