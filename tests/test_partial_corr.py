"""Tests for the Durbin-Levinson recursion."""

import numpy as np
import pytest

from repro.exceptions import CorrelationError
from repro.processes.correlation import FGNCorrelation
from repro.processes.partial_corr import (
    DurbinLevinson,
    partial_autocorrelations,
    validate_acvf_pd,
)


def ar1_acvf(phi: float, n: int) -> np.ndarray:
    return phi ** np.arange(n, dtype=float)


class TestDurbinLevinson:
    def test_ar1_coefficients(self):
        # For AR(1), phi_k1 = phi and phi_kj = 0 for j > 1.
        phi = 0.6
        state = DurbinLevinson(ar1_acvf(phi, 10))
        for _ in range(5):
            row, variance = state.advance()
        assert row[0] == pytest.approx(phi)
        np.testing.assert_allclose(row[1:], 0.0, atol=1e-12)

    def test_ar1_conditional_variance(self):
        phi = 0.6
        state = DurbinLevinson(ar1_acvf(phi, 10))
        state.advance()
        assert state.variance == pytest.approx(1 - phi**2)
        state.advance()
        assert state.variance == pytest.approx(1 - phi**2)

    def test_ar1_pacf(self):
        phi = 0.4
        pacf = partial_autocorrelations(ar1_acvf(phi, 8))
        assert pacf[0] == pytest.approx(phi)
        np.testing.assert_allclose(pacf[1:], 0.0, atol=1e-12)

    def test_variances_decreasing(self):
        state = DurbinLevinson(FGNCorrelation(0.85).acvf(50))
        variances = []
        for _ in range(49):
            _, v = state.advance()
            variances.append(v)
        assert all(
            b <= a + 1e-15 for a, b in zip(variances, variances[1:])
        )
        assert all(v > 0 for v in variances)

    def test_detects_non_pd(self):
        # r(1) = 0.9, r(2) = -0.9 is impossible for a valid process.
        bad = np.array([1.0, 0.9, -0.9])
        state = DurbinLevinson(bad)
        state.advance()
        with pytest.raises(CorrelationError, match="not positive definite"):
            state.advance()

    def test_rejects_nonpositive_r0(self):
        with pytest.raises(CorrelationError):
            DurbinLevinson([0.0, 0.5])

    def test_exhausting_table_raises(self):
        state = DurbinLevinson([1.0, 0.5])
        state.advance()
        with pytest.raises(CorrelationError, match="supports at most"):
            state.advance()

    def test_phi_view_is_readonly(self):
        state = DurbinLevinson(ar1_acvf(0.5, 5))
        state.advance()
        view = state.phi_view
        with pytest.raises(ValueError):
            view[0] = 99.0

    def test_phi_sum_matches_row(self):
        state = DurbinLevinson(FGNCorrelation(0.8).acvf(20))
        for _ in range(10):
            state.advance()
        assert state.phi_sum == pytest.approx(float(state.phi.sum()))

    def test_prediction_reproduces_target_acf(self):
        """Yule-Walker consistency: coefficients satisfy the normal
        equations, i.e. r(k) = sum_j phi_kj r(k - j) at the final step."""
        acvf = FGNCorrelation(0.9).acvf(30)
        state = DurbinLevinson(acvf)
        k = 0
        for _ in range(29):
            row, _ = state.advance()
            k += 1
        # Normal equations at order k: r(i) = sum_j phi_kj r(i-j), i=1..k.
        r = acvf
        for i in range(1, k + 1):
            lhs = r[i]
            rhs = sum(
                row[j - 1] * r[abs(i - j)] for j in range(1, k + 1)
            )
            assert lhs == pytest.approx(rhs, abs=1e-10)


class TestValidateAcvfPd:
    def test_valid(self):
        assert validate_acvf_pd(FGNCorrelation(0.7).acvf(100))

    def test_invalid(self):
        assert not validate_acvf_pd([1.0, 0.9, -0.9])
