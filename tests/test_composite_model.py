"""Tests for the composite MPEG I/B/P model (§3.3)."""

import numpy as np
import pytest

from repro.core.composite import CompositeMPEGModel
from repro.exceptions import NotFittedError, ValidationError
from repro.processes.correlation import RescaledCorrelation
from repro.video.gop import FrameType
from repro.video.trace import VideoTrace


class TestFit:
    def test_requires_gop_trace(self, intra_trace):
        with pytest.raises(ValidationError, match="no GOP"):
            CompositeMPEGModel().fit(intra_trace)

    def test_requires_video_trace(self):
        with pytest.raises(ValidationError):
            CompositeMPEGModel().fit(np.ones(1000))

    def test_unfitted_raises(self):
        model = CompositeMPEGModel()
        with pytest.raises(NotFittedError):
            model.generate(100)
        with pytest.raises(NotFittedError):
            _ = model.background_correlation

    def test_fitted_state(self, fitted_composite):
        assert set(fitted_composite.transforms_) == {"I", "P", "B"}
        assert isinstance(
            fitted_composite.background_correlation, RescaledCorrelation
        )
        assert fitted_composite.i_model.background_ is not None

    def test_background_rescaled_by_gop_period(self, fitted_composite):
        bg = fitted_composite.background_correlation
        assert bg.scale == 12
        inner = fitted_composite.i_model.background_correlation
        assert bg(12) == pytest.approx(float(inner(1)))


class TestGenerate:
    def test_output_is_video_trace(self, fitted_composite):
        out = fitted_composite.generate(1200, random_state=1)
        assert isinstance(out, VideoTrace)
        assert out.num_frames == 1200
        assert out.gop.i_period == 12

    def test_per_type_marginals_match(self, fitted_composite, ibp_trace):
        # Pool several short generations: a single LRD path's marginal
        # wanders with its low-frequency excursion.
        outs = [
            fitted_composite.generate(1_200, random_state=2 + i)
            for i in range(40)
        ]
        for ft in FrameType:
            real = ibp_trace.sizes_of(ft)
            model = np.concatenate([o.sizes_of(ft) for o in outs])
            assert model.mean() == pytest.approx(real.mean(), rel=0.08)
            assert np.quantile(model, 0.9) == pytest.approx(
                np.quantile(real, 0.9), rel=0.1
            )

    def test_type_ordering_preserved(self, fitted_composite):
        out = fitted_composite.generate(24_000, random_state=3)
        means = {
            ft.value: out.sizes_of(ft).mean() for ft in FrameType
        }
        assert means["I"] > means["P"] > means["B"]

    def test_acf_periodicity_reproduced(self, fitted_composite, ibp_trace):
        """Figs. 9-11: the composite model reproduces the oscillating
        frame-level ACF including the period-12 GOP structure."""
        from repro.estimators.acf import sample_acf

        out = fitted_composite.generate(60_000, random_state=4)
        emp = sample_acf(ibp_trace.sizes, 60)
        model = sample_acf(out.sizes, 60)
        for lag in (3, 12, 24, 36, 60):
            assert model[lag] == pytest.approx(emp[lag], abs=0.12)

    def test_hosking_method(self, fitted_composite):
        out = fitted_composite.generate(
            600, method="hosking", random_state=5
        )
        assert out.num_frames == 600

    def test_invalid_method(self, fitted_composite):
        with pytest.raises(ValidationError):
            fitted_composite.generate(100, method="nope")

    def test_reproducible(self, fitted_composite):
        a = fitted_composite.generate(500, random_state=6)
        b = fitted_composite.generate(500, random_state=6)
        np.testing.assert_array_equal(a.sizes, b.sizes)


class TestRepr:
    def test_unfitted(self):
        assert "unfitted" in repr(CompositeMPEGModel())

    def test_fitted(self, fitted_composite):
        assert "IBBPBBPBBPBB" in repr(fitted_composite)
