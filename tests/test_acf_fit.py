"""Tests for the composite SRD+LRD ACF fitter (eq. 10-13)."""

import numpy as np
import pytest

from repro.estimators.acf_fit import detect_knee, fit_composite_acf
from repro.exceptions import ValidationError
from repro.processes.correlation import CompositeCorrelation


def synthetic_acf(model: CompositeCorrelation, max_lag: int) -> np.ndarray:
    return np.asarray(model(np.arange(max_lag + 1)), dtype=float)


class TestFitCompositeAcf:
    def test_recovers_paper_parameters_noiseless(self):
        truth = CompositeCorrelation.paper_fit()
        acf = synthetic_acf(truth, 500)
        fit = fit_composite_acf(acf, knee=60, lrd_exponent=0.2,
                                fit_nugget=False)
        assert fit.model.srd.rates[0] == pytest.approx(0.00565, rel=1e-3)
        assert fit.model.lrd_amplitude == pytest.approx(1.59468, rel=1e-3)
        assert fit.rmse < 1e-6

    def test_free_exponent_recovery(self):
        truth = CompositeCorrelation.paper_fit()
        acf = synthetic_acf(truth, 500)
        fit = fit_composite_acf(acf, knee=60, fit_nugget=False)
        assert fit.model.lrd_exponent == pytest.approx(0.2, rel=1e-3)
        assert fit.hurst == pytest.approx(0.9, abs=1e-3)

    def test_nugget_recovery(self):
        truth = CompositeCorrelation(
            srd_weights=[1.0],
            srd_rates=[0.008],
            lrd_amplitude=0.85,
            lrd_exponent=0.25,
            knee=50.0,
            nugget=0.12,
        )
        acf = synthetic_acf(truth, 300)
        fit = fit_composite_acf(acf, knee=50, lrd_exponent=0.25)
        assert fit.model.nugget == pytest.approx(0.12, abs=0.01)
        assert fit.model.srd.rates[0] == pytest.approx(0.008, rel=0.05)

    def test_nugget_disabled_gives_zero(self):
        truth = CompositeCorrelation.paper_fit()
        acf = synthetic_acf(truth, 300)
        fit = fit_composite_acf(acf, knee=60, fit_nugget=False)
        assert fit.model.nugget == 0.0

    def test_two_exponential_head(self):
        truth = CompositeCorrelation(
            srd_weights=[0.6, 0.4],
            srd_rates=[0.003, 0.08],
            lrd_amplitude=0.9,
            lrd_exponent=0.2,
            knee=80.0,
        )
        acf = synthetic_acf(truth, 400)
        fit = fit_composite_acf(
            acf, knee=80, num_exponentials=2, lrd_exponent=0.2,
            fit_nugget=False,
        )
        assert fit.srd_rmse < 5e-3
        assert fit.model.srd.rates.size == 2

    def test_noisy_fit_reasonable(self):
        rng = np.random.default_rng(0)
        truth = CompositeCorrelation.paper_fit()
        acf = synthetic_acf(truth, 500)
        acf[1:] += rng.normal(scale=0.01, size=500)
        fit = fit_composite_acf(acf, knee=60, lrd_exponent=0.2)
        assert fit.rmse < 0.05
        assert fit.model.srd.rates[0] == pytest.approx(0.00565, rel=0.5)

    def test_rejects_bad_head(self):
        acf = synthetic_acf(CompositeCorrelation.paper_fit(), 100)
        acf[0] = 0.9
        with pytest.raises(ValidationError, match="acf\\[0\\]"):
            fit_composite_acf(acf, knee=30)

    def test_rejects_knee_out_of_range(self):
        acf = synthetic_acf(CompositeCorrelation.paper_fit(), 100)
        with pytest.raises(ValidationError, match="knee"):
            fit_composite_acf(acf, knee=99)

    def test_rejects_too_few_lags(self):
        with pytest.raises(ValidationError, match="at least 10"):
            fit_composite_acf(np.linspace(1.0, 0.9, 5))


class TestDetectKnee:
    def test_finds_true_knee_region(self):
        truth = CompositeCorrelation.paper_fit().with_continuity()
        acf = synthetic_acf(truth, 400)
        knee = detect_knee(acf, lrd_exponent=0.2, fit_nugget=False)
        # Noise-free detection should land near the true knee of 60.
        assert 30 <= knee <= 110

    def test_explicit_candidates(self):
        truth = CompositeCorrelation.paper_fit().with_continuity()
        acf = synthetic_acf(truth, 300)
        knee = detect_knee(acf, candidates=[40, 60, 80], fit_nugget=False)
        assert knee in (40, 60, 80)
