"""Tests for the empirical (histogram-inversion) distribution."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.marginals.empirical import EmpiricalDistribution


class TestEmpiricalDistribution:
    def test_moments_match_samples(self, rng):
        data = rng.gamma(2.0, 500.0, size=5000)
        d = EmpiricalDistribution(data)
        assert d.mean == pytest.approx(data.mean())
        assert d.variance == pytest.approx(data.var(ddof=1))

    def test_histogram_cdf_monotone(self, rng):
        data = rng.exponential(size=2000)
        d = EmpiricalDistribution(data, bins=50)
        x = np.linspace(data.min(), data.max(), 200)
        cdf = np.asarray(d.cdf(x))
        assert np.all(np.diff(cdf) >= 0)
        assert cdf[0] >= 0 and cdf[-1] <= 1.0 + 1e-12

    def test_histogram_ppf_cdf_roundtrip(self, rng):
        data = rng.normal(size=3000)
        d = EmpiricalDistribution(data, bins=100)
        q = np.array([0.1, 0.25, 0.5, 0.75, 0.9])
        np.testing.assert_allclose(d.cdf(d.ppf(q)), q, atol=1e-9)

    def test_ppf_range_is_data_range(self, rng):
        data = rng.uniform(10.0, 20.0, size=1000)
        d = EmpiricalDistribution(data, bins=20)
        assert d.ppf(0.0) >= 10.0 - 1e-9
        assert d.ppf(1.0) <= 20.0 + 1e-9

    def test_exact_method_returns_observed_values(self, rng):
        data = np.sort(rng.normal(size=101))
        d = EmpiricalDistribution(data, method="exact")
        assert d.ppf(0.5) == pytest.approx(np.quantile(data, 0.5))

    def test_exact_cdf_step_function(self):
        d = EmpiricalDistribution([1.0, 2.0, 3.0, 4.0], method="exact")
        assert d.cdf(2.5) == pytest.approx(0.5)
        assert d.cdf(0.0) == 0.0
        assert d.cdf(10.0) == 1.0

    def test_quantiles_of_resampled_match(self, rng):
        data = rng.gamma(3.0, 200.0, size=20_000)
        d = EmpiricalDistribution(data, bins=200)
        resampled = d.sample(20_000, np.random.default_rng(1))
        for q in (0.25, 0.5, 0.9):
            assert np.quantile(resampled, q) == pytest.approx(
                np.quantile(data, q), rel=0.05
            )

    def test_histogram_property(self, rng):
        data = rng.normal(size=500)
        d = EmpiricalDistribution(data, bins=25)
        assert d.histogram.total == 500

    def test_samples_property_sorted_copy(self):
        d = EmpiricalDistribution([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(d.samples, [1.0, 2.0, 3.0])

    def test_ppf_clips_probs(self):
        d = EmpiricalDistribution([1.0, 2.0, 3.0])
        assert d.ppf(-0.5) == d.ppf(0.0)
        assert d.ppf(1.5) == d.ppf(1.0)

    def test_rejects_bad_method(self):
        with pytest.raises(ValidationError):
            EmpiricalDistribution([1.0, 2.0], method="kde")

    def test_rejects_single_sample(self):
        with pytest.raises(ValidationError):
            EmpiricalDistribution([1.0])
