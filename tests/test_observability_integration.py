"""Integration tests for the instrumented simulation pipeline.

Two properties matter:

1. **Non-perturbation** — running with ``metrics=`` must produce
   bit-for-bit the same numerical results as running without, because
   instrumentation never touches a random stream.
2. **Coverage** — an instrumented run actually populates the documented
   metric names (``is.*``, ``coeff_table.*``, ``parallel.*``,
   ``twist_search.*``, ``mux.*``, ``model.*``, ``registry.*``).
"""

import numpy as np
import pytest

from repro.core.unified import UnifiedVBRModel
from repro.observability import MetricsRegistry, RunContext
from repro.processes import registry
from repro.processes.correlation import (
    ExponentialCorrelation,
    FGNCorrelation,
)
from repro.queueing.multiplexer import OCCUPANCY_BUCKETS, AtmMultiplexer
from repro.simulation.importance import is_overflow_probability
from repro.simulation.runner import overflow_vs_buffer_curve
from repro.simulation.twist_search import search_twisted_mean


def arrivals_transform(x):
    """Unit-free arrivals = background + 2 (mean 2)."""
    return x + 2.0


CORR = ExponentialCorrelation(0.5)
IS_KWARGS = dict(
    service_rate=2.5,
    buffer_size=2.0,
    horizon=25,
    twisted_mean=1.0,
    replications=60,
)


def names(ctx):
    return {entry["name"] for entry in ctx.snapshot()}


class TestBitIdentity:
    def test_is_estimate_identical_with_and_without_metrics(self):
        plain = is_overflow_probability(
            CORR, arrivals_transform, random_state=42, **IS_KWARGS
        )
        instrumented = is_overflow_probability(
            CORR, arrivals_transform, random_state=42,
            metrics=RunContext(), **IS_KWARGS
        )
        assert instrumented.probability == plain.probability
        assert instrumented.variance == plain.variance
        assert instrumented.hits == plain.hits
        assert instrumented.mean_hit_time == plain.mean_hit_time
        assert instrumented.ess == plain.ess

    def test_curve_identical_at_any_worker_count(self):
        kwargs = dict(
            utilization=0.8,
            buffer_sizes=[1.0, 2.0, 3.0],
            replications=40,
            twisted_mean=1.0,
            horizon_factor=8,
            random_state=7,
        )
        plain = overflow_vs_buffer_curve(
            CORR, arrivals_transform, **kwargs
        )
        instrumented = overflow_vs_buffer_curve(
            CORR, arrivals_transform, workers=2,
            metrics=RunContext(), **kwargs
        )
        for a, b in zip(plain.estimates, instrumented.estimates):
            assert a.probability == b.probability
            assert a.hits == b.hits
            assert a.ess == b.ess

    def test_search_identical_with_metrics(self):
        kwargs = dict(
            service_rate=2.5,
            buffer_size=2.0,
            horizon=20,
            twist_values=[0.5, 1.0, 1.5],
            replications=40,
            random_state=9,
        )
        plain = search_twisted_mean(CORR, arrivals_transform, **kwargs)
        instrumented = search_twisted_mean(
            CORR, arrivals_transform, metrics=RunContext(), **kwargs
        )
        assert instrumented.best_twist == plain.best_twist
        for a, b in zip(plain.estimates, instrumented.estimates):
            assert a.probability == b.probability

    def test_multiplexer_identical_with_metrics(self):
        rng = np.random.default_rng(3)
        arrivals = rng.exponential(1.0, size=500)
        mux = AtmMultiplexer(1.1, buffer_size=8.0)
        plain = mux.simulate(arrivals)
        instrumented = mux.simulate(arrivals, metrics=RunContext())
        np.testing.assert_array_equal(plain.queue, instrumented.queue)
        np.testing.assert_array_equal(plain.lost, instrumented.lost)

    def test_unified_fit_identical_with_metrics(self, intra_trace):
        def fit(metrics):
            return UnifiedVBRModel(
                max_lag=50, attenuation_method="analytic",
                metrics=metrics,
            ).fit(intra_trace)

        plain, instrumented = fit(None), fit(RunContext())
        assert instrumented.hurst == plain.hurst
        assert instrumented.attenuation == plain.attenuation


class TestMetricCoverage:
    def test_is_leg_records_convergence_diagnostics(self):
        ctx = RunContext()
        estimate = is_overflow_probability(
            CORR, arrivals_transform, random_state=42,
            metrics=ctx, **IS_KWARGS
        )
        assert estimate.hits > 0
        recorded = names(ctx)
        for name in (
            "is.leg_seconds", "is.replications", "is.hits",
            "is.steps", "is.ess", "is.weight", "is.retired",
        ):
            assert name in recorded, name
        snapshot = {
            (e["name"], tuple(sorted(e["labels"].items()))): e
            for e in ctx.snapshot()
        }
        twist_label = (("twist", "1"),)
        assert (
            snapshot[("is.replications", twist_label)]["value"]
            == IS_KWARGS["replications"]
        )
        assert snapshot[("is.hits", twist_label)]["value"] == estimate.hits
        assert snapshot[("is.ess", twist_label)]["value"] == estimate.ess
        weight = snapshot[("is.weight", twist_label)]
        assert weight["count"] == estimate.hits
        # Mean hit weight times hit rate is the IS estimate itself.
        assert weight["total"] / estimate.replications == pytest.approx(
            estimate.probability
        )

    def test_curve_records_legs_cache_and_pool(self):
        ctx = RunContext()
        overflow_vs_buffer_curve(
            CORR, arrivals_transform,
            utilization=0.8,
            buffer_sizes=[1.0, 2.0],
            replications=30,
            twisted_mean=1.0,
            horizon_factor=8,
            random_state=7,
            workers=2,
            metrics=ctx,
        )
        recorded = names(ctx)
        for name in (
            "parallel.legs", "parallel.workers", "parallel.job_seconds",
            "parallel.occupancy", "coeff_table.tables",
            "is.leg_seconds", "is.ess",
        ):
            assert name in recorded, name
        # Per-leg labels survive the merge.
        leg_labels = {
            e["labels"].get("leg")
            for e in ctx.snapshot() if e["name"] == "is.leg_seconds"
        }
        assert leg_labels == {"0", "1"}

    def test_search_records_variance_trajectory(self):
        ctx = RunContext()
        result = search_twisted_mean(
            CORR, arrivals_transform,
            service_rate=2.5,
            buffer_size=2.0,
            horizon=20,
            twist_values=[0.5, 1.0, 1.5],
            replications=40,
            random_state=9,
            metrics=ctx,
        )
        entries = ctx.snapshot()
        trajectory = [
            e for e in entries
            if e["name"] == "twist_search.normalized_variance"
        ]
        assert len(trajectory) == 3
        probes = {e["labels"]["probe"] for e in trajectory}
        assert probes == {"0", "1", "2"}
        best = [
            e for e in entries if e["name"] == "twist_search.best_twist"
        ]
        assert best and best[0]["value"] == result.best_twist

    def test_registry_resolution_counter(self):
        reg = MetricsRegistry()
        registry.resolve("hosking", FGNCorrelation(0.8), metrics=reg)
        snapshot = reg.snapshot()
        entry = [
            e for e in snapshot if e["name"] == "registry.resolutions"
        ][0]
        assert entry["value"] == 1.0
        assert entry["labels"]["backend"] == "hosking"

    def test_registry_auto_policy_counter(self):
        reg = MetricsRegistry()
        registry.resolve(
            "auto", FGNCorrelation(0.8), conditional=True, metrics=reg
        )
        recorded = {e["name"] for e in reg.snapshot()}
        assert "registry.auto_policy" in recorded

    def test_multiplexer_occupancy_histogram(self):
        rng = np.random.default_rng(3)
        arrivals = rng.exponential(1.0, size=500)
        ctx = RunContext()
        result = AtmMultiplexer(1.1, buffer_size=8.0).simulate(
            arrivals, metrics=ctx
        )
        entries = {e["name"]: e for e in ctx.snapshot()}
        hist = entries["mux.queue_occupancy"]
        assert hist["count"] == result.queue.size
        bucket_total = sum(b["count"] for b in hist["buckets"])
        assert bucket_total == result.queue.size
        assert len(hist["buckets"]) == len(OCCUPANCY_BUCKETS) + 1
        assert entries["mux.offered_work"]["value"] == pytest.approx(
            result.offered
        )
        assert entries["mux.loss_events"]["value"] == float(
            np.count_nonzero(result.lost)
        )

    def test_unified_fit_step_timers(self, intra_trace):
        ctx = RunContext()
        model = UnifiedVBRModel(
            max_lag=50, attenuation_method="analytic", metrics=ctx
        ).fit(intra_trace)
        entries = ctx.snapshot()
        steps = {
            e["labels"]["step"]
            for e in entries if e["name"] == "model.fit_seconds"
        }
        assert {"marginal", "hurst", "acf_fit", "attenuation"} <= steps
        gauges = {
            e["name"]: e["value"]
            for e in entries if e["kind"] == "gauge"
        }
        assert gauges["model.hurst"] == pytest.approx(model.hurst)
        assert gauges["model.attenuation"] == pytest.approx(
            model.attenuation
        )
