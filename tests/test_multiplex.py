"""Tests for the aggregate (multiplexed) VBR model."""

import numpy as np
import pytest

from repro.core.multiplex import AggregateVBRModel, aggregate_marginal
from repro.core.unified import UnifiedVBRModel
from repro.exceptions import NotFittedError, ValidationError
from repro.marginals.empirical import EmpiricalDistribution


class TestAggregateMarginal:
    def test_mean_scales_linearly(self, rng):
        base = EmpiricalDistribution(
            rng.gamma(2.0, 500.0, size=5000), bins=100
        )
        agg = aggregate_marginal(base, 4, samples=1 << 14,
                                 random_state=1)
        assert agg.mean == pytest.approx(4 * base.mean, rel=0.05)

    def test_variance_scales_linearly(self, rng):
        base = EmpiricalDistribution(
            rng.gamma(2.0, 500.0, size=5000), bins=100
        )
        agg = aggregate_marginal(base, 9, samples=1 << 15,
                                 random_state=2)
        assert agg.variance == pytest.approx(
            9 * base.variance, rel=0.15
        )

    def test_relative_burstiness_shrinks(self, rng):
        base = EmpiricalDistribution(
            rng.lognormal(0.0, 1.0, size=5000), bins=100
        )
        agg = aggregate_marginal(base, 16, samples=1 << 14,
                                 random_state=3)
        base_cv = np.sqrt(base.variance) / base.mean
        agg_cv = np.sqrt(agg.variance) / agg.mean
        assert agg_cv == pytest.approx(base_cv / 4.0, rel=0.2)

    def test_single_source_identity_distribution(self, rng):
        base = EmpiricalDistribution(
            rng.gamma(3.0, 100.0, size=5000), bins=100
        )
        agg = aggregate_marginal(base, 1, samples=1 << 15,
                                 random_state=4)
        for q in (0.25, 0.5, 0.9):
            assert float(agg.ppf(q)) == pytest.approx(
                float(base.ppf(q)), rel=0.05
            )


class TestChunkedAccumulation:
    """The O(samples)-memory rewrite of the Monte Carlo convolution."""

    @pytest.fixture()
    def base(self, rng):
        return EmpiricalDistribution(
            rng.gamma(2.0, 500.0, size=4000), bins=100
        )

    def test_bit_identical_to_full_matrix(self, base):
        # The historical path drew the full (samples, n) matrix in one
        # call; chunks consume the stream in the same row-major order,
        # so the resulting distribution is bit-identical.
        samples, n, seed = 1 << 10, 7, 42
        reference_rng = np.random.default_rng(seed)
        reference = EmpiricalDistribution(
            base.sample(samples * n, reference_rng)
            .reshape(samples, n)
            .sum(axis=1),
            bins=300,
        )
        agg = aggregate_marginal(
            base, n, samples=samples, random_state=seed,
            chunk_draws=96,
        )
        grid = np.linspace(0.001, 0.999, 199)
        np.testing.assert_array_equal(agg.ppf(grid), reference.ppf(grid))

    def test_chunk_size_invariance(self, base):
        samples, n, seed = 1 << 10, 5, 7
        grid = np.linspace(0.001, 0.999, 199)
        expected = aggregate_marginal(
            base, n, samples=samples, random_state=seed
        ).ppf(grid)
        for chunk_draws in (n, 64, 1000, 10**9):
            agg = aggregate_marginal(
                base, n, samples=samples, random_state=seed,
                chunk_draws=chunk_draws,
            )
            np.testing.assert_array_equal(agg.ppf(grid), expected)

    def test_rejects_bad_chunk_draws(self, base):
        with pytest.raises(ValidationError):
            aggregate_marginal(base, 2, chunk_draws=0)

    def test_memory_stays_flat_at_n_10_000(self, base):
        # The pre-fix path materialized samples x n draws: 4096 x 1e4
        # doubles = ~327 MB.  The chunked path must stay near
        # O(samples + n) regardless of n.
        import tracemalloc

        samples, n = 1 << 12, 10_000
        tracemalloc.start()
        agg = aggregate_marginal(base, n, samples=samples, random_state=3)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < 24 * 2**20, f"peak {peak / 2**20:.1f} MiB"
        assert agg.mean == pytest.approx(n * base.mean, rel=0.05)


class TestAggregateVBRModel:
    def test_requires_fitted_base(self):
        with pytest.raises(NotFittedError):
            AggregateVBRModel(UnifiedVBRModel(), 4)

    def test_requires_unified_model(self):
        with pytest.raises(ValidationError):
            AggregateVBRModel("nope", 4)

    def test_attenuation_rises_with_sources(self, fitted_unified):
        a1 = AggregateVBRModel(
            fitted_unified, 1, convolution_samples=1 << 14,
            random_state=5,
        ).attenuation
        a16 = AggregateVBRModel(
            fitted_unified, 16, convolution_samples=1 << 14,
            random_state=5,
        ).attenuation
        assert a16 > a1
        assert a16 > 0.9  # CLT: the aggregate transform is near-affine

    def test_generate_mean_scales(self, fitted_unified):
        agg = AggregateVBRModel(
            fitted_unified, 8, convolution_samples=1 << 14,
            random_state=6,
        )
        y = agg.generate(400, size=64, random_state=7)
        expected = 8 * fitted_unified.marginal_.mean
        assert float(np.mean(y)) == pytest.approx(expected, rel=0.1)

    def test_arrival_transform_unit_mean(self, fitted_unified, rng):
        agg = AggregateVBRModel(
            fitted_unified, 4, convolution_samples=1 << 14,
            random_state=8,
        )
        arrivals = agg.arrival_transform()
        out = arrivals(rng.standard_normal(100_000))
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_invalid_generation_method(self, fitted_unified):
        agg = AggregateVBRModel(
            fitted_unified, 2, convolution_samples=1 << 13,
            random_state=9,
        )
        with pytest.raises(ValidationError):
            agg.generate(10, method="nope")

    def test_multiplexing_gain_in_queueing(self, fitted_unified):
        """More sources at the same utilization -> lower overflow
        probability at the same normalized buffer (the paper's §1
        statistical-multiplexing motivation)."""
        from repro.simulation import is_overflow_probability

        results = {}
        for n in (1, 16):
            agg = AggregateVBRModel(
                fitted_unified, n, convolution_samples=1 << 14,
                random_state=10,
            )
            results[n] = is_overflow_probability(
                agg.background_correlation,
                agg.arrival_transform(),
                service_rate=1.0 / 0.4,
                buffer_size=25.0,
                horizon=250,
                twisted_mean=1.5,
                replications=400,
                random_state=11,
            ).probability
        assert results[16] < results[1]
