"""Tests for parametric marginal fitting (Garrett-Willinger style)."""

import numpy as np
import pytest

from repro.exceptions import EstimationError
from repro.marginals.fitting import (
    fit_gamma,
    fit_gamma_pareto,
    fit_pareto_tail,
)
from repro.marginals.parametric import (
    GammaDistribution,
    GammaParetoDistribution,
    ParetoDistribution,
)


class TestFitGamma:
    def test_moment_recovery(self, rng):
        truth = GammaDistribution(3.0, 500.0)
        fit = fit_gamma(truth.sample(100_000, rng))
        assert fit.shape == pytest.approx(3.0, rel=0.05)
        assert fit.scale == pytest.approx(500.0, rel=0.05)

    def test_rejects_nonpositive(self):
        with pytest.raises(EstimationError):
            fit_gamma([-1.0] * 20)

    def test_rejects_constant(self):
        with pytest.raises(EstimationError):
            fit_gamma([2.0] * 20)


class TestFitParetoTail:
    @pytest.mark.parametrize("alpha", [1.5, 3.0])
    def test_hill_recovery_on_pure_pareto(self, alpha, rng):
        truth = ParetoDistribution(alpha, 100.0)
        estimate = fit_pareto_tail(
            truth.sample(200_000, rng), tail_fraction=0.05
        )
        assert estimate == pytest.approx(alpha, rel=0.1)

    def test_rejects_degenerate_tail(self):
        with pytest.raises(EstimationError):
            fit_pareto_tail(np.ones(1000) * 5.0)


class TestFitGammaPareto:
    def test_roundtrip(self, rng):
        truth = GammaParetoDistribution(2.0, 1500.0, 3.0)
        samples = truth.sample(200_000, rng)
        fit = fit_gamma_pareto(samples)
        assert fit.tail_alpha == pytest.approx(3.0, rel=0.15)
        # Quantiles of the fitted model track the data.  Moment
        # matching on the truncated body is slightly biased, so allow
        # 15% per-quantile error.
        for q in (0.25, 0.5, 0.9, 0.99):
            assert float(fit.ppf(q)) == pytest.approx(
                float(np.quantile(samples, q)), rel=0.15
            )

    def test_explicit_tail_alpha(self, rng):
        samples = GammaDistribution(2.0, 100.0).sample(5000, rng)
        fit = fit_gamma_pareto(samples, tail_alpha=5.0)
        assert fit.tail_alpha == 5.0

    def test_fitted_model_usable_as_transform_target(self, rng):
        from repro.marginals.transform import MarginalTransform

        samples = GammaParetoDistribution(2.5, 800.0, 4.0).sample(
            20_000, rng
        )
        fit = fit_gamma_pareto(samples)
        transform = MarginalTransform(fit)
        y = transform(rng.standard_normal(50_000))
        assert float(np.mean(y)) == pytest.approx(
            float(samples.mean()), rel=0.1
        )
