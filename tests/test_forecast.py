"""Tests for exact Gaussian conditional forecasting."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.processes.correlation import (
    FGNCorrelation,
    WhiteNoiseCorrelation,
)
from repro.processes.forecast import conditional_forecast
from repro.processes.hosking import hosking_generate


def ar1_acvf(phi, n):
    return phi ** np.arange(n, dtype=float)


class TestConditionalForecast:
    def test_white_noise_forecast_is_zero(self):
        fc = conditional_forecast(
            WhiteNoiseCorrelation(), [1.0, -2.0, 0.5], 4
        )
        np.testing.assert_allclose(fc.mean, 0.0, atol=1e-12)
        np.testing.assert_allclose(fc.std, 1.0, atol=1e-12)

    def test_ar1_one_step_mean(self):
        phi = 0.7
        history = np.array([0.3, -1.2, 2.0])
        fc = conditional_forecast(ar1_acvf(phi, 10), history, 3)
        # AR(1): E[X_{n+j} | history] = phi^j * x_n.
        np.testing.assert_allclose(
            fc.mean, phi ** np.arange(1, 4) * history[-1], atol=1e-10
        )

    def test_ar1_variance_path(self):
        phi = 0.6
        fc = conditional_forecast(ar1_acvf(phi, 10), [1.0], 4)
        expected = 1.0 - phi ** (2 * np.arange(1, 5))
        np.testing.assert_allclose(fc.std**2, expected, atol=1e-10)

    def test_variance_grows_and_saturates(self):
        corr = FGNCorrelation(0.85)
        x = hosking_generate(corr, 100, random_state=1)
        fc = conditional_forecast(corr, x, 30)
        assert np.all(np.diff(fc.std) >= -1e-9)
        assert fc.std[-1] <= 1.0 + 1e-9

    def test_matches_hosking_one_step(self):
        """The one-step conditional mean equals Hosking's m_k."""
        from repro.processes.hosking import HoskingProcess

        corr = FGNCorrelation(0.8)
        proc = HoskingProcess(corr, 21, size=1, random_state=2)
        for _ in range(20):
            step = proc.step()
        history = proc.history[0, :20]
        fc = conditional_forecast(corr, history, 1)
        # Generate the 21st step and compare its conditional mean.
        final = proc.step()
        assert fc.mean[0] == pytest.approx(
            float(final.cond_mean[0]), abs=1e-9
        )
        assert fc.std[0] ** 2 == pytest.approx(
            final.cond_variance, abs=1e-9
        )

    def test_monte_carlo_coverage(self):
        """~95% of simulated futures fall inside the 1.96-sigma band."""
        corr = FGNCorrelation(0.8)
        rng_paths = hosking_generate(
            corr, 60, size=400, random_state=3
        )
        history = rng_paths[0, :40]
        fc = conditional_forecast(corr, history, 5)
        low, high = fc.interval()
        samples = fc.sample(2000, random_state=4)
        inside = np.mean((samples >= low) & (samples <= high))
        assert inside == pytest.approx(0.95, abs=0.03)

    def test_sample_shape(self):
        fc = conditional_forecast(FGNCorrelation(0.7), [0.5, 1.0], 3)
        out = fc.sample(10, random_state=5)
        assert out.shape == (10, 3)

    def test_rejects_short_acvf(self):
        with pytest.raises(ValidationError, match="autocovariances"):
            conditional_forecast([1.0, 0.5], [0.1, 0.2], 5)
