"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    CorrelationError,
    EstimationError,
    GenerationError,
    NotFittedError,
    ReproError,
    SimulationError,
    ValidationError,
)


@pytest.mark.parametrize(
    "exc_class",
    [
        ValidationError,
        NotFittedError,
        CorrelationError,
        GenerationError,
        EstimationError,
        SimulationError,
    ],
)
def test_all_derive_from_repro_error(exc_class):
    assert issubclass(exc_class, ReproError)


def test_validation_error_is_value_error():
    assert issubclass(ValidationError, ValueError)


def test_correlation_error_is_value_error():
    assert issubclass(CorrelationError, ValueError)


def test_not_fitted_error_is_runtime_error():
    assert issubclass(NotFittedError, RuntimeError)


def test_catching_base_catches_all():
    with pytest.raises(ReproError):
        raise GenerationError("boom")
