"""Tests for attenuation measurement and ACF calibration."""

import numpy as np
import pytest

from repro.core.calibration import (
    invert_transform_acf,
    measure_attenuation_analytic,
    measure_attenuation_pilot,
)
from repro.marginals.attenuation import transformed_acf
from repro.marginals.parametric import (
    GammaDistribution,
    NormalDistribution,
)
from repro.marginals.transform import MarginalTransform
from repro.processes.correlation import CompositeCorrelation


@pytest.fixture(scope="module")
def gamma_transform():
    return MarginalTransform(GammaDistribution(2.0, 1.0))


class TestPilotMeasurement:
    def test_pilot_close_to_analytic(self, gamma_transform):
        background = CompositeCorrelation.paper_fit().with_continuity()
        pilot = measure_attenuation_pilot(
            background,
            gamma_transform,
            pilot_length=1 << 16,
            random_state=0,
        )
        analytic = measure_attenuation_analytic(gamma_transform)
        # The pilot ratio at moderate lags includes higher-order Hermite
        # terms, so it sits at or above the asymptotic analytic value.
        assert pilot >= analytic - 0.05
        assert 0.0 < pilot <= 1.0

    def test_identity_transform_gives_one(self):
        background = CompositeCorrelation.paper_fit().with_continuity()
        a = measure_attenuation_pilot(
            background,
            lambda x: x,
            pilot_length=1 << 15,
            random_state=1,
        )
        assert a == pytest.approx(1.0, abs=0.03)


class TestAnalytic:
    def test_linear_is_one(self):
        assert measure_attenuation_analytic(
            lambda x: 5.0 * x
        ) == pytest.approx(1.0)

    def test_normal_target_is_one(self):
        tr = MarginalTransform(NormalDistribution(3.0, 2.0))
        assert measure_attenuation_analytic(tr) == pytest.approx(1.0)


class TestInvertTransformAcf:
    def test_roundtrip_through_forward_map(self, gamma_transform):
        """invert(transformed(r)) recovers r."""
        background = CompositeCorrelation.paper_fit().with_continuity()
        r = background.acvf(200)
        forward = transformed_acf(r, gamma_transform)
        recovered = invert_transform_acf(forward, gamma_transform)
        np.testing.assert_allclose(recovered, r, atol=5e-3)

    def test_identity_transform_is_identity_map(self):
        r = np.linspace(1.0, 0.2, 50)
        out = invert_transform_acf(r, lambda x: x)
        np.testing.assert_allclose(out, r, atol=1e-3)

    def test_head_pinned_to_one(self, gamma_transform):
        r = np.array([1.0, 0.5, 0.3])
        out = invert_transform_acf(r, gamma_transform)
        assert out[0] == 1.0

    def test_clamps_unreachable_targets(self, gamma_transform):
        # Target correlations higher than g(1) = 1 are impossible; the
        # inversion clamps rather than extrapolating.
        r = np.array([1.0, 0.999999])
        out = invert_transform_acf(r, gamma_transform)
        assert np.all(out <= 1.0)

    def test_background_exceeds_foreground_for_attenuating_transform(
        self, gamma_transform
    ):
        # Since the transform attenuates, the background correlation
        # needed for a given foreground level is higher.
        r = np.array([1.0, 0.6, 0.4, 0.2])
        out = invert_transform_acf(r, gamma_transform)
        assert np.all(out[1:] >= r[1:] - 1e-9)
