"""Tests for the variance-time Hurst estimator (Fig. 3 methodology)."""

import numpy as np
import pytest

from repro.estimators.variance_time import variance_time_estimate
from repro.exceptions import EstimationError, ValidationError
from repro.processes.fgn import fgn_generate


class TestVarianceTime:
    @pytest.mark.parametrize("h", [0.6, 0.75, 0.9])
    def test_recovers_hurst_of_fgn(self, h):
        x = fgn_generate(h, 1 << 17, random_state=int(h * 100))
        est = variance_time_estimate(x)
        assert est.hurst == pytest.approx(h, abs=0.08)

    def test_iid_gives_half(self):
        x = np.random.default_rng(0).normal(size=1 << 16)
        est = variance_time_estimate(x)
        assert est.hurst == pytest.approx(0.5, abs=0.05)

    def test_beta_slope_consistency(self):
        x = fgn_generate(0.8, 1 << 15, random_state=1)
        est = variance_time_estimate(x)
        assert est.beta == pytest.approx(abs(est.fit.slope))
        assert est.hurst == pytest.approx(1 - est.beta / 2)

    def test_plot_coordinates(self):
        x = fgn_generate(0.7, 1 << 14, random_state=2)
        est = variance_time_estimate(x)
        np.testing.assert_allclose(est.log_levels, np.log10(est.levels))
        np.testing.assert_allclose(
            est.log_variances, np.log10(est.variances)
        )

    def test_explicit_levels(self):
        x = fgn_generate(0.8, 4096, random_state=3)
        est = variance_time_estimate(x, levels=[8, 16, 32, 64])
        assert est.levels.size == 4

    def test_rejects_too_few_levels(self):
        with pytest.raises(EstimationError):
            variance_time_estimate(np.random.default_rng(4).normal(size=64),
                                   levels=[64])

    def test_rejects_constant_series(self):
        with pytest.raises(EstimationError, match="zero variance"):
            variance_time_estimate(np.ones(1000))

    def test_rejects_tiny_series(self):
        with pytest.raises(ValidationError):
            variance_time_estimate([1.0, 2.0])
