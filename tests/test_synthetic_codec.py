"""Tests for the synthetic MPEG-1 codec (the empirical-trace substitute)."""

import numpy as np
import pytest

from repro.estimators.acf import sample_acf
from repro.estimators.variance_time import variance_time_estimate
from repro.exceptions import ValidationError
from repro.video.gop import FrameType
from repro.video.synthetic import SyntheticCodecConfig, SyntheticMPEGCodec


class TestConfig:
    def test_paper_like_defaults(self):
        cfg = SyntheticCodecConfig.paper_like()
        assert cfg.num_frames == 238_626
        assert not cfg.intraframe_only
        assert set(cfg.marginals) == {"I", "P", "B"}

    def test_intraframe_defaults(self):
        cfg = SyntheticCodecConfig.intraframe_paper_like()
        assert cfg.intraframe_only
        assert "I" in cfg.marginals

    def test_lrd_exponent(self):
        cfg = SyntheticCodecConfig.paper_like()
        assert cfg.lrd_exponent == pytest.approx(2 - 2 * cfg.hurst)

    def test_activity_correlation_is_continuous(self):
        corr = SyntheticCodecConfig.paper_like().activity_correlation()
        assert corr.continuity_gap == pytest.approx(0.0, abs=1e-12)

    def test_rejects_bad_weights(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            SyntheticCodecConfig(
                base_weight=0.5, scene_weight=0.1, noise_weight=0.1
            )

    def test_rejects_missing_marginals(self):
        from repro.marginals.parametric import GammaParetoDistribution

        with pytest.raises(ValidationError, match="missing"):
            SyntheticCodecConfig(
                marginals={
                    "I": GammaParetoDistribution(2.0, 100.0, 5.0)
                }
            )


class TestGeneration:
    def test_reproducible(self):
        cfg = SyntheticCodecConfig.paper_like(num_frames=2_000)
        codec = SyntheticMPEGCodec(cfg)
        a = codec.generate(random_state=1)
        b = codec.generate(random_state=1)
        np.testing.assert_array_equal(a.sizes, b.sizes)

    def test_different_seeds_differ(self):
        cfg = SyntheticCodecConfig.paper_like(num_frames=2_000)
        codec = SyntheticMPEGCodec(cfg)
        a = codec.generate(random_state=1)
        b = codec.generate(random_state=2)
        assert not np.allclose(a.sizes, b.sizes)

    def test_sizes_positive(self):
        cfg = SyntheticCodecConfig.paper_like(num_frames=5_000)
        trace = SyntheticMPEGCodec(cfg).generate(random_state=3)
        assert np.all(trace.sizes > 0)

    def test_frame_type_size_ordering(self, ibp_trace):
        i_mean = ibp_trace.sizes_of(FrameType.I).mean()
        p_mean = ibp_trace.sizes_of(FrameType.P).mean()
        b_mean = ibp_trace.sizes_of(FrameType.B).mean()
        assert i_mean > p_mean > b_mean

    def test_intraframe_has_no_gop(self, intra_trace):
        assert intra_trace.gop is None

    def test_interframe_gop_period(self, ibp_trace):
        assert ibp_trace.gop.i_period == 12

    def test_intraframe_hurst_near_target(self, intra_trace):
        est = variance_time_estimate(intra_trace.sizes)
        assert est.hurst == pytest.approx(0.9, abs=0.1)

    def test_intraframe_acf_knee_shape(self, intra_trace):
        """The ACF must decay fast early, slowly later (SRD + LRD)."""
        acf = sample_acf(intra_trace.sizes, 400)
        early_drop = acf[1] - acf[60]
        late_drop = acf[60] - acf[400]
        assert acf[1] > 0.75
        assert acf[400] > 0.15
        # Per-lag decay rate should slow down past the knee.
        assert early_drop / 59 > late_drop / 340

    def test_interframe_periodicity(self, ibp_trace):
        """GOP structure imprints a strong period-12 ACF component."""
        acf = sample_acf(ibp_trace.sizes, 30)
        assert acf[12] > acf[6]
        assert acf[24] > acf[18]
        assert acf[12] > 0.7

    def test_scene_process_piecewise_constant(self):
        cfg = SyntheticCodecConfig.paper_like(num_frames=1_000)
        codec = SyntheticMPEGCodec(cfg)
        scene = codec._scene_process(1_000, np.random.default_rng(0))
        changes = np.count_nonzero(np.diff(scene))
        # Scene changes are rare relative to frames.
        assert changes < 50
        assert scene.size == 1_000

    def test_activity_unit_scale(self):
        """Pooled across seeds: per-trace means of an H=0.9 process
        fluctuate with std ~ n^{H-1} ~ 0.34 even at 50k frames, so a
        single realization cannot pin the mean down."""
        cfg = SyntheticCodecConfig.paper_like(num_frames=20_000)
        codec = SyntheticMPEGCodec(cfg)
        pooled = np.concatenate(
            [
                codec.activity(20_000, np.random.default_rng(seed))
                for seed in range(8)
            ]
        )
        assert pooled.mean() == pytest.approx(0.0, abs=0.2)
        assert pooled.std() == pytest.approx(1.0, abs=0.15)
