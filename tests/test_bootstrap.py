"""Tests for the moving-block bootstrap of Hurst estimators."""

import numpy as np
import pytest

from repro.estimators.bootstrap import block_bootstrap_hurst
from repro.estimators.variance_time import variance_time_estimate
from repro.exceptions import EstimationError
from repro.processes.fgn import fgn_generate


def vt_hurst(series):
    return variance_time_estimate(series).hurst


class TestBlockBootstrap:
    def test_point_matches_direct_estimate(self):
        x = fgn_generate(0.8, 1 << 14, random_state=1)
        result = block_bootstrap_hurst(
            x, vt_hurst, block_length=2048, resamples=10,
            random_state=2,
        )
        assert result.point == pytest.approx(vt_hurst(x))

    def test_replicate_count(self):
        x = fgn_generate(0.8, 8192, random_state=3)
        result = block_bootstrap_hurst(
            x, vt_hurst, block_length=1024, resamples=15,
            random_state=4,
        )
        assert result.replicates.size == 15

    def test_interval_contains_truth_often(self):
        """The percentile interval covers the point estimate and, for
        exact fGn, usually brackets the true H as well."""
        x = fgn_generate(0.85, 1 << 15, random_state=5)
        result = block_bootstrap_hurst(
            x, vt_hurst, block_length=4096, resamples=30,
            random_state=6,
        )
        low, high = result.interval(0.95)
        assert low < high
        assert low < result.point < high or (
            abs(result.point - low) < 0.05
            or abs(result.point - high) < 0.05
        )

    def test_std_error_positive(self):
        x = fgn_generate(0.8, 8192, random_state=7)
        result = block_bootstrap_hurst(
            x, vt_hurst, block_length=1024, resamples=12,
            random_state=8,
        )
        assert result.std_error > 0

    def test_reproducible(self):
        x = fgn_generate(0.8, 8192, random_state=9)
        a = block_bootstrap_hurst(x, vt_hurst, block_length=1024,
                                  resamples=5, random_state=10)
        b = block_bootstrap_hurst(x, vt_hurst, block_length=1024,
                                  resamples=5, random_state=10)
        np.testing.assert_array_equal(a.replicates, b.replicates)

    def test_rejects_block_longer_than_series(self):
        x = fgn_generate(0.8, 256, random_state=11)
        with pytest.raises(EstimationError, match="shorter"):
            block_bootstrap_hurst(x, vt_hurst, block_length=512,
                                  resamples=5)

    def test_rejects_bad_level(self):
        x = fgn_generate(0.8, 4096, random_state=12)
        result = block_bootstrap_hurst(
            x, vt_hurst, block_length=512, resamples=5,
            random_state=13,
        )
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            result.interval(1.0)
