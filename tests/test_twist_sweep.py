"""Tests for the shared-path twist sweep (single-generation Fig. 14).

``sweep_twists`` evaluates an entire twist grid from ONE batch of
untwisted background paths; these tests pin (a) exact agreement with a
sequential re-statement of the IS estimator on the same shared paths,
(b) statistical agreement with independent per-twist
``is_overflow_probability`` runs, and (c) the single-generation
property via the ``twist_sweep.*`` / ``hosking.*`` metrics.
"""

import numpy as np
import pytest

from repro.exceptions import SimulationWarning, ValidationError
from repro.observability import RunContext
from repro.processes.coeff_table import CoefficientTable, resolve_acvf
from repro.processes.correlation import ExponentialCorrelation
from repro.processes.hosking import hosking_generate
from repro.simulation import (
    is_overflow_probability,
    search_twisted_mean,
    sweep_twists,
)
from repro.stats.random import make_rng

CORR = ExponentialCorrelation(0.3)
MU = 3.5
BUFFER = 8.0
HORIZON = 80
GRID = np.linspace(0.0, 4.5, 10)  # the Fig. 14 scan


def arrivals(x):
    return x + 2.0


@pytest.fixture(scope="module")
def sweep_result():
    return sweep_twists(
        CORR,
        arrivals,
        service_rate=MU,
        buffer_size=BUFFER,
        horizon=HORIZON,
        twist_values=GRID,
        replications=4000,
        random_state=7,
    )


class TestSweepShape:
    def test_grid_preserved(self, sweep_result):
        np.testing.assert_array_equal(sweep_result.twist_values, GRID)
        assert len(sweep_result.estimates) == GRID.size

    def test_valley_interior(self, sweep_result):
        assert 0.0 < sweep_result.best_twist < GRID[-1]

    def test_replications_per_estimate(self, sweep_result):
        assert all(e.replications == 4000 for e in sweep_result.estimates)

    def test_twisted_mean_recorded(self, sweep_result):
        for m_star, e in zip(GRID, sweep_result.estimates):
            assert e.twisted_mean == m_star

    def test_blocked_generation_allclose(self):
        base = sweep_twists(
            CORR, arrivals, service_rate=MU, buffer_size=BUFFER,
            horizon=HORIZON, twist_values=GRID[:4], replications=500,
            random_state=3,
        )
        blocked = sweep_twists(
            CORR, arrivals, service_rate=MU, buffer_size=BUFFER,
            horizon=HORIZON, twist_values=GRID[:4], replications=500,
            random_state=3, block_size=16,
        )
        np.testing.assert_allclose(
            [e.probability for e in blocked.estimates],
            [e.probability for e in base.estimates],
            rtol=1e-8,
        )


class TestSequentialEquivalence:
    """The vectorized sweep IS the sequential estimator on shared paths."""

    def _sequential_reference(self, m_star, seed, replications):
        k, n = HORIZON, replications
        table = CoefficientTable(resolve_acvf(CORR, k))
        table.ensure(k - 1)
        z = make_rng(seed).standard_normal((n, k))
        paths = hosking_generate(
            CORR, k, size=n, innovations=z, coeff_table=table
        )
        variances = np.asarray(table.variances(k))
        sqrt_variances = np.asarray(table.sqrt_variances(k))
        phi_sums = np.asarray(table.phi_sums(k))
        weights = np.zeros(n)
        hits = 0
        for row in range(n):
            log_lr = 0.0
            workload = 0.0
            for j in range(k):
                e_j = sqrt_variances[j] * z[row, j]
                c_j = m_star * (1.0 - phi_sums[j])
                log_lr += -(2.0 * e_j * c_j + c_j * c_j) / (
                    2.0 * variances[j]
                )
                workload += arrivals(paths[row, j] + m_star) - MU
                if workload > BUFFER:
                    weights[row] = np.exp(log_lr)
                    hits += 1
                    break
        return float(weights.mean()), hits

    @pytest.mark.parametrize("m_star", [0.7, 1.5, 2.5])
    def test_matches_sequential_reference(self, m_star):
        seed, replications = 19, 400
        result = sweep_twists(
            CORR, arrivals, service_rate=MU, buffer_size=BUFFER,
            horizon=HORIZON, twist_values=[m_star],
            replications=replications, random_state=seed,
        )
        probability, hits = self._sequential_reference(
            m_star, seed, replications
        )
        estimate = result.estimates[0]
        assert estimate.hits == hits
        np.testing.assert_allclose(
            estimate.probability, probability, rtol=1e-12
        )


class TestAgreesWithPerTwist:
    """Shared-path estimates match independent per-twist IS runs
    within Monte-Carlo error (the collapse is free of bias)."""

    @pytest.mark.parametrize("m_star", [0.5, 1.0, 1.5, 2.0])
    def test_within_mc_error(self, sweep_result, m_star):
        idx = int(np.argmin(np.abs(GRID - m_star)))
        shared = sweep_result.estimates[idx]
        independent = is_overflow_probability(
            CORR,
            arrivals,
            service_rate=MU,
            buffer_size=BUFFER,
            horizon=HORIZON,
            twisted_mean=float(GRID[idx]),
            replications=4000,
            random_state=1234 + idx,
        )
        spread = np.sqrt(shared.variance + independent.variance)
        assert abs(shared.probability - independent.probability) < 5 * spread

    def test_probability_scale(self, sweep_result):
        # All well-hit grid points agree on the order of magnitude.
        probs = [
            e.probability
            for e in sweep_result.estimates
            if e.hits >= 50 and np.isfinite(e.normalized_variance)
        ]
        assert len(probs) >= 3
        ref = np.median(probs)
        for p in probs:
            assert p == pytest.approx(ref, rel=1.0)


class TestSingleGeneration:
    def test_one_generation_serves_whole_grid(self):
        ctx = RunContext()
        sweep_twists(
            CORR, arrivals, service_rate=MU, buffer_size=BUFFER,
            horizon=HORIZON, twist_values=GRID, replications=600,
            random_state=5, block_size=16, metrics=ctx,
        )
        flat = {}
        for entry in ctx.snapshot():
            # Timer entries expose "total" instead of "value".
            flat.setdefault(entry["name"], 0.0)
            flat[entry["name"]] += entry.get(
                "value", entry.get("total", 0.0)
            )
        assert flat["twist_sweep.generations"] == 1
        assert flat["twist_sweep.twists"] == GRID.size
        assert flat["twist_sweep.paths"] == 600
        # The hosking engine ran exactly once, in blocked mode.
        assert flat["hosking.block_size"] == 16
        assert flat["hosking.blocks"] == 1 + (HORIZON - 1) // 16
        assert flat["twist_sweep.seconds"] > 0

    def test_per_twist_hit_counters(self, sweep_result):
        ctx = RunContext()
        sweep_twists(
            CORR, arrivals, service_rate=MU, buffer_size=BUFFER,
            horizon=HORIZON, twist_values=GRID[:3], replications=400,
            random_state=5, metrics=ctx,
        )
        hit_entries = [
            e for e in ctx.snapshot() if e["name"] == "twist_sweep.hits"
        ]
        assert len(hit_entries) == 3
        assert {e["labels"]["twist"] for e in hit_entries} == {
            str(float(m)) for m in GRID[:3]
        } or len({tuple(e["labels"].items()) for e in hit_entries}) == 3


class TestSharedPathsDelegate:
    def test_search_delegates_to_sweep(self):
        kwargs = dict(
            service_rate=MU,
            buffer_size=BUFFER,
            horizon=HORIZON,
            twist_values=GRID[:5],
            replications=500,
            random_state=11,
        )
        direct = sweep_twists(CORR, arrivals, **kwargs)
        via_search = search_twisted_mean(
            CORR, arrivals, shared_paths=True, **kwargs
        )
        np.testing.assert_array_equal(
            via_search.normalized_variances, direct.normalized_variances
        )
        np.testing.assert_array_equal(
            [e.probability for e in via_search.estimates],
            [e.probability for e in direct.estimates],
        )

    @pytest.mark.parametrize("backend", ["auto", "hosking", "Hosking"])
    def test_accepted_backends(self, backend):
        result = search_twisted_mean(
            CORR, arrivals, service_rate=MU, buffer_size=BUFFER,
            horizon=40, twist_values=[1.0], replications=100,
            random_state=2, shared_paths=True, backend=backend,
        )
        assert len(result.estimates) == 1

    @pytest.mark.parametrize("backend", ["davies_harte", "fgn", "rmd"])
    def test_rejected_backends(self, backend):
        with pytest.raises(ValidationError, match="shared_paths"):
            search_twisted_mean(
                CORR, arrivals, service_rate=MU, buffer_size=BUFFER,
                horizon=40, twist_values=[1.0], replications=100,
                shared_paths=True, backend=backend,
            )


class TestEdgeCases:
    def test_zero_hits_warn(self):
        with pytest.warns(SimulationWarning, match="0 overflow hits"):
            result = sweep_twists(
                CORR, arrivals, service_rate=MU, buffer_size=1e6,
                horizon=20, twist_values=[0.0], replications=30,
                random_state=1,
            )
        assert result.estimates[0].probability == 0.0
        assert result.estimates[0].hits == 0

    def test_zero_twist_is_plain_mc(self):
        result = sweep_twists(
            CORR, arrivals, service_rate=MU, buffer_size=2.0,
            horizon=40, twist_values=[0.0], replications=500,
            random_state=6,
        )
        estimate = result.estimates[0]
        # With m* = 0 every weight is the indicator itself.
        assert estimate.probability == pytest.approx(
            estimate.hits / estimate.replications
        )

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValidationError):
            sweep_twists(
                CORR, arrivals, service_rate=MU, buffer_size=BUFFER,
                horizon=40, twist_values=[1.0], replications=100,
                block_size=0,
            )

    def test_rejects_bad_replications(self):
        with pytest.raises(ValidationError):
            sweep_twists(
                CORR, arrivals, service_rate=MU, buffer_size=BUFFER,
                horizon=40, twist_values=[1.0], replications=0,
            )

    def test_private_table_when_cache_disabled(self):
        base = sweep_twists(
            CORR, arrivals, service_rate=MU, buffer_size=BUFFER,
            horizon=40, twist_values=[1.0, 2.0], replications=300,
            random_state=9,
        )
        uncached = sweep_twists(
            CORR, arrivals, service_rate=MU, buffer_size=BUFFER,
            horizon=40, twist_values=[1.0, 2.0], replications=300,
            random_state=9, coeff_table=False,
        )
        np.testing.assert_allclose(
            [e.probability for e in uncached.estimates],
            [e.probability for e in base.estimates],
            rtol=1e-10,
        )
