"""Tests for frequency histograms."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats.histogram import Histogram, frequency_histogram


class TestHistogramValidation:
    def test_edge_count_mismatch(self):
        with pytest.raises(ValidationError, match="one more"):
            Histogram(edges=np.array([0.0, 1.0]), counts=np.array([1.0, 2.0]))

    def test_non_increasing_edges(self):
        with pytest.raises(ValidationError, match="increasing"):
            Histogram(
                edges=np.array([0.0, 1.0, 1.0]), counts=np.array([1.0, 2.0])
            )

    def test_negative_counts(self):
        with pytest.raises(ValidationError, match="non-negative"):
            Histogram(
                edges=np.array([0.0, 1.0, 2.0]), counts=np.array([1.0, -2.0])
            )


class TestHistogramProperties:
    def _make(self):
        return Histogram(
            edges=np.array([0.0, 1.0, 3.0]), counts=np.array([2.0, 6.0])
        )

    def test_total(self):
        assert self._make().total == 8.0

    def test_centers(self):
        np.testing.assert_array_equal(self._make().centers, [0.5, 2.0])

    def test_frequencies_sum_to_one(self):
        assert self._make().frequencies.sum() == pytest.approx(1.0)

    def test_density_integrates_to_one(self):
        h = self._make()
        assert float((h.density * h.widths).sum()) == pytest.approx(1.0)

    def test_mode_center(self):
        assert self._make().mode_center() == 2.0

    def test_empty_histogram_frequencies(self):
        h = Histogram(
            edges=np.array([0.0, 1.0, 2.0]), counts=np.array([0.0, 0.0])
        )
        np.testing.assert_array_equal(h.frequencies, [0.0, 0.0])
        with pytest.raises(ValidationError):
            h.mode_center()


class TestFrequencyHistogram:
    def test_counts_all_samples(self):
        h = frequency_histogram([0.1, 0.2, 0.9], bins=2)
        assert h.total == 3.0

    def test_explicit_edges(self):
        h = frequency_histogram([0.5, 1.5, 1.6], edges=[0.0, 1.0, 2.0])
        np.testing.assert_array_equal(h.counts, [1.0, 2.0])

    def test_value_range(self):
        h = frequency_histogram(
            [0.5, 5.0], bins=2, value_range=(0.0, 1.0)
        )
        assert h.total == 1.0  # out-of-range sample dropped by numpy

    def test_overlap_identical_is_one(self):
        data = np.random.default_rng(0).normal(size=500)
        edges = np.linspace(-4, 4, 21)
        h1 = frequency_histogram(data, edges=edges)
        assert h1.overlap(h1) == pytest.approx(1.0)

    def test_overlap_disjoint_is_zero(self):
        edges = [0.0, 1.0, 2.0]
        h1 = frequency_histogram([0.5, 0.6], edges=edges)
        h2 = frequency_histogram([1.5, 1.6], edges=edges)
        assert h1.overlap(h2) == 0.0

    def test_overlap_requires_matching_edges(self):
        h1 = frequency_histogram([0.5], edges=[0.0, 1.0, 2.0])
        h2 = frequency_histogram([0.5], edges=[0.0, 0.5, 2.0])
        with pytest.raises(ValidationError):
            h1.overlap(h2)

    def test_similar_samples_high_overlap(self, rng):
        edges = np.linspace(-4, 4, 41)
        h1 = frequency_histogram(rng.normal(size=20_000), edges=edges)
        h2 = frequency_histogram(rng.normal(size=20_000), edges=edges)
        assert h1.overlap(h2) > 0.95
