"""Tests for the random midpoint displacement generator."""

import numpy as np
import pytest

from repro.estimators.variance_time import variance_time_estimate
from repro.exceptions import ValidationError
from repro.processes.rmd import rmd_fbm, rmd_generate


class TestRmdFbm:
    def test_path_length(self):
        assert rmd_fbm(0.8, 6, random_state=1).size == 65

    def test_starts_at_zero(self):
        assert rmd_fbm(0.7, 5, random_state=2)[0] == 0.0

    def test_reproducible(self):
        a = rmd_fbm(0.8, 8, random_state=3)
        b = rmd_fbm(0.8, 8, random_state=3)
        np.testing.assert_array_equal(a, b)

    def test_rough_self_similarity_of_span(self):
        """Higher H gives smoother (smaller total-variation) paths."""
        rough = rmd_fbm(0.55, 12, random_state=4)
        smooth = rmd_fbm(0.95, 12, random_state=4)
        tv_rough = np.sum(np.abs(np.diff(rough)))
        tv_smooth = np.sum(np.abs(np.diff(smooth)))
        assert tv_smooth < tv_rough

    def test_rejects_bad_hurst(self):
        with pytest.raises(ValidationError):
            rmd_fbm(1.0, 5)


class TestRmdGenerate:
    def test_shapes(self):
        assert rmd_generate(0.8, 100, random_state=1).shape == (100,)
        assert rmd_generate(
            0.8, 100, size=3, random_state=1
        ).shape == (3, 100)

    def test_unit_variance(self):
        x = rmd_generate(0.8, 1 << 12, random_state=2)
        assert x.var() == pytest.approx(1.0, abs=0.01)

    def test_hurst_roughly_preserved(self):
        x = rmd_generate(0.85, 1 << 15, random_state=3)
        est = variance_time_estimate(x)
        # RMD is known to be biased; accept a wide band but require
        # clear long-range dependence.
        assert 0.65 < est.hurst < 0.95

    def test_known_short_lag_bias(self):
        """RMD's lag-1 correlation deviates from exact fGn — the
        documented reason the library uses exact generators."""
        from repro.processes.correlation import FGNCorrelation

        h = 0.85
        x = rmd_generate(h, 1 << 12, size=50, random_state=4)
        lag1 = float(np.mean(x[:, :-1] * x[:, 1:]))
        exact = float(FGNCorrelation(h)(1))
        # Deviation is real (a few percent at least) but bounded.
        assert abs(lag1 - exact) < 0.3
        assert abs(lag1 - exact) > 0.005
