"""Tests for scene-change detection."""

import numpy as np
import pytest

from repro.exceptions import EstimationError, ValidationError
from repro.processes import plan_chunks
from repro.video.scenes import detect_scene_changes, scene_statistics


def step_series(levels, segment=100, noise=0.02, seed=0):
    """Piecewise-constant levels with small multiplicative noise."""
    rng = np.random.default_rng(seed)
    parts = [
        level * (1.0 + noise * rng.standard_normal(segment))
        for level in levels
    ]
    return np.concatenate(parts)


class TestDetectSceneChanges:
    def test_clean_steps_detected(self):
        x = step_series([1000.0, 3000.0, 800.0])
        cuts = detect_scene_changes(x, threshold=0.5, window=10)
        assert cuts.size == 2
        # Cuts land near the true boundaries (100 and 200).
        assert abs(cuts[0] - 100) <= 10
        assert abs(cuts[1] - 200) <= 10

    def test_no_cuts_in_stationary_noise(self):
        rng = np.random.default_rng(1)
        x = 1000.0 * (1.0 + 0.05 * rng.standard_normal(2000))
        cuts = detect_scene_changes(x, threshold=0.5)
        assert cuts.size == 0

    def test_min_gap_debounces(self):
        x = step_series([1000.0, 5000.0], segment=50)
        many = detect_scene_changes(x, threshold=0.5, window=10,
                                    min_gap=1)
        debounced = detect_scene_changes(x, threshold=0.5, window=10,
                                         min_gap=40)
        assert debounced.size <= many.size
        assert debounced.size == 1

    def test_short_series_returns_empty(self):
        cuts = detect_scene_changes(np.ones(10) * 5, window=12)
        assert cuts.size == 0

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValidationError):
            detect_scene_changes(np.ones(100), threshold=0.0)


class TestSceneStatistics:
    def test_counts_scenes(self):
        x = step_series([1000.0, 3000.0, 800.0, 2500.0])
        stats = scene_statistics(x, threshold=0.5, window=10)
        assert stats.num_scenes == 4
        assert stats.mean_length == pytest.approx(100.0, rel=0.15)

    def test_seconds_conversion(self):
        x = step_series([1000.0, 3000.0])
        stats = scene_statistics(x, threshold=0.5, window=10)
        assert stats.mean_length_seconds(25.0) == pytest.approx(
            stats.mean_length / 25.0
        )

    def test_single_scene(self):
        rng = np.random.default_rng(2)
        x = 500.0 * (1.0 + 0.03 * rng.standard_normal(500))
        stats = scene_statistics(x, threshold=0.8)
        assert stats.num_scenes == 1
        assert stats.max_length == 500.0

    def test_detected_cuts_drive_chunk_planning(self):
        # End-to-end with the chunked pipeline: detected scene cuts
        # feed plan_chunks as candidate boundaries, so every interior
        # chunk edge is an actual scene change.
        x = step_series([1000.0, 3000.0, 800.0, 2500.0, 1500.0])
        cuts = detect_scene_changes(x, threshold=0.5, window=10)
        assert cuts.size >= 3
        plan = plan_chunks(
            x.size, 120, boundaries=cuts, min_chunk=40
        )
        interior = plan.edges[1:-1]
        assert interior.size > 0
        assert set(interior) <= set(int(c) for c in cuts)
        # The plan still covers the series exactly once.
        assert plan.edges[0] == 0
        assert plan.edges[-1] == x.size
        np.testing.assert_array_equal(
            np.diff(plan.edges),
            [chunk.length for chunk in plan.chunks],
        )

    def test_codec_scene_scale_recovered(self, intra_trace):
        """On the synthetic codec (true scene process: Pareto lengths,
        min 30, capped at 900) the detector's mean scene length lands
        in the right order of magnitude."""
        stats = scene_statistics(intra_trace.sizes[:30_000],
                                 threshold=0.6)
        assert 30 <= stats.mean_length <= 300
        assert stats.max_length <= 3000
