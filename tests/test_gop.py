"""Tests for GOP structure handling."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.video.gop import FrameType, GopStructure


class TestGopStructure:
    def test_paper_pattern(self):
        gop = GopStructure.paper()
        assert gop.pattern_string == "IBBPBBPBBPBB"
        assert gop.i_period == 12

    def test_type_counts(self):
        counts = GopStructure.paper().type_counts()
        assert counts[FrameType.I] == 1
        assert counts[FrameType.P] == 3
        assert counts[FrameType.B] == 8

    def test_frame_types_repeat(self):
        gop = GopStructure("IBP")
        types = gop.frame_types(7)
        assert [t.value for t in types] == ["I", "B", "P", "I", "B", "P", "I"]

    def test_mask_selects_correct_positions(self):
        gop = GopStructure.paper()
        mask = gop.mask(FrameType.I, 36)
        np.testing.assert_array_equal(np.nonzero(mask)[0], [0, 12, 24])

    def test_masks_partition_frames(self):
        gop = GopStructure.paper()
        n = 100
        total = sum(gop.mask(ft, n).sum() for ft in FrameType)
        assert total == n

    def test_indices(self):
        gop = GopStructure("IB")
        np.testing.assert_array_equal(
            gop.indices(FrameType.B, 6), [1, 3, 5]
        )

    def test_type_codes(self):
        gop = GopStructure("IBP")
        np.testing.assert_array_equal(
            gop.type_codes(4), ["I", "B", "P", "I"]
        )

    def test_case_insensitive_pattern(self):
        assert GopStructure("ibbp").pattern_string == "IBBP"

    def test_equality_and_hash(self):
        assert GopStructure("IBP") == GopStructure("IBP")
        assert GopStructure("IBP") != GopStructure("IBB")
        assert hash(GopStructure("IBP")) == hash(GopStructure("IBP"))

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            GopStructure("")

    def test_rejects_unknown_char(self):
        with pytest.raises(ValidationError, match="only contain"):
            GopStructure("IXP")

    def test_rejects_not_starting_with_i(self):
        with pytest.raises(ValidationError, match="start with an I"):
            GopStructure("BIP")

    def test_mask_rejects_non_frametype(self):
        with pytest.raises(ValidationError):
            GopStructure("IBP").mask("I", 5)


class TestGopChunkAlignment:
    def test_chunk_edges_start_on_i_frames(self):
        # Tie-in with the chunked pipeline: planning with
        # alignment=i_period makes every chunk begin on an I frame.
        from repro.processes import plan_chunks

        gop = GopStructure.paper()
        plan = plan_chunks(1000, 240, alignment=gop.i_period)
        types = gop.frame_types(1000)
        for chunk in plan.chunks:
            assert chunk.start % gop.i_period == 0
            assert types[chunk.start] is FrameType.I
