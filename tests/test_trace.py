"""Tests for the VideoTrace container."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.video.gop import FrameType, GopStructure
from repro.video.trace import VideoTrace


def make_trace(n=120, gop=True):
    sizes = np.linspace(100.0, 200.0, n)
    return VideoTrace(
        sizes=sizes,
        frame_rate=30.0,
        gop=GopStructure.paper() if gop else None,
        name="t",
    )


class TestVideoTrace:
    def test_basic_properties(self):
        t = make_trace(300)
        assert t.num_frames == 300
        assert t.duration_seconds == pytest.approx(10.0)

    def test_mean_rate(self):
        t = VideoTrace(sizes=np.full(30, 1000.0), frame_rate=30.0)
        assert t.mean_rate_bps == pytest.approx(1000.0 * 8 * 30)

    def test_peak_rate(self):
        t = VideoTrace(sizes=np.array([100.0, 500.0]), frame_rate=25.0)
        assert t.peak_rate_bps == pytest.approx(500.0 * 8 * 25)

    def test_sizes_of_partitions_frames(self):
        t = make_trace(120)
        total = sum(t.sizes_of(ft).size for ft in FrameType)
        assert total == 120

    def test_sizes_of_intraframe(self):
        t = make_trace(50, gop=False)
        assert t.sizes_of(FrameType.I).size == 50
        assert t.sizes_of(FrameType.B).size == 0

    def test_frame_types_no_gop(self):
        t = make_trace(5, gop=False)
        assert set(t.frame_types) == {"I"}

    def test_type_summaries(self):
        t = make_trace(120)
        summaries = t.type_summaries()
        assert set(summaries) == {"I", "P", "B"}
        assert summaries["I"].count == 10

    def test_cells_per_slot_rounds_up(self):
        t = VideoTrace(sizes=np.array([1.0, 48.0, 49.0]))
        np.testing.assert_array_equal(t.cells_per_slot(48), [1, 1, 2])

    def test_cells_rejects_bad_payload(self):
        with pytest.raises(ValidationError):
            make_trace().cells_per_slot(0)

    def test_normalized_sizes_unit_mean(self):
        t = make_trace(240)
        assert t.normalized_sizes().mean() == pytest.approx(1.0)

    def test_normalize_zero_trace_raises(self):
        t = VideoTrace(sizes=np.zeros(10))
        with pytest.raises(ValidationError):
            t.normalized_sizes()

    def test_slice_gop_aligned(self):
        t = make_trace(120)
        sub = t.slice(12, 48)
        assert sub.num_frames == 36
        assert sub.gop == t.gop

    def test_slice_rejects_misaligned(self):
        t = make_trace(120)
        with pytest.raises(ValidationError, match="GOP-aligned"):
            t.slice(5, 60)

    def test_slice_intraframe_any_start(self):
        t = make_trace(50, gop=False)
        assert t.slice(3, 10).num_frames == 7

    def test_slice_rejects_bad_range(self):
        with pytest.raises(ValidationError):
            make_trace(20).slice(10, 5)

    def test_rejects_negative_sizes(self):
        with pytest.raises(ValidationError):
            VideoTrace(sizes=np.array([-1.0, 2.0]))

    def test_rejects_bad_gop_type(self):
        with pytest.raises(ValidationError):
            VideoTrace(sizes=np.ones(5), gop="IBP")

    def test_summary(self):
        s = make_trace(60).summary()
        assert s.count == 60
