"""Persistent shared pool and zero-copy shm transport (simulation runtime).

Covers the runtime contract end to end: pool lifetime (lazy creation,
reuse, resize-rebuild, scope, shutdown), the shared-memory descriptor
round trip, transport thresholds, and — critically — the leak
regression suite: a forced worker exception, a mid-run
``KeyboardInterrupt``-style cancellation, and 50 back-to-back pooled
``generate()`` calls must all leave zero live segments (checked via the
``segments_live`` gauge *and* a raw ``/dev/shm`` listing) and flat RSS.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.aggregate import ShardedAggregateModel, SourceClass
from repro.exceptions import ValidationError
from repro.marginals.parametric import NormalDistribution
from repro.observability import RunContext
from repro.simulation import shm
from repro.simulation.parallel import (
    pool_scope,
    pool_stats,
    reduce_tasks,
    reset_pool_stats,
    run_tasks,
    shared_pool,
    shutdown_shared_pool,
)

needs_shm = pytest.mark.skipif(
    not shm.shm_available(), reason="POSIX shared memory unavailable"
)


def _fill(x):
    """Module-level task: 64 KiB result (exactly the default threshold)."""
    return np.full(8192, float(x))


def _tiny(x):
    return np.full(8, float(x))


def _scalar(x):
    return 3 * x


def _boom_large(x):
    if x == 2:
        raise RuntimeError("boom")
    return np.full(8192, float(x))


def _leftover_segments():
    """Raw /dev/shm entries carrying this process's sweep prefix."""
    if not os.path.isdir("/dev/shm"):
        return []
    prefix = f"repro{os.getpid()}_"
    return [n for n in os.listdir("/dev/shm") if n.startswith(prefix)]


@pytest.fixture()
def fresh_runtime():
    """Start and end with no shared pool and zeroed runtime counters."""
    shutdown_shared_pool()
    reset_pool_stats()
    shm.reset_shm_stats()
    yield
    shutdown_shared_pool()


class TestSharedPool:
    def test_lazy_reuse_across_calls(self, fresh_runtime):
        for _ in range(3):
            out = run_tasks(_scalar, [1, 2, 3], workers=2, kind="process")
            assert out == [3, 6, 9]
        stats = pool_stats()
        assert stats["spinups"] == 1
        assert stats["reuse_hits"] == 2
        assert stats["size"] == 2

    def test_resize_rebuilds(self, fresh_runtime):
        first = shared_pool(2)
        assert shared_pool(2) is first
        second = shared_pool(3)
        assert second is not first
        stats = pool_stats()
        assert stats["spinups"] == 2
        assert stats["shutdowns"] == 1
        assert stats["size"] == 3

    def test_pool_scope_leaves_pool_alive(self, fresh_runtime):
        with pool_scope(2) as pool:
            assert pool.submit(_scalar, 2).result() == 6
        # The scope must NOT shut the executor down on exit.
        assert pool.submit(_scalar, 3).result() == 9
        assert pool_stats()["size"] == 2

    def test_shutdown_idempotent(self, fresh_runtime):
        shared_pool(2)
        shutdown_shared_pool()
        shutdown_shared_pool()
        assert pool_stats()["size"] == 0
        # The next request builds a fresh pool.
        assert shared_pool(2).submit(_scalar, 1).result() == 3
        assert pool_stats()["spinups"] == 2

    def test_per_call_pool_bypasses_shared(self, fresh_runtime):
        out = run_tasks(
            _scalar, [1, 2, 3], workers=2, kind="process", pool="per-call"
        )
        assert out == [3, 6, 9]
        assert pool_stats()["spinups"] == 0
        assert pool_stats()["size"] == 0

    def test_invalid_pool_and_transport_choices(self):
        with pytest.raises(ValidationError, match="pool"):
            run_tasks(_scalar, [1, 2], kind="process", pool="forever")
        with pytest.raises(ValidationError, match="transport"):
            run_tasks(_scalar, [1, 2], kind="process", transport="carrier")

    def test_metrics_record_pool_series(self, fresh_runtime):
        ctx = RunContext()
        run_tasks(_scalar, [1, 2, 3], workers=2, kind="process", metrics=ctx)
        run_tasks(_scalar, [1, 2, 3], workers=2, kind="process", metrics=ctx)
        snapshot = {e["name"]: e for e in ctx.snapshot()}
        assert snapshot["pool.spinups"]["value"] == 1
        assert snapshot["pool.reuse_hits"]["value"] == 1
        assert snapshot["pool.size"]["value"] == 2


@needs_shm
class TestShmTransport:
    def test_descriptor_round_trip(self, fresh_runtime):
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        ref = shm.export_array(arr)
        assert ref.shape == (3, 4)
        assert ref.dtype == "float32"
        assert ref.nbytes == arr.nbytes
        out = shm.redeem_copy(ref)
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == arr.dtype
        stats = shm.shm_stats()
        assert stats["segments_received"] == 1
        assert stats["segments_unlinked"] == 1
        assert stats["segments_live"] == 0
        assert _leftover_segments() == []

    @pytest.mark.parametrize("transport", ["auto", "shm", "pickle"])
    def test_transports_are_bit_identical(self, fresh_runtime, transport):
        expected = [_fill(x) for x in range(4)]
        got = run_tasks(
            _fill, range(4), workers=2, kind="process", transport=transport
        )
        for a, b in zip(expected, got):
            np.testing.assert_array_equal(a, b)
        assert shm.shm_stats()["segments_live"] == 0

    def test_auto_moves_large_results_zero_copy(self, fresh_runtime):
        run_tasks(_fill, range(4), workers=2, kind="process")
        stats = shm.shm_stats()
        assert stats["bytes_zero_copy"] == 4 * 8192 * 8
        assert stats["bytes_pickled"] == 0

    def test_auto_routes_small_results_via_pickle(self, fresh_runtime):
        run_tasks(_tiny, range(4), workers=2, kind="process")
        stats = shm.shm_stats()
        assert stats["bytes_zero_copy"] == 0
        assert stats["bytes_pickled"] == 4 * 8 * 8

    def test_forced_shm_ignores_threshold(self, fresh_runtime):
        run_tasks(
            _tiny, range(4), workers=2, kind="process", transport="shm"
        )
        stats = shm.shm_stats()
        assert stats["bytes_zero_copy"] == 4 * 8 * 8
        assert stats["bytes_pickled"] == 0

    def test_min_bytes_env_read_in_parent(self, fresh_runtime, monkeypatch):
        # The threshold ships inside the task wrapper, so a
        # monkeypatched parent environment applies even to long-lived
        # workers forked before the patch.
        monkeypatch.setenv(shm.MIN_BYTES_ENV, "16")
        run_tasks(_tiny, range(4), workers=2, kind="process")
        assert shm.shm_stats()["bytes_zero_copy"] == 4 * 8 * 8

    def test_malformed_min_bytes_env_raises(self, monkeypatch):
        monkeypatch.setenv(shm.MIN_BYTES_ENV, "lots")
        with pytest.raises(ValidationError, match=shm.MIN_BYTES_ENV):
            run_tasks(_fill, range(4), workers=2, kind="process")

    def test_non_ndarray_results_pass_through(self, fresh_runtime):
        out = run_tasks(
            _scalar, [1, 2, 3], workers=2, kind="process", transport="shm"
        )
        assert out == [3, 6, 9]
        assert shm.shm_stats()["segments_received"] == 0

    def test_reduce_streams_zero_copy_views(self, fresh_runtime):
        total = np.zeros(8192)
        count = reduce_tasks(
            _fill,
            range(6),
            lambda row, index: total.__iadd__(row),
            workers=2,
            kind="process",
            transport="shm",
        )
        assert count == 6
        assert total[0] == sum(range(6))
        stats = shm.shm_stats()
        assert stats["segments_received"] == 6
        assert stats["segments_live"] == 0
        assert _leftover_segments() == []

    def test_metrics_record_shm_series(self, fresh_runtime):
        ctx = RunContext()
        run_tasks(
            _fill, range(4), workers=2, kind="process", metrics=ctx,
            transport="shm",
        )
        snapshot = {e["name"]: e for e in ctx.snapshot()}
        assert snapshot["shm.bytes_zero_copy"]["value"] == 4 * 8192 * 8
        assert snapshot["shm.bytes_pickled"]["value"] == 0
        assert snapshot["shm.segments"]["value"] == 4

    def test_thread_pools_never_engage_transport(self, fresh_runtime):
        out = run_tasks(
            _fill, range(4), workers=2, kind="thread", transport="shm"
        )
        assert len(out) == 4
        assert shm.shm_stats()["segments_received"] == 0


@needs_shm
class TestLeakRegression:
    def test_worker_exception_leaves_zero_live_segments(self, fresh_runtime):
        with pytest.raises(RuntimeError, match="boom"):
            run_tasks(
                _boom_large, range(8), workers=2, kind="process",
                transport="shm",
            )
        stats = shm.shm_stats()
        assert stats["segments_live"] == 0
        assert stats["segments_received"] == stats["segments_unlinked"]
        assert _leftover_segments() == []

    def test_mid_run_cancellation_unlinks_segments(self, fresh_runtime):
        # A KeyboardInterrupt out of the fold (the mid-run ^C shape)
        # must drain in-flight futures and unlink their segments before
        # propagating.
        def interrupt(row, index):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            reduce_tasks(
                _fill, range(8), interrupt, workers=2, kind="process",
                transport="shm",
            )
        assert shm.shm_stats()["segments_live"] == 0
        assert _leftover_segments() == []

    def test_reduce_worker_exception_drains_window(self, fresh_runtime):
        total = np.zeros(8192)
        with pytest.raises(RuntimeError, match="boom"):
            reduce_tasks(
                _boom_large, range(8),
                lambda row, index: total.__iadd__(row),
                workers=2, kind="process", transport="shm",
            )
        assert shm.shm_stats()["segments_live"] == 0
        assert _leftover_segments() == []

    @pytest.mark.skipif(
        not os.path.exists("/proc/self/status"), reason="needs procfs"
    )
    def test_repeated_generate_holds_rss_flat(self, fresh_runtime):
        def rss_bytes():
            with open("/proc/self/status") as fh:
                for line in fh:
                    if line.startswith("VmRSS:"):
                        return int(line.split()[1]) * 1024
            return 0

        klass = SourceClass(
            "v", correlation=0.8,
            marginal=NormalDistribution(10.0, 2.0), count=16,
        )
        engine = ShardedAggregateModel(klass, batch_size=4)

        def generate(seed):
            return engine.generate(
                256, processes=2, transport="shm", random_state=seed
            )

        for i in range(10):  # warm every cache and the pool first
            generate(i)
        baseline = rss_bytes()
        for i in range(50):
            generate(100 + i)
        growth = rss_bytes() - baseline
        assert growth < 32 * 1024 * 1024, f"RSS grew {growth} bytes"
        assert shm.shm_stats()["segments_live"] == 0
        assert _leftover_segments() == []
