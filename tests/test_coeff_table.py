"""Tests for the shared Durbin-Levinson coefficient tables."""

import threading

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.processes.coeff_table import (
    CoefficientTable,
    acvf_fingerprint,
    clear_coefficient_cache,
    coefficient_cache_info,
    get_coefficient_table,
    set_coefficient_cache_limits,
)
from repro.processes.correlation import (
    CompositeCorrelation,
    ExponentialCorrelation,
    FGNCorrelation,
)
from repro.processes.partial_corr import DurbinLevinson


@pytest.fixture(autouse=True)
def fresh_cache():
    """Isolate every test from the process-global table cache."""
    clear_coefficient_cache()
    set_coefficient_cache_limits(max_tables=8, max_cached_horizon=4096)
    yield
    clear_coefficient_cache()
    set_coefficient_cache_limits(max_tables=8, max_cached_horizon=4096)


def reference_rows(acvf):
    """All Durbin-Levinson outputs via the incremental recursion."""
    state = DurbinLevinson(acvf)
    rows, variances, sums = [], [state.variance], [0.0]
    for _ in range(state.max_step):
        phi, variance = state.advance()
        rows.append(phi.copy())
        variances.append(variance)
        sums.append(state.phi_sum)
    return rows, variances, sums


class TestCoefficientTable:
    def test_rows_match_incremental_recursion_bitwise(self):
        acvf = FGNCorrelation(0.8).acvf(40)
        table = CoefficientTable(acvf)
        rows, variances, sums = reference_rows(acvf)
        for k in range(1, 40):
            np.testing.assert_array_equal(table.phi_row(k), rows[k - 1])
            assert table.variance(k) == variances[k]
            assert table.phi_sum(k) == sums[k]
        assert table.variance(0) == variances[0]
        assert table.phi_sum(0) == 0.0

    def test_lazy_build(self):
        table = CoefficientTable(FGNCorrelation(0.7).acvf(50))
        assert table.built_step == 0
        table.phi_row(10)
        assert table.built_step == 10
        assert table.horizon == 50

    def test_precompute(self):
        table = CoefficientTable(
            FGNCorrelation(0.7).acvf(20), precompute=True
        )
        assert table.built_step == 19

    def test_sqrt_variances_view(self):
        acvf = ExponentialCorrelation(0.4).acvf(15)
        table = CoefficientTable(acvf)
        sqrtv = table.sqrt_variances(15)
        _, variances, _ = reference_rows(acvf)
        np.testing.assert_array_equal(sqrtv, np.sqrt(variances))
        with pytest.raises(ValueError):
            sqrtv[0] = 2.0

    def test_packed_rows_layout(self):
        acvf = FGNCorrelation(0.6).acvf(12)
        table = CoefficientTable(acvf)
        packed = table.packed_rows(12)
        rows, _, _ = reference_rows(acvf)
        offset = 0
        for k in range(1, 12):
            np.testing.assert_array_equal(
                packed[offset : offset + k], rows[k - 1]
            )
            offset += k

    def test_phi_row_is_read_only_view(self):
        table = CoefficientTable(FGNCorrelation(0.7).acvf(10))
        row = table.phi_row(5)
        with pytest.raises(ValueError):
            row[0] = 99.0

    def test_rejects_out_of_range_step(self):
        table = CoefficientTable(FGNCorrelation(0.7).acvf(10))
        with pytest.raises(ValidationError):
            table.phi_row(10)
        with pytest.raises(ValidationError):
            table.phi_row(0)
        with pytest.raises(ValidationError):
            table.ensure(10)

    def test_rejects_model_argument(self):
        with pytest.raises(ValidationError, match="explicit acvf"):
            CoefficientTable(FGNCorrelation(0.7))

    def test_extend_continues_bitwise(self):
        model = CompositeCorrelation.paper_fit().with_continuity()
        short, long = model.acvf(30), model.acvf(90)
        table = CoefficientTable(short)
        table.ensure(29)  # fully build the short table first
        table.extend(long)
        fresh = CoefficientTable(long)
        for k in range(1, 90):
            np.testing.assert_array_equal(
                table.phi_row(k), fresh.phi_row(k)
            )
            assert table.variance(k) == fresh.variance(k)
            assert table.phi_sum(k) == fresh.phi_sum(k)

    def test_extend_rejects_mismatched_prefix(self):
        table = CoefficientTable(FGNCorrelation(0.7).acvf(20))
        with pytest.raises(ValidationError, match="prefix"):
            table.extend(FGNCorrelation(0.8).acvf(40))

    def test_extend_with_shorter_prefix_is_noop(self):
        acvf = FGNCorrelation(0.7).acvf(30)
        table = CoefficientTable(acvf)
        table.extend(acvf[:10])
        assert table.horizon == 30

    def test_scalar_accessors_reject_negative_step(self):
        # Regression: a negative k on a lazily built table used to skip
        # the build check and index from the end of an uninitialized
        # buffer, silently returning garbage.
        table = CoefficientTable(FGNCorrelation(0.7).acvf(20))
        for accessor in (table.variance, table.sqrt_variance, table.phi_sum):
            with pytest.raises(ValidationError):
                accessor(-1)

    def test_read_during_concurrent_extend_stays_bitwise(self):
        # Regression: extend() used to rebind the storage arrays to
        # uninitialized buffers *before* copying the built prefix in,
        # so lock-free readers racing an extension could read garbage.
        # Hammer reads of the built prefix while another thread grows
        # the table repeatedly; every read must match the reference.
        model = FGNCorrelation(0.8)
        base = 40
        table = CoefficientTable(model.acvf(base), precompute=True)
        rows, variances, _ = reference_rows(model.acvf(base))
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                for k in range(1, base):
                    row = np.array(table.phi_row(k))
                    if not np.array_equal(row, rows[k - 1]):
                        errors.append(f"phi_row({k}) mismatch")
                        return
                    if table.variance(k) != variances[k]:
                        errors.append(f"variance({k}) mismatch")
                        return

        readers = [threading.Thread(target=reader) for _ in range(4)]
        for t in readers:
            t.start()
        try:
            for horizon in (80, 160, 320, 640, 1280):
                table.extend(model.acvf(horizon))
                table.ensure(horizon - 1)
        finally:
            stop.set()
            for t in readers:
                t.join()
        assert not errors
        fresh = CoefficientTable(model.acvf(1280), precompute=True)
        for k in (1, base - 1, 639, 1279):
            np.testing.assert_array_equal(table.phi_row(k), fresh.phi_row(k))


class TestFingerprintCache:
    def test_hit_on_repeat(self):
        model = FGNCorrelation(0.8)
        t1 = get_coefficient_table(model, 50)
        t2 = get_coefficient_table(model, 50)
        assert t1 is t2
        info = coefficient_cache_info()
        assert info.misses == 1 and info.hits == 1

    def test_prefix_share_shorter_request(self):
        model = FGNCorrelation(0.8)
        t_long = get_coefficient_table(model, 100)
        t_short = get_coefficient_table(model, 40)
        assert t_short is t_long

    def test_extension_on_longer_request(self):
        model = FGNCorrelation(0.8)
        t_short = get_coefficient_table(model, 40)
        t_long = get_coefficient_table(model, 100)
        assert t_long is t_short
        assert t_long.horizon == 100
        assert coefficient_cache_info().extensions == 1

    def test_distinct_models_distinct_tables(self):
        t1 = get_coefficient_table(FGNCorrelation(0.8), 30)
        t2 = get_coefficient_table(FGNCorrelation(0.7), 30)
        assert t1 is not t2
        assert coefficient_cache_info().tables == 2

    def test_explicit_acvf_sequences_share(self):
        acvf = ExponentialCorrelation(0.25).acvf(60)
        t1 = get_coefficient_table(acvf, 60)
        t2 = get_coefficient_table(acvf[:45], 45)
        assert t1 is t2

    def test_fingerprint_collision_verified_by_prefix(self):
        # Two sequences agreeing on the hashed head but diverging later
        # must get distinct tables.
        a = ExponentialCorrelation(0.5).acvf(30)
        b = a.copy()
        b[20:] *= 0.5
        assert acvf_fingerprint(a) == acvf_fingerprint(b)
        t1 = get_coefficient_table(a, 30)
        t2 = get_coefficient_table(b, 30)
        assert t1 is not t2
        np.testing.assert_array_equal(t2.acvf, b)

    def test_lru_eviction(self):
        set_coefficient_cache_limits(max_tables=2)
        models = [FGNCorrelation(h) for h in (0.6, 0.7, 0.8)]
        tables = [get_coefficient_table(m, 20) for m in models]
        assert coefficient_cache_info().tables == 2
        # The first model was evicted; a fresh request misses.
        again = get_coefficient_table(models[0], 20)
        assert again is not tables[0]

    def test_horizon_cap_bypasses_cache(self):
        set_coefficient_cache_limits(max_cached_horizon=32)
        model = FGNCorrelation(0.8)
        t1 = get_coefficient_table(model, 64)
        t2 = get_coefficient_table(model, 64)
        assert t1 is not t2
        assert coefficient_cache_info().tables == 0

    def test_thread_safe_concurrent_lookup(self):
        model = CompositeCorrelation.paper_fit().with_continuity()
        results = []

        def worker(n):
            table = get_coefficient_table(model, n)
            table.ensure(n - 1)
            results.append((n, table))

        threads = [
            threading.Thread(target=worker, args=(n,))
            for n in (50, 120, 80, 120, 60)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # All requests resolved to one shared table, fully consistent
        # with a fresh recursion at the maximum horizon.
        tables = {id(tbl) for _, tbl in results}
        assert len(tables) == 1
        table = results[0][1]
        fresh = CoefficientTable(model.acvf(120), precompute=True)
        for k in (1, 40, 79, 119):
            np.testing.assert_array_equal(
                table.phi_row(k), fresh.phi_row(k)
            )
