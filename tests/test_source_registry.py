"""Conformance suite for the GaussianSource protocol and backend registry.

Every registered backend must honor the same contract: correct sample
shapes, seed reproducibility, capability flags that match reality
(conditional stepping either works or raises at once), and a sample ACF
consistent with the law its ``acvf()`` reports — tight for exact
backends, looser for the approximate ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.processes import registry
from repro.processes.correlation import FGNCorrelation
from repro.processes.source import (
    DaviesHarteSource,
    GaussianSource,
    HoskingSource,
    SourceCapabilities,
)

HURST = 0.8
ALL_BACKENDS = registry.names()


def make_source(name: str) -> GaussianSource:
    return registry.create(name, FGNCorrelation(HURST))


def lag1_autocorr(paths: np.ndarray) -> float:
    """Mean per-replication lag-1 sample autocorrelation."""
    x = np.atleast_2d(np.asarray(paths, dtype=float))
    x = x - x.mean(axis=1, keepdims=True)
    num = (x[:, :-1] * x[:, 1:]).sum(axis=1)
    den = (x**2).sum(axis=1)
    return float((num / den).mean())


class TestRegistry:
    def test_all_six_backends_registered(self):
        assert ALL_BACKENDS == (
            "davies_harte",
            "farima",
            "fgn",
            "hosking",
            "mg_infinity",
            "rmd",
        )

    def test_get_returns_spec_with_capabilities(self):
        spec = registry.get("davies_harte")
        assert spec.name == "davies_harte"
        assert isinstance(spec.capabilities, SourceCapabilities)
        assert spec.exact and spec.batch and not spec.conditional

    def test_hyphen_and_case_aliases(self):
        assert registry.get("Davies-Harte") is registry.get("davies_harte")

    def test_unknown_backend_names_offender(self):
        with pytest.raises(ValidationError, match="'nope'"):
            registry.get("nope")

    def test_non_string_backend_rejected(self):
        with pytest.raises(ValidationError, match="string or GaussianSource"):
            registry.get(7)


class TestAutoPolicy:
    def test_unconditional_auto_is_davies_harte(self):
        source = registry.resolve("auto", FGNCorrelation(HURST))
        assert isinstance(source, DaviesHarteSource)

    def test_conditional_auto_is_hosking(self):
        source = registry.resolve(
            "auto", FGNCorrelation(HURST), conditional=True
        )
        assert isinstance(source, HoskingSource)

    def test_conditional_from_incapable_backend_raises_at_construction(self):
        for name in ALL_BACKENDS:
            if registry.get(name).conditional:
                continue
            with pytest.raises(ValidationError, match="conditional"):
                registry.resolve(
                    name, FGNCorrelation(HURST), conditional=True
                )

    def test_conditional_check_precedes_factory_options(self):
        # The IS layer forwards coeff_table= to resolve(); an incapable
        # backend must fail the capability check, not trip over a
        # factory kwarg it does not understand.
        with pytest.raises(ValidationError, match="conditional"):
            registry.resolve(
                "rmd",
                FGNCorrelation(HURST),
                conditional=True,
                coeff_table=False,
            )

    def test_source_instance_passes_through(self):
        source = DaviesHarteSource(FGNCorrelation(HURST))
        assert registry.resolve(source, None) is source

    def test_source_instance_capability_still_validated(self):
        source = DaviesHarteSource(FGNCorrelation(HURST))
        with pytest.raises(ValidationError, match="conditional"):
            registry.resolve(source, None, conditional=True)

    def test_options_forwarded_to_factory(self):
        source = registry.resolve(
            "hosking", FGNCorrelation(HURST), coeff_table=False
        )
        x = source.sample(16, random_state=0)
        assert x.shape == (16,)


class TestMergeBackendArgs:
    def test_both_given_rejected(self):
        with pytest.raises(ValidationError, match="not both"):
            registry.merge_backend_args("hosking", "davies_harte")

    def test_backend_wins(self):
        assert registry.merge_backend_args(None, "rmd") == "rmd"

    def test_method_is_legacy_alias(self):
        assert registry.merge_backend_args("hosking", None) == "hosking"

    def test_neither_means_auto(self):
        assert registry.merge_backend_args(None, None) == "auto"


@pytest.mark.parametrize("name", ALL_BACKENDS)
class TestSourceConformance:
    def test_capability_flags_match_spec(self, name):
        source = make_source(name)
        assert source.capabilities == registry.get(name).capabilities
        assert source.exact is source.capabilities.exact
        assert source.name == name

    def test_sample_shapes(self, name):
        source = make_source(name)
        assert source.sample(32, random_state=0).shape == (32,)
        assert source.sample(32, size=3, random_state=0).shape == (3, 32)

    def test_seed_reproducibility(self, name):
        source = make_source(name)
        a = source.sample(64, size=2, random_state=11)
        b = source.sample(64, size=2, random_state=11)
        c = source.sample(64, size=2, random_state=12)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_mean_shift(self, name):
        source = make_source(name)
        base = source.sample(256, size=4, random_state=5)
        shifted = source.sample(256, size=4, mean=3.0, random_state=5)
        np.testing.assert_allclose(shifted, base + 3.0, atol=1e-12)

    def test_acvf_is_normalized_covariance(self, name):
        source = make_source(name)
        r = source.acvf(16)
        assert r.shape == (16,)
        assert r[0] == pytest.approx(1.0)
        assert np.all(np.abs(r) <= 1.0 + 1e-12)

    def test_sample_acf_matches_advertised_law(self, name):
        source = make_source(name)
        size = 60 if name == "mg_infinity" else 150
        paths = source.sample(512, size=size, random_state=99)
        target = source.acvf(2)
        observed = lag1_autocorr(paths)
        # Exact backends sample the advertised law up to the usual
        # finite-sample ACF bias.  mg_infinity's integer durations and
        # Poisson marginal get a looser band; rmd's non-stationary
        # increments are known to undershoot short-lag correlation by
        # ~0.15 at H=0.8, so its band only guards against gross breakage.
        tolerance = {"rmd": 0.25, "mg_infinity": 0.15}.get(name, 0.06)
        assert observed == pytest.approx(
            target[1] / target[0], abs=tolerance
        )

    def test_stream_honors_conditional_capability(self, name):
        source = make_source(name)
        if source.capabilities.conditional:
            process = source.stream(8, size=3, random_state=0)
            step = process.step()
            assert step.values.shape == (3,)
            assert step.cond_variance > 0
        else:
            with pytest.raises(ValidationError, match="conditional"):
                source.stream(8, size=3, random_state=0)

    def test_describe_reports_provenance(self, name):
        info = make_source(name).describe()
        assert info["backend"] == name
        caps = registry.get(name).capabilities
        assert info["exact"] == caps.exact
        assert info["conditional"] == caps.conditional
        assert info["batch"] == caps.batch


class TestHurstExtraction:
    def test_parameter_backends_accept_plain_hurst(self):
        source = registry.create("fgn", 0.75)
        assert source.describe()["hurst"] == pytest.approx(0.75)

    def test_explicit_acvf_rejected_by_parameter_backends(self):
        with pytest.raises(ValidationError, match="hosking"):
            registry.create("fgn", [1.0, 0.5, 0.25])

    def test_conditional_stream_is_reproducible(self):
        # The stream draws its innovations step by step (so batch and
        # streamed paths differ for one seed), but two streams from the
        # same seed must agree bit for bit — the property the Fig. 14-17
        # runners' worker-count invariance rests on.
        source = make_source("hosking")
        a = source.stream(32, size=2, random_state=7).run()
        b = source.stream(32, size=2, random_state=7).run()
        np.testing.assert_array_equal(a, b)
        assert a.shape == (2, 32)
