"""Paired known-H regression: MAVAR vs the paper-era estimators.

The paper reads ``H ~= 0.92`` off an R/S pox diagram and cross-checks
with a variance-time plot.  This module pins down, per true ``H``, how
much accuracy the Modified Allan Variance estimator buys over those
two graphical estimators on exact fGn at the paper's own 2^14-sample
horizon — using the bake-off harness's paired design, so all three
estimators see the *same* seeded paths and the comparison is free of
path-to-path noise.

This is the empirical basis for the Tier-1 tolerance retunings in
DESIGN.md §5h: MAVAR's gates in ``tests/test_hurst_invariance.py``
(0.02/0.04) and ``tests/test_chunked.py`` (0.012/0.02) are only safe
because the margins asserted here hold across seed families.

Statistical design
------------------
- **Seeds:** one spawn root per run, ``BASE_SEED + offset``; the
  paired matrix is deterministic given the root.  ``--seed-offset``
  (``make test-stats-matrix``) was verified green at offsets 0/1/2.
- **Workload:** exact Davies-Harte fGn, ``H in {0.6, 0.7, 0.8, 0.9}``,
  horizon 2^14, 8 paired replications per cell.
- **Tolerances (~alpha):** the RMSE comparison requires a strict win
  at every H — observed margins are 2.5-6x (MAVAR ~0.009-0.012 vs
  R/S 0.02-0.06 and variance-time 0.05-0.09), so a false failure
  needs a >2.5x Monte Carlo swing of an 8-replication RMSE, far out
  in the tail.  The |bias| comparison carries a Monte Carlo floor of
  ``max(3 SE, 0.008)``: with 8 replications the bias of a ~0.01-std
  estimator is known only to ~0.004, the classical estimators can
  land near zero bias by luck at single H points (observed at
  offset 2, H=0.7: R/S |bias| 0.0005), and 0.008 is still 2.5-10x
  below the classical estimators' typical |bias| at these cells.
- **Power:** a MAVAR calibration regression that reintroduced even
  half the small-n curvature bias (~0.03 at H=0.9) would push its
  RMSE past R/S at the high-H cells immediately.
"""

import numpy as np
import pytest

from repro.estimators.bakeoff import run_bakeoff

BASE_SEED = 20_240
HURSTS = (0.6, 0.7, 0.8, 0.9)
HORIZON = 1 << 14
REPLICATIONS = 8
ESTIMATORS = ("mavar", "rs", "variance_time")


@pytest.fixture(scope="module")
def bakeoff(seed_offset):
    return run_bakeoff(
        hursts=HURSTS,
        horizons=(HORIZON,),
        backends=("davies_harte",),
        estimators=ESTIMATORS,
        replications=REPLICATIONS,
        random_state=BASE_SEED + seed_offset,
    )


def cells_by_h(result, estimator):
    return {
        h: result.cell(estimator, "davies_harte", h, HORIZON)
        for h in HURSTS
    }


class TestMavarBeatsPaperEstimators:
    def test_rmse_wins_at_every_h(self, bakeoff):
        mavar = cells_by_h(bakeoff, "mavar")
        rs = cells_by_h(bakeoff, "rs")
        vt = cells_by_h(bakeoff, "variance_time")
        table = [
            f"{'H':>5} {'mavar':>9} {'rs':>9} {'var-time':>9}"
        ]
        for h in HURSTS:
            table.append(
                f"{h:>5.1f} {mavar[h].rmse:>9.4f} "
                f"{rs[h].rmse:>9.4f} {vt[h].rmse:>9.4f}"
            )
        report = "\n".join(table)
        for h in HURSTS:
            better = min(rs[h].rmse, vt[h].rmse)
            assert mavar[h].rmse <= better, (
                f"MAVAR lost the RMSE comparison at H={h}:\n{report}"
            )

    def test_abs_bias_wins_up_to_mc_floor(self, bakeoff):
        mavar = cells_by_h(bakeoff, "mavar")
        rs = cells_by_h(bakeoff, "rs")
        vt = cells_by_h(bakeoff, "variance_time")
        for h in HURSTS:
            cell = mavar[h]
            # Monte Carlo floor: the bias of an 8-replication mean is
            # only known to ~std/sqrt(8), and a classical estimator
            # can cross zero by luck at a single H point — so a win
            # is required only where the comparison is resolvable.
            floor = max(
                3.0 * cell.std / np.sqrt(REPLICATIONS), 0.008
            )
            better = min(abs(rs[h].bias), abs(vt[h].bias))
            assert abs(cell.bias) <= max(better, floor), (
                f"MAVAR |bias| {abs(cell.bias):.4f} at H={h} exceeds "
                f"both the better classical |bias| {better:.4f} and "
                f"the MC floor {floor:.4f}"
            )

    def test_mavar_absolute_accuracy(self, bakeoff):
        # Not merely relative: the calibrated estimator itself must be
        # tight — RMSE under 0.02 at every H at this horizon.
        for h, cell in cells_by_h(bakeoff, "mavar").items():
            assert cell.rmse < 0.02, (h, cell.rmse)
            assert abs(cell.bias) < 0.015, (h, cell.bias)

    def test_no_failures_anywhere(self, bakeoff):
        assert all(cell.failures == 0 for cell in bakeoff.cells)

    def test_pooled_winner_is_mavar(self, bakeoff):
        assert bakeoff.winner("rmse") == "mavar"
