"""Tests for plain Monte Carlo overflow estimators."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.queueing.overflow import (
    OverflowEstimate,
    steady_state_overflow_from_trace,
    transient_overflow_mc,
)


class TestOverflowEstimate:
    def test_derived_quantities(self):
        est = OverflowEstimate(probability=0.01, variance=1e-6,
                               replications=100)
        assert est.std_error == pytest.approx(1e-3)
        assert est.relative_error == pytest.approx(0.1)
        assert est.log10_probability == pytest.approx(-2.0)

    def test_zero_probability(self):
        est = OverflowEstimate(probability=0.0, variance=0.0,
                               replications=10)
        assert est.relative_error == float("inf")
        assert est.log10_probability == float("-inf")

    def test_confidence_interval_clipped(self):
        est = OverflowEstimate(probability=0.001, variance=1e-4,
                               replications=10)
        low, high = est.confidence_interval()
        assert low == 0.0
        assert high <= 1.0


class TestTransientOverflowMc:
    def test_certain_overflow(self):
        arrivals = np.full((100, 10), 5.0)
        est = transient_overflow_mc(arrivals, service_rate=1.0,
                                    buffer_size=3.0)
        assert est.probability == 1.0

    def test_impossible_overflow(self):
        arrivals = np.zeros((50, 10))
        est = transient_overflow_mc(arrivals, service_rate=1.0,
                                    buffer_size=1.0)
        assert est.probability == 0.0

    def test_workload_and_lindley_agree_for_empty_start(self, rng):
        arrivals = rng.exponential(size=(20_000, 30)) * 0.9
        a = transient_overflow_mc(arrivals, 1.0, 2.0,
                                  use_workload_form=True)
        b = transient_overflow_mc(arrivals, 1.0, 2.0,
                                  use_workload_form=False)
        assert a.probability == pytest.approx(b.probability, abs=0.02)

    def test_workload_form_rejects_initial(self):
        with pytest.raises(ValidationError, match="empty"):
            transient_overflow_mc(np.ones((5, 5)), 1.0, 1.0, initial=2.0)

    def test_full_buffer_start_raises_probability(self, rng):
        arrivals = rng.exponential(size=(5_000, 5)) * 0.5
        empty = transient_overflow_mc(
            arrivals, 1.0, 3.0, use_workload_form=False, initial=0.0
        )
        full = transient_overflow_mc(
            arrivals, 1.0, 3.0, use_workload_form=False, initial=3.0
        )
        assert full.probability >= empty.probability

    def test_rejects_1d(self):
        with pytest.raises(ValidationError, match="2-D"):
            transient_overflow_mc(np.ones(10), 1.0, 1.0)


class TestSteadyStateFromTrace:
    def test_monotone_in_buffer_size(self, rng):
        arrivals = rng.exponential(size=50_000) * 0.8
        estimates = steady_state_overflow_from_trace(
            arrivals, 1.0, [1.0, 2.0, 4.0, 8.0]
        )
        probs = [e.probability for e in estimates]
        assert probs == sorted(probs, reverse=True)

    def test_warmup_excluded(self, rng):
        # 100 slots of 3.0 build a backlog of 200 that drains by slot 300.
        arrivals = np.concatenate([np.full(100, 3.0), np.zeros(1000)])
        no_warmup = steady_state_overflow_from_trace(
            arrivals, 1.0, [5.0], warmup=0
        )[0]
        with_warmup = steady_state_overflow_from_trace(
            arrivals, 1.0, [5.0], warmup=600
        )[0]
        assert no_warmup.probability > 0.0
        assert with_warmup.probability == 0.0

    def test_variance_is_nan(self, rng):
        arrivals = rng.exponential(size=1000)
        est = steady_state_overflow_from_trace(arrivals, 2.0, [1.0])[0]
        assert np.isnan(est.variance)
        assert est.replications == 1

    def test_rejects_bad_warmup(self):
        with pytest.raises(ValidationError):
            steady_state_overflow_from_trace(np.ones(10), 1.0, [1.0],
                                             warmup=10)


class TestCellLossRatio:
    def test_bounded_by_tail_probability(self, rng):
        """CLR(b) <= P(Q > b): lost work per slot is at most the
        exceedance indicator times the per-slot overshoot share."""
        from repro.queueing.overflow import (
            cell_loss_ratio_from_trace,
            steady_state_overflow_from_trace,
        )

        arrivals = rng.lognormal(0.0, 1.0, 60_000)
        arrivals /= arrivals.mean()
        buffers = [2.0, 10.0, 40.0]
        clr = cell_loss_ratio_from_trace(arrivals, 1.0 / 0.6, buffers)
        tail = steady_state_overflow_from_trace(
            arrivals, 1.0 / 0.6, buffers
        )
        for c, t in zip(clr, tail):
            assert c.probability <= t.probability + 1e-12

    def test_monotone_in_buffer(self, rng):
        from repro.queueing.overflow import cell_loss_ratio_from_trace

        arrivals = rng.exponential(size=40_000)
        arrivals /= arrivals.mean()
        estimates = cell_loss_ratio_from_trace(
            arrivals, 1.25, [1.0, 4.0, 16.0]
        )
        ratios = [e.probability for e in estimates]
        assert ratios == sorted(ratios, reverse=True)

    def test_no_loss_with_huge_buffer(self, rng):
        from repro.queueing.overflow import cell_loss_ratio_from_trace

        arrivals = rng.exponential(size=5_000) * 0.5
        est = cell_loss_ratio_from_trace(arrivals, 1.0, [1e6])[0]
        assert est.probability == 0.0

    def test_warmup_validated(self, rng):
        from repro.queueing.overflow import cell_loss_ratio_from_trace
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            cell_loss_ratio_from_trace(
                rng.exponential(size=10), 1.0, [1.0], warmup=10
            )
