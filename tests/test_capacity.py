"""Tests for the capacity-planning layer (queueing.capacity)."""

import numpy as np
import pytest

from repro.core.aggregate import (
    ShardedAggregateModel,
    SourceClass,
    SourcePopulation,
)
from repro.exceptions import ValidationError
from repro.marginals.parametric import NormalDistribution
from repro.queueing import norros_effective_bandwidth
from repro.queueing.capacity import (
    admissible_sources,
    admission_control_curve,
    bufferless_loss_gaussian,
    effective_bandwidth_vs_n,
    loss_vs_n,
)
from repro.simulation import aggregate_overflow_curve


@pytest.fixture()
def homogeneous():
    return SourceClass(
        "hom", correlation=0.8,
        marginal=NormalDistribution(10.0, 2.0), count=1,
    )


@pytest.fixture()
def mixture():
    return SourcePopulation([
        SourceClass(
            "hi", correlation=0.85,
            marginal=NormalDistribution(10.0, 2.0), count=6,
        ),
        SourceClass(
            "lo", correlation=0.75,
            marginal=NormalDistribution(5.0, 1.5), count=4,
        ),
    ])


class TestEffectiveBandwidth:
    def test_matches_norros_directly(self, homogeneous):
        curve = effective_bandwidth_vs_n(
            homogeneous, [1, 8, 64], buffer_size=2.0, epsilon=1e-6
        )
        for n, bandwidth in zip(curve.n_values, curve.bandwidths):
            mean = 10.0 * n
            expected = norros_effective_bandwidth(
                hurst=0.8,
                mean_rate=mean,
                variance_coefficient=4.0 / 10.0,
                buffer_size=2.0 * mean,
                epsilon=1e-6,
            )
            assert bandwidth == pytest.approx(expected)

    def test_per_source_bandwidth_decreases(self, mixture):
        curve = effective_bandwidth_vs_n(
            mixture, [1, 10, 100, 1000], buffer_size=1.0, epsilon=1e-6
        )
        assert np.all(np.diff(curve.per_source) < 0)
        assert np.all(np.diff(curve.utilizations) > 0)
        assert np.all(curve.utilizations < 1.0)
        assert np.all(curve.bandwidths > curve.mean_rates)

    def test_uses_dominant_hurst(self, mixture):
        assert effective_bandwidth_vs_n(
            mixture, [4], buffer_size=1.0, epsilon=1e-6
        ).hurst == pytest.approx(0.85)

    def test_validation(self, homogeneous):
        with pytest.raises(ValidationError):
            effective_bandwidth_vs_n(
                homogeneous, [], buffer_size=1.0, epsilon=1e-6
            )
        with pytest.raises(ValidationError):
            effective_bandwidth_vs_n(
                homogeneous, [0], buffer_size=1.0, epsilon=1e-6
            )
        with pytest.raises(ValidationError):
            effective_bandwidth_vs_n(
                homogeneous, [1], buffer_size=0.0, epsilon=1e-6
            )
        with pytest.raises(ValidationError):
            effective_bandwidth_vs_n(
                homogeneous, [1], buffer_size=1.0, epsilon=1.0
            )


class TestAdmission:
    def test_inverts_effective_bandwidth(self, mixture):
        curve = effective_bandwidth_vs_n(
            mixture, [137], buffer_size=1.0, epsilon=1e-6
        )
        admitted = admissible_sources(
            mixture,
            capacity=float(curve.bandwidths[0]),
            buffer_size=1.0,
            epsilon=1e-6,
            n_max=10_000,
        )
        assert admitted == 137

    def test_zero_when_capacity_too_small(self, homogeneous):
        assert admissible_sources(
            homogeneous, capacity=1.0, buffer_size=1.0, epsilon=1e-6
        ) == 0

    def test_saturates_at_n_max(self, homogeneous):
        assert admissible_sources(
            homogeneous, capacity=1e9, buffer_size=1.0, epsilon=1e-6,
            n_max=500,
        ) == 500

    def test_curve_is_monotone(self, mixture):
        curve = admission_control_curve(
            mixture, [100.0, 400.0, 1600.0], buffer_size=1.0,
            epsilon=1e-6, n_max=10_000,
        )
        assert np.all(np.diff(curve.max_sources) > 0)
        assert curve.hurst == pytest.approx(0.85)


class TestBufferlessLoss:
    def test_matches_monte_carlo(self):
        mean, std, capacity = 100.0, 8.0, 110.0
        rng = np.random.default_rng(5)
        draws = rng.normal(mean, std, size=2_000_000)
        mc = np.maximum(draws - capacity, 0.0).mean() / mean
        analytic = bufferless_loss_gaussian(
            mean_rate=mean, std=std, capacity=capacity
        )
        assert analytic == pytest.approx(mc, rel=0.02)

    def test_decreases_with_capacity(self):
        losses = [
            bufferless_loss_gaussian(
                mean_rate=100.0, std=8.0, capacity=c
            )
            for c in (105.0, 115.0, 130.0)
        ]
        assert losses[0] > losses[1] > losses[2] > 0


class TestLossVsN:
    def test_bufferless_gain(self, mixture):
        result = loss_vs_n(
            mixture, [10, 640], utilization=0.9, buffer_size=0.0,
            horizon=1024, replications=2, batch_size=64,
            random_state=7,
        )
        assert result.loss_ratios.shape == (2,)
        # Multiplexing gain: aggregate smooths, loss falls with N.
        assert result.loss_ratios[0] > result.loss_ratios[1]
        assert np.all(np.diff(result.theory) < 0)
        gains = result.multiplexing_gain
        assert gains[0] == 1.0
        assert gains[1] > 1.0

    def test_tracks_bufferless_theory(self, mixture):
        # At modest N the Gaussian bufferless formula is near-exact for
        # Normal-marginal mixtures; one decade of slack absorbs the
        # finite-horizon LRD noise.
        result = loss_vs_n(
            mixture, [20], utilization=0.85, buffer_size=0.0,
            horizon=4096, replications=4, batch_size=64,
            random_state=11,
        )
        assert result.loss_ratios[0] > 0
        assert abs(
            np.log10(result.loss_ratios[0])
            - np.log10(result.theory[0])
        ) < 1.0

    def test_finite_buffer_uses_norros_reference(self, mixture):
        result = loss_vs_n(
            mixture, [10, 40], utilization=0.9, buffer_size=0.5,
            horizon=512, replications=2, batch_size=32,
            random_state=3,
        )
        assert np.all(result.theory > 0)
        assert np.all(np.diff(result.theory) < 0)
        assert result.buffer_size == 0.5

    def test_validation(self, mixture):
        with pytest.raises(ValidationError):
            loss_vs_n(mixture, [], utilization=0.9)
        with pytest.raises(ValidationError):
            loss_vs_n(mixture, [4], utilization=1.0)
        with pytest.raises(ValidationError):
            loss_vs_n(mixture, [4], utilization=0.9, buffer_size=-1.0)


class TestAggregateOverflowCurve:
    def test_probabilities_decrease_with_buffer(self, mixture):
        engine = ShardedAggregateModel(mixture, batch_size=8)
        curve = aggregate_overflow_curve(
            engine, [0.02, 0.2, 2.0], utilization=0.95, horizon=2048,
            replications=3, shards=2, warmup=64, random_state=13,
        )
        probs = [e.probability for e in curve.estimates]
        assert all(0.0 <= p <= 1.0 for p in probs)
        assert probs[0] >= probs[1] >= probs[2]
        assert curve.estimates[0].replications == 3
        assert np.isfinite(curve.estimates[0].variance)

    def test_single_replication_variance_is_nan(self, mixture):
        engine = ShardedAggregateModel(mixture, batch_size=8)
        curve = aggregate_overflow_curve(
            engine, [0.1], utilization=0.95, horizon=256,
            random_state=1,
        )
        assert np.isnan(curve.estimates[0].variance)

    def test_requires_engine(self):
        with pytest.raises(ValidationError):
            aggregate_overflow_curve(
                "nope", [1.0], utilization=0.9, horizon=64
            )

    def test_processes_never_change_the_curve(self, mixture):
        # Replications are pre-seeded from spawn_rngs before the
        # pooling decision, so dispatching them onto the shared pool
        # must reproduce the serial curve bit for bit.
        engine = ShardedAggregateModel(mixture, batch_size=8)
        serial = aggregate_overflow_curve(
            engine, [0.05, 0.5], utilization=0.95, horizon=512,
            replications=3, warmup=32, random_state=17,
        )
        for processes in (1, 2, 4):
            pooled = aggregate_overflow_curve(
                engine, [0.05, 0.5], utilization=0.95, horizon=512,
                replications=3, warmup=32, processes=processes,
                random_state=17,
            )
            for a, b in zip(serial.estimates, pooled.estimates):
                assert b.probability == a.probability
                assert b.variance == a.variance
                assert b.replications == a.replications

    def test_parallel_replications_reject_instance_backends(self):
        from repro.processes import registry
        from repro.processes.correlation import FGNCorrelation

        source = registry.resolve("davies_harte", FGNCorrelation(0.8))
        klass = SourceClass(
            "inst", correlation=0.8,
            marginal=NormalDistribution(10.0, 2.0), count=4,
            backend=source,
        )
        engine = ShardedAggregateModel(klass, batch_size=4)
        with pytest.raises(ValidationError, match="registry-name"):
            aggregate_overflow_curve(
                engine, [0.1], utilization=0.95, horizon=64,
                replications=2, processes=2, random_state=0,
            )
        # Serial replications still accept instance backends.
        curve = aggregate_overflow_curve(
            engine, [0.1], utilization=0.95, horizon=64,
            replications=2, random_state=0,
        )
        assert curve.estimates[0].replications == 2


class TestLossVsNProcesses:
    def test_processes_never_change_the_loss_bits(self, mixture):
        serial = loss_vs_n(
            mixture, [16, 48], utilization=0.9, buffer_size=0.0,
            horizon=256, batch_size=8, random_state=5,
        )
        pooled = loss_vs_n(
            mixture, [16, 48], utilization=0.9, buffer_size=0.0,
            horizon=256, batch_size=8, processes=2, random_state=5,
        )
        np.testing.assert_array_equal(
            pooled.loss_ratios, serial.loss_ratios
        )
        np.testing.assert_array_equal(pooled.theory, serial.theory)

    def test_transport_and_pool_never_change_the_loss_bits(self, mixture):
        serial = loss_vs_n(
            mixture, [16, 48], utilization=0.9, buffer_size=0.0,
            horizon=256, batch_size=8, random_state=5,
        )
        for transport in ("pickle", "shm"):
            for pool in ("shared", "per-call"):
                pooled = loss_vs_n(
                    mixture, [16, 48], utilization=0.9, buffer_size=0.0,
                    horizon=256, batch_size=8, processes=2,
                    transport=transport, pool=pool, random_state=5,
                )
                np.testing.assert_array_equal(
                    pooled.loss_ratios, serial.loss_ratios
                )
