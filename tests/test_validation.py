"""Tests for the internal validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    check_1d_array,
    check_hurst,
    check_in_range,
    check_min_length,
    check_nonnegative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
)
from repro.exceptions import ValidationError


class TestCheckPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValidationError, match="positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive_int(-1, "x")

    def test_rejects_float(self):
        with pytest.raises(ValidationError, match="integer"):
            check_positive_int(2.5, "x")

    def test_rejects_bool(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, "x")


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_nonnegative_int(-1, "x")


class TestCheckPositiveFloat:
    def test_accepts_positive(self):
        assert check_positive_float(0.5, "x") == 0.5

    def test_accepts_int(self):
        assert check_positive_float(2, "x") == 2.0

    def test_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive_float(0.0, "x")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            check_positive_float(float("nan"), "x")

    def test_rejects_inf(self):
        with pytest.raises(ValidationError):
            check_positive_float(float("inf"), "x")

    def test_rejects_string(self):
        with pytest.raises(ValidationError):
            check_positive_float("1.0", "x")


class TestCheckInRange:
    def test_inclusive_bounds(self):
        assert check_in_range(0.0, "x", 0.0, 1.0) == 0.0
        assert check_in_range(1.0, "x", 0.0, 1.0) == 1.0

    def test_exclusive_low(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, "x", 0.0, 1.0, inclusive_low=False)

    def test_exclusive_high(self):
        with pytest.raises(ValidationError):
            check_in_range(1.0, "x", 0.0, 1.0, inclusive_high=False)

    def test_error_message_shows_brackets(self):
        with pytest.raises(ValidationError, match=r"\(0.*1.*\]"):
            check_in_range(-1, "x", 0.0, 1.0, inclusive_low=False)


class TestCheckProbability:
    def test_accepts_endpoints(self):
        assert check_probability(0, "p") == 0.0
        assert check_probability(1, "p") == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValidationError):
            check_probability(1.01, "p")


class TestCheckHurst:
    def test_accepts_interior(self):
        assert check_hurst(0.9) == 0.9

    @pytest.mark.parametrize("value", [0.0, 1.0, -0.2, 1.5])
    def test_rejects_boundary_and_outside(self, value):
        with pytest.raises(ValidationError):
            check_hurst(value)


class TestCheck1dArray:
    def test_returns_float_array(self):
        out = check_1d_array([1, 2, 3], "x")
        assert out.dtype == float
        np.testing.assert_array_equal(out, [1.0, 2.0, 3.0])

    def test_rejects_2d(self):
        with pytest.raises(ValidationError, match="one-dimensional"):
            check_1d_array([[1, 2], [3, 4]], "x")

    def test_rejects_empty_by_default(self):
        with pytest.raises(ValidationError, match="empty"):
            check_1d_array([], "x")

    def test_allows_empty_when_requested(self):
        out = check_1d_array([], "x", allow_empty=True)
        assert out.size == 0

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="finite"):
            check_1d_array([1.0, float("nan")], "x")


class TestCheckMinLength:
    def test_accepts_exact_length(self):
        out = check_min_length([1, 2, 3], "x", 3)
        assert out.size == 3

    def test_rejects_too_short(self):
        with pytest.raises(ValidationError, match="at least 5"):
            check_min_length([1, 2], "x", 5)
