"""Tests for importance sampling (Appendix B).

The key correctness properties:

- likelihood ratios average to 1 under the twisted law (unbiasedness of
  the underlying change of measure);
- with ``m* = 0`` the procedure reduces exactly to plain Monte Carlo;
- IS and MC estimates agree (within sampling error) on non-rare events;
- a good twist reduces the estimator's variance.
"""

import numpy as np
import pytest

from repro.exceptions import SimulationError, ValidationError
from repro.processes.correlation import (
    CompositeCorrelation,
    ExponentialCorrelation,
    FGNCorrelation,
    WhiteNoiseCorrelation,
)
from repro.simulation.importance import (
    TwistedBackground,
    is_overflow_probability,
    is_transient_overflow_curve,
)


def identity_transform(x):
    """Arrivals = background + 2 (mean 2, can exceed service)."""
    return x + 2.0


class TestTwistedBackground:
    def test_zero_twist_zero_loglr(self):
        bg = TwistedBackground(
            FGNCorrelation(0.8), 20, twisted_mean=0.0, size=5,
            random_state=0,
        )
        for _ in range(20):
            step = bg.step()
            np.testing.assert_array_equal(step.log_lr_increment, 0.0)

    def test_twist_shifts_values(self):
        corr = WhiteNoiseCorrelation()
        bg0 = TwistedBackground(corr, 10, twisted_mean=0.0, size=1000,
                                random_state=1)
        bg2 = TwistedBackground(corr, 10, twisted_mean=2.0, size=1000,
                                random_state=1)
        v0 = np.concatenate([bg0.step().twisted_values for _ in range(10)])
        v2 = np.concatenate([bg2.step().twisted_values for _ in range(10)])
        np.testing.assert_allclose(v2 - v0, 2.0)

    @pytest.mark.parametrize(
        "corr",
        [
            WhiteNoiseCorrelation(),
            ExponentialCorrelation(0.1),
            FGNCorrelation(0.8),
            CompositeCorrelation.paper_fit().with_continuity(),
        ],
    )
    def test_likelihood_ratios_average_to_one(self, corr):
        """E_{X'}[L] = 1: the fundamental change-of-measure identity.

        The twist and horizon are kept small so L is a lognormal with
        modest variance — large twists make the Monte Carlo mean of L
        converge impossibly slowly (that heavy tail is exactly why the
        estimator multiplies L by a rare-event indicator in practice).
        """
        horizon, size, m_star = 10, 100_000, 0.25
        bg = TwistedBackground(corr, horizon, twisted_mean=m_star,
                               size=size, random_state=2)
        log_lr = np.zeros(size)
        for _ in range(horizon):
            log_lr += bg.step().log_lr_increment
        assert np.exp(log_lr).mean() == pytest.approx(1.0, abs=0.05)

    def test_white_noise_loglr_closed_form(self):
        """For iid N(0,1), log L_k = -(2 x_k m* + m*^2)/2 exactly."""
        m_star = 1.5
        bg = TwistedBackground(
            WhiteNoiseCorrelation(), 5, twisted_mean=m_star, size=100,
            random_state=3,
        )
        for _ in range(5):
            step = bg.step()
            x = step.twisted_values - m_star  # untwisted draws
            expected = -(2 * x * m_star + m_star**2) / 2.0
            np.testing.assert_allclose(step.log_lr_increment, expected,
                                       atol=1e-12)


class TestIsOverflowProbability:
    def test_zero_twist_equals_mc_indicator_mean(self):
        est = is_overflow_probability(
            WhiteNoiseCorrelation(),
            identity_transform,
            service_rate=2.5,
            buffer_size=3.0,
            horizon=40,
            twisted_mean=0.0,
            replications=4000,
            random_state=4,
        )
        # With m*=0, weights are exactly 0/1 indicators.
        assert est.probability == pytest.approx(est.hits / 4000)
        assert est.twisted_mean == 0.0

    def test_is_matches_mc_on_non_rare_event(self):
        kwargs = dict(
            transform=identity_transform,
            service_rate=2.3,
            buffer_size=2.0,
            horizon=50,
        )
        corr = ExponentialCorrelation(0.2)
        mc = is_overflow_probability(
            corr, twisted_mean=0.0, replications=20_000, random_state=5,
            **kwargs,
        )
        is_est = is_overflow_probability(
            corr, twisted_mean=0.6, replications=20_000, random_state=6,
            **kwargs,
        )
        # Agreement within joint 3-sigma.
        sigma = np.hypot(mc.std_error, is_est.std_error)
        assert abs(mc.probability - is_est.probability) < 3 * sigma + 1e-12

    def test_variance_reduction_for_rare_event(self):
        kwargs = dict(
            transform=identity_transform,
            service_rate=3.5,
            buffer_size=8.0,
            horizon=80,
            replications=3000,
        )
        corr = ExponentialCorrelation(0.3)
        mc = is_overflow_probability(
            corr, twisted_mean=0.0, random_state=7, **kwargs
        )
        tw = is_overflow_probability(
            corr, twisted_mean=1.2, random_state=8, **kwargs
        )
        assert tw.hits > mc.hits
        assert tw.normalized_variance < mc.normalized_variance

    def test_estimate_in_unit_interval_and_finite(self):
        est = is_overflow_probability(
            FGNCorrelation(0.8),
            identity_transform,
            service_rate=3.0,
            buffer_size=5.0,
            horizon=50,
            twisted_mean=1.0,
            replications=500,
            random_state=9,
        )
        assert 0.0 <= est.probability <= 1.0
        assert np.isfinite(est.variance)
        assert est.mean_hit_time >= 0 or np.isnan(est.mean_hit_time)

    def test_reproducible(self):
        kwargs = dict(
            transform=identity_transform,
            service_rate=3.0,
            buffer_size=4.0,
            horizon=30,
            twisted_mean=0.8,
            replications=200,
        )
        corr = ExponentialCorrelation(0.1)
        a = is_overflow_probability(corr, random_state=11, **kwargs)
        b = is_overflow_probability(corr, random_state=11, **kwargs)
        assert a.probability == b.probability

    def test_rejects_non_callable_transform(self):
        with pytest.raises(ValidationError):
            is_overflow_probability(
                WhiteNoiseCorrelation(),
                "not callable",
                service_rate=1.0,
                buffer_size=1.0,
                horizon=10,
                twisted_mean=0.0,
                replications=10,
            )

    def test_rejects_bad_transform_output(self):
        with pytest.raises(SimulationError, match="transform"):
            is_overflow_probability(
                WhiteNoiseCorrelation(),
                lambda x: np.zeros(3),
                service_rate=1.0,
                buffer_size=1.0,
                horizon=10,
                twisted_mean=0.0,
                replications=10,
                random_state=0,
            )


class TestTransientCurve:
    def test_matches_mc_lindley_at_fixed_time(self):
        """IS transient estimate is unbiased: compare against direct MC."""
        from repro.queueing.lindley import lindley_recursion
        from repro.processes.hosking import hosking_generate

        corr = ExponentialCorrelation(0.2)
        mu, b, k = 2.4, 1.5, 30
        curve = is_transient_overflow_curve(
            corr,
            identity_transform,
            service_rate=mu,
            buffer_size=b,
            horizon=k,
            twisted_mean=0.4,
            replications=40_000,
            random_state=12,
        )
        x = hosking_generate(corr, k, size=40_000, random_state=13)
        arrivals = identity_transform(x)
        q = lindley_recursion(arrivals, mu)
        mc = np.mean(q[:, -1] > b)
        assert curve[-1] == pytest.approx(mc, abs=0.02)

    def test_full_buffer_start_dominates_early(self):
        corr = ExponentialCorrelation(0.2)
        common = dict(
            transform=identity_transform,
            service_rate=2.6,
            buffer_size=2.0,
            horizon=15,
            twisted_mean=0.0,
            replications=8000,
        )
        empty = is_transient_overflow_curve(
            corr, initial=0.0, random_state=14, **common
        )
        full = is_transient_overflow_curve(
            corr, initial=2.0, random_state=14, **common
        )
        assert full[0] >= empty[0]
        assert np.all(full[:5] >= empty[:5] - 0.02)

    def test_curve_length(self):
        curve = is_transient_overflow_curve(
            WhiteNoiseCorrelation(),
            identity_transform,
            service_rate=3.0,
            buffer_size=1.0,
            horizon=25,
            twisted_mean=0.0,
            replications=100,
            random_state=15,
        )
        assert curve.shape == (25,)

    def test_rejects_negative_initial(self):
        with pytest.raises(ValidationError):
            is_transient_overflow_curve(
                WhiteNoiseCorrelation(),
                identity_transform,
                service_rate=1.0,
                buffer_size=1.0,
                horizon=5,
                twisted_mean=0.0,
                replications=10,
                initial=-1.0,
            )


def seed_style_is_overflow(
    correlation, transform, *, service_rate, buffer_size, horizon,
    twisted_mean, replications, random_state,
):
    """The seed's loop, byte for byte: step first, no early stop, no
    retirement.  Used as the bit-exactness reference for the rewritten
    :func:`is_overflow_probability`."""
    from repro.simulation.estimators import ISEstimate

    background = TwistedBackground(
        correlation, horizon, twisted_mean=twisted_mean,
        size=replications, random_state=random_state, coeff_table=False,
    )
    n, mu, b = replications, service_rate, buffer_size
    workload = np.zeros(n)
    log_lr = np.zeros(n)
    weights = np.zeros(n)
    hit_times = np.full(n, -1, dtype=int)
    active = np.ones(n, dtype=bool)
    for i in range(horizon):
        ts = background.step()
        arrivals = np.asarray(transform(ts.twisted_values), dtype=float)
        log_lr[active] += ts.log_lr_increment[active]
        workload[active] += arrivals[active] - mu
        newly_hit = active & (workload > b)
        if np.any(newly_hit):
            weights[newly_hit] = np.exp(log_lr[newly_hit])
            hit_times[newly_hit] = i
            active[newly_hit] = False
        if not np.any(active):
            break
    probability = float(weights.mean())
    variance = float(weights.var(ddof=1)) / n if n > 1 else float("nan")
    hits = int((hit_times >= 0).sum())
    mean_hit = (
        float(hit_times[hit_times >= 0].mean()) if hits else float("nan")
    )
    return ISEstimate(
        probability=probability, variance=variance, replications=n,
        hits=hits, twisted_mean=float(twisted_mean),
        mean_hit_time=mean_hit,
    )


class TestLoopOrderAndCompaction:
    def test_bitwise_identical_to_seed_loop(self):
        kwargs = dict(
            transform=identity_transform,
            service_rate=2.6,
            buffer_size=2.5,
            horizon=60,
            twisted_mean=0.8,
            replications=500,
        )
        corr = CompositeCorrelation.paper_fit().with_continuity()
        new = is_overflow_probability(corr, random_state=30, **kwargs)
        ref = seed_style_is_overflow(corr, random_state=30, **kwargs)
        assert new.probability == ref.probability
        assert new.variance == ref.variance
        assert new.hits == ref.hits
        assert new.mean_hit_time == ref.mean_hit_time

    def test_no_step_once_all_replications_crossed(self):
        # Regression: the seed stepped the background once more after the
        # final replication crossed, paying a full O(n * k) Hosking step
        # whose output was discarded.
        calls = {"n": 0}
        original = TwistedBackground.step

        def counting_step(self):
            calls["n"] += 1
            return original(self)

        def always_hit(values):
            return values + 100.0  # every replication crosses at slot 0

        import repro.simulation.importance as imp

        old = imp.TwistedBackground.step
        imp.TwistedBackground.step = counting_step
        try:
            est = is_overflow_probability(
                WhiteNoiseCorrelation(),
                always_hit,
                service_rate=1.0,
                buffer_size=1.0,
                horizon=50,
                twisted_mean=0.0,
                replications=8,
                random_state=31,
            )
        finally:
            imp.TwistedBackground.step = old
        assert est.hits == 8
        assert calls["n"] == 1

    def test_retire_reported_by_active_count(self):
        bg = TwistedBackground(
            FGNCorrelation(0.8), 10, twisted_mean=0.5, size=6,
            random_state=32,
        )
        bg.step()
        assert bg.active_count == 6
        assert bg.retire(np.array([0, 5])) == 4
        assert bg.active_count == 4
        bg.step()  # still advances the shared clock
        assert bg.step_index == 2
