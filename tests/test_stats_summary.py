"""Tests for series summaries."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats.summary import summarize


class TestSummarize:
    def test_basic_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.median == 2.5

    def test_std_is_sample_std(self):
        s = summarize([1.0, 3.0])
        assert s.std == pytest.approx(np.std([1.0, 3.0], ddof=1))

    def test_single_sample_std_zero(self):
        assert summarize([5.0]).std == 0.0

    def test_percentiles_ordered(self):
        data = np.random.default_rng(0).exponential(size=10_000)
        s = summarize(data)
        assert s.median < s.p95 < s.p99 <= s.maximum

    def test_as_dict_keys(self):
        d = summarize([1.0, 2.0]).as_dict()
        assert set(d) == {
            "count", "mean", "std", "min", "max", "median", "p95", "p99"
        }

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            summarize([])
