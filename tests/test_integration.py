"""End-to-end integration tests across subsystems.

These exercise the full paper pipeline: synthesize an "empirical" trace
with the codec substrate, fit the unified/composite models blind,
regenerate, and push the result through the queueing and
importance-sampling machinery.
"""

import numpy as np
import pytest

from repro.core import UnifiedVBRModel, fit_report
from repro.estimators import sample_acf, variance_time_estimate
from repro.queueing import (
    AtmMultiplexer,
    steady_state_overflow_from_trace,
)
from repro.simulation import (
    is_overflow_probability,
    search_twisted_mean,
)
from repro.stats.histogram import frequency_histogram
from repro.stats.qq import qq_max_deviation
from repro.video import SyntheticCodecConfig, SyntheticMPEGCodec


class TestFitRegenerate:
    def test_marginal_histogram_overlap(self, fitted_unified, intra_trace):
        """Fig. 12-style check: trace and model histograms overlap.

        Pooled over replications — one LRD path's empirical marginal
        drifts with its low-frequency excursion."""
        from tests.conftest import pooled_generation

        y = pooled_generation(fitted_unified, paths=192, length=800,
                              seed=21)
        edges = np.linspace(0, intra_trace.sizes.max(), 61)
        h_trace = frequency_histogram(intra_trace.sizes, edges=edges)
        h_model = frequency_histogram(y, edges=edges)
        assert h_trace.overlap(h_model) > 0.9

    def test_qq_deviation_small(self, fitted_unified, intra_trace):
        """Fig. 13-style check: Q-Q points near the diagonal."""
        from tests.conftest import pooled_generation

        from repro.stats.qq import qq_points

        y = pooled_generation(fitted_unified, paths=192, length=800,
                              seed=22)
        # Quantile levels at or below 0.99: the extreme tail is
        # discretized by the 200-bin histogram inversion and is compared
        # separately via the histogram-overlap test.  Per-quantile
        # relative error tolerates the ~3% residual low-frequency jitter
        # that 192 pooled LRD paths still carry.
        qa, qb = qq_points(intra_trace.sizes, y, count=50)
        np.testing.assert_allclose(qb, qa, rtol=0.1)
        assert np.mean(np.abs(qb - qa) / qa) < 0.05

    def test_hurst_preserved_through_pipeline(self, fitted_unified):
        """The regenerated trace has the same Hurst exponent class."""
        y = fitted_unified.generate(
            1 << 16, method="davies-harte", random_state=23
        )
        est = variance_time_estimate(y)
        assert est.hurst == pytest.approx(fitted_unified.hurst, abs=0.12)

    def test_report_printable(self, fitted_unified):
        text = str(fit_report(fitted_unified))
        assert "Hurst" in text


class TestQueueingIntegration:
    def test_trace_driven_multiplexer(self, intra_trace):
        arrivals = intra_trace.normalized_sizes()
        mux = AtmMultiplexer.for_utilization(1.0, 0.8)
        result = mux.simulate(arrivals)
        assert result.queue.shape == arrivals.shape
        # At utilization 0.8 a self-similar source must queue sometimes.
        assert result.queue.max() > 0

    def test_trace_vs_model_overflow_agreement(self, fitted_unified,
                                               intra_trace):
        """Fig. 16's central comparison at bench scale: the model-driven
        IS estimate and the trace time-average agree within an order of
        magnitude at a moderate buffer size."""
        utilization, buffer_size = 0.8, 20.0
        trace_est = steady_state_overflow_from_trace(
            intra_trace.normalized_sizes(),
            1.0 / utilization,
            [buffer_size],
        )[0]
        model_est = is_overflow_probability(
            fitted_unified.background_correlation,
            fitted_unified.arrival_transform(),
            service_rate=1.0 / utilization,
            buffer_size=buffer_size,
            horizon=10 * int(buffer_size),
            twisted_mean=0.0,
            replications=600,
            random_state=31,
        )
        assert trace_est.probability > 0
        assert model_est.probability > 0
        ratio = model_est.probability / trace_est.probability
        assert 0.05 < ratio < 20.0

    def test_twist_search_on_fitted_model(self, fitted_unified):
        """Fig. 14 machinery runs end-to-end on a fitted video model."""
        result = search_twisted_mean(
            fitted_unified.background_correlation,
            fitted_unified.arrival_transform(),
            service_rate=1.0 / 0.4,
            buffer_size=25.0,
            horizon=120,
            twist_values=[0.0, 1.0, 2.0, 3.0],
            replications=300,
            random_state=32,
        )
        assert len(result.estimates) == 4
        assert result.best_twist in (0.0, 1.0, 2.0, 3.0)


class TestCompositePipeline:
    def test_composite_regeneration_statistics(self, fitted_composite,
                                               ibp_trace):
        # Pool several generated traces: single LRD paths wander.
        pooled = np.concatenate(
            [
                fitted_composite.generate(12_000, random_state=41 + i)
                .sizes
                for i in range(6)
            ]
        )
        assert pooled.mean() == pytest.approx(
            ibp_trace.sizes.mean(), rel=0.08
        )
        emp = sample_acf(ibp_trace.sizes, 36)
        mod = sample_acf(
            fitted_composite.generate(48_000, random_state=47).sizes, 36
        )
        assert mod[12] == pytest.approx(emp[12], abs=0.12)


class TestSmallScaleEndToEnd:
    def test_full_pipeline_from_scratch(self):
        """Fit-generate-queue in one sweep on a fresh small trace."""
        trace = SyntheticMPEGCodec(
            SyntheticCodecConfig.intraframe_paper_like(num_frames=30_000)
        ).generate(random_state=51)
        model = UnifiedVBRModel(max_lag=150).fit(trace, random_state=52)
        estimate = is_overflow_probability(
            model.background_correlation,
            model.arrival_transform(),
            service_rate=2.0,
            buffer_size=10.0,
            horizon=100,
            twisted_mean=1.0,
            replications=200,
            random_state=53,
        )
        assert 0.0 <= estimate.probability <= 1.0
