"""Tests for trace file I/O."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.video.gop import GopStructure
from repro.video.io import infer_gop_pattern, load_trace, save_trace
from repro.video.trace import VideoTrace


class TestInferGopPattern:
    def test_paper_pattern_recovered(self):
        gop = GopStructure.paper()
        types = gop.type_codes(120)
        inferred = infer_gop_pattern(types)
        assert inferred == gop

    def test_truncated_final_gop_ok(self):
        gop = GopStructure("IBBP")
        types = gop.type_codes(10)  # 2.5 GOPs
        assert infer_gop_pattern(types) == gop

    def test_inconsistent_sequence_gives_none(self):
        types = np.array(["I", "B", "B", "I", "P", "B"])
        assert infer_gop_pattern(types) is None

    def test_all_i_gives_none(self):
        # A single repeating "I" has period 1; infer returns that GOP.
        types = np.array(["I", "I", "I", "I"])
        inferred = infer_gop_pattern(types)
        assert inferred == GopStructure("I")

    def test_not_starting_with_i_gives_none(self):
        assert infer_gop_pattern(np.array(["B", "I", "B"])) is None


class TestRoundTrip:
    def test_plain_roundtrip(self, tmp_path):
        trace = VideoTrace(
            sizes=np.array([100.0, 250.0, 75.0]), frame_rate=25.0,
            name="t",
        )
        path = tmp_path / "plain.txt"
        save_trace(trace, path)
        loaded = load_trace(path, frame_rate=25.0)
        np.testing.assert_allclose(loaded.sizes, trace.sizes)
        assert loaded.frame_rate == 25.0
        assert loaded.gop is None

    def test_typed_roundtrip_recovers_gop(self, tmp_path):
        gop = GopStructure("IBBP")
        sizes = np.arange(1, 17, dtype=float) * 100
        trace = VideoTrace(sizes=sizes, gop=gop, name="typed")
        path = tmp_path / "typed.txt"
        save_trace(trace, path)
        loaded = load_trace(path)
        np.testing.assert_allclose(loaded.sizes, sizes)
        assert loaded.gop == gop

    def test_synthetic_codec_roundtrip(self, tmp_path, ibp_trace):
        path = tmp_path / "codec.txt"
        sub = ibp_trace.slice(0, 1200)
        save_trace(sub, path)
        loaded = load_trace(path)
        np.testing.assert_allclose(loaded.sizes, np.round(sub.sizes))
        assert loaded.gop == sub.gop

    def test_header_comments_skipped(self, tmp_path):
        path = tmp_path / "hdr.txt"
        path.write_text("# a comment\n\n100\n200 # trailing comment\n")
        loaded = load_trace(path)
        np.testing.assert_allclose(loaded.sizes, [100.0, 200.0])

    def test_bits_unit_conversion(self, tmp_path):
        path = tmp_path / "bits.txt"
        path.write_text("800\n1600\n")
        loaded = load_trace(path, unit="bits")
        np.testing.assert_allclose(loaded.sizes, [100.0, 200.0])

    def test_name_defaults_to_stem(self, tmp_path):
        path = tmp_path / "movie_trace.txt"
        path.write_text("10\n")
        assert load_trace(path).name == "movie_trace"


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValidationError, match="no frame records"):
            load_trace(path)

    def test_garbage_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("100\nnot-a-number\n")
        with pytest.raises(ValidationError, match="cannot parse"):
            load_trace(path)

    def test_too_many_fields(self, tmp_path):
        path = tmp_path / "bad2.txt"
        path.write_text("I 100 extra\n")
        with pytest.raises(ValidationError):
            load_trace(path)

    def test_bad_unit(self, tmp_path):
        path = tmp_path / "u.txt"
        path.write_text("100\n")
        with pytest.raises(ValidationError, match="unit"):
            load_trace(path, unit="nibbles")

    def test_save_rejects_non_trace(self, tmp_path):
        with pytest.raises(ValidationError):
            save_trace([1.0, 2.0], tmp_path / "x.txt")
