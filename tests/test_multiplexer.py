"""Tests for the ATM multiplexer model."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.queueing.multiplexer import (
    AtmMultiplexer,
    service_rate_for_utilization,
)


class TestServiceRate:
    def test_inverse_relationship(self):
        assert service_rate_for_utilization(1.0, 0.5) == 2.0
        assert service_rate_for_utilization(2.0, 0.8) == pytest.approx(2.5)

    def test_rejects_full_utilization(self):
        with pytest.raises(ValidationError):
            service_rate_for_utilization(1.0, 1.0)

    def test_rejects_zero_utilization(self):
        with pytest.raises(ValidationError):
            service_rate_for_utilization(1.0, 0.0)


class TestAtmMultiplexer:
    def test_infinite_buffer_is_lindley(self):
        mux = AtmMultiplexer(service_rate=2.0)
        arrivals = np.array([3.0, 0.0, 5.0, 0.0])
        result = mux.simulate(arrivals)
        np.testing.assert_allclose(result.queue, [1.0, 0.0, 3.0, 1.0])
        assert result.lost.sum() == 0.0
        assert result.loss_ratio == 0.0

    def test_finite_buffer_drops_overflow(self):
        mux = AtmMultiplexer(service_rate=1.0, buffer_size=2.0)
        arrivals = np.array([5.0, 0.0])
        result = mux.simulate(arrivals)
        # slot 1: q = 0 + 5 - 1 = 4 -> capped at 2, lost 2.
        np.testing.assert_allclose(result.queue, [2.0, 1.0])
        np.testing.assert_allclose(result.lost, [2.0, 0.0])
        assert result.offered == 5.0
        assert result.loss_ratio == pytest.approx(2.0 / 5.0)

    def test_bufferless_loss_accounting(self):
        # buffer_size=0: nothing queues; any work beyond the slot's
        # service is lost in the slot it arrives.
        mux = AtmMultiplexer(service_rate=2.0, buffer_size=0.0)
        arrivals = np.array([3.0, 1.0, 0.0])
        result = mux.simulate(arrivals)
        np.testing.assert_allclose(result.queue, [0.0, 0.0, 0.0])
        np.testing.assert_allclose(result.lost, [1.0, 0.0, 0.0])
        assert result.offered == 4.0
        assert result.loss_ratio == pytest.approx(1.0 / 4.0)

    def test_bufferless_batch_paths(self, rng):
        mux = AtmMultiplexer(service_rate=1.0, buffer_size=0.0)
        arrivals = rng.exponential(size=(4, 100))
        result = mux.simulate(arrivals)
        np.testing.assert_allclose(result.queue, 0.0)
        np.testing.assert_allclose(
            result.lost, np.maximum(arrivals - 1.0, 0.0)
        )

    def test_negative_buffer_rejected(self):
        with pytest.raises(ValidationError):
            AtmMultiplexer(service_rate=1.0, buffer_size=-1.0)

    def test_for_utilization_factory(self):
        mux = AtmMultiplexer.for_utilization(1.0, 0.25)
        assert mux.service_rate == 4.0
        assert mux.utilization(1.0) == pytest.approx(0.25)

    def test_initial_above_capacity_rejected(self):
        mux = AtmMultiplexer(1.0, buffer_size=2.0)
        with pytest.raises(ValidationError):
            mux.simulate(np.ones(3), initial=3.0)

    def test_batch_finite_buffer(self, rng):
        mux = AtmMultiplexer(1.0, buffer_size=5.0)
        arrivals = rng.exponential(size=(10, 50))
        result = mux.simulate(arrivals)
        assert result.queue.shape == (10, 50)
        assert np.all(result.queue <= 5.0)
        assert np.all(result.lost >= 0.0)

    def test_work_conservation(self):
        """offered = served + lost + final queue content (per path)."""
        rng = np.random.default_rng(3)
        arrivals = rng.exponential(size=100) * 1.5
        mu = 1.0
        mux = AtmMultiplexer(mu, buffer_size=4.0)
        result = mux.simulate(arrivals)
        # Served in slot j is min(mu, q_{j-1} + a_j - lost_j ... ); easier:
        # q_j = q_{j-1} + a_j - served_j - lost_j with served_j <= mu.
        q_prev = 0.0
        for j, a in enumerate(arrivals):
            served = q_prev + a - result.lost[j] - result.queue[j]
            assert served <= mu + 1e-9
            assert served >= -1e-9
            q_prev = result.queue[j]

    def test_rejects_3d_arrivals(self):
        with pytest.raises(ValidationError):
            AtmMultiplexer(1.0, buffer_size=1.0).simulate(np.ones((2, 2, 2)))

    def test_repr(self):
        assert "inf" in repr(AtmMultiplexer(1.0))
        assert "5" in repr(AtmMultiplexer(1.0, buffer_size=5.0))


class TestFiniteBufferDedup:
    def test_simulate_matches_shared_recursion_bitwise(self, rng):
        # The multiplexer's finite-buffer path is the shared
        # finite_lindley_recursion — same arrays, bit for bit.
        from repro.queueing.lindley import finite_lindley_recursion

        arrivals = rng.gamma(2.0, 1.0, size=(3, 48))
        mux = AtmMultiplexer(2.2, buffer_size=4.0)
        result = mux.simulate(arrivals, initial=1.0)
        queue, lost = finite_lindley_recursion(
            arrivals, 2.2, 4.0, initial=1.0
        )
        np.testing.assert_array_equal(result.queue, queue)
        np.testing.assert_array_equal(result.lost, lost)

    def test_infinite_buffer_matches_lindley_recursion_bitwise(self, rng):
        from repro.queueing.lindley import lindley_recursion

        arrivals = rng.gamma(2.0, 1.0, size=32)
        result = AtmMultiplexer(2.5).simulate(arrivals)
        np.testing.assert_array_equal(
            result.queue, lindley_recursion(arrivals, 2.5)
        )
        assert not result.lost.any()
