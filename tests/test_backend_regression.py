"""Bit-identity of registry-routed generation vs the direct call path.

The backend registry must be a pure indirection: selecting
``backend="hosking"`` (or ``"davies-harte"``) through the models has to
reproduce, bit for bit, what calling the generator function directly on
the fitted background correlation produced before the refactor.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.processes.davies_harte import davies_harte_generate
from repro.processes.hosking import hosking_generate
from repro.video.gop import FrameType

N = 600
SEED = 20260805


class TestUnifiedModelBitIdentity:
    @pytest.mark.parametrize(
        "backend,generator",
        [
            ("hosking", hosking_generate),
            ("davies-harte", davies_harte_generate),
        ],
    )
    def test_generate_matches_direct_generator_call(
        self, fitted_unified, backend, generator
    ):
        via_registry = fitted_unified.generate(
            N, backend=backend, random_state=SEED
        )
        direct = np.asarray(
            fitted_unified.transform_(
                generator(
                    fitted_unified.background_, N, random_state=SEED
                )
            ),
            dtype=float,
        )
        np.testing.assert_array_equal(via_registry, direct)

    def test_legacy_method_alias_matches_backend(self, fitted_unified):
        via_method = fitted_unified.generate(
            N, method="hosking", random_state=SEED
        )
        via_backend = fitted_unified.generate(
            N, backend="hosking", random_state=SEED
        )
        np.testing.assert_array_equal(via_method, via_backend)

    def test_batched_background_matches_direct(self, fitted_unified):
        via_registry = fitted_unified.generate_background(
            128, size=4, backend="hosking", random_state=SEED
        )
        direct = hosking_generate(
            fitted_unified.background_, 128, size=4, random_state=SEED
        )
        np.testing.assert_array_equal(via_registry, direct)

    def test_auto_is_davies_harte(self, fitted_unified):
        auto = fitted_unified.generate(N, random_state=SEED)
        explicit = fitted_unified.generate(
            N, backend="davies_harte", random_state=SEED
        )
        np.testing.assert_array_equal(auto, explicit)


class TestCompositeModelBitIdentity:
    @pytest.mark.parametrize(
        "backend,generator",
        [
            ("hosking", hosking_generate),
            ("davies-harte", davies_harte_generate),
        ],
    )
    def test_generate_matches_direct_generator_call(
        self, fitted_composite, backend, generator
    ):
        via_registry = fitted_composite.generate(
            N, backend=backend, random_state=SEED
        )
        # The pre-refactor path: one shared background draw, then the
        # per-frame-type transform applied under each GOP mask.
        x = generator(
            fitted_composite.background_, N, random_state=SEED
        )
        sizes = np.empty(N, dtype=float)
        for frame_type in FrameType:
            key = frame_type.value
            if key not in fitted_composite.transforms_:
                continue
            mask = fitted_composite.gop_.mask(frame_type, N)
            if not mask.any():
                continue
            sizes[mask] = np.asarray(
                fitted_composite.transforms_[key](x[mask]), dtype=float
            )
        np.testing.assert_array_equal(via_registry.sizes, sizes)

    def test_legacy_method_alias_matches_backend(self, fitted_composite):
        via_method = fitted_composite.generate(
            N, method="hosking", random_state=SEED
        )
        via_backend = fitted_composite.generate(
            N, backend="hosking", random_state=SEED
        )
        np.testing.assert_array_equal(
            via_method.sizes, via_backend.sizes
        )


class TestSpectralCacheBitIdentity:
    """The shared spectral cache is invisible in fitted-model output."""

    def test_unified_cached_equals_bypass(self, fitted_unified):
        from repro.processes.spectral_cache import clear_spectral_cache

        clear_spectral_cache()
        cached = fitted_unified.generate(
            N, backend="davies-harte", random_state=SEED
        )
        bypass = np.asarray(
            fitted_unified.transform_(
                davies_harte_generate(
                    fitted_unified.background_, N,
                    random_state=SEED, spectral_table=False,
                )
            ),
            dtype=float,
        )
        np.testing.assert_array_equal(cached, bypass)

    def test_composite_cached_equals_bypass(self, fitted_composite):
        from repro.processes.spectral_cache import clear_spectral_cache

        clear_spectral_cache()
        cached = fitted_composite.generate_background(
            N, backend="davies-harte", random_state=SEED
        )
        bypass = davies_harte_generate(
            fitted_composite.background_, N,
            random_state=SEED, spectral_table=False,
        )
        np.testing.assert_array_equal(cached, bypass)

    def test_repeated_generation_hits_cache(self, fitted_unified):
        from repro.processes.spectral_cache import (
            clear_spectral_cache,
            spectral_cache_info,
        )

        clear_spectral_cache()
        a = fitted_unified.generate(N, random_state=SEED)
        b = fitted_unified.generate(N, random_state=SEED)
        np.testing.assert_array_equal(a, b)
        info = spectral_cache_info()
        assert info.misses == 1
        assert info.hits >= 1
