"""Unit tests for the cross-estimator bake-off harness."""

import json

import numpy as np
import pytest

from repro.estimators.bakeoff import (
    HURST_ESTIMATORS,
    BakeoffCell,
    run_bakeoff,
)
from repro.exceptions import EstimationError, ValidationError
from repro.observability import RunContext

QUICK = dict(
    hursts=(0.8,),
    horizons=(1024,),
    backends=("davies_harte",),
    estimators=("mavar", "rs", "variance_time"),
    replications=3,
    random_state=42,
)


class TestRegistry:
    def test_all_six_estimators_registered(self):
        assert set(HURST_ESTIMATORS) == {
            "variance_time",
            "rs",
            "periodogram",
            "dfa",
            "whittle",
            "mavar",
        }

    def test_specs_run_on_fgn(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal(256)
        for spec in HURST_ESTIMATORS.values():
            hurst, stderr = spec.run(x)
            assert 0.0 < hurst < 1.2
            assert spec.estimate(x) == hurst
            assert np.isnan(stderr) or stderr >= 0


class TestRunBakeoff:
    def test_deterministic_for_fixed_seed(self):
        a = run_bakeoff(**QUICK)
        b = run_bakeoff(**QUICK)
        for ca, cb in zip(a.cells, b.cells):
            np.testing.assert_array_equal(ca.estimates, cb.estimates)

    def test_paired_design_shares_paths(self):
        # All estimators of a cell see the same paths, so dropping an
        # estimator must not change another estimator's estimates.
        full = run_bakeoff(**QUICK)
        solo = run_bakeoff(**{**QUICK, "estimators": ("rs",)})
        np.testing.assert_array_equal(
            full.cell("rs", "davies_harte", 0.8, 1024).estimates,
            solo.cell("rs", "davies_harte", 0.8, 1024).estimates,
        )

    def test_grid_shape(self):
        res = run_bakeoff(
            hursts=(0.7, 0.8),
            horizons=(512, 1024),
            backends=("davies_harte", "fgn"),
            estimators=("mavar", "rs"),
            replications=2,
            random_state=1,
        )
        assert len(res.cells) == 2 * 2 * 2 * 2
        cell = res.cell("mavar", "fgn", 0.7, 512)
        assert cell.estimates.shape == (2,)

    def test_metrics_recorded(self):
        ctx = RunContext()
        run_bakeoff(**QUICK, metrics=ctx)
        names = {m["name"] for m in ctx.registry.snapshot()}
        assert {
            "bakeoff.cells",
            "bakeoff.paths",
            "bakeoff.estimates",
            "bakeoff.generate_seconds",
            "bakeoff.estimator_seconds",
            "bakeoff.bias",
            "bakeoff.rmse",
            "bakeoff.coverage",
        } <= names

    def test_metrics_do_not_perturb_estimates(self):
        plain = run_bakeoff(**QUICK)
        instrumented = run_bakeoff(**QUICK, metrics=RunContext())
        for ca, cb in zip(plain.cells, instrumented.cells):
            np.testing.assert_array_equal(ca.estimates, cb.estimates)

    def test_summary_winner_and_table(self):
        res = run_bakeoff(**QUICK)
        summary = res.summary()
        assert set(summary) == set(QUICK["estimators"])
        for row in summary.values():
            assert set(row) == {
                "abs_bias", "std", "rmse", "coverage",
                "failures", "seconds",
            }
        assert res.winner("rmse") in QUICK["estimators"]
        table = res.table()
        for name in QUICK["estimators"]:
            assert name in table
        with pytest.raises(ValidationError, match="metric"):
            res.winner("bias")

    def test_to_dict_json_ready(self):
        res = run_bakeoff(**QUICK)
        payload = json.loads(json.dumps(res.to_dict()))
        assert payload["replications"] == 3
        assert len(payload["cells"]) == 3
        assert payload["winner_rmse"] in QUICK["estimators"]

    def test_coverage_between_zero_and_one(self):
        res = run_bakeoff(**QUICK)
        for cell in res.cells:
            if np.isfinite(cell.coverage):
                assert 0.0 <= cell.coverage <= 1.0

    def test_whittle_has_no_coverage(self):
        res = run_bakeoff(
            **{**QUICK, "estimators": ("whittle",), "horizons": (256,)}
        )
        cell = res.cell("whittle", "davies_harte", 0.8, 256)
        assert np.isnan(cell.coverage)
        assert np.all(np.isnan(cell.stderrs))

    def test_all_backends_token(self):
        res = run_bakeoff(
            hursts=(0.8,),
            horizons=(256,),
            backends=("all",),
            estimators=("rs",),
            replications=1,
            random_state=3,
        )
        assert len(res.backends) >= 6

    def test_cell_lookup_missing(self):
        res = run_bakeoff(**QUICK)
        with pytest.raises(ValidationError, match="no bake-off cell"):
            res.cell("rs", "hosking", 0.8, 1024)


class TestValidation:
    def test_unknown_estimator(self):
        with pytest.raises(ValidationError, match="estimator"):
            run_bakeoff(**{**QUICK, "estimators": ("hurstmax",)})

    def test_unknown_backend(self):
        with pytest.raises(ValidationError, match="backend"):
            run_bakeoff(**{**QUICK, "backends": ("oracle",)})

    def test_hurst_out_of_range(self):
        with pytest.raises(ValidationError, match="hurst"):
            run_bakeoff(**{**QUICK, "hursts": (1.0,)})

    def test_horizon_below_estimator_minimum(self):
        with pytest.raises(ValidationError, match="horizon"):
            run_bakeoff(
                **{
                    **QUICK,
                    "estimators": ("dfa",),
                    "horizons": (32,),
                }
            )

    def test_bad_replications(self):
        with pytest.raises(ValidationError, match="replications"):
            run_bakeoff(**{**QUICK, "replications": 0})


class TestFailureIsolation:
    def test_estimation_error_becomes_nan_and_counter(self):
        # A degenerate estimator entry: patch in a spec whose run
        # always raises, via the estimators list + monkeypatched
        # registry entry.
        from repro.estimators import bakeoff as mod

        failing = mod.EstimatorSpec(
            "failing",
            lambda x: (_ for _ in ()).throw(EstimationError("boom")),
            min_length=2,
        )
        original = dict(mod.HURST_ESTIMATORS)
        mod.HURST_ESTIMATORS["failing"] = failing
        try:
            ctx = RunContext()
            res = run_bakeoff(
                hursts=(0.8,),
                horizons=(256,),
                backends=("davies_harte",),
                estimators=("failing", "rs"),
                replications=2,
                random_state=5,
                metrics=ctx,
            )
        finally:
            mod.HURST_ESTIMATORS.clear()
            mod.HURST_ESTIMATORS.update(original)
        cell = res.cell("failing", "davies_harte", 0.8, 256)
        assert cell.failures == 2
        assert np.all(np.isnan(cell.estimates))
        assert np.isnan(cell.bias) and np.isnan(cell.rmse)
        failures = [
            m for m in ctx.registry.snapshot()
            if m["name"] == "bakeoff.failures"
        ]
        assert failures and sum(m["value"] for m in failures) == 2.0
        # The healthy estimator is untouched.
        assert res.cell("rs", "davies_harte", 0.8, 256).failures == 0

    def test_all_failed_summary_is_nan_winner_skips(self):
        cell = BakeoffCell(
            estimator="x",
            backend="b",
            hurst=0.8,
            horizon=64,
            estimates=np.array([np.nan, np.nan]),
            stderrs=np.array([np.nan, np.nan]),
            seconds=0.0,
        )
        assert np.isnan(cell.bias)
        assert np.isnan(cell.std)
        assert np.isnan(cell.rmse)
        assert np.isnan(cell.coverage)
        assert cell.failures == 2
