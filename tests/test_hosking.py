"""Tests for Hosking's exact generator."""

import numpy as np
import pytest

from repro.exceptions import GenerationError, ValidationError
from repro.processes.correlation import (
    ExponentialCorrelation,
    FGNCorrelation,
    WhiteNoiseCorrelation,
)
from repro.processes.hosking import HoskingProcess, hosking_generate


class TestHoskingGenerate:
    def test_shapes(self):
        assert hosking_generate(FGNCorrelation(0.7), 50).shape == (50,)
        assert hosking_generate(
            FGNCorrelation(0.7), 50, size=3
        ).shape == (3, 50)

    def test_reproducible_with_seed(self):
        a = hosking_generate(FGNCorrelation(0.8), 30, random_state=5)
        b = hosking_generate(FGNCorrelation(0.8), 30, random_state=5)
        np.testing.assert_array_equal(a, b)

    def test_mean_shift(self):
        x = hosking_generate(
            WhiteNoiseCorrelation(), 2000, mean=10.0, random_state=0
        )
        assert x.mean() == pytest.approx(10.0, abs=0.2)

    def test_white_noise_matches_innovations(self):
        z = np.random.default_rng(1).standard_normal(20)
        x = hosking_generate(WhiteNoiseCorrelation(), 20, innovations=z)
        np.testing.assert_allclose(x, z)

    def test_explicit_acvf_sequence(self):
        acvf = 0.5 ** np.arange(30)
        x = hosking_generate(acvf, 30, random_state=2)
        assert x.shape == (30,)

    def test_rejects_short_acvf(self):
        with pytest.raises(ValidationError, match="cannot generate"):
            hosking_generate([1.0, 0.5], 10)

    def test_rejects_bad_innovation_shape(self):
        with pytest.raises(ValidationError, match="innovations"):
            hosking_generate(
                FGNCorrelation(0.7), 10, innovations=np.zeros(5)
            )

    def test_ar1_sample_correlation(self):
        phi = 0.7
        acvf = phi ** np.arange(400)
        x = hosking_generate(acvf, 400, size=200, random_state=3)
        lag1 = np.mean(
            [np.mean(row[:-1] * row[1:]) for row in x]
        )
        assert lag1 == pytest.approx(phi, abs=0.05)

    def test_unit_variance(self):
        x = hosking_generate(FGNCorrelation(0.6), 200, size=300,
                             random_state=4)
        assert x.var() == pytest.approx(1.0, abs=0.05)

    def test_exact_fgn_covariance_at_lag(self):
        # Many replications, zero-mean known: E[X_0 X_k] = r(k).
        corr = FGNCorrelation(0.85)
        x = hosking_generate(corr, 50, size=8000, random_state=6)
        sample = np.mean(x[:, 0] * x[:, 10])
        assert sample == pytest.approx(float(corr(10)), abs=0.05)


class TestHoskingProcess:
    def test_matches_batch_with_same_innovations(self):
        corr = FGNCorrelation(0.8)
        n, size = 40, 6
        rng = np.random.default_rng(9)
        z = rng.standard_normal((size, n))
        batch = hosking_generate(corr, n, size=size, innovations=z)

        class _FixedRng:
            def __init__(self, table):
                self._table = table
                self._i = 0

            def standard_normal(self, count):
                col = self._table[:, self._i]
                self._i += 1
                return col.copy()

        proc = HoskingProcess(corr, n, size=size, random_state=0)
        proc._rng = _FixedRng(z)  # inject the same innovations
        out = proc.run()
        np.testing.assert_allclose(out, batch, atol=1e-12)

    def test_step_metadata(self):
        proc = HoskingProcess(FGNCorrelation(0.7), 10, size=4,
                              random_state=1)
        first = proc.step()
        assert first.cond_variance == pytest.approx(1.0)
        assert first.phi_sum == 0.0
        np.testing.assert_array_equal(first.cond_mean, np.zeros(4))
        second = proc.step()
        assert 0 < second.cond_variance < 1.0
        assert second.phi_sum != 0.0

    def test_horizon_exhaustion(self):
        proc = HoskingProcess(FGNCorrelation(0.7), 3, random_state=1)
        proc.run()
        with pytest.raises(GenerationError, match="horizon"):
            proc.step()

    def test_run_partial_then_rest(self):
        proc = HoskingProcess(FGNCorrelation(0.7), 10, size=2,
                              random_state=2)
        proc.run(4)
        assert proc.step_index == 4
        out = proc.run()
        assert out.shape == (2, 10)

    def test_run_rejects_overshoot(self):
        proc = HoskingProcess(FGNCorrelation(0.7), 5, random_state=3)
        with pytest.raises(GenerationError, match="remain"):
            proc.run(6)

    def test_history_is_copy(self):
        proc = HoskingProcess(FGNCorrelation(0.7), 5, random_state=4)
        proc.step()
        h = proc.history
        h[:] = 99.0
        assert not np.any(proc.history == 99.0)


class TestEdgeCases:
    def test_single_sample(self):
        x = hosking_generate(FGNCorrelation(0.9), 1, random_state=20)
        assert x.shape == (1,)

    def test_single_sample_batch(self):
        x = hosking_generate(
            FGNCorrelation(0.9), 1, size=7, random_state=21
        )
        assert x.shape == (7, 1)

    def test_near_unit_correlation_stable(self):
        # AR(1) with phi = 0.999 sits close to the PD boundary.
        acvf = 0.999 ** np.arange(6)
        x = hosking_generate(acvf, 6, size=100, random_state=22)
        assert np.all(np.isfinite(x))
        lag1 = float(np.mean(x[:, 0] * x[:, 1]))
        assert lag1 == pytest.approx(0.999, abs=0.15)


class TestInnovationsValidation:
    def test_misshaped_flat_innovations_rejected(self):
        # Regression: a (2, 10)-shaped array has 20 elements and used to
        # be silently reshaped into a single length-20 path.
        z = np.zeros((2, 10))
        with pytest.raises(ValidationError, match="shape"):
            hosking_generate(FGNCorrelation(0.7), 20, innovations=z)

    def test_misshaped_batch_innovations_rejected(self):
        z = np.zeros(20)
        with pytest.raises(ValidationError, match="shape"):
            hosking_generate(
                FGNCorrelation(0.7), 10, size=2, innovations=z
            )

    def test_exact_shapes_still_accepted(self):
        z = np.random.default_rng(0).standard_normal(12)
        x = hosking_generate(FGNCorrelation(0.7), 12, innovations=z)
        assert x.shape == (12,)
        zb = z.reshape(3, 4)
        xb = hosking_generate(
            FGNCorrelation(0.7), 4, size=3, innovations=zb
        )
        assert xb.shape == (3, 4)


class TestRunAtExhaustedHorizon:
    def test_run_default_after_completion_returns_history(self):
        # Regression: run(steps=None) on a finished process used to
        # raise "steps must be a positive int, got 0".
        proc = HoskingProcess(FGNCorrelation(0.7), 6, size=2,
                              random_state=11)
        first = proc.run()
        again = proc.run()
        np.testing.assert_array_equal(first, again)
        assert proc.step_index == 6

    def test_explicit_steps_after_completion_still_rejected(self):
        proc = HoskingProcess(FGNCorrelation(0.7), 4, random_state=12)
        proc.run()
        with pytest.raises(GenerationError, match="remain"):
            proc.run(1)


class TestCoefficientTableParity:
    def test_generate_table_matches_incremental(self):
        model = FGNCorrelation(0.85)
        rng = np.random.default_rng(7)
        z = rng.standard_normal((4, 60))
        with_table = hosking_generate(
            model, 60, size=4, innovations=z, coeff_table=True
        )
        without = hosking_generate(
            model, 60, size=4, innovations=z, coeff_table=False
        )
        np.testing.assert_array_equal(with_table, without)

    def test_process_table_matches_incremental(self):
        model = ExponentialCorrelation(0.3)
        a = HoskingProcess(model, 30, size=3, random_state=13,
                           coeff_table=True)
        b = HoskingProcess(model, 30, size=3, random_state=13,
                           coeff_table=False)
        np.testing.assert_array_equal(a.run(), b.run())

    def test_explicit_table_instance(self):
        from repro.processes.coeff_table import CoefficientTable

        model = FGNCorrelation(0.75)
        table = CoefficientTable(model.acvf(25))
        a = HoskingProcess(model, 25, random_state=14, coeff_table=table)
        b = HoskingProcess(model, 25, random_state=14, coeff_table=False)
        np.testing.assert_array_equal(a.run(), b.run())


class TestRetirement:
    def test_retired_rows_freeze_active_rows_unchanged(self):
        model = FGNCorrelation(0.8)
        ref = HoskingProcess(model, 20, size=4, random_state=15)
        full = ref.run()
        proc = HoskingProcess(model, 20, size=4, random_state=15)
        proc.run(8)
        assert proc.retire(np.array([False, True, False, True])) == 2
        out = proc.run()
        # Active rows are bit-identical to the never-retired run;
        # retired rows stay frozen at zero past the retirement step.
        np.testing.assert_array_equal(out[0], full[0])
        np.testing.assert_array_equal(out[2], full[2])
        np.testing.assert_array_equal(out[1, :8], full[1, :8])
        assert np.all(out[1, 8:] == 0.0)
        assert np.all(out[3, 8:] == 0.0)

    def test_retire_by_indices(self):
        proc = HoskingProcess(FGNCorrelation(0.7), 10, size=5,
                              random_state=16)
        assert proc.retire(np.array([1, 3])) == 3
        assert proc.active_count == 3
        np.testing.assert_array_equal(
            proc.active_mask, [True, False, True, False, True]
        )

    def test_retire_is_permanent_and_idempotent(self):
        proc = HoskingProcess(FGNCorrelation(0.7), 10, size=3,
                              random_state=17)
        proc.retire(np.array([0]))
        proc.retire(np.array([0]))
        assert proc.active_count == 2

    def test_retire_validation(self):
        proc = HoskingProcess(FGNCorrelation(0.7), 10, size=3,
                              random_state=18)
        with pytest.raises(ValidationError):
            proc.retire(np.array([0.5, 1.5]))
        with pytest.raises(ValidationError):
            proc.retire(np.array([5]))
        with pytest.raises(ValidationError):
            proc.retire(np.ones(4, dtype=bool))

    def test_all_retired_step_is_cheap_noop_draw(self):
        # Even fully retired, step() must keep consuming innovations so
        # that later un-retired processes cannot desynchronize streams.
        proc = HoskingProcess(FGNCorrelation(0.7), 6, size=2,
                              random_state=19)
        proc.step()
        proc.retire(np.array([True, True]))
        out = proc.step()
        assert np.all(out.values == 0.0)
        assert proc.step_index == 2
