"""Tests for Hosking's exact generator."""

import numpy as np
import pytest

from repro.exceptions import GenerationError, ValidationError
from repro.processes.correlation import (
    ExponentialCorrelation,
    FGNCorrelation,
    WhiteNoiseCorrelation,
)
from repro.processes.hosking import HoskingProcess, hosking_generate


class TestHoskingGenerate:
    def test_shapes(self):
        assert hosking_generate(FGNCorrelation(0.7), 50).shape == (50,)
        assert hosking_generate(
            FGNCorrelation(0.7), 50, size=3
        ).shape == (3, 50)

    def test_reproducible_with_seed(self):
        a = hosking_generate(FGNCorrelation(0.8), 30, random_state=5)
        b = hosking_generate(FGNCorrelation(0.8), 30, random_state=5)
        np.testing.assert_array_equal(a, b)

    def test_mean_shift(self):
        x = hosking_generate(
            WhiteNoiseCorrelation(), 2000, mean=10.0, random_state=0
        )
        assert x.mean() == pytest.approx(10.0, abs=0.2)

    def test_white_noise_matches_innovations(self):
        z = np.random.default_rng(1).standard_normal(20)
        x = hosking_generate(WhiteNoiseCorrelation(), 20, innovations=z)
        np.testing.assert_allclose(x, z)

    def test_explicit_acvf_sequence(self):
        acvf = 0.5 ** np.arange(30)
        x = hosking_generate(acvf, 30, random_state=2)
        assert x.shape == (30,)

    def test_rejects_short_acvf(self):
        with pytest.raises(ValidationError, match="cannot generate"):
            hosking_generate([1.0, 0.5], 10)

    def test_rejects_bad_innovation_shape(self):
        with pytest.raises(ValidationError, match="innovations"):
            hosking_generate(
                FGNCorrelation(0.7), 10, innovations=np.zeros(5)
            )

    def test_ar1_sample_correlation(self):
        phi = 0.7
        acvf = phi ** np.arange(400)
        x = hosking_generate(acvf, 400, size=200, random_state=3)
        lag1 = np.mean(
            [np.mean(row[:-1] * row[1:]) for row in x]
        )
        assert lag1 == pytest.approx(phi, abs=0.05)

    def test_unit_variance(self):
        x = hosking_generate(FGNCorrelation(0.6), 200, size=300,
                             random_state=4)
        assert x.var() == pytest.approx(1.0, abs=0.05)

    def test_exact_fgn_covariance_at_lag(self):
        # Many replications, zero-mean known: E[X_0 X_k] = r(k).
        corr = FGNCorrelation(0.85)
        x = hosking_generate(corr, 50, size=8000, random_state=6)
        sample = np.mean(x[:, 0] * x[:, 10])
        assert sample == pytest.approx(float(corr(10)), abs=0.05)


class TestHoskingProcess:
    def test_matches_batch_with_same_innovations(self):
        corr = FGNCorrelation(0.8)
        n, size = 40, 6
        rng = np.random.default_rng(9)
        z = rng.standard_normal((size, n))
        batch = hosking_generate(corr, n, size=size, innovations=z)

        class _FixedRng:
            def __init__(self, table):
                self._table = table
                self._i = 0

            def standard_normal(self, count):
                col = self._table[:, self._i]
                self._i += 1
                return col.copy()

        proc = HoskingProcess(corr, n, size=size, random_state=0)
        proc._rng = _FixedRng(z)  # inject the same innovations
        out = proc.run()
        np.testing.assert_allclose(out, batch, atol=1e-12)

    def test_step_metadata(self):
        proc = HoskingProcess(FGNCorrelation(0.7), 10, size=4,
                              random_state=1)
        first = proc.step()
        assert first.cond_variance == pytest.approx(1.0)
        assert first.phi_sum == 0.0
        np.testing.assert_array_equal(first.cond_mean, np.zeros(4))
        second = proc.step()
        assert 0 < second.cond_variance < 1.0
        assert second.phi_sum != 0.0

    def test_horizon_exhaustion(self):
        proc = HoskingProcess(FGNCorrelation(0.7), 3, random_state=1)
        proc.run()
        with pytest.raises(GenerationError, match="horizon"):
            proc.step()

    def test_run_partial_then_rest(self):
        proc = HoskingProcess(FGNCorrelation(0.7), 10, size=2,
                              random_state=2)
        proc.run(4)
        assert proc.step_index == 4
        out = proc.run()
        assert out.shape == (2, 10)

    def test_run_rejects_overshoot(self):
        proc = HoskingProcess(FGNCorrelation(0.7), 5, random_state=3)
        with pytest.raises(GenerationError, match="remain"):
            proc.run(6)

    def test_history_is_copy(self):
        proc = HoskingProcess(FGNCorrelation(0.7), 5, random_state=4)
        proc.step()
        h = proc.history
        h[:] = 99.0
        assert not np.any(proc.history == 99.0)


class TestEdgeCases:
    def test_single_sample(self):
        x = hosking_generate(FGNCorrelation(0.9), 1, random_state=20)
        assert x.shape == (1,)

    def test_single_sample_batch(self):
        x = hosking_generate(
            FGNCorrelation(0.9), 1, size=7, random_state=21
        )
        assert x.shape == (7, 1)

    def test_near_unit_correlation_stable(self):
        # AR(1) with phi = 0.999 sits close to the PD boundary.
        acvf = 0.999 ** np.arange(6)
        x = hosking_generate(acvf, 6, size=100, random_state=22)
        assert np.all(np.isfinite(x))
        lag1 = float(np.mean(x[:, 0] * x[:, 1]))
        assert lag1 == pytest.approx(0.999, abs=0.15)
