"""Tests for the Norros fBm overflow approximation."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.queueing.theory import (
    norros_decay_exponent,
    norros_overflow_approximation,
)


class TestNorrosDecayExponent:
    def test_values(self):
        assert norros_decay_exponent(0.9) == pytest.approx(0.2)
        assert norros_decay_exponent(0.5) == pytest.approx(1.0)

    def test_rejects_invalid(self):
        with pytest.raises(ValidationError):
            norros_decay_exponent(1.0)


class TestNorrosApproximation:
    def _approx(self, b, hurst=0.9, mu=2.0):
        return norros_overflow_approximation(
            b,
            hurst=hurst,
            mean_rate=1.0,
            service_rate=mu,
            variance_coefficient=1.0,
        )

    def test_decreasing_in_buffer(self):
        values = self._approx([0.0, 10.0, 100.0, 1000.0])
        assert np.all(np.diff(values) < 0)

    def test_half_at_zero_buffer(self):
        assert self._approx([0.0])[0] == pytest.approx(0.5)

    def test_decreasing_in_service_rate(self):
        slow = self._approx([50.0], mu=1.5)[0]
        fast = self._approx([50.0], mu=3.0)[0]
        assert fast < slow

    def test_higher_hurst_decays_slower(self):
        b = [400.0]
        low_h = self._approx(b, hurst=0.6)[0]
        high_h = self._approx(b, hurst=0.9)[0]
        assert high_h > low_h

    def test_weibull_shape(self):
        """log P is linear in b^{2-2H}."""
        h = 0.8
        b = np.array([50.0, 100.0, 200.0, 400.0])
        p = self._approx(b, hurst=h)
        x = b ** (2 - 2 * h)
        logs = np.log(p)
        slopes = np.diff(logs) / np.diff(x)
        # Normal sf tail: log sf(z) ~ -z^2/2, and z^2 is proportional
        # to b^{2-2H}, so slopes converge to a constant.
        assert slopes[-1] == pytest.approx(slopes[-2], rel=0.15)

    def test_rejects_unstable_queue(self):
        with pytest.raises(ValidationError, match="exceed"):
            norros_overflow_approximation(
                [1.0], hurst=0.8, mean_rate=2.0, service_rate=1.0,
                variance_coefficient=1.0,
            )

    def test_rejects_negative_buffer(self):
        with pytest.raises(ValidationError):
            self._approx([-1.0])

    def test_matches_fgn_simulation_shape(self):
        """The IS estimates for an FGN-driven queue follow the Norros
        Weibull shape: log P vs b^{2-2H} is near-linear."""
        from repro.processes.correlation import FGNCorrelation
        from repro.simulation.importance import is_overflow_probability

        h, mu = 0.8, 2.0

        def arrivals(x):
            return x + 1.0  # mean 1, variance 1

        buffers = [5.0, 15.0, 40.0]
        logs = []
        for i, b in enumerate(buffers):
            est = is_overflow_probability(
                FGNCorrelation(h),
                arrivals,
                service_rate=mu,
                buffer_size=b,
                horizon=int(12 * b),
                twisted_mean=1.0,
                replications=2000,
                random_state=50 + i,
            )
            assert est.probability > 0
            logs.append(np.log(est.probability))
        x = np.asarray(buffers) ** (2 - 2 * h)
        slopes = np.diff(logs) / np.diff(x)
        # Both segments show the same (negative) Weibull slope within
        # a factor of ~1.6 — the signature of sub-exponential decay.
        assert slopes[0] < 0 and slopes[1] < 0
        assert 0.6 < slopes[0] / slopes[1] < 1.7


class TestBatchMeans:
    def test_estimates_match_time_average(self, rng):
        from repro.queueing.overflow import (
            batch_means_overflow,
            steady_state_overflow_from_trace,
        )

        arrivals = rng.exponential(size=50_000) * 0.9
        batch = batch_means_overflow(arrivals, 1.0, 2.0, num_batches=10)
        direct = steady_state_overflow_from_trace(
            arrivals, 1.0, [2.0]
        )[0]
        assert batch.probability == pytest.approx(
            direct.probability, abs=0.01
        )
        assert np.isfinite(batch.variance)
        assert batch.replications == 10

    def test_rejects_too_few_batches(self, rng):
        from repro.queueing.overflow import batch_means_overflow
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            batch_means_overflow(rng.exponential(size=100), 1.0, 1.0,
                                 num_batches=1)

    def test_rejects_short_series(self, rng):
        from repro.queueing.overflow import batch_means_overflow
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError, match="too short"):
            batch_means_overflow(rng.exponential(size=10), 1.0, 1.0,
                                 num_batches=20)


class TestEffectiveBandwidth:
    def test_inverse_consistency(self):
        from repro.queueing.theory import (
            norros_effective_bandwidth,
            norros_overflow_approximation,
        )

        for eps in (1e-2, 1e-4):
            mu = norros_effective_bandwidth(
                hurst=0.85, mean_rate=1.0, variance_coefficient=2.0,
                buffer_size=100.0, epsilon=eps,
            )
            p = norros_overflow_approximation(
                [100.0], hurst=0.85, mean_rate=1.0, service_rate=mu,
                variance_coefficient=2.0,
            )[0]
            assert p == pytest.approx(eps, rel=1e-6)

    def test_exceeds_mean_rate(self):
        from repro.queueing.theory import norros_effective_bandwidth

        mu = norros_effective_bandwidth(
            hurst=0.8, mean_rate=3.0, variance_coefficient=1.0,
            buffer_size=50.0, epsilon=1e-3,
        )
        assert mu > 3.0

    def test_buffer_discount_weaker_for_high_hurst(self):
        """Doubling the buffer buys less capacity relief when H is
        large — the LRD 'buffers don't help' phenomenon."""
        from repro.queueing.theory import norros_effective_bandwidth

        def relief(hurst):
            small = norros_effective_bandwidth(
                hurst=hurst, mean_rate=1.0, variance_coefficient=1.0,
                buffer_size=50.0, epsilon=1e-4,
            )
            large = norros_effective_bandwidth(
                hurst=hurst, mean_rate=1.0, variance_coefficient=1.0,
                buffer_size=400.0, epsilon=1e-4,
            )
            return (small - large) / (small - 1.0)

        assert relief(0.95) < relief(0.6)

    def test_rejects_bad_epsilon(self):
        from repro.queueing.theory import norros_effective_bandwidth
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            norros_effective_bandwidth(
                hurst=0.8, mean_rate=1.0, variance_coefficient=1.0,
                buffer_size=10.0, epsilon=0.9,
            )
