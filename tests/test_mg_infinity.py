"""Tests for the M/G/infinity session-count process."""

import numpy as np
import pytest

from repro.estimators.variance_time import variance_time_estimate
from repro.exceptions import ValidationError
from repro.processes.mg_infinity import (
    MGInfinityConfig,
    mg_infinity_generate,
)


class TestConfig:
    def test_implied_hurst(self):
        assert MGInfinityConfig(duration_alpha=1.4).hurst == (
            pytest.approx(0.8)
        )
        assert MGInfinityConfig(duration_alpha=1.8).hurst == (
            pytest.approx(0.6)
        )

    def test_mean_duration_little(self):
        cfg = MGInfinityConfig(
            session_rate=2.0, duration_alpha=1.5, duration_min=3.0
        )
        assert cfg.mean_duration == pytest.approx(9.0)
        assert cfg.mean_active == pytest.approx(18.0)

    def test_rejects_alpha_out_of_range(self):
        with pytest.raises(ValidationError):
            MGInfinityConfig(duration_alpha=2.0)
        with pytest.raises(ValidationError):
            MGInfinityConfig(duration_alpha=1.0)


class TestGenerate:
    def test_counts_nonnegative_integers(self):
        cfg = MGInfinityConfig()
        x = mg_infinity_generate(cfg, 5000, random_state=1)
        assert np.all(x >= 0)
        np.testing.assert_allclose(x, np.round(x))

    def test_mean_close_to_little(self):
        cfg = MGInfinityConfig(
            session_rate=3.0, duration_alpha=1.6, duration_min=2.0
        )
        x = mg_infinity_generate(cfg, 1 << 16, random_state=2)
        assert x.mean() == pytest.approx(cfg.mean_active, rel=0.15)

    def test_reproducible(self):
        cfg = MGInfinityConfig()
        a = mg_infinity_generate(cfg, 1000, random_state=3)
        b = mg_infinity_generate(cfg, 1000, random_state=3)
        np.testing.assert_array_equal(a, b)

    def test_lrd_hurst_near_theory(self):
        """Counts with Pareto(alpha) sessions have H ~ (3 - alpha)/2."""
        cfg = MGInfinityConfig(
            session_rate=2.0, duration_alpha=1.4, duration_min=2.0
        )
        x = mg_infinity_generate(cfg, 1 << 17, random_state=4)
        est = variance_time_estimate(x)
        assert est.hurst == pytest.approx(cfg.hurst, abs=0.12)

    def test_lighter_tail_weaker_memory(self):
        heavy = MGInfinityConfig(duration_alpha=1.2)
        light = MGInfinityConfig(duration_alpha=1.9)
        xh = mg_infinity_generate(heavy, 1 << 15, random_state=5)
        xl = mg_infinity_generate(light, 1 << 15, random_state=6)
        assert (
            variance_time_estimate(xh).hurst
            > variance_time_estimate(xl).hurst
        )

    def test_warmup_override(self):
        cfg = MGInfinityConfig()
        x = mg_infinity_generate(cfg, 100, warmup=0, random_state=7)
        assert x.size == 100
        # Without warmup the occupancy ramps from empty.
        assert x[0] <= x[-10:].mean() + 5
