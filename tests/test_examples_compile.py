"""Bit-rot guard: every example compiles and defines main().

Running the examples takes minutes (they are demonstrations, not
tests), but syntax errors and missing imports should fail fast here.
"""

import ast
import pathlib
import py_compile

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    assert len(EXAMPLE_FILES) >= 3  # the deliverable minimum


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.name for p in EXAMPLE_FILES]
)
def test_example_compiles(path, tmp_path):
    py_compile.compile(
        str(path), cfile=str(tmp_path / (path.name + "c")), doraise=True
    )


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.name for p in EXAMPLE_FILES]
)
def test_example_structure(path):
    """Each example has a module docstring, a main(), and a guard."""
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} missing docstring"
    function_names = {
        node.name
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }
    assert "main" in function_names, f"{path.name} missing main()"
    source = path.read_text()
    assert '__name__ == "__main__"' in source


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=[p.name for p in EXAMPLE_FILES]
)
def test_example_imports_resolve(path):
    """Top-level repro imports in examples point at real symbols."""
    import importlib

    tree = ast.parse(path.read_text())
    for node in tree.body:
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )
