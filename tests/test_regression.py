"""Tests for least-squares line fitting."""

import numpy as np
import pytest

from repro.estimators.regression import LineFit, fit_line, fit_loglog_line
from repro.exceptions import EstimationError, ValidationError


class TestFitLine:
    def test_exact_line(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        fit = fit_line(x, 2.0 * x + 1.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_noisy_line_r_squared(self):
        rng = np.random.default_rng(0)
        x = np.linspace(0, 10, 200)
        y = 3.0 * x + rng.normal(scale=0.5, size=x.size)
        fit = fit_line(x, y)
        assert fit.slope == pytest.approx(3.0, abs=0.05)
        assert fit.r_squared > 0.99

    def test_flat_data_r_squared_one(self):
        fit = fit_line([0.0, 1.0, 2.0], [5.0, 5.0, 5.0])
        assert fit.slope == pytest.approx(0.0, abs=1e-12)
        assert fit.r_squared == 1.0

    def test_predict(self):
        fit = LineFit(slope=2.0, intercept=1.0, r_squared=1.0)
        np.testing.assert_allclose(fit.predict([0.0, 2.0]), [1.0, 5.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            fit_line([1.0, 2.0], [1.0])

    def test_rejects_single_point(self):
        with pytest.raises(EstimationError):
            fit_line([1.0], [1.0])

    def test_rejects_degenerate_x(self):
        with pytest.raises(EstimationError, match="slope is undefined"):
            fit_line([2.0, 2.0], [1.0, 3.0])


class TestFitLoglogLine:
    def test_power_law_slope(self):
        x = np.array([1.0, 10.0, 100.0, 1000.0])
        y = 5.0 * x**-0.4
        fit, log_x, log_y = fit_loglog_line(x, y)
        assert fit.slope == pytest.approx(-0.4)
        assert 10**fit.intercept == pytest.approx(5.0)
        np.testing.assert_allclose(log_x, np.log10(x))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError, match="positive"):
            fit_loglog_line([1.0, -1.0], [1.0, 2.0])
