"""Tests for R/S (rescaled adjusted range) analysis (Fig. 4 methodology)."""

import numpy as np
import pytest

from repro.estimators.rs_analysis import rs_estimate, rs_statistic
from repro.exceptions import EstimationError
from repro.processes.fgn import fgn_generate


class TestRsStatistic:
    def test_known_small_example(self):
        # X = [1, -1]: mean 0, W = [1, 0], R = 1 - 0 = 1, S = 1.
        assert rs_statistic([1.0, -1.0]) == pytest.approx(1.0)

    def test_positive(self):
        x = np.random.default_rng(0).normal(size=100)
        assert rs_statistic(x) > 0

    def test_shift_invariance(self):
        x = np.random.default_rng(1).normal(size=50)
        assert rs_statistic(x) == pytest.approx(rs_statistic(x + 100.0))

    def test_scale_invariance(self):
        x = np.random.default_rng(2).normal(size=50)
        assert rs_statistic(x) == pytest.approx(rs_statistic(3.0 * x))

    def test_constant_block_raises(self):
        with pytest.raises(EstimationError):
            rs_statistic(np.full(10, 2.0))


class TestRsEstimate:
    @pytest.mark.parametrize("h", [0.7, 0.9])
    def test_recovers_hurst_of_fgn(self, h):
        x = fgn_generate(h, 1 << 16, random_state=int(h * 10))
        est = rs_estimate(x)
        assert est.hurst == pytest.approx(h, abs=0.1)

    def test_iid_near_half(self):
        x = np.random.default_rng(3).normal(size=1 << 15)
        est = rs_estimate(x)
        # R/S is biased upward at finite n; 0.5-0.65 is the usual range.
        assert 0.45 < est.hurst < 0.68

    def test_pox_coordinates(self):
        x = fgn_generate(0.8, 4096, random_state=4)
        est = rs_estimate(x)
        assert est.block_lengths.size == est.rs_values.size
        np.testing.assert_allclose(
            est.log_block_lengths, np.log10(est.block_lengths)
        )

    def test_explicit_block_lengths(self):
        x = fgn_generate(0.8, 2048, random_state=5)
        est = rs_estimate(x, block_lengths=[64, 256, 1024])
        assert set(np.unique(est.block_lengths)) <= {64.0, 256.0, 1024.0}

    def test_multiple_starting_points_used(self):
        x = fgn_generate(0.8, 2048, random_state=6)
        est = rs_estimate(
            x, num_starting_points=8, block_lengths=[128, 256]
        )
        # 8 starting points fit for each block length within 2048 samples.
        assert np.sum(est.block_lengths == 128) == 8
        assert np.sum(est.block_lengths == 256) == 8

    def test_rejects_degenerate(self):
        with pytest.raises(EstimationError):
            rs_estimate(np.ones(64), block_lengths=[16, 32])
