"""Statistical test: heterogeneous aggregate ACF vs. mixture prediction.

Independent sources add covariances, so the aggregate of a mixed
population must show the variance-weighted mixture of the per-class
foreground ACFs, each class attenuated by its analytic eq. 30 factor
(:meth:`~repro.core.aggregate.SourcePopulation.mixture_acf`).  The
check averages the sample ACF over seeded independent replications of
the sharded engine's feed — the same seeded-replication design as the
rest of the statistical harness (`make test-stats`) — and compares
against the prediction lag by lag.

Statistical design
------------------
- **Seeds:** the pinned family ``BASE_SEEDS + offset`` (eight
  replications of a 4096-slot feed); ``--seed-offset`` shifts the
  family (``make test-stats-matrix`` runs offsets 0/1/2, all verified
  green).
- **Tolerances (~alpha):** lag-wise ACF gates at 0.06/0.08 absolute —
  about 4 standard errors of the pooled known-mean ACF estimator at
  these horizons, i.e. well under 1% false-alarm per module run.
- **Power:** dropping the eq. 30 attenuation or mixing with the wrong
  class weights shifts the predicted ACF by >~ 0.1 at small lags
  (the ``err_pred < err_unatt`` assertion measures exactly this
  contrast), so real regressions clear the gates by a wide margin.
"""

import numpy as np
import pytest

from repro.core.aggregate import (
    ShardedAggregateModel,
    SourceClass,
    SourcePopulation,
)
from repro.marginals.parametric import (
    GammaDistribution,
    NormalDistribution,
)

HORIZON = 4096
MAX_LAG = 20
BASE_SEEDS = (21, 22, 23, 24, 25, 26, 27, 28)


@pytest.fixture(scope="module")
def seeds(seed_offset):
    """The seed family of this run (shifted by ``--seed-offset``)."""
    return tuple(s + seed_offset for s in BASE_SEEDS)


def mean_sample_acf(population, seeds, *, batch_size=16):
    """Known-mean sample ACF of the feed, pooled over seeded paths.

    Centering on the *population* mean (known exactly here) instead of
    each path's sample mean avoids the classic downward LRD bias of
    the mean-subtracted ACF — O(n^{2H-2}), non-negligible at H=0.85
    even for 4096-slot paths — so the comparison tolerance can stay
    tight.  Autocovariances are pooled across paths before normalizing.
    """
    engine = ShardedAggregateModel(population, batch_size=batch_size)
    mean = population.mean_rate
    acvf = np.zeros(MAX_LAG + 1)
    for seed in seeds:
        x = (
            engine.generate(HORIZON, shards=4, random_state=seed).arrivals
            - mean
        )
        for lag in range(MAX_LAG + 1):
            acvf[lag] += np.mean(x[: HORIZON - lag] * x[lag:])
    return acvf / acvf[0]


class TestMixtureACF:
    def test_normal_mixture_matches_prediction(self, seeds):
        # Normal marginals: affine transforms, attenuation exactly 1 —
        # the prediction is the pure variance-weighted correlation mix.
        population = SourcePopulation([
            SourceClass(
                "hi", correlation=0.85,
                marginal=NormalDistribution(10.0, 2.0), count=12,
            ),
            SourceClass(
                "lo", correlation=0.70,
                marginal=NormalDistribution(5.0, 1.5), count=8,
            ),
        ])
        lags = np.arange(MAX_LAG + 1)
        predicted = population.mixture_acf(lags)
        measured = mean_sample_acf(population, seeds)
        np.testing.assert_allclose(
            measured[1:], predicted[1:], atol=0.06
        )

    def test_gamma_class_needs_attenuation(self, seeds):
        # A skewed Gamma marginal attenuates its class ACF (a < 1); the
        # prediction must fold that in to match the measurement.
        population = SourcePopulation([
            SourceClass(
                "normal", correlation=0.85,
                marginal=NormalDistribution(10.0, 2.0), count=10,
            ),
            SourceClass(
                "gamma", correlation=0.75,
                marginal=GammaDistribution(1.2, 4.0), count=10,
            ),
        ])
        gamma_class = population.classes[1]
        assert gamma_class.attenuation < 0.95
        lags = np.arange(MAX_LAG + 1)
        predicted = population.mixture_acf(lags)
        measured = mean_sample_acf(population, seeds)
        np.testing.assert_allclose(
            measured[1:], predicted[1:], atol=0.08
        )
        # Sanity: ignoring attenuation (a=1 everywhere) must fit the
        # data *worse* than the attenuated prediction.
        weights = np.array([
            k.count * k.marginal.variance for k in population.classes
        ])
        unattenuated = (
            weights[0] * population.classes[0].correlation(lags[1:])
            + weights[1] * population.classes[1].correlation(lags[1:])
        ) / weights.sum()
        err_pred = np.abs(measured[1:] - predicted[1:]).mean()
        err_unatt = np.abs(measured[1:] - unattenuated).mean()
        assert err_pred < err_unatt

    def test_single_class_reduces_to_attenuated_acf(self, seeds):
        population = SourcePopulation([
            SourceClass(
                "solo", correlation=0.8,
                marginal=NormalDistribution(8.0, 1.5), count=16,
            ),
        ])
        lags = np.arange(MAX_LAG + 1)
        predicted = population.mixture_acf(lags)
        np.testing.assert_allclose(
            predicted[1:], population.classes[0].correlation(lags[1:])
        )
        measured = mean_sample_acf(population, seeds)
        np.testing.assert_allclose(
            measured[1:], predicted[1:], atol=0.06
        )
