"""Tests for Q-Q utilities."""

import numpy as np
import pytest

from repro.stats.qq import qq_max_deviation, qq_points, quantiles


class TestQuantiles:
    def test_median(self):
        assert quantiles([1.0, 2.0, 3.0], [0.5])[0] == 2.0

    def test_clips_probs(self):
        out = quantiles([1.0, 2.0], [-0.5, 1.5])
        np.testing.assert_array_equal(out, [1.0, 2.0])


class TestQqPoints:
    def test_identical_samples_on_diagonal(self):
        data = np.random.default_rng(0).normal(size=1000)
        qa, qb = qq_points(data, data, count=50)
        np.testing.assert_allclose(qa, qb)

    def test_count_controls_length(self):
        qa, qb = qq_points([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], count=7)
        assert qa.size == qb.size == 7

    def test_shifted_sample_offset(self):
        data = np.random.default_rng(1).normal(size=5000)
        qa, qb = qq_points(data, data + 2.0, count=20)
        np.testing.assert_allclose(qb - qa, 2.0, atol=0.15)


class TestQqMaxDeviation:
    def test_zero_for_identical(self):
        data = np.random.default_rng(2).normal(size=500)
        assert qq_max_deviation(data, data) == 0.0

    def test_small_for_same_distribution(self):
        g = np.random.default_rng(3)
        a, b = g.normal(size=20_000), g.normal(size=20_000)
        assert qq_max_deviation(a, b) < 0.05

    def test_large_for_different_distributions(self):
        g = np.random.default_rng(4)
        a = g.normal(size=5000)
        b = g.exponential(size=5000)
        assert qq_max_deviation(a, b) > 0.2
