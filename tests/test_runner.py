"""Tests for the experiment runners (Figs. 15-17 orchestration)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.processes.correlation import (
    CompositeCorrelation,
    ExponentialCorrelation,
    FGNCorrelation,
)
from repro.simulation.runner import (
    model_comparison_curves,
    overflow_vs_buffer_curve,
    transient_overflow_curves,
)


def arrivals(x):
    """Unit-mean-ish arrivals from a background sample."""
    return np.maximum(x + 1.0, 0.0)


class TestOverflowVsBufferCurve:
    def test_shapes_and_monotonicity(self):
        curve = overflow_vs_buffer_curve(
            ExponentialCorrelation(0.3),
            arrivals,
            utilization=0.6,
            buffer_sizes=[2.0, 6.0, 12.0],
            replications=2500,
            twisted_mean=0.8,
            random_state=0,
        )
        assert curve.buffer_sizes.shape == (3,)
        assert len(curve.estimates) == 3
        probs = [e.probability for e in curve.estimates]
        # Overflow probability decreases with buffer size.
        assert probs[0] > probs[-1]

    def test_horizon_factor_applied(self):
        curve = overflow_vs_buffer_curve(
            ExponentialCorrelation(0.3),
            arrivals,
            utilization=0.5,
            buffer_sizes=[3.0],
            replications=200,
            twisted_mean=0.5,
            horizon_factor=5,
            random_state=1,
        )
        assert len(curve.estimates) == 1

    def test_log10_array(self):
        curve = overflow_vs_buffer_curve(
            ExponentialCorrelation(0.3),
            arrivals,
            utilization=0.7,
            buffer_sizes=[1.0, 4.0],
            replications=1500,
            twisted_mean=0.5,
            random_state=2,
        )
        logs = curve.log10_probabilities
        assert logs.shape == (2,)
        assert np.all(logs <= 0.0)

    def test_rejects_empty_buffers(self):
        with pytest.raises(ValidationError):
            overflow_vs_buffer_curve(
                ExponentialCorrelation(0.3),
                arrivals,
                utilization=0.5,
                buffer_sizes=[],
                replications=10,
                twisted_mean=0.0,
            )


class TestTransientOverflowCurves:
    def test_keys_and_lengths(self):
        curves = transient_overflow_curves(
            ExponentialCorrelation(0.3),
            arrivals,
            utilization=0.6,
            buffer_size=3.0,
            horizon=40,
            replications=2000,
            twisted_mean=0.3,
            random_state=3,
        )
        assert set(curves) == {"empty", "full"}
        assert curves["empty"].shape == (40,)
        assert curves["full"].shape == (40,)

    def test_curves_converge_toward_each_other(self):
        """Fig. 15: transients from empty and full starts approach the
        same steady state."""
        curves = transient_overflow_curves(
            ExponentialCorrelation(0.5),
            arrivals,
            utilization=0.6,
            buffer_size=2.0,
            horizon=150,
            replications=4000,
            twisted_mean=0.0,
            random_state=4,
        )
        early_gap = abs(curves["full"][2] - curves["empty"][2])
        late_gap = abs(curves["full"][-1] - curves["empty"][-1])
        assert late_gap < early_gap


class TestModelComparison:
    def test_runs_all_models(self):
        result = model_comparison_curves(
            {
                "SRD only": ExponentialCorrelation(0.3),
                "FGN": FGNCorrelation(0.8),
                "SRD+LRD": CompositeCorrelation.paper_fit()
                .with_continuity(),
            },
            arrivals,
            utilization=0.6,
            buffer_sizes=[2.0, 8.0],
            replications=800,
            twisted_mean=0.6,
            random_state=5,
        )
        assert set(result.curves) == {"SRD only", "FGN", "SRD+LRD"}
        table = result.log10_table()
        assert all(v.shape == (2,) for v in table.values())

    def test_rejects_empty_models(self):
        with pytest.raises(ValidationError):
            model_comparison_curves(
                {},
                arrivals,
                utilization=0.5,
                buffer_sizes=[1.0],
                replications=10,
                twisted_mean=0.0,
            )


def _curves_equal(a, b):
    for ea, eb in zip(a.estimates, b.estimates):
        assert ea.probability == eb.probability
        assert ea.variance == eb.variance
        assert ea.hits == eb.hits


class TestParallelEqualsSerial:
    """Legs are pre-seeded, so worker count must never change a curve."""

    common = dict(
        utilization=0.7,
        buffer_sizes=[1.5, 3.0, 5.0, 8.0],
        replications=400,
        twisted_mean=0.7,
    )

    def test_overflow_curve(self):
        model = FGNCorrelation(0.8)
        serial = overflow_vs_buffer_curve(
            model, arrivals, random_state=50, workers=1, **self.common
        )
        threaded = overflow_vs_buffer_curve(
            model, arrivals, random_state=50, workers=3, **self.common
        )
        _curves_equal(serial, threaded)

    def test_model_comparison(self):
        models = {
            "FGN": FGNCorrelation(0.8),
            "SRD": ExponentialCorrelation(0.3),
        }
        serial = model_comparison_curves(
            models, arrivals, random_state=51, workers=1, **self.common
        )
        threaded = model_comparison_curves(
            models, arrivals, random_state=51, workers=4, **self.common
        )
        assert serial.curves.keys() == threaded.curves.keys()
        for name in models:
            _curves_equal(serial.curves[name], threaded.curves[name])

    def test_transient_curves(self):
        kwargs = dict(
            utilization=0.8,
            buffer_size=3.0,
            horizon=40,
            replications=400,
            twisted_mean=0.5,
        )
        model = ExponentialCorrelation(0.25)
        serial = transient_overflow_curves(
            model, arrivals, random_state=52, workers=1, **kwargs
        )
        threaded = transient_overflow_curves(
            model, arrivals, random_state=52, workers=2, **kwargs
        )
        np.testing.assert_array_equal(serial["empty"], threaded["empty"])
        np.testing.assert_array_equal(serial["full"], threaded["full"])

    def test_workers_env_fallback(self, monkeypatch):
        from repro.simulation.parallel import WORKERS_ENV

        model = ExponentialCorrelation(0.3)
        serial = overflow_vs_buffer_curve(
            model, arrivals, random_state=53, workers=1, **self.common
        )
        monkeypatch.setenv(WORKERS_ENV, "3")
        from_env = overflow_vs_buffer_curve(
            model, arrivals, random_state=53, workers=None, **self.common
        )
        _curves_equal(serial, from_env)

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValidationError):
            overflow_vs_buffer_curve(
                ExponentialCorrelation(0.3),
                arrivals,
                random_state=54,
                workers=0,
                **self.common,
            )


class TestMCOverflowVsBufferCurve:
    """The batched plain-MC counterpart of the IS buffer sweep."""

    def setup_method(self):
        from repro.processes.spectral_cache import clear_spectral_cache

        clear_spectral_cache()

    def _curve(self, **kwargs):
        from repro.simulation.runner import mc_overflow_vs_buffer_curve

        defaults = dict(
            utilization=0.6,
            buffer_sizes=[2.0, 5.0, 8.0],
            replications=300,
            random_state=31,
        )
        defaults.update(kwargs)
        return mc_overflow_vs_buffer_curve(
            ExponentialCorrelation(0.3), arrivals, **defaults
        )

    def test_shapes_and_estimate_type(self):
        from repro.queueing.overflow import OverflowEstimate

        curve = self._curve()
        assert curve.buffer_sizes.shape == (3,)
        assert len(curve.estimates) == 3
        assert all(
            isinstance(e, OverflowEstimate) for e in curve.estimates
        )
        assert curve.log10_probabilities.shape == (3,)

    def test_batched_matches_per_replication_loop(self):
        """One batched FFT draw == sequential draws, bit for bit."""
        from repro.processes.davies_harte import davies_harte_generate
        from repro.queueing.multiplexer import (
            service_rate_for_utilization,
        )
        from repro.queueing.overflow import transient_overflow_mc
        from repro.stats.random import spawn_rngs

        corr = ExponentialCorrelation(0.3)
        buffers = [2.0, 5.0]
        reps, util, factor = 250, 0.6, 10
        curve = self._curve(
            buffer_sizes=buffers, replications=reps, horizon_factor=factor
        )
        mu = service_rate_for_utilization(1.0, util)
        rngs = spawn_rngs(31, len(buffers))
        for b, rng, estimate in zip(buffers, rngs, curve.estimates):
            horizon = int(factor * b)
            rows = np.empty((reps, horizon))
            for i in range(reps):
                rows[i] = davies_harte_generate(
                    corr, horizon, random_state=rng, spectral_table=False
                )
            reference = transient_overflow_mc(arrivals(rows), mu, b)
            assert estimate.probability == reference.probability
            assert estimate.replications == reference.replications

    def test_worker_count_invariance(self):
        serial = self._curve(workers=1)
        threaded = self._curve(workers=3)
        np.testing.assert_array_equal(
            [e.probability for e in serial.estimates],
            [e.probability for e in threaded.estimates],
        )

    def test_legs_share_one_table(self):
        from repro.processes.spectral_cache import spectral_cache_info

        self._curve()
        info = spectral_cache_info()
        assert info.misses == 1
        assert info.tables == 1
        # One eigenvalue entry per distinct horizon.
        assert info.eigenvalue_builds == 3

    def test_time_varying_transform(self):
        """GOP-phase-style transforms route through the per-step path."""

        class PhaseTransform:
            time_varying = True

            def __call__(self, values, step):
                return np.maximum(
                    np.asarray(values) + 1.0, 0.0
                ) * (1.5 if step % 2 else 0.5)

        from repro.simulation.runner import mc_overflow_vs_buffer_curve

        curve = mc_overflow_vs_buffer_curve(
            ExponentialCorrelation(0.3),
            PhaseTransform(),
            utilization=0.6,
            buffer_sizes=[2.0, 4.0],
            replications=200,
            random_state=32,
        )
        assert len(curve.estimates) == 2
        assert all(
            0.0 <= e.probability <= 1.0 for e in curve.estimates
        )

    def test_metrics_recorded(self):
        from repro.observability import RunContext

        ctx = RunContext()
        self._curve(metrics=ctx)
        names = {e["name"] for e in ctx.snapshot()}
        assert "mc.replications" in names
        assert "mc.leg_seconds" in names
        assert "spectral.misses" in names
        assert "registry.resolutions" in names

    def test_validation(self):
        from repro.simulation.runner import mc_overflow_vs_buffer_curve

        with pytest.raises(ValidationError):
            mc_overflow_vs_buffer_curve(
                ExponentialCorrelation(0.3),
                arrivals,
                utilization=0.5,
                buffer_sizes=[],
                replications=10,
            )
        with pytest.raises(ValidationError):
            self._curve(replications=0)
        with pytest.raises(ValidationError):
            self._curve(horizon_factor=0)

    def test_shape_changing_stationary_transform_rejected(self):
        from repro.simulation.runner import mc_overflow_vs_buffer_curve

        def bad_transform(x):
            return np.asarray(x).ravel()[:3]

        with pytest.raises(ValidationError, match="elementwise"):
            mc_overflow_vs_buffer_curve(
                ExponentialCorrelation(0.3),
                bad_transform,
                utilization=0.5,
                buffer_sizes=[2.0],
                replications=10,
                random_state=0,
            )

    def test_explicit_backend_and_sequence_correlation(self):
        """Explicit acvf sequences and named backends still work."""
        from repro.simulation.runner import mc_overflow_vs_buffer_curve

        acvf = ExponentialCorrelation(0.3).acvf(81)
        curve = mc_overflow_vs_buffer_curve(
            acvf,
            arrivals,
            utilization=0.6,
            buffer_sizes=[2.0, 8.0],
            replications=100,
            random_state=33,
            backend="davies-harte",
        )
        assert len(curve.estimates) == 2
