"""Regression tests for the all-retired / zero-hit degeneracy signals.

Before these signals existed, an importance-sampling run whose
replications all retired (or never hit) before the horizon completed
silently and returned a vacuous estimate.  Now:

- retiring the *last* active replication before the horizon emits a
  :class:`~repro.exceptions.SimulationWarning` and an
  ``is.all_retired`` counter;
- an estimate finishing with zero overflow hits warns and counts
  ``is.zero_hit_estimates``;
- a batch where every replication *hits* (a successful outcome) must
  NOT warn — the estimator stops retiring once no survivors remain.
"""

import warnings

import numpy as np
import pytest

from repro.exceptions import SimulationWarning
from repro.observability import RunContext
from repro.processes.correlation import ExponentialCorrelation
from repro.simulation.importance import (
    TwistedBackground,
    is_overflow_probability,
)

CORR = ExponentialCorrelation(0.5)


class TestAllRetiredSignal:
    def test_warns_when_last_replication_retired_early(self):
        ctx = RunContext()
        bg = TwistedBackground(
            CORR, 20, twisted_mean=1.0, size=4, random_state=0,
            metrics=ctx,
        )
        bg.step()
        bg.retire(np.array([0, 1]))
        with pytest.warns(SimulationWarning, match="every replication"):
            bg.retire(np.array([2, 3]))
        entries = {e["name"]: e for e in ctx.snapshot()}
        assert entries["is.all_retired"]["value"] == 1.0
        assert entries["is.retired"]["value"] == 4.0

    def test_no_warning_while_survivors_remain(self):
        bg = TwistedBackground(
            CORR, 20, twisted_mean=1.0, size=4, random_state=0,
        )
        bg.step()
        with warnings.catch_warnings():
            warnings.simplefilter("error", SimulationWarning)
            bg.retire(np.array([0, 2]))
        assert bg.active_count == 2

    def test_no_warning_at_horizon(self):
        # Retirement at the final step is not "early": there is nothing
        # left to simulate, so no information is lost.
        bg = TwistedBackground(
            CORR, 2, twisted_mean=1.0, size=2, random_state=0,
        )
        bg.step()
        bg.step()
        with warnings.catch_warnings():
            warnings.simplefilter("error", SimulationWarning)
            bg.retire(np.array([0, 1]))

    def test_signal_works_without_metrics(self):
        bg = TwistedBackground(
            CORR, 20, twisted_mean=1.0, size=2, random_state=0,
        )
        bg.step()
        with pytest.warns(SimulationWarning):
            bg.retire(np.array([0, 1]))


class TestEstimatorOutcomes:
    def test_zero_hit_estimate_warns_and_counts(self):
        ctx = RunContext()
        with pytest.warns(SimulationWarning, match="0 overflow hits"):
            estimate = is_overflow_probability(
                CORR,
                lambda x: x + 0.01,  # arrivals far below service
                service_rate=5.0,
                buffer_size=50.0,
                horizon=10,
                twisted_mean=0.0,
                replications=20,
                random_state=1,
                metrics=ctx,
            )
        assert estimate.hits == 0
        assert estimate.probability == 0.0
        assert estimate.ess == 0.0
        entries = {e["name"]: e for e in ctx.snapshot()}
        assert entries["is.zero_hit_estimates"]["value"] == 1.0
        assert "is.weight" not in entries

    def test_full_success_batch_does_not_warn(self):
        # Every replication overflows almost immediately; the estimator
        # must not misreport this success as all-retired degeneracy.
        ctx = RunContext()
        with warnings.catch_warnings():
            warnings.simplefilter("error", SimulationWarning)
            estimate = is_overflow_probability(
                CORR,
                lambda x: x + 10.0,  # arrivals far above service
                service_rate=1.0,
                buffer_size=1.0,
                horizon=30,
                twisted_mean=0.0,
                replications=25,
                random_state=2,
                metrics=ctx,
            )
        assert estimate.hits == estimate.replications
        assert estimate.probability == pytest.approx(1.0)
        entries = {e["name"]: e for e in ctx.snapshot()}
        assert "is.all_retired" not in entries

    def test_partial_hits_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", SimulationWarning)
            estimate = is_overflow_probability(
                CORR,
                lambda x: x + 2.0,
                service_rate=2.5,
                buffer_size=2.0,
                horizon=25,
                twisted_mean=1.0,
                replications=60,
                random_state=42,
            )
        assert 0 < estimate.hits < estimate.replications
