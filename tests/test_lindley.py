"""Tests for the Lindley recursion and workload processes (eq. 16-17)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.queueing.lindley import (
    first_passage_times,
    lindley_recursion,
    workload_paths,
    workload_supremum,
)


class TestLindleyRecursion:
    def test_hand_computed_example(self):
        arrivals = np.array([3.0, 0.0, 5.0, 0.0])
        q = lindley_recursion(arrivals, service_rate=2.0)
        # Q: max(0+1,0)=1, max(1-2,0)=0, max(0+3,0)=3, max(3-2,0)=1.
        np.testing.assert_allclose(q, [1.0, 0.0, 3.0, 1.0])

    def test_initial_content(self):
        arrivals = np.array([0.0, 0.0])
        q = lindley_recursion(arrivals, service_rate=1.0, initial=5.0)
        np.testing.assert_allclose(q, [4.0, 3.0])

    def test_batch_shape(self):
        arrivals = np.ones((4, 10))
        q = lindley_recursion(arrivals, service_rate=2.0)
        assert q.shape == (4, 10)
        np.testing.assert_allclose(q, 0.0)

    def test_per_replication_initial(self):
        arrivals = np.zeros((2, 3))
        q = lindley_recursion(
            arrivals, service_rate=1.0, initial=np.array([0.0, 10.0])
        )
        np.testing.assert_allclose(q[0], [0.0, 0.0, 0.0])
        np.testing.assert_allclose(q[1], [9.0, 8.0, 7.0])

    def test_queue_never_negative(self, rng):
        arrivals = rng.exponential(size=(5, 200))
        q = lindley_recursion(arrivals, service_rate=1.5)
        assert np.all(q >= 0)

    def test_rejects_negative_initial(self):
        with pytest.raises(ValidationError):
            lindley_recursion(np.ones(3), 1.0, initial=-1.0)

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            lindley_recursion(np.ones((2, 2, 2)), 1.0)

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            lindley_recursion(np.ones((2, 0)), 1.0)


class TestWorkload:
    def test_paths_cumulative(self):
        arrivals = np.array([3.0, 1.0, 4.0])
        w = workload_paths(arrivals, service_rate=2.0)
        np.testing.assert_allclose(w, [1.0, 0.0, 2.0])

    def test_supremum_monotone(self, rng):
        arrivals = rng.exponential(size=(3, 100))
        sup = workload_supremum(arrivals, service_rate=1.2)
        assert np.all(np.diff(sup, axis=-1) >= 0)
        assert np.all(sup >= 0)

    def test_lindley_equals_workload_form_in_law(self, rng):
        """eq. 16 and eq. 17 agree: P(Q_k > b) = P(sup W > b) for
        exchangeable (here iid) arrivals, checked by Monte Carlo."""
        k, n, b, mu = 50, 20_000, 3.0, 1.3
        arrivals = rng.exponential(size=(n, k))
        q_k = lindley_recursion(arrivals, mu)[:, -1]
        sup = workload_supremum(arrivals, mu)[:, -1]
        p_lindley = np.mean(q_k > b)
        p_workload = np.mean(sup > b)
        assert p_lindley == pytest.approx(p_workload, abs=0.01)

    def test_lindley_from_empty_equals_sup_minus_min_identity(self):
        """Pathwise: Q_k = W_k - min(0, min_{i<=k} W_i) for Q_0 = 0."""
        rng = np.random.default_rng(7)
        arrivals = rng.exponential(size=200)
        mu = 1.1
        q = lindley_recursion(arrivals, mu)
        w = workload_paths(arrivals, mu)
        running_min = np.minimum(np.minimum.accumulate(w), 0.0)
        np.testing.assert_allclose(q, w - running_min, atol=1e-12)


class TestFirstPassage:
    def test_simple_crossing(self):
        arrivals = np.array([[5.0, 5.0, 0.0]])
        t = first_passage_times(arrivals, service_rate=1.0, threshold=6.0)
        np.testing.assert_array_equal(t, [1])

    def test_no_crossing_gives_minus_one(self):
        arrivals = np.zeros((2, 5))
        t = first_passage_times(arrivals, service_rate=1.0, threshold=1.0)
        np.testing.assert_array_equal(t, [-1, -1])

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValidationError):
            first_passage_times(np.ones(3), 1.0, -1.0)


class TestLindleyStep:
    def test_infinite_step_matches_recursion_formula(self):
        from repro.queueing.lindley import lindley_step

        rng = np.random.default_rng(7)
        q = rng.uniform(0, 3, size=5)
        inc = rng.normal(size=5)
        stepped, overflow = lindley_step(q, inc)
        np.testing.assert_array_equal(
            stepped, np.maximum(q + inc, 0.0)
        )
        assert overflow is None

    def test_finite_step_sheds_above_capacity(self):
        from repro.queueing.lindley import lindley_step

        q = np.array([0.5, 1.75, 0.0])
        inc = np.array([1.0, 1.0, -1.0])
        stepped, overflow = lindley_step(q, inc, 2.0)
        np.testing.assert_array_equal(stepped, [1.5, 2.0, 0.0])
        np.testing.assert_array_equal(overflow, [0.0, 0.75, 0.0])


class TestFiniteLindleyRecursion:
    def test_matches_legacy_inline_loop_bitwise(self, rng):
        # Regression for the dedupe: the shared step must reproduce the
        # multiplexer's historical finite-buffer loop bit for bit.
        from repro.queueing.lindley import finite_lindley_recursion

        arrivals = rng.gamma(2.0, 1.0, size=(4, 64))
        mu, cap, initial = 2.1, 3.0, 0.75
        increments = arrivals - mu
        queue = np.empty_like(increments)
        lost = np.empty_like(increments)
        q = np.broadcast_to(
            np.asarray(initial, dtype=float), increments[..., 0].shape
        ).copy()
        for j in range(increments.shape[-1]):
            q = q + increments[..., j]
            overflow = np.maximum(q - cap, 0.0)
            q = np.clip(q, 0.0, cap)
            queue[..., j] = q
            lost[..., j] = overflow
        got_queue, got_lost = finite_lindley_recursion(
            arrivals, mu, cap, initial=initial
        )
        np.testing.assert_array_equal(got_queue, queue)
        np.testing.assert_array_equal(got_lost, lost)

    def test_zero_capacity_is_bufferless(self):
        from repro.queueing.lindley import finite_lindley_recursion

        arrivals = np.array([2.0, 0.5, 3.0])
        queue, lost = finite_lindley_recursion(arrivals, 1.0, 0.0)
        np.testing.assert_array_equal(queue, np.zeros(3))
        np.testing.assert_array_equal(lost, [1.0, 0.0, 2.0])

    def test_validation(self):
        from repro.queueing.lindley import finite_lindley_recursion

        with pytest.raises(ValidationError):
            finite_lindley_recursion(np.ones(4), 1.0, 2.0, initial=-0.1)
        with pytest.raises(ValidationError):
            finite_lindley_recursion(np.ones(4), 1.0, 2.0, initial=2.5)
        with pytest.raises(ValidationError):
            finite_lindley_recursion(np.ones((2, 2, 2)), 1.0, 2.0)
        with pytest.raises(ValidationError):
            finite_lindley_recursion(np.ones(4), 1.0, -1.0)
