"""Tests for the sharded aggregate engine (core.aggregate)."""

import tracemalloc

import numpy as np
import pytest

from repro.core.aggregate import (
    AggregateFeed,
    ShardedAggregateModel,
    SourceClass,
    SourcePopulation,
    as_population,
)
from repro.core.unified import UnifiedVBRModel
from repro.exceptions import NotFittedError, ValidationError
from repro.marginals.parametric import (
    GammaDistribution,
    NormalDistribution,
)
from repro.marginals.transform import MarginalTransform
from repro.processes import registry
from repro.processes.correlation import (
    ExponentialCorrelation,
    FGNCorrelation,
)
from repro.stats.random import spawn_rngs


@pytest.fixture()
def mixed_population():
    return SourcePopulation([
        SourceClass(
            "video_hi",
            correlation=0.85,
            marginal=NormalDistribution(10.0, 2.0),
            count=13,
        ),
        SourceClass(
            "video_lo",
            correlation=0.75,
            marginal=GammaDistribution(4.0, 0.5),
            count=7,
            gop_pattern=[2.0, 0.6, 0.6, 0.6],
        ),
    ])


class TestSourceClass:
    def test_float_correlation_becomes_fgn(self):
        klass = SourceClass(
            "a", correlation=0.8,
            marginal=NormalDistribution(1.0, 0.1), count=2,
        )
        assert isinstance(klass.correlation, FGNCorrelation)
        assert klass.hurst == pytest.approx(0.8)

    def test_srd_class_has_no_hurst(self):
        klass = SourceClass(
            "srd", correlation=ExponentialCorrelation(0.5),
            marginal=NormalDistribution(1.0, 0.1), count=2,
        )
        assert klass.hurst is None

    def test_rejects_bad_correlation_type(self):
        with pytest.raises(ValidationError):
            SourceClass(
                "a", correlation="nope",
                marginal=NormalDistribution(1.0, 0.1), count=1,
            )

    def test_rejects_bad_marginal_type(self):
        with pytest.raises(ValidationError):
            SourceClass("a", correlation=0.8, marginal="nope", count=1)

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ValidationError):
            SourceClass(
                "a", correlation=0.8,
                marginal=NormalDistribution(1.0, 0.1), count=0,
            )

    @pytest.mark.parametrize(
        "pattern", [[1.0], [[1.0, 2.0]], [1.0, -0.5], [1.0, 0.0]]
    )
    def test_rejects_bad_gop_pattern(self, pattern):
        with pytest.raises(ValidationError):
            SourceClass(
                "a", correlation=0.8,
                marginal=NormalDistribution(1.0, 0.1), count=1,
                gop_pattern=pattern,
            )

    def test_gop_pattern_normalized_to_mean_one(self):
        klass = SourceClass(
            "a", correlation=0.8,
            marginal=NormalDistribution(1.0, 0.1), count=1,
            gop_pattern=[4.0, 1.0, 1.0],
        )
        assert klass.gop_pattern.mean() == pytest.approx(1.0)
        assert klass.mean_rate == pytest.approx(1.0)

    def test_slot_variance_without_pattern(self):
        klass = SourceClass(
            "a", correlation=0.8,
            marginal=NormalDistribution(10.0, 2.0), count=1,
        )
        assert klass.slot_variance == pytest.approx(4.0)

    def test_slot_variance_with_pattern(self):
        pattern = np.array([2.0, 0.6, 0.6, 0.6])
        pattern = pattern / pattern.mean()
        klass = SourceClass(
            "a", correlation=0.8,
            marginal=NormalDistribution(10.0, 2.0), count=1,
            gop_pattern=pattern,
        )
        g2 = float(np.mean(pattern**2))
        expected = g2 * (4.0 + 100.0) - 100.0
        assert klass.slot_variance == pytest.approx(expected)

    def test_attenuation_is_one_for_normal(self):
        # Normal marginal -> affine transform -> no ACF attenuation.
        klass = SourceClass(
            "a", correlation=0.8,
            marginal=NormalDistribution(5.0, 1.0), count=1,
        )
        assert klass.attenuation == pytest.approx(1.0, abs=1e-6)

    def test_with_count(self):
        klass = SourceClass(
            "a", correlation=0.8,
            marginal=NormalDistribution(1.0, 0.1), count=3,
        )
        clone = klass.with_count(11)
        assert clone.count == 11
        assert klass.count == 3
        assert clone.marginal is klass.marginal


class TestSourcePopulation:
    def test_aggregate_moments_add(self, mixed_population):
        classes = mixed_population.classes
        assert mixed_population.num_sources == 20
        assert mixed_population.mean_rate == pytest.approx(
            13 * classes[0].mean_rate + 7 * classes[1].mean_rate
        )
        assert mixed_population.slot_variance == pytest.approx(
            13 * classes[0].slot_variance + 7 * classes[1].slot_variance
        )

    def test_dominant_hurst(self, mixed_population):
        assert mixed_population.hurst == pytest.approx(0.85)

    def test_hurst_requires_lrd_class(self):
        pop = SourcePopulation([
            SourceClass(
                "srd", correlation=ExponentialCorrelation(0.5),
                marginal=NormalDistribution(1.0, 0.1), count=2,
            )
        ])
        with pytest.raises(ValidationError):
            pop.hurst

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            SourcePopulation([])

    def test_scaled_to_largest_remainder(self, mixed_population):
        scaled = mixed_population.scaled_to(100)
        assert scaled.num_sources == 100
        assert [k.count for k in scaled.classes] == [65, 35]

    def test_scaled_to_drops_zero_share_classes(self):
        pop = SourcePopulation([
            SourceClass(
                "big", correlation=0.8,
                marginal=NormalDistribution(1.0, 0.1), count=99,
            ),
            SourceClass(
                "tiny", correlation=0.7,
                marginal=NormalDistribution(1.0, 0.1), count=1,
            ),
        ])
        scaled = pop.scaled_to(2)
        assert scaled.num_sources == 2
        assert [k.name for k in scaled.classes] == ["big"]

    def test_mixture_acf_weights_by_count_and_variance(self):
        # Normal marginals -> attenuation 1 -> the prediction is the
        # plain variance-weighted mixture of the correlation models.
        c1 = SourceClass(
            "a", correlation=0.9,
            marginal=NormalDistribution(10.0, 2.0), count=3,
        )
        c2 = SourceClass(
            "b", correlation=0.7,
            marginal=NormalDistribution(5.0, 1.0), count=12,
        )
        pop = SourcePopulation([c1, c2])
        lags = np.array([0.0, 1.0, 5.0, 20.0])
        w1, w2 = 3 * 4.0, 12 * 1.0
        expected = (
            w1 * np.where(lags == 0, 1.0, c1.correlation(lags))
            + w2 * np.where(lags == 0, 1.0, c2.correlation(lags))
        ) / (w1 + w2)
        np.testing.assert_allclose(pop.mixture_acf(lags), expected)

    def test_mixture_acf_rejects_gop_classes(self, mixed_population):
        with pytest.raises(ValidationError):
            mixed_population.mixture_acf([1, 2])

    def test_as_population_accepts_class_and_sequence(self):
        klass = SourceClass(
            "a", correlation=0.8,
            marginal=NormalDistribution(1.0, 0.1), count=2,
        )
        assert as_population(klass).num_sources == 2
        assert as_population([klass, klass.with_count(3)]).num_sources == 5
        pop = SourcePopulation([klass])
        assert as_population(pop) is pop


class TestShardInvariance:
    def test_bit_identical_across_shard_counts(self, mixed_population):
        engine = ShardedAggregateModel(mixed_population, batch_size=4)
        reference = engine.generate(
            128, shards=1, random_state=99
        ).arrivals
        for shards in (2, 7, 16, 64):
            feed = engine.generate(128, shards=shards, random_state=99)
            np.testing.assert_array_equal(feed.arrivals, reference)
            assert feed.shards == shards

    def test_batch_size_is_part_of_the_law(self, mixed_population):
        # Contract pin: changing batch_size moves block boundaries and
        # therefore which stream each source draws from — same law,
        # different bits.  A failure here means the seeding scheme
        # changed; update DESIGN.md if that is intentional.
        a = ShardedAggregateModel(
            mixed_population, batch_size=4
        ).generate(64, random_state=5).arrivals
        b = ShardedAggregateModel(
            mixed_population, batch_size=8
        ).generate(64, random_state=5).arrivals
        assert not np.array_equal(a, b)

    def test_seeds_differ(self, mixed_population):
        engine = ShardedAggregateModel(mixed_population, batch_size=4)
        a = engine.generate(64, random_state=1).arrivals
        b = engine.generate(64, random_state=2).arrivals
        assert not np.array_equal(a, b)

    def test_matches_manual_block_reconstruction(self):
        # Pin the seeding law end to end: blocks enumerated class by
        # class in population order, block b seeded with the b-th
        # spawned child, GOP gains staggered by in-class source index.
        pattern = np.array([2.0, 0.6, 0.6, 0.6])
        pattern = pattern / pattern.mean()
        pop = SourcePopulation([
            SourceClass(
                "x", correlation=0.8,
                marginal=NormalDistribution(3.0, 1.0), count=5,
            ),
            SourceClass(
                "y", correlation=0.7,
                marginal=GammaDistribution(2.0, 1.0), count=3,
                gop_pattern=pattern,
            ),
        ])
        horizon, batch, seed = 32, 2, 17
        feed = ShardedAggregateModel(pop, batch_size=batch).generate(
            horizon, random_state=seed
        )
        blocks = [(0, 0, 2), (0, 2, 2), (0, 4, 1), (1, 0, 2), (1, 2, 1)]
        rngs = spawn_rngs(seed, len(blocks))
        sources = [
            registry.resolve("auto", klass.correlation)
            for klass in pop.classes
        ]
        transforms = [MarginalTransform(k.marginal) for k in pop.classes]
        expected = np.zeros(horizon)
        for (class_index, offset, rows), rng in zip(blocks, rngs):
            x = sources[class_index].sample(
                horizon, size=rows, random_state=rng
            )
            y = np.asarray(transforms[class_index](x), dtype=float)
            if class_index == 1:
                phases = (offset + np.arange(rows)) % pattern.size
                idx = (
                    phases[:, None] + np.arange(horizon)[None, :]
                ) % pattern.size
                y = y * pattern[idx]
            expected += y.sum(axis=0)
        np.testing.assert_array_equal(feed.arrivals, expected)


class TestShardedAggregateModel:
    def test_feed_mean_tracks_population(self, mixed_population):
        engine = ShardedAggregateModel(mixed_population, batch_size=8)
        feed = engine.generate(1024, random_state=21)
        assert feed.arrivals.mean() == pytest.approx(
            mixed_population.mean_rate, rel=0.15
        )

    def test_feed_metadata_and_normalization(self, mixed_population):
        engine = ShardedAggregateModel(mixed_population, batch_size=8)
        feed = engine.generate(64, shards=3, random_state=1)
        assert isinstance(feed, AggregateFeed)
        assert feed.num_sources == 20
        assert feed.horizon == 64
        assert feed.mean_rate == pytest.approx(
            mixed_population.mean_rate
        )
        np.testing.assert_allclose(
            feed.normalized * feed.mean_rate, feed.arrivals
        )

    def test_generate_validation(self, mixed_population):
        engine = ShardedAggregateModel(mixed_population)
        with pytest.raises(ValidationError):
            engine.generate(0)
        with pytest.raises(ValidationError):
            engine.generate(16, shards=0)
        with pytest.raises(ValidationError):
            ShardedAggregateModel(mixed_population, batch_size=0)

    def test_from_unified(self, fitted_unified):
        engine = ShardedAggregateModel.from_unified(
            fitted_unified, 12, batch_size=4
        )
        assert engine.num_sources == 12
        feed = engine.generate(256, shards=2, random_state=3)
        expected = 12 * fitted_unified.marginal_.mean
        assert feed.mean_rate == pytest.approx(expected, rel=1e-6)
        assert feed.arrivals.mean() == pytest.approx(expected, rel=0.3)

    def test_from_unified_requires_fitted(self):
        with pytest.raises(NotFittedError):
            ShardedAggregateModel.from_unified(UnifiedVBRModel(), 4)
        with pytest.raises(ValidationError):
            ShardedAggregateModel.from_unified("nope", 4)

    def test_gop_smoothing_with_full_phase_coverage(self):
        # count == period with staggered phases: every slot sees every
        # phase exactly once, so the aggregate per-slot *mean* equals
        # the pattern-free mean — GOP periodicity cancels at scale.
        pattern = [3.0, 0.5, 0.5]
        pop = SourceClass(
            "g", correlation=0.75,
            marginal=NormalDistribution(10.0, 0.5), count=3,
            gop_pattern=pattern,
        )
        feed = ShardedAggregateModel(pop, batch_size=3).generate(
            512, random_state=4
        )
        # Per-slot aggregate gain is identically sum(g)/period = 1.
        assert feed.arrivals.mean() == pytest.approx(30.0, rel=0.05)

    def test_memory_stays_bounded_by_batch(self):
        # 5000 sources, batch 128: peak must track the block size, not
        # the (num_sources x horizon) matrix (~10 MB here, ~400 MB at
        # the bench's N=1e5).
        pop = SourceClass(
            "m", correlation=0.8,
            marginal=NormalDistribution(1.0, 0.2), count=5000,
        )
        engine = ShardedAggregateModel(pop, batch_size=128)
        engine.generate(64, random_state=0)  # warm spectral cache
        tracemalloc.start()
        engine.generate(256, shards=4, random_state=1)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < 16 * 2**20, f"peak {peak / 2**20:.1f} MiB"

    def test_metrics_recorded(self, mixed_population):
        from repro.observability import RunContext

        ctx = RunContext()
        engine = ShardedAggregateModel(
            mixed_population, batch_size=4, metrics=ctx
        )
        engine.generate(32, shards=3, random_state=2)
        snapshot = {
            (e["name"], tuple(sorted(e["labels"].items()))): e.get("value")
            for e in ctx.snapshot()
            if e["name"].startswith("aggregate.")
        }
        assert snapshot[
            ("aggregate.sources", (("source_class", "video_hi"),))
        ] == 13
        assert snapshot[
            ("aggregate.blocks", (("source_class", "video_lo"),))
        ] == 2
        assert snapshot[("aggregate.shards", ())] == 3
        assert snapshot[("aggregate.batch_size", ())] == 4.0


class TestProcessInvariance:
    """processes= mirrors the chunked pipeline's worker-count matrix."""

    def test_bit_identical_across_process_counts(self, mixed_population):
        engine = ShardedAggregateModel(mixed_population, batch_size=4)
        reference = engine.generate(
            128, shards=1, random_state=99
        ).arrivals
        for processes in (1, 2, 7, 16):
            feed = engine.generate(
                128, processes=processes, random_state=99
            )
            np.testing.assert_array_equal(feed.arrivals, reference)
            assert feed.processes == processes

    def test_processes_cross_shards_matrix(self, mixed_population):
        engine = ShardedAggregateModel(mixed_population, batch_size=4)
        reference = engine.generate(96, random_state=7).arrivals
        for processes in (2, 7):
            for shards in (1, 3, 16):
                feed = engine.generate(
                    96, shards=shards, processes=processes, random_state=7
                )
                np.testing.assert_array_equal(feed.arrivals, reference)

    def test_transport_pool_matrix_bit_identical(self, mixed_population):
        # The acceptance matrix: pool lifetime and result transport are
        # pure plumbing — the feed must be bit-identical to the serial
        # reference at every combination.
        engine = ShardedAggregateModel(mixed_population, batch_size=4)
        reference = engine.generate(128, random_state=21).arrivals
        for processes in (1, 2, 7, 16):
            for transport in ("pickle", "shm"):
                for pool in ("shared", "per-call"):
                    feed = engine.generate(
                        128,
                        processes=processes,
                        transport=transport,
                        pool=pool,
                        random_state=21,
                    )
                    np.testing.assert_array_equal(feed.arrivals, reference)

    def test_feed_reports_effective_transport(self, mixed_population):
        from repro.simulation.shm import shm_available

        engine = ShardedAggregateModel(mixed_population, batch_size=4)
        assert engine.generate(32, random_state=3).transport == "inline"
        pooled = engine.generate(
            32, processes=2, transport="pickle", random_state=3
        )
        assert pooled.transport == "pickle"
        auto = engine.generate(32, processes=2, random_state=3)
        assert auto.transport == ("shm" if shm_available() else "pickle")

    def test_transport_and_pool_validated(self, mixed_population):
        engine = ShardedAggregateModel(mixed_population)
        with pytest.raises(ValidationError, match="transport"):
            engine.generate(16, processes=2, transport="wire")
        with pytest.raises(ValidationError, match="pool"):
            engine.generate(16, processes=2, pool="lots")

    def test_env_variable_resolves_processes(
        self, mixed_population, monkeypatch
    ):
        engine = ShardedAggregateModel(mixed_population, batch_size=4)
        reference = engine.generate(64, random_state=13).arrivals
        monkeypatch.setenv("REPRO_PROCESSES", "3")
        feed = engine.generate(64, random_state=13)
        assert feed.processes == 3
        np.testing.assert_array_equal(feed.arrivals, reference)

    def test_processes_validated(self, mixed_population):
        engine = ShardedAggregateModel(mixed_population)
        with pytest.raises(ValidationError):
            engine.generate(16, processes=0)

    def test_instance_backend_rejected_in_pooled_mode(self):
        source = registry.resolve("davies_harte", FGNCorrelation(0.8))
        klass = SourceClass(
            "inst", correlation=0.8,
            marginal=NormalDistribution(1.0, 0.1), count=8,
            backend=source,
        )
        engine = ShardedAggregateModel(klass, batch_size=2)
        with pytest.raises(ValidationError, match="registry-name"):
            engine.generate(32, processes=2, random_state=0)
        # Serial mode still accepts instance backends.
        feed = engine.generate(32, processes=1, random_state=0)
        assert feed.horizon == 32

    def test_pool_metrics_recorded(self, mixed_population):
        from repro.observability import RunContext

        ctx = RunContext()
        engine = ShardedAggregateModel(
            mixed_population, batch_size=4, metrics=ctx
        )
        engine.generate(32, processes=2, random_state=2)
        snapshot = {
            (e["name"], tuple(sorted(e["labels"].items()))): e.get("value")
            for e in ctx.snapshot()
        }
        assert snapshot[("aggregate.processes", ())] == 2.0
        assert snapshot[("aggregate.reduction_bytes", ())] > 0
        assert ("aggregate.throughput_source_slots_per_s", ()) in snapshot
        # Per-class block counters match the serial accounting.
        assert snapshot[
            ("aggregate.blocks", (("source_class", "video_lo"),))
        ] == 2


class TestFeedDtype:
    def test_float32_opt_in(self, mixed_population):
        engine = ShardedAggregateModel(mixed_population, batch_size=4)
        ref = engine.generate(64, random_state=9).arrivals
        feed = engine.generate(64, dtype="float32", random_state=9)
        assert feed.arrivals.dtype == np.float32
        np.testing.assert_allclose(feed.arrivals, ref, rtol=1e-5)

    def test_float32_pooled_matches_serial(self, mixed_population):
        engine = ShardedAggregateModel(mixed_population, batch_size=4)
        serial = engine.generate(
            64, dtype=np.float32, random_state=9
        ).arrivals
        pooled = engine.generate(
            64, dtype=np.float32, processes=2, random_state=9
        ).arrivals
        np.testing.assert_array_equal(pooled, serial)

    def test_default_is_float64(self, mixed_population):
        engine = ShardedAggregateModel(mixed_population, batch_size=8)
        assert engine.generate(16, random_state=0).arrivals.dtype == (
            np.float64
        )

    def test_rejects_other_dtypes(self, mixed_population):
        engine = ShardedAggregateModel(mixed_population)
        for bad in ("float16", np.int32, "complex128", object):
            with pytest.raises(ValidationError):
                engine.generate(16, dtype=bad)


class TestFeedMemoryFlatness:
    """Satellite regression: feed memory is O(horizon), not O(N) or
    O(shards x horizon), at fixed batch geometry."""

    @staticmethod
    def _peak(num_sources, shards, processes=None):
        import tracemalloc

        pop = SourceClass(
            "flat", correlation=0.8,
            marginal=NormalDistribution(1.0, 0.2), count=num_sources,
        )
        engine = ShardedAggregateModel(pop, batch_size=512)
        engine.generate(32, random_state=0)  # warm spectral cache
        tracemalloc.start()
        engine.generate(
            128, shards=shards, processes=processes, random_state=1
        )
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak

    def test_peak_flat_in_shards(self):
        base = self._peak(20_000, shards=1)
        wide = self._peak(20_000, shards=32)
        assert wide < 1.5 * base + 2**20, (base, wide)

    def test_peak_flat_in_num_sources(self):
        small = self._peak(25_000, shards=4)
        large = self._peak(100_000, shards=4)
        assert large < 1.5 * small + 2**20, (small, large)
