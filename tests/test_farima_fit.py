"""Tests for FARIMA(p, d, 0) fitting (the paper's baseline approach)."""

import numpy as np
import pytest

from repro.estimators.farima_fit import (
    farima_acvf_numeric,
    fit_farima,
)
from repro.exceptions import EstimationError, ValidationError
from repro.processes.correlation import FARIMACorrelation
from repro.processes.farima import farima_generate


class TestFarimaAcvfNumeric:
    def test_matches_closed_form_without_ar(self):
        d = 0.3
        numeric = farima_acvf_numeric(d, [], 20)
        exact = FARIMACorrelation(d).acvf(20)
        np.testing.assert_allclose(numeric, exact, atol=2e-3)

    def test_ar_term_raises_short_lags(self):
        base = farima_acvf_numeric(0.2, [], 10)
        with_ar = farima_acvf_numeric(0.2, [0.6], 10)
        assert with_ar[1] > base[1]

    def test_head_normalised(self):
        acvf = farima_acvf_numeric(0.25, [0.3], 5)
        assert acvf[0] == pytest.approx(1.0)

    def test_rejects_bad_d(self):
        with pytest.raises(ValidationError):
            farima_acvf_numeric(0.5, [], 10)


class TestFitFarima:
    def test_pure_farima_d_recovery(self):
        d = 0.3
        x = farima_generate(1 << 15, d, random_state=1)
        fit = fit_farima(x, p=0)
        assert fit.d == pytest.approx(d, abs=0.05)
        assert fit.ar.size == 0

    def test_known_d_ar_recovery(self):
        """With d known, Yule-Walker on the differenced series recovers
        the AR coefficient."""
        d, phi = 0.25, 0.5
        x = farima_generate(1 << 15, d, ar=[phi], random_state=2)
        fit = fit_farima(x, p=1, d=d)
        assert fit.ar[0] == pytest.approx(phi, abs=0.07)

    def test_joint_estimation_is_biased(self):
        """The paper's §1 point, demonstrated: estimating H by Whittle
        in the presence of an unmodeled AR term inflates d."""
        d, phi = 0.25, 0.6
        x = farima_generate(1 << 15, d, ar=[phi], random_state=3)
        fit = fit_farima(x, p=1)
        assert fit.d > d + 0.05  # visible positive bias

    def test_implied_acvf_runs_hosking(self):
        from repro.processes.hosking import hosking_generate

        x = farima_generate(8192, 0.3, random_state=4)
        fit = fit_farima(x, p=0)
        acvf = fit.acvf(50)
        paths = hosking_generate(acvf, 50, size=5, random_state=5)
        assert paths.shape == (5, 50)

    def test_rejects_srd_series(self):
        rng = np.random.default_rng(6)
        x = np.diff(rng.normal(size=5000))
        with pytest.raises(EstimationError, match="long-range"):
            fit_farima(x, p=1)

    def test_rejects_short_series(self):
        with pytest.raises(ValidationError):
            fit_farima(np.ones(100), p=1)

    def test_repr(self):
        x = farima_generate(4096, 0.3, random_state=7)
        fit = fit_farima(x, p=1, d=0.3)
        assert "FarimaFit" in repr(fit)
