"""Tests for the twist-valley search (Fig. 14 methodology)."""

import numpy as np
import pytest

from repro.exceptions import SimulationError
from repro.processes.correlation import ExponentialCorrelation
from repro.simulation.twist_search import (
    TwistSearchResult,
    search_twisted_mean,
)


def arrivals(x):
    return x + 2.0


@pytest.fixture(scope="module")
def search_result():
    return search_twisted_mean(
        ExponentialCorrelation(0.3),
        arrivals,
        service_rate=3.5,
        buffer_size=8.0,
        horizon=80,
        twist_values=[0.0, 0.5, 1.0, 1.5, 2.5, 4.0],
        replications=1500,
        random_state=42,
    )


class TestSearchTwistedMean:
    def test_grid_preserved(self, search_result):
        np.testing.assert_array_equal(
            search_result.twist_values, [0.0, 0.5, 1.0, 1.5, 2.5, 4.0]
        )
        assert len(search_result.estimates) == 6

    def test_valley_interior(self, search_result):
        """The best twist is neither MC (0) nor the extreme over-twist."""
        assert 0.0 < search_result.best_twist < 4.0

    def test_variance_reduction_vs_mc(self, search_result):
        assert search_result.variance_reduction_vs(0) > 2.0

    def test_scaled_variances_max_one(self, search_result):
        scaled = search_result.scaled_variances
        finite = scaled[np.isfinite(scaled)]
        assert finite.max() == pytest.approx(1.0)

    def test_best_estimate_consistent(self, search_result):
        assert (
            search_result.best_estimate
            is search_result.estimates[search_result.best_index]
        )

    def test_estimates_mutually_consistent(self, search_result):
        """All twists estimate the same probability (unbiasedness)."""
        probs = [
            e.probability
            for e in search_result.estimates
            if e.hits >= 20 and np.isfinite(e.normalized_variance)
        ]
        assert len(probs) >= 2
        ref = np.median(probs)
        for p in probs:
            assert p == pytest.approx(ref, rel=1.0)  # same order of magnitude

    def test_all_infinite_raises(self):
        result = TwistSearchResult(
            twist_values=np.array([0.0]),
            estimates=[
                # A zero-probability estimate has infinite normalized var.
                type(
                    "E",
                    (),
                    {
                        "normalized_variance": float("inf"),
                        "probability": 0.0,
                    },
                )()
            ],
        )
        with pytest.raises(SimulationError):
            _ = result.best_index


class TestParallelSearch:
    def test_parallel_equals_serial(self):
        kwargs = dict(
            service_rate=3.0,
            buffer_size=4.0,
            horizon=40,
            twist_values=[0.0, 0.8, 1.6, 2.4],
            replications=400,
        )
        model = ExponentialCorrelation(0.3)
        serial = search_twisted_mean(
            model, arrivals, random_state=60, workers=1, **kwargs
        )
        threaded = search_twisted_mean(
            model, arrivals, random_state=60, workers=4, **kwargs
        )
        np.testing.assert_array_equal(
            serial.normalized_variances, threaded.normalized_variances
        )
        for a, b in zip(serial.estimates, threaded.estimates):
            assert a.probability == b.probability
            assert a.variance == b.variance
