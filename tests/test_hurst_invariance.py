"""Statistical test of Appendix A: Hurst invariance under eq. 7.

The paper's Appendix A argument: applying the instantaneous marginal
transform ``h`` to an LRD background process attenuates the ACF by a
factor ``a`` but leaves the *asymptotic decay exponent* — and hence the
Hurst parameter — unchanged.  We verify this statistically with a
*paired* design: the same estimator on the same realization before and
after the transform, averaged over independent seeded replications, so
estimator bias cancels out of the comparison.

Also checked: the attenuation factor of any monotone marginal
transform lies in ``(0, 1]``, and the pilot-measured attenuation agrees
with the analytic Hermite-expansion value.
"""

import numpy as np
import pytest

from repro.estimators import (
    dfa_estimate,
    sample_acf,
    variance_time_estimate,
    whittle_estimate,
)
from repro.marginals.attenuation import (
    analytic_attenuation,
    measured_attenuation,
)
from repro.marginals.empirical import EmpiricalDistribution
from repro.marginals.parametric import (
    GammaDistribution,
    LognormalDistribution,
)
from repro.marginals.transform import MarginalTransform
from repro.processes import fgn_generate

HURST = 0.8
N = 16_384
SEEDS = (11, 12, 13, 14)


def paired_estimates(estimator, transform):
    """Per-seed (H(X), H(h(X))) pairs for one estimator."""
    pairs = []
    for seed in SEEDS:
        x = fgn_generate(HURST, N, random_state=seed)
        pairs.append(
            (estimator(x).hurst, estimator(transform(x)).hurst)
        )
    return np.asarray(pairs)


class TestHurstInvariance:
    @pytest.mark.parametrize(
        "estimator",
        [variance_time_estimate, dfa_estimate, whittle_estimate],
        ids=["variance-time", "dfa", "whittle"],
    )
    def test_gamma_transform_preserves_hurst(self, estimator):
        transform = MarginalTransform(GammaDistribution(2.0, 1.0))
        pairs = paired_estimates(estimator, transform)
        # Paired mean shift: estimator bias is common to both columns.
        shift = np.abs(pairs[:, 1].mean() - pairs[:, 0].mean())
        assert shift < 0.05, pairs
        # And both sit near the true H (the estimators themselves are
        # validated elsewhere; this guards against degenerate input).
        assert abs(pairs[:, 1].mean() - HURST) < 0.1

    def test_strongly_nonlinear_transform_preserves_hurst(self):
        # A lognormal marginal (the heaviest attenuation among the
        # paper's candidates) still leaves the decay exponent intact.
        transform = MarginalTransform(LognormalDistribution(0.0, 0.8))
        pairs = paired_estimates(variance_time_estimate, transform)
        assert np.abs(pairs[:, 1].mean() - pairs[:, 0].mean()) < 0.06

    def test_empirical_transform_preserves_hurst(self):
        rng = np.random.default_rng(5)
        data = rng.gamma(2.0, 500.0, size=5000)
        transform = MarginalTransform(
            EmpiricalDistribution(data, bins=200)
        )
        pairs = paired_estimates(variance_time_estimate, transform)
        assert np.abs(pairs[:, 1].mean() - pairs[:, 0].mean()) < 0.06


class TestAttenuationRange:
    @pytest.mark.parametrize(
        "target",
        [
            GammaDistribution(0.7, 1.0),
            GammaDistribution(2.0, 300.0),
            GammaDistribution(5.0, 10.0),
            LognormalDistribution(0.0, 0.5),
            LognormalDistribution(1.0, 1.2),
        ],
        ids=["gamma-skewed", "gamma-paper", "gamma-mild",
             "lognormal-mild", "lognormal-heavy"],
    )
    def test_analytic_attenuation_in_unit_interval(self, target):
        a = analytic_attenuation(MarginalTransform(target))
        assert 0.0 < a <= 1.0 + 1e-9

    def test_empirical_targets_in_unit_interval(self):
        for seed in SEEDS:
            rng = np.random.default_rng(seed)
            data = rng.gamma(2.0, 500.0, size=4000)
            a = analytic_attenuation(
                MarginalTransform(EmpiricalDistribution(data, bins=200))
            )
            assert 0.0 < a <= 1.0 + 1e-9

    def test_measured_agrees_with_analytic(self):
        transform = MarginalTransform(GammaDistribution(2.0, 1.0))
        analytic = analytic_attenuation(transform)
        # Pilot-style measurement: ACF ratio of one long realization
        # before/after the transform, averaged over large lags.
        x = fgn_generate(HURST, 4 * N, random_state=0)
        background = sample_acf(x, 400)
        foreground = sample_acf(np.asarray(transform(x)), 400)
        measured = measured_attenuation(
            background, foreground, lag_range=(100, 400)
        )
        assert measured == pytest.approx(analytic, rel=0.15)
        assert 0.0 < measured <= 1.0 + 1e-9
