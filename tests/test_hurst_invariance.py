"""Statistical test of Appendix A: Hurst invariance under eq. 7.

The paper's Appendix A argument: applying the instantaneous marginal
transform ``h`` to an LRD background process attenuates the ACF by a
factor ``a`` but leaves the *asymptotic decay exponent* — and hence the
Hurst parameter — unchanged.  We verify this statistically with a
*paired* design: the same estimator on the same realization before and
after the transform, averaged over independent seeded replications, so
estimator bias cancels out of the comparison.

Also checked: the attenuation factor of any monotone marginal
transform lies in ``(0, 1]``, and the pilot-measured attenuation agrees
with the analytic Hermite-expansion value.

Statistical design
------------------
- **Seeds:** the pinned family ``BASE_SEEDS + offset`` with four
  replications; ``--seed-offset`` (see ``make test-stats-matrix``)
  shifts the family, which every tolerance below was verified against
  at offsets 0, 1 and 2.
- **Workload:** paired fGn at ``H = 0.8``, ``N = 2^14`` — the Fig. 3/4
  horizon of the paper's own estimates.
- **Tolerances (~alpha):** the paired-shift gates sit at >= 4 sample
  standard deviations of the observed shift distribution, i.e. a
  false-alarm probability well under 1% per cell; the MAVAR gates are
  tighter than the classical ones (0.02/0.04 vs 0.05/0.1) because its
  finite-n FGN calibration removes the curvature bias the graphical
  estimators carry (bake-off: ``make bench-bakeoff``, DESIGN.md §5h).
- **Power:** a genuine Hurst change of 0.05 (the smallest the paper's
  method would act on) moves the paired mean shift by >= 5x every
  gate, so the test detects it essentially always.
"""

import numpy as np
import pytest

from repro.estimators import (
    dfa_estimate,
    mavar_estimate,
    sample_acf,
    variance_time_estimate,
    whittle_estimate,
)
from repro.marginals.attenuation import (
    analytic_attenuation,
    measured_attenuation,
)
from repro.marginals.empirical import EmpiricalDistribution
from repro.marginals.parametric import (
    GammaDistribution,
    LognormalDistribution,
)
from repro.marginals.transform import MarginalTransform
from repro.processes import fgn_generate

HURST = 0.8
N = 16_384
BASE_SEEDS = (11, 12, 13, 14)


@pytest.fixture(scope="module")
def seeds(seed_offset):
    """The seed family of this run (shifted by ``--seed-offset``)."""
    return tuple(s + seed_offset for s in BASE_SEEDS)


def paired_estimates(estimator, transform, seeds):
    """Per-seed (H(X), H(h(X))) pairs for one estimator."""
    pairs = []
    for seed in seeds:
        x = fgn_generate(HURST, N, random_state=seed)
        pairs.append(
            (estimator(x).hurst, estimator(transform(x)).hurst)
        )
    return np.asarray(pairs)


class TestHurstInvariance:
    @pytest.mark.parametrize(
        "estimator, shift_tol, abs_tol",
        [
            (variance_time_estimate, 0.05, 0.1),
            (dfa_estimate, 0.05, 0.1),
            (whittle_estimate, 0.05, 0.1),
            # MAVAR's finite-n calibration earns the tight gates the
            # graphical estimators cannot hold (old bounds 0.05/0.1;
            # retuning recorded in DESIGN.md §5h).
            (mavar_estimate, 0.02, 0.04),
        ],
        ids=["variance-time", "dfa", "whittle", "mavar"],
    )
    def test_gamma_transform_preserves_hurst(
        self, estimator, shift_tol, abs_tol, seeds
    ):
        transform = MarginalTransform(GammaDistribution(2.0, 1.0))
        pairs = paired_estimates(estimator, transform, seeds)
        # Paired mean shift: estimator bias is common to both columns.
        shift = np.abs(pairs[:, 1].mean() - pairs[:, 0].mean())
        assert shift < shift_tol, pairs
        # And both sit near the true H (the estimators themselves are
        # validated elsewhere; this guards against degenerate input).
        assert abs(pairs[:, 1].mean() - HURST) < abs_tol

    def test_strongly_nonlinear_transform_preserves_hurst(self, seeds):
        # A lognormal marginal (the heaviest attenuation among the
        # paper's candidates) still leaves the decay exponent intact.
        transform = MarginalTransform(LognormalDistribution(0.0, 0.8))
        pairs = paired_estimates(variance_time_estimate, transform, seeds)
        assert np.abs(pairs[:, 1].mean() - pairs[:, 0].mean()) < 0.06

    def test_empirical_transform_preserves_hurst(self, seeds):
        rng = np.random.default_rng(5)
        data = rng.gamma(2.0, 500.0, size=5000)
        transform = MarginalTransform(
            EmpiricalDistribution(data, bins=200)
        )
        pairs = paired_estimates(variance_time_estimate, transform, seeds)
        assert np.abs(pairs[:, 1].mean() - pairs[:, 0].mean()) < 0.06


class TestAttenuationRange:
    @pytest.mark.parametrize(
        "target",
        [
            GammaDistribution(0.7, 1.0),
            GammaDistribution(2.0, 300.0),
            GammaDistribution(5.0, 10.0),
            LognormalDistribution(0.0, 0.5),
            LognormalDistribution(1.0, 1.2),
        ],
        ids=["gamma-skewed", "gamma-paper", "gamma-mild",
             "lognormal-mild", "lognormal-heavy"],
    )
    def test_analytic_attenuation_in_unit_interval(self, target):
        a = analytic_attenuation(MarginalTransform(target))
        assert 0.0 < a <= 1.0 + 1e-9

    def test_empirical_targets_in_unit_interval(self, seeds):
        for seed in seeds:
            rng = np.random.default_rng(seed)
            data = rng.gamma(2.0, 500.0, size=4000)
            a = analytic_attenuation(
                MarginalTransform(EmpiricalDistribution(data, bins=200))
            )
            assert 0.0 < a <= 1.0 + 1e-9

    def test_measured_agrees_with_analytic(self):
        transform = MarginalTransform(GammaDistribution(2.0, 1.0))
        analytic = analytic_attenuation(transform)
        # Pilot-style measurement: ACF ratio of one long realization
        # before/after the transform, averaged over large lags.
        x = fgn_generate(HURST, 4 * N, random_state=0)
        background = sample_acf(x, 400)
        foreground = sample_acf(np.asarray(transform(x)), 400)
        measured = measured_attenuation(
            background, foreground, lag_range=(100, 400)
        )
        assert measured == pytest.approx(analytic, rel=0.15)
        assert 0.0 < measured <= 1.0 + 1e-9
