"""Shared fixtures for the test suite.

Expensive artifacts (synthetic traces, fitted models) are session-scoped
so the suite stays fast while many test modules can exercise them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CompositeMPEGModel, UnifiedVBRModel
from repro.video import SyntheticCodecConfig, SyntheticMPEGCodec


def pytest_addoption(parser):
    """``--seed-offset K`` shifts every seed matrix in the statistical
    harness by ``K`` (see ``make test-stats-matrix``).

    The statistical tests pin seed families so CI is deterministic; the
    offset reruns the same designs on neighbouring families, which is
    how tolerance retunings prove they were not fitted to one lucky
    draw.
    """
    parser.addoption(
        "--seed-offset",
        action="store",
        type=int,
        default=0,
        help="shift statistical-test seed matrices by this amount",
    )


@pytest.fixture(scope="session")
def seed_offset(request):
    """The ``--seed-offset`` value (0 in a plain run)."""
    return int(request.config.getoption("--seed-offset"))


@pytest.fixture(scope="session")
def rng():
    """A deterministic generator for ad-hoc sampling in tests."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def intra_trace():
    """A medium-length intraframe-only synthetic trace (Figs. 1-8 style)."""
    config = SyntheticCodecConfig.intraframe_paper_like(num_frames=60_000)
    return SyntheticMPEGCodec(config).generate(random_state=101)


@pytest.fixture(scope="session")
def ibp_trace():
    """A medium-length interframe (I/B/P) synthetic trace (§3.3 style)."""
    config = SyntheticCodecConfig.paper_like(num_frames=60_000)
    return SyntheticMPEGCodec(config).generate(random_state=202)


@pytest.fixture(scope="session")
def fitted_unified(intra_trace):
    """A unified model fitted to the intraframe trace.

    Uses the hermite-inverse background (the library's strongest
    calibration); the paper's compensated method is tested separately.
    """
    return UnifiedVBRModel(
        max_lag=300, background_method="hermite-inverse"
    ).fit(intra_trace, random_state=303)


def pooled_generation(model, *, paths=192, length=800, seed=0):
    """Pool many short independent foreground paths.

    A single path of a strongly LRD process wanders too much at low
    frequencies for stable marginal comparisons — each path contributes
    roughly *one* effective observation of the low-frequency mode — so
    the ensemble marginal is recovered by pooling many short paths
    rather than one long one.
    """
    out = model.generate(
        length, size=paths, method="davies-harte", random_state=seed
    )
    return np.asarray(out).ravel()


@pytest.fixture(scope="session")
def fitted_composite(ibp_trace):
    """A composite MPEG model fitted to the interframe trace."""
    return CompositeMPEGModel(max_lag_i=30).fit(ibp_trace, random_state=404)
