"""Tests for the Davies-Harte circulant-embedding generator."""

import warnings

import numpy as np
import pytest

from repro.exceptions import CorrelationError, ValidationError
from repro.processes.correlation import (
    CompositeCorrelation,
    ExponentialCorrelation,
    FGNCorrelation,
    WhiteNoiseCorrelation,
)
from repro.processes.davies_harte import (
    circulant_eigenvalues,
    davies_harte_generate,
)


class TestCirculantEigenvalues:
    def test_white_noise_eigenvalues_all_one(self):
        acvf = np.zeros(9)
        acvf[0] = 1.0
        eig = circulant_eigenvalues(acvf)
        np.testing.assert_allclose(eig, 1.0, atol=1e-12)

    def test_fgn_nonnegative(self):
        eig = circulant_eigenvalues(FGNCorrelation(0.9).acvf(257))
        assert eig.min() > -1e-10

    def test_rejects_short_input(self):
        with pytest.raises(ValidationError):
            circulant_eigenvalues([1.0])


class TestDaviesHarteGenerate:
    def test_shapes(self):
        assert davies_harte_generate(FGNCorrelation(0.7), 64).shape == (64,)
        assert davies_harte_generate(
            FGNCorrelation(0.7), 64, size=5
        ).shape == (5, 64)

    def test_reproducible(self):
        a = davies_harte_generate(FGNCorrelation(0.8), 128, random_state=1)
        b = davies_harte_generate(FGNCorrelation(0.8), 128, random_state=1)
        np.testing.assert_array_equal(a, b)

    def test_mean(self):
        x = davies_harte_generate(
            WhiteNoiseCorrelation(), 4096, mean=3.0, random_state=2
        )
        assert x.mean() == pytest.approx(3.0, abs=0.1)

    def test_unit_variance(self):
        x = davies_harte_generate(
            FGNCorrelation(0.6), 1024, size=50, random_state=3
        )
        assert x.var() == pytest.approx(1.0, abs=0.05)

    def test_exact_covariance_many_replications(self):
        corr = FGNCorrelation(0.85)
        x = davies_harte_generate(corr, 64, size=20_000, random_state=4)
        for k in (1, 5, 20):
            sample = np.mean(x[:, 0] * x[:, k])
            assert sample == pytest.approx(float(corr(k)), abs=0.03)

    def test_matches_hosking_distributionally(self):
        """DH and Hosking sample the same law: compare lag-1 products."""
        from repro.processes.hosking import hosking_generate

        corr = FGNCorrelation(0.8)
        dh = davies_harte_generate(corr, 64, size=4000, random_state=5)
        ho = hosking_generate(corr, 64, size=4000, random_state=6)
        dh_stat = np.mean(dh[:, :-1] * dh[:, 1:])
        ho_stat = np.mean(ho[:, :-1] * ho[:, 1:])
        assert dh_stat == pytest.approx(ho_stat, abs=0.03)

    def test_explicit_acvf_needs_n_plus_one(self):
        with pytest.raises(ValidationError, match="at least"):
            davies_harte_generate(np.array([1.0, 0.5]), 2)

    def test_raise_mode_on_negative_eigenvalues(self):
        # A deliberately non-embeddable sequence: a hard step.
        bad = np.concatenate([np.ones(4), np.full(5, -0.5)])
        with pytest.raises(CorrelationError):
            davies_harte_generate(
                bad, 8, on_negative_eigenvalues="raise", random_state=0
            )

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValidationError, match="clip"):
            davies_harte_generate(
                FGNCorrelation(0.7), 8, on_negative_eigenvalues="zap"
            )

    def test_composite_generates_without_material_warning(self):
        corr = CompositeCorrelation.paper_fit().with_continuity()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            x = davies_harte_generate(corr, 2048, random_state=7)
        assert x.shape == (2048,)

    def test_long_trace_fast_path(self):
        x = davies_harte_generate(
            FGNCorrelation(0.9), 1 << 16, random_state=8
        )
        assert x.shape == (1 << 16,)
        assert np.all(np.isfinite(x))


class TestEdgeCases:
    def test_single_sample(self):
        x = davies_harte_generate(FGNCorrelation(0.8), 1, random_state=9)
        assert x.shape == (1,)
        assert np.isfinite(x[0])

    def test_two_samples(self):
        x = davies_harte_generate(
            FGNCorrelation(0.8), 2, size=2000, random_state=10
        )
        assert x.shape == (2000, 2)
        lag1 = float(np.mean(x[:, 0] * x[:, 1]))
        assert lag1 == pytest.approx(
            float(FGNCorrelation(0.8)(1)), abs=0.05
        )

    def test_exponential_correlation_embeddable(self):
        x = davies_harte_generate(
            ExponentialCorrelation(0.05),
            512,
            random_state=11,
            on_negative_eigenvalues="raise",
        )
        assert x.shape == (512,)


class TestSpectralTableArgument:
    """The spectral_table= knob mirrors hosking's coeff_table=."""

    def setup_method(self):
        from repro.processes.spectral_cache import clear_spectral_cache

        clear_spectral_cache()

    def test_false_bypasses_cache_bitwise(self):
        from repro.processes.spectral_cache import spectral_cache_info

        corr = FGNCorrelation(0.85)
        cached = davies_harte_generate(corr, 256, random_state=21)
        bypass = davies_harte_generate(
            corr, 256, random_state=21, spectral_table=False
        )
        np.testing.assert_array_equal(cached, bypass)
        # The bypass call left no trace in the shared cache.
        assert spectral_cache_info().misses == 1

    def test_explicit_table_bitwise(self):
        from repro.processes.spectral_cache import SpectralTable

        corr = FGNCorrelation(0.85)
        table = SpectralTable(corr.acvf(257))
        via_table = davies_harte_generate(
            corr, 256, random_state=22, spectral_table=table
        )
        plain = davies_harte_generate(
            corr, 256, random_state=22, spectral_table=False
        )
        np.testing.assert_array_equal(via_table, plain)

    def test_explicit_table_too_short(self):
        from repro.processes.spectral_cache import SpectralTable

        table = SpectralTable(FGNCorrelation(0.85).acvf(65))
        with pytest.raises(ValidationError, match="cannot generate"):
            davies_harte_generate(
                FGNCorrelation(0.85), 256, spectral_table=table
            )

    def test_invalid_spectral_table_rejected(self):
        with pytest.raises(ValidationError, match="spectral_table"):
            davies_harte_generate(
                FGNCorrelation(0.85), 64, spectral_table="yes"
            )

    def test_true_means_shared_cache(self):
        corr = FGNCorrelation(0.85)
        a = davies_harte_generate(corr, 128, random_state=23)
        b = davies_harte_generate(
            corr, 128, random_state=23, spectral_table=True
        )
        np.testing.assert_array_equal(a, b)

    def test_explicit_acvf_with_extra_lags_unchanged(self):
        """Passing more lags than needed still slices to n + 1."""
        acvf = FGNCorrelation(0.8).acvf(100)
        a = davies_harte_generate(acvf, 40, random_state=24)
        b = davies_harte_generate(acvf[:41], 40, random_state=24)
        np.testing.assert_array_equal(a, b)


class TestSpectrumModes:
    """The real-FFT synthesis contract: same stream, same filter."""

    def test_real_and_full_agree_to_pinned_tolerance(self):
        from repro.processes.davies_harte import davies_harte_generate as gen

        with warnings.catch_warnings():
            # The composite fit clips eigenvalues at this length — a
            # known property, warned identically by both modes.
            warnings.simplefilter("ignore", RuntimeWarning)
            for correlation in (
                FGNCorrelation(0.55),
                FGNCorrelation(0.85),
                ExponentialCorrelation(0.3),
                CompositeCorrelation.paper_fit(),
                WhiteNoiseCorrelation(),
            ):
                real = gen(
                    correlation, 257, size=3, random_state=11,
                    spectrum_mode="real",
                )
                full = gen(
                    correlation, 257, size=3, random_state=11,
                    spectrum_mode="full",
                )
                np.testing.assert_allclose(
                    real, full, rtol=1e-10, atol=1e-10,
                )

    def test_default_mode_is_real(self):
        real = davies_harte_generate(
            FGNCorrelation(0.8), 64, random_state=5, spectrum_mode="real"
        )
        default = davies_harte_generate(
            FGNCorrelation(0.8), 64, random_state=5
        )
        np.testing.assert_array_equal(default, real)

    def test_full_mode_matches_legacy_synthesis_bitwise(self):
        # The opt-out path must stay exactly the pre-real-FFT formula:
        # ifft(fft(g) * sqrt(eig / m)) * sqrt(m), truncated to n.
        from repro.processes.spectral_cache import (
            build_eigenvalue_entry,
        )

        correlation = FGNCorrelation(0.78)
        n = 96
        m = 2 * n
        entry = build_eigenvalue_entry(correlation.acvf(n + 1))
        rng = np.random.default_rng(123)
        g = rng.standard_normal((2, m))
        scale = np.sqrt(entry.eigenvalues / m)
        expected = np.fft.ifft(
            np.fft.fft(g, axis=1) * scale * np.sqrt(m), axis=1
        ).real[:, :n]
        got = davies_harte_generate(
            correlation, n, size=2, random_state=123,
            spectrum_mode="full",
        )
        np.testing.assert_array_equal(got, expected)

    def test_paired_hurst_and_acf_contract(self):
        # Statistical contract: the two modes' paths estimate the same
        # Hurst exponent and sample ACF (they share noise and filter,
        # so the estimates differ only at FFT rounding level).
        from repro.estimators.acf import sample_acf
        from repro.estimators.variance_time import variance_time_estimate

        hurst = 0.8
        real = davies_harte_generate(
            FGNCorrelation(hurst), 8192, random_state=31,
            spectrum_mode="real",
        )
        full = davies_harte_generate(
            FGNCorrelation(hurst), 8192, random_state=31,
            spectrum_mode="full",
        )
        h_real = variance_time_estimate(real).hurst
        h_full = variance_time_estimate(full).hurst
        assert h_real == pytest.approx(h_full, abs=1e-6)
        assert h_real == pytest.approx(hurst, abs=0.12)
        np.testing.assert_allclose(
            sample_acf(real, 32), sample_acf(full, 32), atol=1e-9
        )
        np.testing.assert_allclose(
            sample_acf(real, 5),
            FGNCorrelation(hurst)(np.arange(6)),
            atol=0.1,
        )

    def test_invalid_spectrum_mode_rejected(self):
        with pytest.raises(ValidationError, match="spectrum_mode"):
            davies_harte_generate(
                FGNCorrelation(0.8), 32, spectrum_mode="complex"
            )

    def test_workspace_reuse_counts_hits(self):
        from repro.processes.davies_harte import (
            reset_workspace_stats,
            workspace_stats,
        )

        reset_workspace_stats()
        davies_harte_generate(FGNCorrelation(0.7), 64, random_state=0)
        first = workspace_stats()
        assert first["builds"] >= 1
        davies_harte_generate(FGNCorrelation(0.7), 64, random_state=1)
        second = workspace_stats()
        assert second["hits"] > first["hits"]
        reset_workspace_stats()
        assert workspace_stats() == {"hits": 0, "builds": 0}

    def test_workspace_reuse_is_bit_transparent(self):
        # Reusing the noise buffer must not perturb the stream: two
        # same-seed calls straddling unrelated work are identical.
        a = davies_harte_generate(
            FGNCorrelation(0.82), 128, size=2, random_state=77
        )
        davies_harte_generate(FGNCorrelation(0.6), 128, size=2, random_state=3)
        b = davies_harte_generate(
            FGNCorrelation(0.82), 128, size=2, random_state=77
        )
        np.testing.assert_array_equal(a, b)
