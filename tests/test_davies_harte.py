"""Tests for the Davies-Harte circulant-embedding generator."""

import warnings

import numpy as np
import pytest

from repro.exceptions import CorrelationError, ValidationError
from repro.processes.correlation import (
    CompositeCorrelation,
    ExponentialCorrelation,
    FGNCorrelation,
    WhiteNoiseCorrelation,
)
from repro.processes.davies_harte import (
    circulant_eigenvalues,
    davies_harte_generate,
)


class TestCirculantEigenvalues:
    def test_white_noise_eigenvalues_all_one(self):
        acvf = np.zeros(9)
        acvf[0] = 1.0
        eig = circulant_eigenvalues(acvf)
        np.testing.assert_allclose(eig, 1.0, atol=1e-12)

    def test_fgn_nonnegative(self):
        eig = circulant_eigenvalues(FGNCorrelation(0.9).acvf(257))
        assert eig.min() > -1e-10

    def test_rejects_short_input(self):
        with pytest.raises(ValidationError):
            circulant_eigenvalues([1.0])


class TestDaviesHarteGenerate:
    def test_shapes(self):
        assert davies_harte_generate(FGNCorrelation(0.7), 64).shape == (64,)
        assert davies_harte_generate(
            FGNCorrelation(0.7), 64, size=5
        ).shape == (5, 64)

    def test_reproducible(self):
        a = davies_harte_generate(FGNCorrelation(0.8), 128, random_state=1)
        b = davies_harte_generate(FGNCorrelation(0.8), 128, random_state=1)
        np.testing.assert_array_equal(a, b)

    def test_mean(self):
        x = davies_harte_generate(
            WhiteNoiseCorrelation(), 4096, mean=3.0, random_state=2
        )
        assert x.mean() == pytest.approx(3.0, abs=0.1)

    def test_unit_variance(self):
        x = davies_harte_generate(
            FGNCorrelation(0.6), 1024, size=50, random_state=3
        )
        assert x.var() == pytest.approx(1.0, abs=0.05)

    def test_exact_covariance_many_replications(self):
        corr = FGNCorrelation(0.85)
        x = davies_harte_generate(corr, 64, size=20_000, random_state=4)
        for k in (1, 5, 20):
            sample = np.mean(x[:, 0] * x[:, k])
            assert sample == pytest.approx(float(corr(k)), abs=0.03)

    def test_matches_hosking_distributionally(self):
        """DH and Hosking sample the same law: compare lag-1 products."""
        from repro.processes.hosking import hosking_generate

        corr = FGNCorrelation(0.8)
        dh = davies_harte_generate(corr, 64, size=4000, random_state=5)
        ho = hosking_generate(corr, 64, size=4000, random_state=6)
        dh_stat = np.mean(dh[:, :-1] * dh[:, 1:])
        ho_stat = np.mean(ho[:, :-1] * ho[:, 1:])
        assert dh_stat == pytest.approx(ho_stat, abs=0.03)

    def test_explicit_acvf_needs_n_plus_one(self):
        with pytest.raises(ValidationError, match="at least"):
            davies_harte_generate(np.array([1.0, 0.5]), 2)

    def test_raise_mode_on_negative_eigenvalues(self):
        # A deliberately non-embeddable sequence: a hard step.
        bad = np.concatenate([np.ones(4), np.full(5, -0.5)])
        with pytest.raises(CorrelationError):
            davies_harte_generate(
                bad, 8, on_negative_eigenvalues="raise", random_state=0
            )

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValidationError, match="clip"):
            davies_harte_generate(
                FGNCorrelation(0.7), 8, on_negative_eigenvalues="zap"
            )

    def test_composite_generates_without_material_warning(self):
        corr = CompositeCorrelation.paper_fit().with_continuity()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            x = davies_harte_generate(corr, 2048, random_state=7)
        assert x.shape == (2048,)

    def test_long_trace_fast_path(self):
        x = davies_harte_generate(
            FGNCorrelation(0.9), 1 << 16, random_state=8
        )
        assert x.shape == (1 << 16,)
        assert np.all(np.isfinite(x))


class TestEdgeCases:
    def test_single_sample(self):
        x = davies_harte_generate(FGNCorrelation(0.8), 1, random_state=9)
        assert x.shape == (1,)
        assert np.isfinite(x[0])

    def test_two_samples(self):
        x = davies_harte_generate(
            FGNCorrelation(0.8), 2, size=2000, random_state=10
        )
        assert x.shape == (2000, 2)
        lag1 = float(np.mean(x[:, 0] * x[:, 1]))
        assert lag1 == pytest.approx(
            float(FGNCorrelation(0.8)(1)), abs=0.05
        )

    def test_exponential_correlation_embeddable(self):
        x = davies_harte_generate(
            ExponentialCorrelation(0.05),
            512,
            random_state=11,
            on_negative_eigenvalues="raise",
        )
        assert x.shape == (512,)


class TestSpectralTableArgument:
    """The spectral_table= knob mirrors hosking's coeff_table=."""

    def setup_method(self):
        from repro.processes.spectral_cache import clear_spectral_cache

        clear_spectral_cache()

    def test_false_bypasses_cache_bitwise(self):
        from repro.processes.spectral_cache import spectral_cache_info

        corr = FGNCorrelation(0.85)
        cached = davies_harte_generate(corr, 256, random_state=21)
        bypass = davies_harte_generate(
            corr, 256, random_state=21, spectral_table=False
        )
        np.testing.assert_array_equal(cached, bypass)
        # The bypass call left no trace in the shared cache.
        assert spectral_cache_info().misses == 1

    def test_explicit_table_bitwise(self):
        from repro.processes.spectral_cache import SpectralTable

        corr = FGNCorrelation(0.85)
        table = SpectralTable(corr.acvf(257))
        via_table = davies_harte_generate(
            corr, 256, random_state=22, spectral_table=table
        )
        plain = davies_harte_generate(
            corr, 256, random_state=22, spectral_table=False
        )
        np.testing.assert_array_equal(via_table, plain)

    def test_explicit_table_too_short(self):
        from repro.processes.spectral_cache import SpectralTable

        table = SpectralTable(FGNCorrelation(0.85).acvf(65))
        with pytest.raises(ValidationError, match="cannot generate"):
            davies_harte_generate(
                FGNCorrelation(0.85), 256, spectral_table=table
            )

    def test_invalid_spectral_table_rejected(self):
        with pytest.raises(ValidationError, match="spectral_table"):
            davies_harte_generate(
                FGNCorrelation(0.85), 64, spectral_table="yes"
            )

    def test_true_means_shared_cache(self):
        corr = FGNCorrelation(0.85)
        a = davies_harte_generate(corr, 128, random_state=23)
        b = davies_harte_generate(
            corr, 128, random_state=23, spectral_table=True
        )
        np.testing.assert_array_equal(a, b)

    def test_explicit_acvf_with_extra_lags_unchanged(self):
        """Passing more lags than needed still slices to n + 1."""
        acvf = FGNCorrelation(0.8).acvf(100)
        a = davies_harte_generate(acvf, 40, random_state=24)
        b = davies_harte_generate(acvf[:41], 40, random_state=24)
        np.testing.assert_array_equal(a, b)
