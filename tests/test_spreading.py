"""Tests for frame spreading / slice-level shaping."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.queueing.lindley import lindley_recursion
from repro.queueing.spreading import slice_service_rate, spread_arrivals


class TestSpreadArrivals:
    def test_preserves_per_frame_totals(self):
        frames = np.array([15.0, 0.0, 30.0])
        slices = spread_arrivals(frames, 15)
        np.testing.assert_allclose(
            slices.reshape(3, 15).sum(axis=1), frames
        )

    def test_batch_shape(self):
        frames = np.ones((4, 10))
        out = spread_arrivals(frames, 5)
        assert out.shape == (4, 50)

    def test_factor_one_identity(self):
        frames = np.array([1.0, 2.0])
        np.testing.assert_array_equal(spread_arrivals(frames, 1), frames)

    def test_rejects_3d(self):
        with pytest.raises(ValidationError):
            spread_arrivals(np.ones((2, 2, 2)), 3)

    def test_spreading_reduces_peak_queue(self):
        """Spreading removes intra-frame bursts: with matched service,
        the peak queue content can only go down."""
        rng = np.random.default_rng(0)
        frames = rng.lognormal(0.0, 1.0, size=2000)
        mu = 1.2 * frames.mean()
        q_frames = lindley_recursion(frames, mu)
        factor = 15
        q_slices = lindley_recursion(
            spread_arrivals(frames, factor),
            slice_service_rate(mu, factor),
        )
        assert q_slices.max() <= q_frames.max() + 1e-9
        # And the long-run average backlog cannot increase either.
        assert q_slices.mean() <= q_frames.mean() + 1e-9

    def test_workload_equivalence_at_frame_boundaries(self):
        """At frame boundaries the spread queue equals the bunched
        queue shifted by at most one frame's worth of burst."""
        frames = np.array([10.0, 0.0, 0.0, 20.0, 0.0])
        mu = 5.0
        factor = 10
        q_frames = lindley_recursion(frames, mu)
        q_slices = lindley_recursion(
            spread_arrivals(frames, factor),
            slice_service_rate(mu, factor),
        )
        boundary = q_slices[factor - 1 :: factor]
        np.testing.assert_allclose(boundary, q_frames, atol=1e-9)


class TestSliceServiceRate:
    def test_division(self):
        assert slice_service_rate(30.0, 15) == 2.0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            slice_service_rate(0.0, 15)
