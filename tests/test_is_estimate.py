"""Direct tests for the ISEstimate container."""

import numpy as np
import pytest

from repro.simulation.estimators import ISEstimate


def make(probability=0.01, variance=1e-6, replications=1000, hits=50,
         twisted_mean=2.0, mean_hit_time=120.0):
    return ISEstimate(
        probability=probability,
        variance=variance,
        replications=replications,
        hits=hits,
        twisted_mean=twisted_mean,
        mean_hit_time=mean_hit_time,
    )


class TestISEstimate:
    def test_std_error(self):
        assert make(variance=4e-6).std_error == pytest.approx(2e-3)

    def test_relative_error(self):
        est = make(probability=0.01, variance=1e-6)
        assert est.relative_error == pytest.approx(0.1)

    def test_relative_error_zero_probability(self):
        assert make(probability=0.0).relative_error == float("inf")

    def test_normalized_variance_definition(self):
        est = make(probability=0.01, variance=1e-6, replications=1000)
        # N * var / p^2 = 1000 * 1e-6 / 1e-4 = 10.
        assert est.normalized_variance == pytest.approx(10.0)

    def test_normalized_variance_infinite_for_zero(self):
        assert make(probability=0.0).normalized_variance == float("inf")

    def test_log10(self):
        assert make(probability=1e-3).log10_probability == (
            pytest.approx(-3.0)
        )
        assert make(probability=0.0).log10_probability == float("-inf")

    def test_confidence_interval(self):
        est = make(probability=0.01, variance=1e-6)
        low, high = est.confidence_interval()
        assert low == pytest.approx(0.01 - 1.96e-3)
        assert high == pytest.approx(0.01 + 1.96e-3)

    def test_confidence_interval_clipped_at_zero(self):
        est = make(probability=1e-4, variance=1e-6)
        low, _ = est.confidence_interval()
        assert low == 0.0

    def test_negative_variance_guarded(self):
        # Tiny negative variances from float cancellation must not
        # produce NaN standard errors.
        est = make(variance=-1e-18)
        assert est.std_error == 0.0

    def test_fields_preserved(self):
        est = make(hits=77, twisted_mean=3.2, mean_hit_time=88.0)
        assert est.hits == 77
        assert est.twisted_mean == 3.2
        assert est.mean_hit_time == 88.0
