"""Tests for the ASCII plot renderer."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.stats.asciiplot import ascii_plot


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        x = np.arange(10)
        out = ascii_plot(x, {"line": x * 2.0})
        assert "*" in out
        assert "* = line" in out

    def test_title_rendered(self):
        out = ascii_plot([0, 1], {"s": [0.0, 1.0]}, title="My Plot")
        assert "My Plot" in out

    def test_multiple_series_distinct_markers(self):
        x = np.arange(5)
        out = ascii_plot(x, {"a": x, "b": 5.0 - x})
        assert "* = a" in out
        assert "+ = b" in out
        assert "+" in out.split("\n")[1] or "+" in out

    def test_axis_limits_shown(self):
        out = ascii_plot([2.0, 8.0], {"s": [1.0, 3.0]})
        assert "2" in out and "8" in out
        assert "3" in out

    def test_dimensions(self):
        out = ascii_plot(
            np.arange(20), {"s": np.arange(20.0)}, width=40, height=8
        )
        body_lines = [
            line for line in out.split("\n") if line.rstrip().endswith(
                tuple("* ")
            )
        ]
        # 8 plot rows plus annotations; just check the row count range.
        assert 8 <= len(out.split("\n")) <= 13

    def test_non_finite_values_skipped(self):
        out = ascii_plot(
            [0.0, 1.0, 2.0], {"s": [1.0, float("inf"), 2.0]}
        )
        assert isinstance(out, str)

    def test_flat_series_handled(self):
        out = ascii_plot([0.0, 1.0], {"s": [2.0, 2.0]})
        assert isinstance(out, str)

    def test_rejects_empty_series(self):
        with pytest.raises(ValidationError):
            ascii_plot([0.0, 1.0], {})

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError, match="length"):
            ascii_plot([0.0, 1.0], {"s": [1.0]})

    def test_rejects_constant_x(self):
        with pytest.raises(ValidationError):
            ascii_plot([1.0, 1.0], {"s": [1.0, 2.0]})
