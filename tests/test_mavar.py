"""Unit tests for the Modified Allan Variance Hurst estimator."""

import numpy as np
import pytest

from repro.estimators.mavar import (
    MIN_LENGTH,
    MavarEstimate,
    _octave_taus,
    fgn_expected_mavar,
    mavar_estimate,
    modified_allan_variance,
)
from repro.exceptions import EstimationError, ValidationError
from repro.processes import fgn_generate


class TestStatistic:
    def test_white_noise_tau1_estimates_variance(self):
        # At tau=1 the second phase difference x_{i+2} - 2x_{i+1} + x_i
        # collapses to the successive difference y_{i+2} - y_{i+1},
        # whose variance is 2 sigma^2 for i.i.d. input, so
        # E[Mod sigma^2(1)] = sigma^2 exactly.
        rng = np.random.default_rng(7)
        w = rng.normal(0.0, 2.0, size=20_000)
        assert modified_allan_variance(w, 1) == pytest.approx(
            4.0, rel=0.05
        )

    def test_matches_expected_fgn_curve(self):
        # Monte Carlo MAVAR of exact fGn must track the closed-form
        # quadratic-form expectation octave by octave.
        taus = (2, 4, 8, 16)
        expected = fgn_expected_mavar(0.8, taus)
        pooled = np.zeros(len(taus))
        for seed in range(20):
            x = fgn_generate(0.8, 4096, random_state=seed)
            pooled += [modified_allan_variance(x, t) for t in taus]
        np.testing.assert_allclose(pooled / 20, expected, rtol=0.1)

    def test_requires_three_tau_plus_one_samples(self):
        with pytest.raises(ValidationError, match="values"):
            modified_allan_variance(np.ones(6), 2)
        # 3*2+1 = 7 samples is exactly enough.
        modified_allan_variance(np.arange(7, dtype=float), 2)

    def test_rejects_bad_tau(self):
        with pytest.raises(ValidationError, match="tau"):
            modified_allan_variance(np.ones(100), 0)


class TestOctaveGrid:
    def test_octaves_respect_feasibility_bound(self):
        taus = _octave_taus(16_384, 2, None)
        assert taus == (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)
        for n in taus:
            assert 3 * n <= 16_384 - 1

    def test_explicit_max_tau(self):
        assert _octave_taus(16_384, 2, 100) == (2, 4, 8, 16, 32, 64)

    def test_short_series_still_two_octaves(self):
        assert len(_octave_taus(MIN_LENGTH, 2, None)) >= 2


class TestEstimate:
    def test_known_h_accuracy(self):
        errs = [
            mavar_estimate(
                fgn_generate(0.8, 16_384, random_state=seed)
            ).hurst
            - 0.8
            for seed in range(6)
        ]
        assert abs(np.mean(errs)) < 0.02
        assert np.sqrt(np.mean(np.square(errs))) < 0.03

    def test_affine_invariance_is_exact(self):
        x = fgn_generate(0.75, 8192, random_state=3)
        base = mavar_estimate(x).hurst
        scaled = mavar_estimate(3.7 * x - 1250.0).hurst
        assert scaled == pytest.approx(base, abs=1e-9)

    def test_asymptotic_mode(self):
        x = fgn_generate(0.8, 16_384, random_state=5)
        est = mavar_estimate(x, calibration="asymptotic")
        assert est.calibration == "asymptotic"
        assert est.hurst == est.asymptotic_hurst
        assert est.hurst == pytest.approx((est.fit.slope + 2.0) / 2.0)
        assert np.isnan(est.objective)
        assert abs(est.hurst - 0.8) < 0.1

    def test_fgn_mode_fields(self):
        x = fgn_generate(0.7, 4096, random_state=9)
        est = mavar_estimate(x)
        assert isinstance(est, MavarEstimate)
        assert est.calibration == "fgn"
        assert np.isfinite(est.objective) and est.objective >= 0
        assert est.taus.size == est.mavar_values.size
        np.testing.assert_allclose(est.log_taus, np.log10(est.taus))
        np.testing.assert_allclose(
            est.log_mavar_values, np.log10(est.mavar_values)
        )

    def test_explicit_taus(self):
        x = fgn_generate(0.8, 4096, random_state=2)
        est = mavar_estimate(x, taus=[2, 4, 8, 16, 4096])
        # The infeasible tau (3*4096 > N-1) is dropped silently.
        assert est.taus.tolist() == [2.0, 4.0, 8.0, 16.0]

    def test_rejects_short_series(self):
        with pytest.raises(
            ValidationError,
            match=r"values must have at least 32 entries, got 31",
        ):
            mavar_estimate(np.ones(MIN_LENGTH - 1))

    def test_rejects_constant_series(self):
        with pytest.raises(EstimationError, match="degenerate"):
            mavar_estimate(np.full(1024, 5.0))

    def test_rejects_unknown_calibration(self):
        with pytest.raises(EstimationError, match="calibration"):
            mavar_estimate(np.ones(64), calibration="loglog")

    def test_rejects_single_usable_tau(self):
        x = fgn_generate(0.8, 1024, random_state=4)
        with pytest.raises(EstimationError, match="observation interval"):
            mavar_estimate(x, taus=[4])

    def test_deterministic(self):
        x = fgn_generate(0.8, 4096, random_state=11)
        assert mavar_estimate(x).hurst == mavar_estimate(x).hurst


class TestExpectedCurve:
    def test_monotone_decreasing_for_lrd(self):
        vals = fgn_expected_mavar(0.8, (2, 4, 8, 16, 32))
        assert np.all(np.diff(vals) < 0)

    def test_asymptotic_slope_emerges(self):
        # log2 ratio between adjacent large octaves approaches 2H - 2.
        vals = fgn_expected_mavar(0.9, (256, 512))
        slope = np.log2(vals[1] / vals[0])
        assert slope == pytest.approx(2 * 0.9 - 2, abs=0.02)

    def test_rejects_empty(self):
        with pytest.raises(EstimationError):
            fgn_expected_mavar(0.8, ())
