"""The scene-chunked generation pipeline (repro.processes.chunked).

Four contract families:

- **Planning** (hypothesis): planned chunks cover the horizon exactly
  once, interior edges land on the alignment grid (or on the provided
  scene boundaries), and the minimum-chunk floor holds.
- **Exact stitch**: with shared innovations, the chunked Hosking-path
  output is the same linear map as the direct recursion — ``allclose``
  within rtol 1e-10 at any chunk size (the blocked-kernel precedent),
  and thread-count invariant bit for bit.
- **Bridge stitch**: the conditional-mean map equals
  ``conditional_forecast``; the stitched covariance (computed exactly)
  obeys the pinned per-(H, window) deviation bounds of DESIGN.md §5g
  and improves monotonically with the window; paired Hurst/ACF
  estimates on chunked vs single-pass paths are statistically
  indistinguishable; output is bit-identical at any process count.
- **Hygiene**: chunk RNGs carry globally distinct spawn keys across
  legs and chunks (the collision canary), peak extra memory is
  O(chunk), and the ``chunked.*`` metrics are emitted.
"""

import os
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.estimators import (
    mavar_estimate,
    sample_acf,
    variance_time_estimate,
    whittle_estimate,
)
from repro.exceptions import ValidationError
from repro.observability import RunContext
from repro.processes import registry
from repro.processes.chunked import (
    ChunkedGenerator,
    bridge_matrix,
    chunked_generate,
    plan_chunks,
    stitched_covariance,
)
from repro.processes.correlation import FGNCorrelation
from repro.processes.forecast import conditional_forecast
from repro.processes.hosking import hosking_generate
from repro.processes.source import DaviesHarteSource, HoskingSource
from repro.stats.random import spawn_key, spawn_rngs
from repro.video.gop import GopStructure

FAST = settings(max_examples=40, deadline=None)


# ---------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------


class TestPlanChunks:
    @FAST
    @given(
        horizon=st.integers(min_value=1, max_value=5000),
        chunk_frames=st.integers(min_value=1, max_value=1200),
        alignment=st.integers(min_value=1, max_value=16),
    )
    def test_exact_cover_and_alignment(
        self, horizon, chunk_frames, alignment
    ):
        if chunk_frames < alignment:
            chunk_frames = alignment
        plan = plan_chunks(
            horizon, chunk_frames, alignment=alignment
        )
        edges = plan.edges
        # Exact cover: edges strictly increase from 0 to horizon and
        # consecutive chunks abut.
        assert edges[0] == 0 and edges[-1] == horizon
        assert np.all(np.diff(edges) > 0)
        for prev, chunk in zip(plan.chunks, plan.chunks[1:]):
            assert prev.stop == chunk.start
        # Interior edges land on the alignment grid.
        for edge in edges[1:-1]:
            assert edge % alignment == 0
        # Floor: every chunk but possibly a short total horizon.
        if horizon >= plan.min_chunk:
            for chunk in plan.chunks:
                assert chunk.length >= plan.min_chunk

    @FAST
    @given(
        horizon=st.integers(min_value=100, max_value=4000),
        chunk_frames=st.integers(min_value=50, max_value=1000),
    )
    def test_scene_boundary_edges(self, horizon, chunk_frames):
        rng = np.random.default_rng(horizon * 7 + chunk_frames)
        cuts = np.unique(
            rng.integers(1, horizon, size=rng.integers(1, 20))
        )
        min_chunk = 25
        if chunk_frames < min_chunk:
            chunk_frames = min_chunk
        plan = plan_chunks(
            horizon,
            chunk_frames,
            boundaries=cuts,
            min_chunk=min_chunk,
        )
        edges = plan.edges
        assert edges[0] == 0 and edges[-1] == horizon
        # Interior edges are scene cuts, and the floor holds.
        for edge in edges[1:-1]:
            assert edge in cuts
        for chunk in plan.chunks:
            assert chunk.length >= min_chunk

    def test_gop_alignment_uses_i_period(self):
        gop = GopStructure.paper()
        plan = plan_chunks(1000, 256, alignment=gop.i_period)
        for edge in plan.edges[1:-1]:
            assert edge % gop.i_period == 0
        # Every chunk therefore starts on an I frame.
        for chunk in plan.chunks:
            assert gop.pattern[chunk.start % gop.i_period].value == "I"

    def test_single_chunk_when_horizon_fits(self):
        plan = plan_chunks(100, 256)
        assert plan.num_chunks == 1
        assert plan.chunks[0].length == 100

    def test_min_chunk_floor_merges_tail(self):
        # 1000 = 3 x 300 + 100; with min_chunk=150 the 100-frame tail
        # must not appear as its own chunk.
        plan = plan_chunks(1000, 300, min_chunk=150)
        assert all(c.length >= 150 for c in plan.chunks)
        assert plan.edges[-1] == 1000

    def test_rejects_chunk_below_floor(self):
        with pytest.raises(ValidationError):
            plan_chunks(1000, 10, min_chunk=50)


# ---------------------------------------------------------------------
# Exact stitch (Hosking path)
# ---------------------------------------------------------------------


class TestExactStitch:
    @pytest.mark.parametrize("chunk_frames", [32, 100, 512, 64])
    @pytest.mark.parametrize("hurst", [0.7, 0.9])
    def test_matches_direct_hosking_with_shared_innovations(
        self, chunk_frames, hurst
    ):
        model = FGNCorrelation(hurst)
        n = 512
        z = np.random.default_rng(11).standard_normal(n)
        direct = hosking_generate(model, n, innovations=z)
        gen = ChunkedGenerator(
            HoskingSource(model),
            chunk_frames=chunk_frames,
            stitch="exact",
        )
        chunked = gen.generate(n, innovations=z)
        # Same linear map, reassociated floating point: the blocked
        # BLAS-3 kernel's contract.
        np.testing.assert_allclose(
            chunked, direct, rtol=1e-10, atol=1e-12
        )

    @pytest.mark.parametrize("processes", [1, 2, 7, 16])
    def test_thread_count_invariant_bits(self, processes):
        src = HoskingSource(FGNCorrelation(0.8))
        baseline = chunked_generate(
            src, 600, chunk_frames=128, processes=1, random_state=42
        )
        out = chunked_generate(
            src,
            600,
            chunk_frames=128,
            processes=processes,
            random_state=42,
        )
        assert np.array_equal(out, baseline)

    def test_auto_picks_exact_for_conditional_source(self):
        gen = ChunkedGenerator(
            HoskingSource(FGNCorrelation(0.8)), chunk_frames=64
        )
        assert gen.stitch == "exact"

    def test_mean_shift_applied(self):
        src = HoskingSource(FGNCorrelation(0.8))
        x = chunked_generate(
            src, 200, chunk_frames=64, mean=5.0, random_state=0
        )
        y = chunked_generate(
            src, 200, chunk_frames=64, mean=0.0, random_state=0
        )
        np.testing.assert_allclose(x, y + 5.0)


# ---------------------------------------------------------------------
# Bridge stitch (spectral path)
# ---------------------------------------------------------------------


class TestBridgeStitch:
    def test_bridge_matrix_equals_conditional_forecast_mean(self):
        model = FGNCorrelation(0.8)
        w, length = 40, 64
        a = bridge_matrix(model.acvf(w + length + 1), w, length)
        history = np.random.default_rng(3).standard_normal(w)
        forecast = conditional_forecast(model, history, length)
        np.testing.assert_allclose(
            a @ history, forecast.mean, rtol=1e-10, atol=1e-12
        )

    @pytest.mark.parametrize("processes", [1, 2, 7, 16])
    def test_process_count_invariant_bits(self, processes):
        src = DaviesHarteSource(FGNCorrelation(0.8))
        baseline = chunked_generate(
            src,
            4096,
            chunk_frames=1024,
            stitch_window=128,
            processes=1,
            random_state=99,
        )
        out = chunked_generate(
            src,
            4096,
            chunk_frames=1024,
            stitch_window=128,
            processes=processes,
            random_state=99,
        )
        assert np.array_equal(out, baseline)

    @pytest.mark.parametrize("transport", ["auto", "shm", "pickle"])
    def test_transport_invariant_bits(self, transport):
        # The shm descriptor path only moves result bytes; the stitched
        # trace must match the serial reference exactly.
        src = DaviesHarteSource(FGNCorrelation(0.8))
        baseline = chunked_generate(
            src,
            4096,
            chunk_frames=1024,
            stitch_window=128,
            processes=1,
            random_state=99,
        )
        out = chunked_generate(
            src,
            4096,
            chunk_frames=1024,
            stitch_window=128,
            processes=2,
            transport=transport,
            random_state=99,
        )
        assert np.array_equal(out, baseline)

    def test_uniform_stitch_matches_sequential_reference(self):
        # The batched stitch (window-discrepancy recurrence + one GEMM)
        # is algebraically the per-chunk conditional-mean loop; same
        # seed, both paths, allclose.
        src = DaviesHarteSource(FGNCorrelation(0.85))
        fast_gen = ChunkedGenerator(
            src, chunk_frames=512, stitch_window=128, processes=1
        )
        assert fast_gen._uniform_stitch_ok(fast_gen.plan(4096))
        fast = fast_gen.generate(4096, random_state=21)
        slow_gen = ChunkedGenerator(
            src, chunk_frames=512, stitch_window=128, processes=1
        )
        slow_gen._uniform_stitch_ok = lambda plan: False
        slow = slow_gen.generate(4096, random_state=21)
        np.testing.assert_allclose(fast, slow, rtol=1e-10, atol=1e-12)

    def test_short_chunks_use_sequential_stitch(self):
        # A chunk shorter than the window cannot provide a full-window
        # history, so the plan falls back to the reference loop.
        src = DaviesHarteSource(FGNCorrelation(0.8))
        gen = ChunkedGenerator(
            src, chunk_frames=64, stitch_window=128, processes=1
        )
        assert not gen._uniform_stitch_ok(gen.plan(1024))
        out = gen.generate(1024, random_state=3)
        assert out.shape == (1024,)

    def test_seed_and_geometry_are_the_law(self):
        # Same seed, same geometry -> same bits; different chunking ->
        # a different (equally distributed) path.
        src = DaviesHarteSource(FGNCorrelation(0.8))
        a = chunked_generate(
            src, 2048, chunk_frames=512, random_state=5
        )
        b = chunked_generate(
            src, 2048, chunk_frames=512, random_state=5
        )
        c = chunked_generate(
            src, 2048, chunk_frames=256, random_state=5
        )
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    # Pinned deviation bounds of the DESIGN.md section 5g contract
    # table: max |stitched - target| covariance entry (unit variance,
    # horizon 512, 128-frame chunks), measured via the exact
    # stitched-covariance propagation.  Values are measured + ~30%
    # headroom; the contract is that the windowed bridge's distortion
    # is bounded and known, not that it is zero.
    CONTRACT = [
        (0.7, 64, 0.012),
        (0.8, 64, 0.050),
        (0.8, 256, 0.018),
        (0.9, 256, 0.042),
    ]

    @pytest.mark.parametrize("hurst,window,bound", CONTRACT)
    def test_stitched_covariance_contract(self, hurst, window, bound):
        model = FGNCorrelation(hurst)
        n = 512
        plan = plan_chunks(n, 128)
        cov = stitched_covariance(model, plan, stitch_window=window)
        acvf = model.acvf(n + 1)
        lags = np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
        target = acvf[lags]
        assert np.max(np.abs(cov - target)) < bound
        # Marginals stay exact regardless of the window: each chunk's
        # own covariance block only carries deviation inherited through
        # the window, and the first chunk none at all.
        first = plan.chunks[0]
        np.testing.assert_allclose(
            cov[: first.stop, : first.stop],
            target[: first.stop, : first.stop],
            rtol=1e-9,
            atol=1e-12,
        )

    @pytest.mark.parametrize("hurst", [0.7, 0.8, 0.9])
    def test_wider_window_is_uniformly_better(self, hurst):
        model = FGNCorrelation(hurst)
        plan = plan_chunks(512, 128)
        acvf = model.acvf(513)
        lags = np.abs(np.subtract.outer(np.arange(512), np.arange(512)))
        target = acvf[lags]
        devs = [
            np.max(
                np.abs(
                    stitched_covariance(model, plan, stitch_window=w)
                    - target
                )
            )
            for w in (32, 128, 384)
        ]
        assert devs[0] > devs[1] > devs[2]

    def test_paired_hurst_statistically_indistinguishable(self):
        # Mirror of tests/test_hurst_invariance.py: the same seeds, the
        # same estimators, chunked vs single-pass paths.  The paired
        # design cancels estimator bias; the shift bound is far inside
        # the estimators' own seed-to-seed scatter.  MAVAR carries the
        # tightest gates (0.012/0.02 vs the old 0.03/0.05; DESIGN.md
        # §5h) — its calibrated profile is the most sensitive seam
        # detector the library has.
        src = DaviesHarteSource(FGNCorrelation(0.8))
        n = 16_384
        vt, wh, mv, acf_shift = [], [], [], []
        for seed in (11, 12, 13, 14):
            plain = src.sample(n, random_state=seed)
            chunked = chunked_generate(
                src,
                n,
                chunk_frames=4096,
                stitch_window=256,
                random_state=seed,
            )
            vt.append(
                (
                    variance_time_estimate(plain).hurst,
                    variance_time_estimate(chunked).hurst,
                )
            )
            wh.append(
                (
                    whittle_estimate(plain).hurst,
                    whittle_estimate(chunked).hurst,
                )
            )
            mv.append(
                (
                    mavar_estimate(plain).hurst,
                    mavar_estimate(chunked).hurst,
                )
            )
            acf_shift.append(
                np.mean(
                    sample_acf(plain, 100) - sample_acf(chunked, 100)
                )
            )
        vt = np.asarray(vt)
        wh = np.asarray(wh)
        mv = np.asarray(mv)
        assert abs(vt[:, 1].mean() - vt[:, 0].mean()) < 0.03
        assert abs(wh[:, 1].mean() - wh[:, 0].mean()) < 0.02
        assert abs(wh[:, 1].mean() - 0.8) < 0.05
        assert abs(mv[:, 1].mean() - mv[:, 0].mean()) < 0.012
        assert abs(mv[:, 1].mean() - 0.8) < 0.02
        # Mean ACF shift over the first 100 lags, averaged over seeds:
        # sampling noise dominates the window truncation.
        assert abs(np.mean(acf_shift)) < 0.02

    def test_innovations_seam_rejected_for_bridge(self):
        gen = ChunkedGenerator(
            DaviesHarteSource(FGNCorrelation(0.8)),
            chunk_frames=64,
        )
        assert gen.stitch == "bridge"
        with pytest.raises(ValidationError):
            gen.generate(128, innovations=np.zeros(128))


# ---------------------------------------------------------------------
# Capability gating
# ---------------------------------------------------------------------


class TestChunkedCapability:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("hosking", True),
            ("davies_harte", True),
            ("fgn", True),
            ("farima", True),
            ("rmd", False),
            ("mg_infinity", False),
        ],
    )
    def test_capability_flags(self, name, expected):
        assert registry.get(name).chunked is expected

    def test_resolve_validates_chunked(self):
        with pytest.raises(ValidationError, match="chunk"):
            registry.resolve("rmd", 0.8, chunked=True)
        source = registry.resolve("auto", FGNCorrelation(0.8), chunked=True)
        assert source.capabilities.chunked

    def test_generator_rejects_unchunkable_source(self):
        rmd = registry.create("rmd", 0.8)
        with pytest.raises(ValidationError, match="chunked"):
            ChunkedGenerator(rmd, chunk_frames=64)

    def test_exact_stitch_requires_conditional(self):
        src = DaviesHarteSource(FGNCorrelation(0.8))
        with pytest.raises(ValidationError, match="exact"):
            ChunkedGenerator(src, chunk_frames=64, stitch="exact")

    def test_describe_reports_chunked(self):
        assert DaviesHarteSource(FGNCorrelation(0.8)).describe()[
            "chunked"
        ] is True
        assert registry.create("rmd", 0.8).describe()["chunked"] is False


# ---------------------------------------------------------------------
# Seeding hygiene
# ---------------------------------------------------------------------


class TestSpawnHygiene:
    def test_collision_canary_legs_times_chunks(self):
        # The layered pattern every runner uses: legs spawned off one
        # seed, each leg's chunks spawned off the leg's Generator.  All
        # spawn keys across the whole tree must be distinct.
        legs = spawn_rngs(1234, 8)
        keys = set()
        total = 0
        for leg in legs:
            keys.add(spawn_key(leg))
            total += 1
            for chunk_rng in spawn_rngs(leg, 16):
                keys.add(spawn_key(chunk_rng))
                total += 1
        assert len(keys) == total

    def test_same_int_seed_respawns_identically(self):
        # Documented semantics (and the hazard the canary guards): an
        # int seed rebuilds the same SeedSequence, so two independent
        # spawn points sharing an int seed would collide.
        first = [spawn_key(r) for r in spawn_rngs(7, 3)]
        second = [spawn_key(r) for r in spawn_rngs(7, 3)]
        assert first == second

    def test_generator_seed_respawns_fresh(self):
        parent = np.random.default_rng(7)
        first = [spawn_key(r) for r in spawn_rngs(parent, 3)]
        second = [spawn_key(r) for r in spawn_rngs(parent, 3)]
        assert not set(first) & set(second)

    def test_chunk_streams_differ_across_chunks(self):
        # No chunk reuses another chunk's stream: with a constant-zero
        # bridge the raw chunks would otherwise repeat.
        src = DaviesHarteSource(FGNCorrelation(0.8))
        out = chunked_generate(
            src, 1024, chunk_frames=256, stitch_window=1, random_state=3
        )
        chunks = out.reshape(4, 256)
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(chunks[i], chunks[j])


# ---------------------------------------------------------------------
# Memory and metrics
# ---------------------------------------------------------------------


class TestMemoryAndMetrics:
    def _peak_extra(self, n, chunk_frames):
        src = DaviesHarteSource(FGNCorrelation(0.8))
        gen = ChunkedGenerator(
            src, chunk_frames=chunk_frames, stitch_window=256
        )
        tracemalloc.start()
        out = gen.generate(n, random_state=0)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return peak - out.nbytes

    def test_peak_extra_memory_is_o_chunk(self):
        # Doubling the horizon at fixed chunk size must not grow the
        # allocation beyond the O(horizon) output buffer: the regression
        # that keeps the pipeline's working set O(chunk + window).
        chunk = 2048
        small = self._peak_extra(2**15, chunk)
        large = self._peak_extra(2**16, chunk)
        assert large < 1.5 * small + 256 * 1024

    def test_chunked_metrics_emitted(self):
        ctx = RunContext()
        src = DaviesHarteSource(FGNCorrelation(0.8))
        gen = ChunkedGenerator(
            src, chunk_frames=256, processes=2, metrics=ctx
        )
        gen.generate(1024, random_state=1)
        names = {entry["name"] for entry in ctx.snapshot()}
        for expected in (
            "chunked.chunks",
            "chunked.chunk_frames",
            "chunked.window",
            "chunked.processes",
            "chunked.stitch_seconds",
            "chunked.peak_chunk_bytes",
            "chunked.workers",
            "chunked.legs",
            "chunked.job_seconds",
            "chunked.occupancy",
        ):
            assert expected in names, expected
        report = gen.last_report
        assert report.num_chunks == 4
        assert report.mode == "bridge"
        assert report.peak_chunk_bytes > 0
        assert report.occupancy > 0.0

    def test_metrics_do_not_change_bits(self):
        src = DaviesHarteSource(FGNCorrelation(0.8))
        quiet = chunked_generate(
            src, 1024, chunk_frames=256, random_state=6
        )
        loud = ChunkedGenerator(
            src, chunk_frames=256, metrics=RunContext()
        ).generate(1024, random_state=6)
        assert np.array_equal(quiet, loud)

    def test_env_processes_consulted(self):
        src = DaviesHarteSource(FGNCorrelation(0.8))
        baseline = chunked_generate(
            src, 1024, chunk_frames=256, random_state=9
        )
        old = os.environ.get("REPRO_PROCESSES")
        os.environ["REPRO_PROCESSES"] = "3"
        try:
            ctx = RunContext()
            out = ChunkedGenerator(
                src, chunk_frames=256, metrics=ctx
            ).generate(1024, random_state=9)
        finally:
            if old is None:
                del os.environ["REPRO_PROCESSES"]
            else:
                os.environ["REPRO_PROCESSES"] = old
        assert np.array_equal(out, baseline)
        workers = [
            entry
            for entry in ctx.snapshot()
            if entry["name"] == "chunked.workers"
        ]
        assert workers and workers[0]["value"] == 3
