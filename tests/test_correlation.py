"""Tests for the correlation-model hierarchy."""

import numpy as np
import pytest

from repro.exceptions import CorrelationError, ValidationError
from repro.processes.correlation import (
    CompositeCorrelation,
    ExponentialCorrelation,
    ExponentialMixtureCorrelation,
    FARIMACorrelation,
    FGNCorrelation,
    PowerLawCorrelation,
    RescaledCorrelation,
    TabulatedCorrelation,
    WhiteNoiseCorrelation,
)
from repro.processes.partial_corr import validate_acvf_pd


class TestBaseBehaviour:
    def test_lag_zero_is_one(self):
        for model in (
            FGNCorrelation(0.8),
            ExponentialCorrelation(0.1),
            WhiteNoiseCorrelation(),
        ):
            assert model(0) == 1.0

    def test_symmetry(self):
        model = FGNCorrelation(0.7)
        assert model(-5) == model(5)

    def test_scalar_and_array_dispatch(self):
        model = ExponentialCorrelation(0.2)
        scalar = model(3)
        array = model([3])
        assert isinstance(scalar, float)
        assert isinstance(array, np.ndarray)
        assert scalar == pytest.approx(array[0])

    def test_acvf_length_and_head(self):
        acvf = FGNCorrelation(0.6).acvf(10)
        assert acvf.shape == (10,)
        assert acvf[0] == 1.0

    def test_validate_acvf_passes_for_valid(self):
        FGNCorrelation(0.9).validate_acvf(50)

    def test_rejects_2d_lags(self):
        with pytest.raises(ValidationError):
            FGNCorrelation(0.6)(np.zeros((2, 2)))


class TestWhiteNoise:
    def test_zero_off_diagonal(self):
        model = WhiteNoiseCorrelation()
        np.testing.assert_array_equal(model([1, 2, 3]), [0.0, 0.0, 0.0])


class TestFGN:
    def test_known_lag1_value(self):
        # r(1) = 2^{2H-1} - 1.
        h = 0.75
        assert FGNCorrelation(h)(1) == pytest.approx(2 ** (2 * h - 1) - 1)

    def test_h_half_is_white_noise(self):
        model = FGNCorrelation(0.5)
        np.testing.assert_allclose(model([1, 2, 5]), 0.0, atol=1e-12)

    def test_negative_correlations_for_small_h(self):
        assert FGNCorrelation(0.3)(1) < 0

    def test_tail_asymptotics(self):
        # r(k) ~ H(2H-1) k^{2H-2}.
        h = 0.9
        model = FGNCorrelation(h)
        k = 1000.0
        expected = h * (2 * h - 1) * k ** (2 * h - 2)
        assert model(k) == pytest.approx(expected, rel=1e-3)

    def test_hurst_property(self):
        assert FGNCorrelation(0.85).hurst == 0.85

    def test_invalid_hurst(self):
        with pytest.raises(ValidationError):
            FGNCorrelation(1.2)

    def test_positive_definite(self):
        assert validate_acvf_pd(FGNCorrelation(0.95).acvf(200))


class TestExponential:
    def test_decay(self):
        model = ExponentialCorrelation(0.5)
        assert model(2) == pytest.approx(np.exp(-1.0))

    def test_no_hurst(self):
        assert ExponentialCorrelation(0.1).hurst is None

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValidationError):
            ExponentialCorrelation(0.0)


class TestExponentialMixture:
    def test_matches_weighted_sum(self):
        model = ExponentialMixtureCorrelation([0.3, 0.7], [0.1, 1.0])
        k = 2.0
        expected = 0.3 * np.exp(-0.2) + 0.7 * np.exp(-2.0)
        assert model(k) == pytest.approx(expected)

    def test_rejects_weights_not_summing_to_one(self):
        with pytest.raises(ValidationError, match="sum to 1"):
            ExponentialMixtureCorrelation([0.5, 0.4], [0.1, 0.2])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValidationError, match="same length"):
            ExponentialMixtureCorrelation([1.0], [0.1, 0.2])

    def test_rejects_negative_weight(self):
        with pytest.raises(ValidationError):
            ExponentialMixtureCorrelation([-0.5, 1.5], [0.1, 0.2])


class TestPowerLaw:
    def test_values(self):
        model = PowerLawCorrelation(0.8, 0.5)
        assert model(4) == pytest.approx(0.8 / 2.0)

    def test_hurst_from_exponent(self):
        assert PowerLawCorrelation(0.5, 0.2).hurst == pytest.approx(0.9)

    def test_no_hurst_for_summable_tail(self):
        assert PowerLawCorrelation(0.5, 1.5).hurst is None

    def test_caps_at_one_for_tiny_lags(self):
        model = PowerLawCorrelation(0.9, 0.5)
        assert model(0.01) <= 1.0


class TestComposite:
    def test_paper_fit_matches_eq13(self):
        model = CompositeCorrelation.paper_fit()
        assert model(30) == pytest.approx(np.exp(-0.00565 * 30))
        assert model(100) == pytest.approx(1.59468 * 100 ** (-0.2))

    def test_paper_fit_not_pd_raw(self):
        # The printed eq. 13 constants violate eq. 12; the raw piecewise
        # function fails positive definiteness just past the knee.
        model = CompositeCorrelation.paper_fit()
        assert not validate_acvf_pd(model.acvf(100))

    def test_with_continuity_closes_gap_and_is_pd(self):
        model = CompositeCorrelation.paper_fit().with_continuity()
        assert model.continuity_gap == pytest.approx(0.0, abs=1e-12)
        assert validate_acvf_pd(model.acvf(500))

    def test_hurst(self):
        assert CompositeCorrelation.paper_fit().hurst == pytest.approx(0.9)

    def test_compensated_tail_scaling(self):
        base = CompositeCorrelation.paper_fit()
        comp = base.compensated(0.94)
        assert comp.lrd_amplitude == pytest.approx(1.59468 / 0.94)
        # eq. 14: the head meets r_hat(Kt)/a at the knee.
        target = base(60.0) / 0.94 if 60.0 >= base.knee else None
        assert comp(60.0) == pytest.approx(base(60.0) / 0.94, rel=1e-9)

    def test_compensated_is_pd(self):
        comp = CompositeCorrelation.paper_fit().compensated(0.94)
        assert validate_acvf_pd(comp.acvf(500))

    def test_compensated_rejects_bad_attenuation(self):
        with pytest.raises(ValidationError):
            CompositeCorrelation.paper_fit().compensated(0.0)

    def test_compensated_rejects_too_strong_attenuation(self):
        with pytest.raises(CorrelationError):
            CompositeCorrelation.paper_fit().compensated(0.1)

    def test_srd_only(self):
        model = CompositeCorrelation.paper_fit()
        srd = model.srd_only()
        assert isinstance(srd, ExponentialMixtureCorrelation)
        assert srd(10) == pytest.approx(np.exp(-0.0565))

    def test_nugget_drops_head(self):
        model = CompositeCorrelation(
            srd_weights=[1.0],
            srd_rates=[0.01],
            lrd_amplitude=0.5,
            lrd_exponent=0.2,
            knee=60.0,
            nugget=0.2,
        )
        assert model(0) == 1.0
        assert model(1) == pytest.approx(0.8 * np.exp(-0.01))
        # Tail is unaffected by the nugget.
        assert model(100) == pytest.approx(0.5 * 100 ** (-0.2))

    def test_nugget_model_is_pd(self):
        model = CompositeCorrelation(
            srd_weights=[1.0],
            srd_rates=[0.005],
            lrd_amplitude=0.7,
            lrd_exponent=0.2,
            knee=60.0,
            nugget=0.1,
        ).with_continuity()
        assert validate_acvf_pd(model.acvf(300))

    def test_rejects_tail_above_one_at_knee(self):
        with pytest.raises(ValidationError, match="exceeds 1"):
            CompositeCorrelation(
                srd_weights=[1.0],
                srd_rates=[0.01],
                lrd_amplitude=3.0,
                lrd_exponent=0.1,
                knee=2.0,
            )


class TestFARIMA:
    def test_known_recursion(self):
        # r(k)/r(k-1) = (k - 1 + d) / (k - d).
        d = 0.3
        model = FARIMACorrelation(d)
        for k in (1, 2, 5, 10):
            ratio = model(k) / model(k - 1) if k > 1 else model(1)
            expected = (k - 1 + d) / (k - d)
            if k > 1:
                assert ratio == pytest.approx(expected, rel=1e-9)
        assert model(1) == pytest.approx(d / (1 - d))

    def test_hurst(self):
        assert FARIMACorrelation(0.4).hurst == pytest.approx(0.9)

    def test_from_hurst(self):
        assert FARIMACorrelation.from_hurst(0.8).d == pytest.approx(0.3)

    def test_from_hurst_rejects_srd(self):
        with pytest.raises(ValidationError):
            FARIMACorrelation.from_hurst(0.4)

    def test_rejects_d_out_of_range(self):
        with pytest.raises(ValidationError):
            FARIMACorrelation(0.5)

    def test_positive_definite(self):
        assert validate_acvf_pd(FARIMACorrelation(0.45).acvf(200))

    def test_non_integer_lags_monotone(self):
        model = FARIMACorrelation(0.3)
        values = model(np.array([1.0, 1.5, 2.0]))
        assert values[0] > values[1] > values[2]


class TestRescaled:
    def test_eq15_rescaling(self):
        base = ExponentialCorrelation(0.12)
        rescaled = RescaledCorrelation(base, 12.0)
        assert rescaled(12) == pytest.approx(base(1))
        assert rescaled(6) == pytest.approx(base(0.5))

    def test_hurst_passthrough(self):
        assert RescaledCorrelation(FGNCorrelation(0.9), 12).hurst == 0.9

    def test_rejects_non_model_base(self):
        with pytest.raises(ValidationError):
            RescaledCorrelation("not a model", 12)


class TestTabulated:
    def test_interpolates(self):
        model = TabulatedCorrelation([1.0, 0.5, 0.25])
        assert model(1) == 0.5
        assert model(1.5) == pytest.approx(0.375)

    def test_tail_extension_decays(self):
        model = TabulatedCorrelation([1.0, 0.5], tail_decay=0.9)
        assert model(2) == pytest.approx(0.5 * 0.9)
        assert model(3) == pytest.approx(0.5 * 0.81)

    def test_rejects_bad_head(self):
        with pytest.raises(ValidationError):
            TabulatedCorrelation([0.9, 0.5])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            TabulatedCorrelation([1.0, 1.5])
