"""Tests for the model fit report."""

import pytest

from repro.core.pipeline import fit_report
from repro.core.unified import UnifiedVBRModel
from repro.exceptions import NotFittedError


class TestFitReport:
    def test_requires_fitted_model(self):
        with pytest.raises(NotFittedError):
            fit_report(UnifiedVBRModel())

    def test_fields_populated(self, fitted_unified):
        report = fit_report(fitted_unified)
        assert report.hurst == fitted_unified.hurst
        assert report.knee == fitted_unified.acf_fit_.knee
        assert report.attenuation == fitted_unified.attenuation
        assert report.marginal_mean > 0
        assert 0 <= report.nugget < 1

    def test_rows_and_str(self, fitted_unified):
        report = fit_report(fitted_unified)
        rows = report.rows()
        assert "Hurst (adopted)" in rows
        assert "Attenuation a" in rows
        text = str(report)
        assert "Knee lag Kt" in text
        assert str(report.knee) in text

    def test_overridden_hurst_shows_na(self, intra_trace):
        model = UnifiedVBRModel(
            max_lag=150, hurst_override=0.9, knee=60
        ).fit(intra_trace.sizes[:40_000], random_state=0)
        report = fit_report(model)
        assert report.hurst_variance_time is None
        assert report.rows()["Hurst (variance-time)"] == "n/a"
