"""Property tests for the eq. 7 marginal transform on empirical targets.

The unified model's transform ``h(x) = F^{-1}(Phi(x))`` (eq. 7) must,
for *any* reasonably-shaped frame-size sample:

- round-trip: ``h^{-1}(h(x)) ~= x`` on the interior of the Gaussian
  range (exactly where the background process lives);
- be monotone non-decreasing (it composes two CDFs);
- reproduce the target marginal when fed standard-normal input
  (matching mean and quantiles of the fitted sample);
- respect the sample's support.

Randomization is seeded through hypothesis-drawn integers, so every
failure is replayable.

Statistical design
------------------
- **Seeds:** hypothesis draws the numpy seed as an ordinary strategy
  input (25 examples per property, ``FAST``), so shrinking reports a
  concrete replayable seed; ``--seed-offset`` does not apply — the
  search itself varies the seeds far wider than any offset would.
- **Tolerances (~alpha):** the only stochastic assertions are the
  marginal-match bounds (5% relative mean, 8%-of-spread quantiles) on
  a 50k-sample Monte Carlo draw; both sit > 5 standard errors from
  the estimator noise, so per-example false-alarm probability is
  negligible and the properties act as deterministic checks of the
  transform, not of the sampler.
- **Power:** a transform using the wrong shape or scale family moves
  the matched quantiles by the order of the sample spread — tens of
  tolerance widths — so any real regression fails on the first
  example.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.marginals.empirical import EmpiricalDistribution
from repro.marginals.transform import MarginalTransform

FAST = settings(max_examples=25, deadline=None)

seeds = st.integers(min_value=0, max_value=2**32 - 1)
shapes = st.floats(min_value=0.5, max_value=6.0,
                   allow_nan=False, allow_infinity=False)
methods = st.sampled_from(["histogram", "exact"])


def gamma_sample(seed, shape, size=4000):
    """A seeded, paper-like (skewed, positive) frame-size sample."""
    rng = np.random.default_rng(seed)
    return rng.gamma(shape, 500.0, size=size)


def fitted_transform(data, method):
    return MarginalTransform(
        EmpiricalDistribution(data, bins=200, method=method)
    )


class TestRoundTrip:
    @FAST
    @given(seed=seeds, shape=shapes, method=methods)
    def test_inverse_recovers_interior_gaussian_range(
        self, seed, shape, method
    ):
        tr = fitted_transform(gamma_sample(seed, shape), method)
        x = np.linspace(-2.5, 2.5, 101)
        back = tr.inverse(tr(x))
        # The histogram inversion's piecewise-linear CDF round-trips to
        # float precision; the exact (step-CDF) inversion quantizes at
        # the sample resolution.
        tol = 1e-9 if method == "histogram" else 0.05
        np.testing.assert_allclose(back, x, atol=tol)

    @FAST
    @given(seed=seeds, shape=shapes)
    def test_forward_roundtrip_on_observed_quantiles(self, seed, shape):
        data = gamma_sample(seed, shape)
        tr = fitted_transform(data, "histogram")
        y = np.quantile(data, np.linspace(0.05, 0.95, 19))
        np.testing.assert_allclose(
            tr(tr.inverse(y)), y, rtol=1e-6, atol=1e-6
        )


class TestMonotonicity:
    @FAST
    @given(seed=seeds, shape=shapes, method=methods)
    def test_sorted_input_gives_sorted_output(self, seed, shape, method):
        tr = fitted_transform(gamma_sample(seed, shape), method)
        rng = np.random.default_rng(seed + 1)
        x = np.sort(rng.standard_normal(500))
        y = tr(x)
        assert np.all(np.diff(y) >= 0)

    @FAST
    @given(seed=seeds, shape=shapes)
    def test_inverse_is_monotone_on_support(self, seed, shape):
        data = gamma_sample(seed, shape)
        tr = fitted_transform(data, "histogram")
        y = np.linspace(data.min(), data.max(), 300)
        x = tr.inverse(y)
        assert np.all(np.diff(x) >= 0)


class TestMarginalMatch:
    @FAST
    @given(seed=seeds, shape=shapes)
    def test_transformed_gaussian_matches_sample_marginal(
        self, seed, shape
    ):
        data = gamma_sample(seed, shape)
        tr = fitted_transform(data, "histogram")
        rng = np.random.default_rng(seed + 2)
        y = tr(rng.standard_normal(50_000))
        assert y.mean() == pytest.approx(data.mean(), rel=0.05)
        # Quantile error is bounded by the histogram's bin resolution,
        # so compare on the scale of the sample's spread (a relative
        # tolerance blows up at near-zero low quantiles of very skewed
        # samples).  8% of the spread: at shape 0.5 the equal-width
        # bins near the mode are coarse relative to the std and the
        # observed error reaches ~6%.
        for q in (0.1, 0.5, 0.9):
            assert abs(
                np.quantile(y, q) - np.quantile(data, q)
            ) <= 0.08 * data.std()

    @FAST
    @given(seed=seeds, shape=shapes, method=methods)
    def test_support_is_respected(self, seed, shape, method):
        data = gamma_sample(seed, shape)
        tr = fitted_transform(data, method)
        rng = np.random.default_rng(seed + 3)
        y = np.asarray(tr(rng.standard_normal(10_000)), dtype=float)
        assert y.min() >= data.min() - 1e-9
        assert y.max() <= data.max() + 1e-9
