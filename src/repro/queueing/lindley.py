"""Lindley recursion and workload processes (paper eq. 16-17).

All functions operate on arrival arrays whose *last* axis is time, so a
batch of replications ``(size, k)`` is processed with one vectorised
time loop.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from .._validation import check_nonnegative_float, check_positive_float
from ..exceptions import ValidationError

__all__ = [
    "lindley_step",
    "lindley_recursion",
    "finite_lindley_recursion",
    "workload_paths",
    "workload_supremum",
    "first_passage_times",
]


def _check_arrivals(arrivals: np.ndarray) -> np.ndarray:
    arr = np.asarray(arrivals, dtype=float)
    if arr.ndim not in (1, 2):
        raise ValidationError(
            f"arrivals must be 1-D or 2-D (batch, time), got shape {arr.shape}"
        )
    if arr.shape[-1] == 0:
        raise ValidationError("arrivals must contain at least one slot")
    return arr


def lindley_step(
    q: np.ndarray,
    increment: np.ndarray,
    capacity: Optional[float] = None,
) -> Tuple[np.ndarray, Optional[np.ndarray]]:
    """One vectorised Lindley slot update; returns ``(q_next, overflow)``.

    With ``capacity=None`` (infinite buffer) this is the eq. 16 step
    ``q' = max(q + d, 0)`` and ``overflow`` is ``None``; with a finite
    ``capacity`` the step is ``q' = clip(q + d, 0, cap)`` and
    ``overflow`` is the work shed above capacity in this slot.  Both
    :func:`lindley_recursion` and the finite-buffer
    :class:`~repro.queueing.multiplexer.AtmMultiplexer` run exactly
    this step, so their per-slot arithmetic can never drift apart.
    """
    q = q + increment
    if capacity is None:
        return np.maximum(q, 0.0), None
    overflow = np.maximum(q - capacity, 0.0)
    return np.clip(q, 0.0, capacity), overflow


def lindley_recursion(
    arrivals: np.ndarray,
    service_rate: float,
    *,
    initial: Union[float, np.ndarray] = 0.0,
) -> np.ndarray:
    """Queue-length paths ``Q_1 .. Q_k`` from the Lindley recursion.

    .. math:: Q_k = \\max(Q_{k-1} + Y_k - \\mu,\\; 0)

    Parameters
    ----------
    arrivals:
        Arrivals per slot, shape ``(k,)`` or ``(size, k)``.
    service_rate:
        Deterministic service ``mu`` per slot.
    initial:
        Initial queue content ``Q_0`` (scalar, or per-replication
        array).  The paper's Fig. 15 contrasts ``initial=0`` with
        ``initial=b`` (full buffer).

    Returns
    -------
    numpy.ndarray
        Queue sizes with the same shape as ``arrivals``; entry ``j``
        is ``Q_{j+1}``.
    """
    arr = _check_arrivals(arrivals)
    mu = check_positive_float(service_rate, "service_rate")
    increments = arr - mu
    out = np.empty_like(increments)
    q = np.broadcast_to(
        np.asarray(initial, dtype=float), increments[..., 0].shape
    ).copy()
    if np.any(q < 0):
        raise ValidationError("initial queue content must be non-negative")
    for j in range(increments.shape[-1]):
        q, _ = lindley_step(q, increments[..., j])
        out[..., j] = q
    return out


def finite_lindley_recursion(
    arrivals: np.ndarray,
    service_rate: float,
    capacity: float,
    *,
    initial: Union[float, np.ndarray] = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Queue and per-slot lost work for a finite-buffer queue.

    The finite-capacity counterpart of :func:`lindley_recursion`:
    each slot runs :func:`lindley_step` with ``capacity``, so work
    pushing the queue above capacity is shed and recorded instead of
    stored.  Returns ``(queue, lost)``, both shaped like ``arrivals``.
    """
    arr = _check_arrivals(arrivals)
    mu = check_positive_float(service_rate, "service_rate")
    cap = check_nonnegative_float(capacity, "capacity")
    increments = arr - mu
    queue = np.empty_like(increments)
    lost = np.empty_like(increments)
    q = np.broadcast_to(
        np.asarray(initial, dtype=float), increments[..., 0].shape
    ).copy()
    if np.any(q < 0):
        raise ValidationError("initial queue content must be non-negative")
    if np.any(q > cap):
        raise ValidationError(
            "initial queue content exceeds the buffer capacity"
        )
    for j in range(increments.shape[-1]):
        q, overflow = lindley_step(q, increments[..., j], cap)
        queue[..., j] = q
        lost[..., j] = overflow
    return queue, lost


def workload_paths(arrivals: np.ndarray, service_rate: float) -> np.ndarray:
    """Total workload ``W_j = sum_{i<=j} (Y_i - mu)`` along each path."""
    arr = _check_arrivals(arrivals)
    mu = check_positive_float(service_rate, "service_rate")
    return np.cumsum(arr - mu, axis=-1)


def workload_supremum(
    arrivals: np.ndarray, service_rate: float
) -> np.ndarray:
    """Running supremum ``sup_{0<=i<=j} W_i`` (with ``W_0 = 0``) per path.

    By eq. 17, ``P(sup_{i<=k} W_i > b) = P(Q_k > b)`` for a queue
    started empty, which is what the paper's importance-sampling
    procedure estimates.
    """
    w = workload_paths(arrivals, service_rate)
    return np.maximum(np.maximum.accumulate(w, axis=-1), 0.0)


def first_passage_times(
    arrivals: np.ndarray, service_rate: float, threshold: float
) -> np.ndarray:
    """First slot index at which the workload exceeds ``threshold``.

    Returns, per path, the 0-based slot of the first ``W_j > b``, or
    ``-1`` if the workload never crosses within the horizon.
    """
    if threshold < 0:
        raise ValidationError("threshold must be non-negative")
    w = workload_paths(arrivals, service_rate)
    crossed = w > threshold
    any_crossed = crossed.any(axis=-1)
    first = crossed.argmax(axis=-1)
    return np.where(any_crossed, first, -1)
