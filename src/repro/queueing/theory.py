"""Analytic queueing asymptotics for self-similar input.

The paper cites Norros' storage model (its reference [23]) and the
large-deviations results of Duffield & O'Connell ([6]) for the key
qualitative fact its Fig. 17 illustrates: with fractional-Brownian
input the overflow probability decays *Weibull-like*,

.. math::

    \\log \\Pr(Q > b) \\sim -\\gamma\\, b^{2 - 2H},
    \\qquad
    \\gamma = \\frac{(\\mu - m)^{2H}}{2\\, \\kappa(H)^2\\, a\\, m},
    \\qquad
    \\kappa(H) = H^H (1 - H)^{1 - H},

i.e. sub-exponential in the buffer for ``H > 1/2``, versus the
geometric decay of Markovian input.
This module provides that lower-bound approximation so simulation
results can be sanity-checked against theory (and so the "decays less
than exponentially fast" claim of §4 is quantitative).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from .._validation import check_hurst, check_positive_float
from ..exceptions import ValidationError

__all__ = [
    "norros_overflow_approximation",
    "norros_decay_exponent",
    "norros_effective_bandwidth",
]


def norros_decay_exponent(hurst: float) -> float:
    """The Weibull shape ``2 - 2H`` of the fBm overflow tail."""
    check_hurst(hurst)
    return 2.0 - 2.0 * hurst


def norros_overflow_approximation(
    buffer_sizes,
    *,
    hurst: float,
    mean_rate: float,
    service_rate: float,
    variance_coefficient: float,
) -> np.ndarray:
    """Norros' lower-bound approximation of ``P(Q > b)`` for fBm input.

    For a fractional Brownian storage with mean input ``m`` per slot,
    service ``mu``, and input variance ``Var[A(0, t)] = a m t^{2H}``
    (so ``a = variance_coefficient`` is the variance of one slot's
    input divided by the mean rate),

    .. math::

        \\Pr(Q > b) \\gtrsim \\bar\\Phi\\left(
            \\frac{(\\mu - m)^{H} \\; b^{1-H}}
                 {\\kappa(H) \\sqrt{a m}} \\right),
        \\qquad \\kappa(H) = H^H (1 - H)^{1-H}.

    Parameters
    ----------
    buffer_sizes:
        Buffer levels ``b`` (same units as per-slot work).
    hurst:
        Hurst parameter of the input.
    mean_rate:
        Mean input per slot ``m``.
    service_rate:
        Service per slot ``mu``; must exceed ``mean_rate``.
    variance_coefficient:
        ``a = Var(one slot's input) / mean_rate``.

    Returns
    -------
    numpy.ndarray
        The approximation evaluated at every buffer size.
    """
    check_hurst(hurst)
    m = check_positive_float(mean_rate, "mean_rate")
    mu = check_positive_float(service_rate, "service_rate")
    a = check_positive_float(variance_coefficient, "variance_coefficient")
    if mu <= m:
        raise ValidationError(
            f"service_rate {mu} must exceed mean_rate {m} for stability"
        )
    b = np.atleast_1d(np.asarray(buffer_sizes, dtype=float))
    if np.any(b < 0):
        raise ValidationError("buffer sizes must be non-negative")
    kappa = hurst**hurst * (1.0 - hurst) ** (1.0 - hurst)
    argument = (
        (mu - m) ** hurst * b ** (1.0 - hurst)
        / (kappa * np.sqrt(a * m))
    )
    return np.asarray(stats.norm.sf(argument), dtype=float)


def norros_effective_bandwidth(
    *,
    hurst: float,
    mean_rate: float,
    variance_coefficient: float,
    buffer_size: float,
    epsilon: float,
) -> float:
    """Norros' effective bandwidth: capacity for a target overflow.

    Inverts :func:`norros_overflow_approximation` for the service
    rate: the smallest ``mu`` with ``P(Q > b) <= epsilon`` under the
    fBm approximation,

    .. math::

        \\mu = m + \\left( \\kappa(H)\\, z_{1-\\epsilon}
               \\sqrt{a m}\\; b^{H - 1} \\right)^{1/H},

    where ``z_{1-eps}`` is the standard normal quantile.  This is the
    connection-admission-control form of the theory: it prices the
    capacity cost of burstiness (via ``a``) and of long memory (via
    the ``b^{(H-1)/H}`` buffer discount, which is much weaker for
    ``H`` near 1 — big buffers buy little for strongly LRD video).

    Parameters
    ----------
    hurst, mean_rate, variance_coefficient:
        As in :func:`norros_overflow_approximation`.
    buffer_size:
        Buffer ``b`` the multiplexer provides.
    epsilon:
        Target overflow probability in (0, 0.5).
    """
    check_hurst(hurst)
    m = check_positive_float(mean_rate, "mean_rate")
    a = check_positive_float(variance_coefficient, "variance_coefficient")
    b = check_positive_float(buffer_size, "buffer_size")
    if not 0.0 < epsilon < 0.5:
        raise ValidationError(
            f"epsilon must be in (0, 0.5), got {epsilon}"
        )
    z = float(stats.norm.isf(epsilon))
    kappa = hurst**hurst * (1.0 - hurst) ** (1.0 - hurst)
    headroom = (
        kappa * z * np.sqrt(a * m) * b ** (hurst - 1.0)
    ) ** (1.0 / hurst)
    return m + headroom
