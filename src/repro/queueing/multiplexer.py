"""ATM multiplexer model.

The paper's queueing study (§4) feeds a single-buffer multiplexer with
one VBR video source.  Conventions used throughout the experiments:

- **Utilization** ``rho = E[Y] / mu``, so the deterministic service
  rate for a target utilization is ``mu = E[Y] / rho``.
- **Normalized buffer size**: buffer capacity expressed in units of
  the mean arrival per slot, i.e. ``b_normalized = b / E[Y]``.  The
  experiments feed unit-mean arrivals, making the normalized and raw
  buffer sizes coincide.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from .._validation import (
    check_in_range,
    check_nonnegative_float,
    check_positive_float,
)
from ..observability import ensure_context
from .lindley import finite_lindley_recursion, lindley_recursion

__all__ = [
    "AtmMultiplexer",
    "service_rate_for_utilization",
    "MuxResult",
    "OCCUPANCY_BUCKETS",
]

#: Default buffer-occupancy histogram bounds (normalized buffer units).
#: Spans the paper's Fig. 16 sweep (b = 1 .. ~250) plus an overflow
#: bucket for anything beyond; occupancy 0 lands in the first bucket.
OCCUPANCY_BUCKETS = (1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)


def service_rate_for_utilization(
    mean_arrival: float, utilization: float
) -> float:
    """Return the service rate giving the target utilization.

    ``mu = mean_arrival / utilization``; utilization must lie in (0, 1)
    for the queue to be stable.
    """
    mean_arrival = check_positive_float(mean_arrival, "mean_arrival")
    utilization = check_in_range(
        utilization,
        "utilization",
        0.0,
        1.0,
        inclusive_low=False,
        inclusive_high=False,
    )
    return mean_arrival / utilization


@dataclass(frozen=True)
class MuxResult:
    """Result of a multiplexer simulation.

    Attributes
    ----------
    queue:
        Queue-content paths (same shape as the arrivals).
    lost:
        Work lost to a finite buffer per slot (zero for infinite
        buffers).
    offered:
        Total offered work across all paths and slots.
    """

    queue: np.ndarray
    lost: np.ndarray
    offered: float

    @property
    def loss_ratio(self) -> float:
        """Total lost work divided by total offered work (cell loss ratio)."""
        if self.offered <= 0:
            return 0.0
        return float(self.lost.sum()) / self.offered


class AtmMultiplexer:
    """Slotted single-server multiplexer with deterministic service.

    Parameters
    ----------
    service_rate:
        Work served per slot (``mu``).
    buffer_size:
        Queue capacity; ``None`` means infinite (the paper's overflow
        studies use an infinite queue and measure ``P(Q > b)``).  ``0``
        is the *bufferless* multiplexer — the canonical
        admission-control scenario: nothing queues, and any work
        beyond the instantaneous service rate is lost in the slot it
        arrives.
    """

    def __init__(
        self, service_rate: float, buffer_size: Optional[float] = None
    ) -> None:
        self.service_rate = check_positive_float(
            service_rate, "service_rate"
        )
        if buffer_size is not None:
            buffer_size = check_nonnegative_float(
                buffer_size, "buffer_size"
            )
        self.buffer_size = buffer_size

    @classmethod
    def for_utilization(
        cls,
        mean_arrival: float,
        utilization: float,
        *,
        buffer_size: Optional[float] = None,
    ) -> "AtmMultiplexer":
        """Build a multiplexer achieving ``utilization`` for ``mean_arrival``."""
        return cls(
            service_rate_for_utilization(mean_arrival, utilization),
            buffer_size=buffer_size,
        )

    def utilization(self, mean_arrival: float) -> float:
        """Utilization achieved for a given mean arrival rate."""
        mean_arrival = check_positive_float(mean_arrival, "mean_arrival")
        return mean_arrival / self.service_rate

    def simulate(
        self,
        arrivals: np.ndarray,
        *,
        initial: Union[float, np.ndarray] = 0.0,
        metrics=None,
    ) -> MuxResult:
        """Run the multiplexer over ``arrivals`` (last axis = time).

        With an infinite buffer this is exactly the Lindley recursion;
        with a finite buffer, work beyond capacity is dropped and
        recorded per slot.

        ``metrics`` (optional :class:`~repro.observability.RunContext`)
        records a ``mux.queue_occupancy`` histogram over
        :data:`OCCUPANCY_BUCKETS`, plus ``mux.loss_events`` /
        ``mux.lost_work`` / ``mux.offered_work`` counters — binned in
        bulk with numpy, so the per-slot loop is untouched.
        """
        ctx = ensure_context(metrics)
        arr = np.asarray(arrivals, dtype=float)
        offered = float(arr.sum())
        if self.buffer_size is None:
            queue = lindley_recursion(
                arr, self.service_rate, initial=initial
            )
            result = MuxResult(
                queue=queue, lost=np.zeros_like(queue), offered=offered
            )
            self._record(ctx, result)
            return result
        queue, lost = finite_lindley_recursion(
            arr, self.service_rate, self.buffer_size, initial=initial
        )
        result = MuxResult(queue=queue, lost=lost, offered=offered)
        self._record(ctx, result)
        return result

    def _record(self, ctx, result: MuxResult) -> None:
        """Bulk-record a simulation's occupancy and loss metrics."""
        if not ctx.enabled:
            return
        flat = result.queue.ravel()
        # Bucket by the same `le` convention as Histogram.observe
        # (bisect_left), one vectorized pass instead of per-slot calls.
        indices = np.searchsorted(OCCUPANCY_BUCKETS, flat, side="left")
        counts = np.bincount(
            indices, minlength=len(OCCUPANCY_BUCKETS) + 1
        )
        ctx.histogram("mux.queue_occupancy", OCCUPANCY_BUCKETS).add_counts(
            counts.tolist(), total=float(flat.sum()), count=int(flat.size)
        )
        ctx.inc("mux.loss_events", int(np.count_nonzero(result.lost)))
        ctx.inc("mux.lost_work", float(result.lost.sum()))
        ctx.inc("mux.offered_work", result.offered)

    def __repr__(self) -> str:
        cap = "inf" if self.buffer_size is None else f"{self.buffer_size:g}"
        return (
            f"AtmMultiplexer(service_rate={self.service_rate:g}, "
            f"buffer_size={cap})"
        )
