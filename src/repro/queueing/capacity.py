"""Capacity planning for large multiplexed VBR aggregates.

The service-scale questions the effective-bandwidth theory answers:

- **provisioning** — how much capacity does a mixture of N sources
  need so that overflow of a buffer ``b`` stays below ``epsilon``?
  (:func:`effective_bandwidth_vs_n`);
- **admission control** — given a link of capacity ``c``, how many
  sources of the mixture can be admitted?  (:func:`admissible_sources`
  and :func:`admission_control_curve`);
- **multiplexing gain** — how fast does the realized loss ratio fall
  as N grows at fixed per-source provisioning?  (:func:`loss_vs_n`,
  which *simulates* the sharded aggregate through
  :class:`~repro.queueing.multiplexer.AtmMultiplexer` and reports the
  Norros prediction next to the measurement).

Conventions
-----------
Theory curves (:func:`effective_bandwidth_vs_n`, admission) scale the
mixture *continuously*: a population of ``N0`` sources with aggregate
mean ``M0`` evaluated at ``N`` sources uses mean ``N M0 / N0`` and the
same per-source variance coefficient — the per-slot variance over the
mean rate, which is invariant under proportional scaling.  Simulation
(:func:`loss_vs_n`) needs integer class counts and uses
:meth:`~repro.core.aggregate.SourcePopulation.scaled_to` (largest
remainder).  Buffer sizes are normalized by the *aggregate* mean rate
(the same convention as
:meth:`~repro.core.multiplex.AggregateVBRModel.arrival_transform`):
``b_abs = buffer_size * M``.  ``buffer_size=0`` selects the bufferless
multiplexer and the Gaussian bufferless loss formula
(:func:`bufferless_loss_gaussian`) as the theory reference.

Heterogeneous mixtures are planned at the *dominant* Hurst exponent
(``max_c H_c``): the slowest-decaying class controls the overflow tail,
so the resulting curves are conservative for the faster classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import erf, exp, pi, sqrt
from typing import Optional, Sequence, Union

import numpy as np

from .._validation import (
    check_in_range,
    check_nonnegative_float,
    check_positive_float,
    check_positive_int,
)
from ..core.aggregate import (
    ShardedAggregateModel,
    SourceClass,
    SourcePopulation,
    as_population,
)
from ..exceptions import ValidationError
from ..observability import ensure_context
from ..stats.random import RandomState, spawn_rngs
from .multiplexer import AtmMultiplexer
from .theory import norros_effective_bandwidth, norros_overflow_approximation

__all__ = [
    "EffectiveBandwidthCurve",
    "AdmissionCurve",
    "LossVsN",
    "effective_bandwidth_vs_n",
    "admissible_sources",
    "admission_control_curve",
    "bufferless_loss_gaussian",
    "loss_vs_n",
]

PopulationArg = Union[SourcePopulation, SourceClass, Sequence[SourceClass]]


@dataclass(frozen=True)
class EffectiveBandwidthCurve:
    """Effective bandwidth of the mixture as a function of N.

    ``bandwidths`` are absolute capacities; ``per_source`` divides by N
    — its decrease with N *is* the multiplexing gain promised by the
    theory.  ``utilizations`` (= mean rate over bandwidth) rise toward
    1 as the aggregate smooths.
    """

    n_values: np.ndarray
    mean_rates: np.ndarray
    bandwidths: np.ndarray
    buffer_size: float
    epsilon: float
    hurst: float

    @property
    def per_source(self) -> np.ndarray:
        """Effective bandwidth per admitted source."""
        return self.bandwidths / self.n_values

    @property
    def utilizations(self) -> np.ndarray:
        """Achievable utilization when provisioned at the bandwidth."""
        return self.mean_rates / self.bandwidths


@dataclass(frozen=True)
class AdmissionCurve:
    """Maximum admissible source count per link capacity."""

    capacities: np.ndarray
    max_sources: np.ndarray
    buffer_size: float
    epsilon: float
    hurst: float


@dataclass(frozen=True)
class LossVsN:
    """Measured loss ratio vs. N with its theory reference.

    ``loss_ratios`` are simulated cell-loss ratios of the sharded
    aggregate through a finite-buffer (or bufferless) multiplexer at
    fixed utilization; ``theory`` is the Norros overflow approximation
    (``buffer_size > 0``) or the Gaussian bufferless loss formula
    (``buffer_size = 0``) at the same operating point.
    """

    n_values: np.ndarray
    loss_ratios: np.ndarray
    theory: np.ndarray
    mean_rates: np.ndarray
    utilization: float
    buffer_size: float

    @property
    def multiplexing_gain(self) -> np.ndarray:
        """Loss improvement relative to the smallest N in the sweep."""
        with np.errstate(divide="ignore", invalid="ignore"):
            return self.loss_ratios[0] / self.loss_ratios


def _per_source_moments(population: PopulationArg):
    """(per-source mean, variance coefficient, dominant H) of a mixture."""
    pop = as_population(population)
    mean = pop.mean_rate / pop.num_sources
    return pop, mean, pop.variance_coefficient, pop.hurst


def effective_bandwidth_vs_n(
    population: PopulationArg,
    n_values: Sequence[int],
    *,
    buffer_size: float,
    epsilon: float,
    metrics=None,
) -> EffectiveBandwidthCurve:
    """Norros effective bandwidth of the mixture at each source count.

    ``buffer_size`` is normalized by the aggregate mean rate and must
    be positive (the effective-bandwidth formula diverges at ``b = 0``;
    use :func:`bufferless_loss_gaussian` for the bufferless regime).
    ``epsilon`` is the target overflow probability.
    """
    ctx = ensure_context(metrics)
    buffer_size = check_positive_float(buffer_size, "buffer_size")
    epsilon = check_in_range(
        epsilon, "epsilon", 0.0, 1.0,
        inclusive_low=False, inclusive_high=False,
    )
    pop, mean, coeff, hurst = _per_source_moments(population)
    counts = np.atleast_1d(np.asarray(n_values, dtype=int))
    if counts.size == 0 or np.any(counts <= 0):
        raise ValidationError("n_values must be positive source counts")
    bandwidths = np.empty(counts.size, dtype=float)
    mean_rates = np.empty(counts.size, dtype=float)
    for i, n in enumerate(counts):
        mean_rates[i] = n * mean
        bandwidths[i] = norros_effective_bandwidth(
            hurst=hurst,
            mean_rate=mean_rates[i],
            variance_coefficient=coeff,
            buffer_size=buffer_size * mean_rates[i],
            epsilon=epsilon,
        )
    ctx.inc("capacity.effective_bandwidth_points", counts.size)
    return EffectiveBandwidthCurve(
        n_values=counts,
        mean_rates=mean_rates,
        bandwidths=bandwidths,
        buffer_size=buffer_size,
        epsilon=epsilon,
        hurst=hurst,
    )


def admissible_sources(
    population: PopulationArg,
    *,
    capacity: float,
    buffer_size: float,
    epsilon: float,
    n_max: int = 1_000_000,
    metrics=None,
) -> int:
    """Largest N of the mixture admissible on a link of ``capacity``.

    The admission rule is ``EB(N) <= capacity`` with the effective
    bandwidth of :func:`effective_bandwidth_vs_n`.  EB is strictly
    increasing in N under continuous mixture scaling, so the answer is
    found by integer bisection; returns 0 when even one source's
    effective bandwidth exceeds the capacity.
    """
    ctx = ensure_context(metrics)
    capacity = check_positive_float(capacity, "capacity")
    n_max = check_positive_int(n_max, "n_max")

    def bandwidth(n: int) -> float:
        return float(
            effective_bandwidth_vs_n(
                population,
                [n],
                buffer_size=buffer_size,
                epsilon=epsilon,
            ).bandwidths[0]
        )

    ctx.inc("capacity.admission_evals")
    if bandwidth(1) > capacity:
        return 0
    if bandwidth(n_max) <= capacity:
        return n_max
    lo, hi = 1, n_max  # invariant: EB(lo) <= capacity < EB(hi)
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if bandwidth(mid) <= capacity:
            lo = mid
        else:
            hi = mid
    return lo


def admission_control_curve(
    population: PopulationArg,
    capacities: Sequence[float],
    *,
    buffer_size: float,
    epsilon: float,
    n_max: int = 1_000_000,
    metrics=None,
) -> AdmissionCurve:
    """Max admissible N at each link capacity (monotone by construction)."""
    ctx = ensure_context(metrics)
    caps = np.atleast_1d(np.asarray(capacities, dtype=float))
    if caps.size == 0 or np.any(caps <= 0):
        raise ValidationError("capacities must be positive")
    pop = as_population(population)
    max_sources = np.array(
        [
            admissible_sources(
                pop,
                capacity=c,
                buffer_size=buffer_size,
                epsilon=epsilon,
                n_max=n_max,
                metrics=ctx,
            )
            for c in caps
        ],
        dtype=int,
    )
    return AdmissionCurve(
        capacities=caps,
        max_sources=max_sources,
        buffer_size=check_positive_float(buffer_size, "buffer_size"),
        epsilon=check_in_range(
            epsilon, "epsilon", 0.0, 1.0,
            inclusive_low=False, inclusive_high=False,
        ),
        hurst=pop.hurst,
    )


def bufferless_loss_gaussian(
    *, mean_rate: float, std: float, capacity: float
) -> float:
    """Gaussian-approximation loss ratio of a bufferless multiplexer.

    With per-slot aggregate work ``A ~ N(M, S^2)`` and capacity ``c``,
    the expected lost work per slot is ``E[(A - c)^+] = S (phi(z) -
    z Phibar(z))`` with ``z = (c - M) / S``, and the loss ratio divides
    by the offered work ``M``.  The CLT makes this sharp for large N —
    the bufferless anchor of the admission curves.
    """
    mean_rate = check_positive_float(mean_rate, "mean_rate")
    std = check_positive_float(std, "std")
    capacity = check_positive_float(capacity, "capacity")
    z = (capacity - mean_rate) / std
    phi = exp(-0.5 * z * z) / sqrt(2.0 * pi)
    phibar = 0.5 * (1.0 - erf(z / sqrt(2.0)))
    return float(std * (phi - z * phibar) / mean_rate)


def loss_vs_n(
    population: PopulationArg,
    n_values: Sequence[int],
    *,
    utilization: float,
    buffer_size: float = 0.0,
    horizon: int = 4096,
    replications: int = 1,
    batch_size: int = 256,
    shards: int = 1,
    processes: Optional[int] = None,
    transport: str = "auto",
    pool: str = "shared",
    random_state: RandomState = None,
    metrics=None,
) -> LossVsN:
    """Simulated loss ratio of the sharded aggregate at each N.

    For each ``n`` the mixture is rescaled to ``n`` integer sources,
    generated by :class:`~repro.core.aggregate.ShardedAggregateModel`,
    and pushed through an :class:`AtmMultiplexer` with service
    ``M / utilization`` and buffer ``buffer_size * M`` (normalized by
    the aggregate mean; 0 = bufferless).  Loss ratios pool lost and
    offered work across ``replications`` independent paths.  ``theory``
    holds the matching analytic reference: the Gaussian bufferless
    formula at ``buffer_size = 0``, Norros' ``P(Q > b)`` otherwise.
    ``processes`` is forwarded to the engine's pooled generation path
    (``None`` defers to ``REPRO_PROCESSES``); like ``shards``, it never
    changes the simulated bits.  ``transport`` and ``pool`` are
    forwarded too: by default every replication at every ``n`` reuses
    the process-wide shared worker pool and moves partial sums through
    shared memory instead of rebuilding a pool (and re-pickling
    results) per ``generate()`` call — ``pool="per-call"`` restores the
    old behaviour for ablation.  Neither changes the simulated bits.
    """
    ctx = ensure_context(metrics)
    utilization = check_in_range(
        utilization, "utilization", 0.0, 1.0,
        inclusive_low=False, inclusive_high=False,
    )
    buffer_size = check_nonnegative_float(buffer_size, "buffer_size")
    horizon = check_positive_int(horizon, "horizon")
    replications = check_positive_int(replications, "replications")
    pop = as_population(population)
    counts = np.atleast_1d(np.asarray(n_values, dtype=int))
    if counts.size == 0 or np.any(counts <= 0):
        raise ValidationError("n_values must be positive source counts")
    rngs = spawn_rngs(random_state, counts.size * replications)
    loss = np.empty(counts.size, dtype=float)
    theory = np.empty(counts.size, dtype=float)
    mean_rates = np.empty(counts.size, dtype=float)
    for i, n in enumerate(counts):
        scaled = pop.scaled_to(int(n))
        engine = ShardedAggregateModel(
            scaled, batch_size=batch_size, metrics=ctx
        )
        mean_rate = scaled.mean_rate
        mean_rates[i] = mean_rate
        service = mean_rate / utilization
        mux = AtmMultiplexer(service, buffer_size=buffer_size * mean_rate)
        lost = 0.0
        offered = 0.0
        with ctx.time("capacity.loss_seconds", n=int(n)):
            for r in range(replications):
                feed = engine.generate(
                    horizon,
                    shards=shards,
                    processes=processes,
                    transport=transport,
                    pool=pool,
                    random_state=rngs[i * replications + r],
                )
                result = mux.simulate(feed.arrivals, metrics=ctx)
                lost += float(result.lost.sum())
                offered += result.offered
        loss[i] = lost / offered if offered > 0 else 0.0
        ctx.inc("capacity.loss_points", n=int(n))
        if buffer_size == 0.0:
            theory[i] = bufferless_loss_gaussian(
                mean_rate=mean_rate,
                std=sqrt(scaled.slot_variance),
                capacity=service,
            )
        else:
            theory[i] = float(
                norros_overflow_approximation(
                    [buffer_size * mean_rate],
                    hurst=scaled.hurst,
                    mean_rate=mean_rate,
                    service_rate=service,
                    variance_coefficient=scaled.variance_coefficient,
                )[0]
            )
    return LossVsN(
        n_values=counts,
        loss_ratios=loss,
        theory=theory,
        mean_rates=mean_rates,
        utilization=utilization,
        buffer_size=buffer_size,
    )
