"""Plain Monte Carlo overflow-probability estimators.

These are the non-importance-sampling baselines: replication-based
transient estimates for synthetic models, and the single-long-run
time-average estimate used for the empirical trace (the paper notes
that only one empirical replication exists, so trace-driven results are
one long run reused across buffer sizes — and warns of the resulting
disagreement at low utilizations; see Fig. 16 discussion).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import check_1d_array, check_positive_float
from ..exceptions import SimulationError, ValidationError
from .lindley import lindley_recursion, workload_supremum

__all__ = [
    "OverflowEstimate",
    "transient_overflow_mc",
    "steady_state_overflow_from_trace",
    "batch_means_overflow",
    "cell_loss_ratio_from_trace",
]


@dataclass(frozen=True)
class OverflowEstimate:
    """An overflow-probability estimate with precision diagnostics.

    Attributes
    ----------
    probability:
        Estimated ``P(Q > b)``.
    variance:
        Variance of the *estimator* (not of the indicator).
    replications:
        Number of i.i.d. replications (1 for trace time averages).
    """

    probability: float
    variance: float
    replications: int

    @property
    def std_error(self) -> float:
        """Standard error of the estimate."""
        return float(np.sqrt(max(self.variance, 0.0)))

    @property
    def relative_error(self) -> float:
        """Standard error divided by the estimate (inf when estimate=0)."""
        if self.probability <= 0:
            return float("inf")
        return self.std_error / self.probability

    @property
    def log10_probability(self) -> float:
        """``log10 P``; ``-inf`` when the estimate is zero."""
        if self.probability <= 0:
            return float("-inf")
        return float(np.log10(self.probability))

    def confidence_interval(self, z: float = 1.96) -> tuple:
        """Normal-approximation confidence interval ``(low, high)``."""
        half = z * self.std_error
        return (
            max(self.probability - half, 0.0),
            min(self.probability + half, 1.0),
        )


def transient_overflow_mc(
    arrivals: np.ndarray,
    service_rate: float,
    buffer_size: float,
    *,
    use_workload_form: bool = True,
    initial: float = 0.0,
) -> OverflowEstimate:
    """Estimate ``P(Q_k > b)`` from replicated arrival paths.

    Parameters
    ----------
    arrivals:
        Replications of the arrival process, shape ``(size, k)``.
    service_rate:
        Deterministic service per slot.
    buffer_size:
        Threshold ``b``.
    use_workload_form:
        If True (default), uses the eq. 17 workload-supremum event
        ``sup_{i<=k} W_i > b`` (equal in law to ``Q_k > b`` when the
        queue starts empty).  If False, runs the Lindley recursion from
        ``initial`` and tests ``Q_k > b`` directly (needed when
        ``initial`` is nonzero, e.g. Fig. 15's full-buffer start).
    """
    arr = np.asarray(arrivals, dtype=float)
    if arr.ndim != 2:
        raise ValidationError(
            f"arrivals must be 2-D (size, k), got shape {arr.shape}"
        )
    check_positive_float(buffer_size, "buffer_size")
    if use_workload_form:
        if initial != 0.0:
            raise ValidationError(
                "the workload form assumes an initially empty queue; "
                "pass use_workload_form=False for nonzero initial content"
            )
        sup = workload_supremum(arr, service_rate)[:, -1]
        indicators = (sup > buffer_size).astype(float)
    else:
        queue = lindley_recursion(arr, service_rate, initial=initial)
        indicators = (queue[:, -1] > buffer_size).astype(float)
    n = indicators.size
    p = float(indicators.mean())
    variance = float(indicators.var(ddof=1)) / n if n > 1 else float("nan")
    return OverflowEstimate(probability=p, variance=variance, replications=n)


def steady_state_overflow_from_trace(
    arrivals: Sequence[float],
    service_rate: float,
    buffer_sizes: Sequence[float],
    *,
    warmup: int = 0,
) -> list:
    """Time-average ``P(Q > b)`` from one long arrival trace.

    Runs the Lindley recursion once over the whole trace and reports,
    for every requested buffer size, the fraction of (post-warmup)
    slots with ``Q > b`` — the paper's methodology for the empirical
    "data trace results" of Figs. 16-17.  The same run serves all
    buffer sizes, exactly as the paper reuses its single empirical
    trace ("the same empirical trace was used for simulating all
    different buffer sizes!").

    Returns a list of :class:`OverflowEstimate` (variance is reported
    as NaN: time-average estimates from one strongly correlated run do
    not admit an i.i.d. variance estimate).
    """
    arr = check_1d_array(arrivals, "arrivals")
    if warmup < 0 or warmup >= arr.size:
        raise ValidationError(
            f"warmup must be in [0, {arr.size - 1}], got {warmup}"
        )
    queue = lindley_recursion(arr, service_rate)
    tail = queue[warmup:]
    if tail.size == 0:
        raise SimulationError("no samples remain after warmup")
    estimates = []
    for b in buffer_sizes:
        check_positive_float(float(b), "buffer size")
        p = float(np.mean(tail > b))
        estimates.append(
            OverflowEstimate(
                probability=p, variance=float("nan"), replications=1
            )
        )
    return estimates


def batch_means_overflow(
    arrivals: Sequence[float],
    service_rate: float,
    buffer_size: float,
    *,
    num_batches: int = 20,
    warmup: int = 0,
) -> OverflowEstimate:
    """Batch-means estimate of ``P(Q > b)`` from one long run.

    Splits the post-warmup queue path into ``num_batches`` contiguous
    batches and treats the batch-wise exceedance fractions as pseudo-
    replications.  **Caveat the paper itself raises:** for self-similar
    input, batches of any practical length remain correlated ("we
    would expect significant correlations between batches due to the
    self similar nature of the traffic"), so the reported variance is
    an *optimistic lower bound* — useful for flagging obviously
    unresolved estimates, not as a calibrated confidence interval.
    """
    arr = check_1d_array(arrivals, "arrivals")
    check_positive_float(buffer_size, "buffer_size")
    num_batches = int(num_batches)
    if num_batches < 2:
        raise ValidationError("num_batches must be at least 2")
    if warmup < 0 or warmup >= arr.size:
        raise ValidationError(
            f"warmup must be in [0, {arr.size - 1}], got {warmup}"
        )
    queue = lindley_recursion(arr, service_rate)[warmup:]
    batch_length = queue.size // num_batches
    if batch_length < 1:
        raise ValidationError(
            "series too short for the requested number of batches"
        )
    trimmed = queue[: batch_length * num_batches]
    batches = trimmed.reshape(num_batches, batch_length)
    fractions = (batches > buffer_size).mean(axis=1)
    probability = float(fractions.mean())
    variance = float(fractions.var(ddof=1)) / num_batches
    return OverflowEstimate(
        probability=probability,
        variance=variance,
        replications=num_batches,
    )


def cell_loss_ratio_from_trace(
    arrivals: Sequence[float],
    service_rate: float,
    buffer_sizes: Sequence[float],
    *,
    warmup: int = 0,
) -> list:
    """Finite-buffer cell loss ratios from one long arrival trace.

    For each buffer size, runs the finite-capacity multiplexer over the
    whole trace and reports lost work / offered work — the quantity the
    paper's title promises.  The infinite-buffer tail probability
    ``P(Q > b)`` (what Figs. 16-17 plot) upper-bounds the loss ratio
    for the same ``b``; both are useful and they share the slow decay
    under self-similar input.

    Returns one :class:`OverflowEstimate` per buffer size whose
    ``probability`` field carries the loss ratio (variance NaN: single
    correlated run, as with the time-average estimator).
    """
    arr = check_1d_array(arrivals, "arrivals")
    if warmup < 0 or warmup >= arr.size:
        raise ValidationError(
            f"warmup must be in [0, {arr.size - 1}], got {warmup}"
        )
    from .multiplexer import AtmMultiplexer

    tail = arr[warmup:]
    estimates = []
    for b in buffer_sizes:
        check_positive_float(float(b), "buffer size")
        result = AtmMultiplexer(
            service_rate, buffer_size=float(b)
        ).simulate(tail)
        estimates.append(
            OverflowEstimate(
                probability=result.loss_ratio,
                variance=float("nan"),
                replications=1,
            )
        )
    return estimates
