"""ATM multiplexer queueing substrate (paper §4).

The paper studies a slotted-time single-server queue with deterministic
service rate ``mu`` fed by the (self-similar) arrival process ``Y``:

.. math:: Q_k = \\langle Q_{k-1} + Y_k - \\mu \\rangle^+           (eq. 16)

and, via the workload process ``W_k = sum_{i<=k} (Y_i - mu)``,

.. math:: \\Pr(Q_k > b) = \\Pr(\\sup_{0 \\le i \\le k} W_i > b)      (eq. 17)

This subpackage provides the Lindley recursion (batched over
replications), the workload/supremum form, the multiplexer wrapper
with utilization/normalized-buffer conventions, and plain Monte Carlo
overflow estimators (the importance-sampling estimators live in
:mod:`repro.simulation`).
"""

from .capacity import (
    AdmissionCurve,
    EffectiveBandwidthCurve,
    LossVsN,
    admissible_sources,
    admission_control_curve,
    bufferless_loss_gaussian,
    effective_bandwidth_vs_n,
    loss_vs_n,
)
from .lindley import (
    first_passage_times,
    lindley_recursion,
    workload_paths,
    workload_supremum,
)
from .multiplexer import AtmMultiplexer, service_rate_for_utilization
from .overflow import (
    OverflowEstimate,
    batch_means_overflow,
    cell_loss_ratio_from_trace,
    steady_state_overflow_from_trace,
    transient_overflow_mc,
)
from .spreading import slice_service_rate, spread_arrivals
from .theory import (
    norros_decay_exponent,
    norros_effective_bandwidth,
    norros_overflow_approximation,
)

__all__ = [
    "spread_arrivals",
    "slice_service_rate",
    "lindley_recursion",
    "workload_paths",
    "workload_supremum",
    "first_passage_times",
    "AtmMultiplexer",
    "service_rate_for_utilization",
    "OverflowEstimate",
    "transient_overflow_mc",
    "steady_state_overflow_from_trace",
    "batch_means_overflow",
    "cell_loss_ratio_from_trace",
    "norros_overflow_approximation",
    "norros_decay_exponent",
    "norros_effective_bandwidth",
    "EffectiveBandwidthCurve",
    "AdmissionCurve",
    "LossVsN",
    "effective_bandwidth_vs_n",
    "admissible_sources",
    "admission_control_curve",
    "bufferless_loss_gaussian",
    "loss_vs_n",
]
