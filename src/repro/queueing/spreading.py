"""Frame spreading / slice-level arrival shaping.

The paper's trace is sliced (Table 1: 15 slices per frame), and the
authors elsewhere study *frame spreading* — transmitting a frame's
cells evenly across its frame interval instead of as a burst at the
frame boundary (reference [15] of the paper).  Spreading changes
nothing about the per-frame workload but removes the intra-frame
burst, which matters exactly at small buffers.

:func:`spread_arrivals` refines a per-frame arrival series into
``factor`` sub-slots per frame with the frame's load divided evenly;
the matching service rate per sub-slot is ``mu / factor``.  The
ablation bench quantifies the small-buffer overflow reduction.
"""

from __future__ import annotations

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError

__all__ = ["spread_arrivals", "slice_service_rate"]


def spread_arrivals(frame_arrivals: np.ndarray, factor: int) -> np.ndarray:
    """Spread each frame's arrivals evenly over ``factor`` sub-slots.

    Parameters
    ----------
    frame_arrivals:
        Arrivals per frame slot, shape ``(k,)`` or ``(size, k)``.
    factor:
        Sub-slots per frame (e.g. the paper's 15 slices per frame).

    Returns
    -------
    numpy.ndarray
        Arrivals per sub-slot with the last axis expanded to
        ``k * factor``; total arrivals per frame are preserved.
    """
    factor = check_positive_int(factor, "factor")
    arr = np.asarray(frame_arrivals, dtype=float)
    if arr.ndim not in (1, 2):
        raise ValidationError(
            f"frame_arrivals must be 1-D or 2-D, got shape {arr.shape}"
        )
    return np.repeat(arr / factor, factor, axis=-1)


def slice_service_rate(frame_service_rate: float, factor: int) -> float:
    """Service per sub-slot matching a per-frame service rate."""
    factor = check_positive_int(factor, "factor")
    if frame_service_rate <= 0:
        raise ValidationError("frame_service_rate must be positive")
    return frame_service_rate / factor
