"""Frequency histograms (Fig. 1 and Fig. 12 of the paper).

The paper presents marginal distributions as *relative frequency*
histograms of bytes/frame.  :class:`Histogram` is a small immutable
container with the bin edges, counts, and relative frequencies, plus
helpers to evaluate overlap between two histograms (used by tests and
the Fig. 12 bench to quantify model/trace agreement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from .._validation import check_1d_array, check_positive_int
from ..exceptions import ValidationError

__all__ = ["Histogram", "frequency_histogram"]


@dataclass(frozen=True)
class Histogram:
    """A frequency histogram over fixed bins.

    Attributes
    ----------
    edges:
        Bin edges of length ``len(counts) + 1``.
    counts:
        Number of samples in each bin.
    """

    edges: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        edges = np.asarray(self.edges, dtype=float)
        counts = np.asarray(self.counts, dtype=float)
        if edges.ndim != 1 or counts.ndim != 1:
            raise ValidationError("edges and counts must be one-dimensional")
        if edges.size != counts.size + 1:
            raise ValidationError(
                "edges must have exactly one more entry than counts"
            )
        if np.any(np.diff(edges) <= 0):
            raise ValidationError("edges must be strictly increasing")
        if np.any(counts < 0):
            raise ValidationError("counts must be non-negative")
        object.__setattr__(self, "edges", edges)
        object.__setattr__(self, "counts", counts)

    @property
    def total(self) -> float:
        """Total number of samples in the histogram."""
        return float(self.counts.sum())

    @property
    def centers(self) -> np.ndarray:
        """Bin mid-points."""
        return 0.5 * (self.edges[:-1] + self.edges[1:])

    @property
    def widths(self) -> np.ndarray:
        """Bin widths."""
        return np.diff(self.edges)

    @property
    def frequencies(self) -> np.ndarray:
        """Relative frequency per bin (sums to 1 for non-empty data)."""
        total = self.total
        if total == 0:
            return np.zeros_like(self.counts)
        return self.counts / total

    @property
    def density(self) -> np.ndarray:
        """Probability density per bin (integrates to 1)."""
        total = self.total
        if total == 0:
            return np.zeros_like(self.counts)
        return self.counts / (total * self.widths)

    def overlap(self, other: "Histogram") -> float:
        """Return the histogram-intersection similarity in [0, 1].

        Both histograms must share identical bin edges.  A value of 1
        means identical relative frequencies.
        """
        if self.edges.shape != other.edges.shape or not np.allclose(
            self.edges, other.edges
        ):
            raise ValidationError(
                "histograms must share identical bin edges for overlap"
            )
        return float(np.minimum(self.frequencies, other.frequencies).sum())

    def mode_center(self) -> float:
        """Return the center of the most populated bin."""
        if self.total == 0:
            raise ValidationError("cannot take the mode of an empty histogram")
        return float(self.centers[int(np.argmax(self.counts))])


def frequency_histogram(
    values: Sequence[float],
    *,
    bins: int = 50,
    edges: Optional[Sequence[float]] = None,
    value_range: Optional[Tuple[float, float]] = None,
) -> Histogram:
    """Build a :class:`Histogram` from raw samples.

    Parameters
    ----------
    values:
        Sample values (e.g. bytes per frame).
    bins:
        Number of equal-width bins when ``edges`` is not given.
    edges:
        Explicit bin edges; overrides ``bins``/``value_range``.
    value_range:
        ``(low, high)`` range for equal-width binning; defaults to the
        data range.
    """
    arr = check_1d_array(values, "values")
    if edges is not None:
        edge_arr = check_1d_array(edges, "edges")
        counts, out_edges = np.histogram(arr, bins=edge_arr)
    else:
        bins = check_positive_int(bins, "bins")
        counts, out_edges = np.histogram(arr, bins=bins, range=value_range)
    return Histogram(edges=out_edges, counts=counts.astype(float))
