"""Series aggregation used by variance-time analysis.

For a process ``X`` the *m-aggregated* process is

.. math::

    X^{(m)}_k = \\frac{1}{m} (X_{km-m+1} + \\dots + X_{km}),

i.e. the series of non-overlapping block means of block size ``m``.
Self-similar processes satisfy ``var(X^(m)) ~ m^{-beta}`` which is the
basis of the variance-time plot (Fig. 3 of the paper).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .._validation import check_1d_array, check_positive_int
from ..exceptions import ValidationError

__all__ = ["aggregate_series", "aggregation_levels"]


def aggregate_series(values: Sequence[float], m: int) -> np.ndarray:
    """Return the m-aggregated (block-mean) series of ``values``.

    Trailing samples that do not fill a complete block are discarded,
    matching the standard variance-time methodology.

    Parameters
    ----------
    values:
        The raw series ``X_1 .. X_n``.
    m:
        Block size; ``m = 1`` returns a copy of the input.
    """
    arr = check_1d_array(values, "values")
    m = check_positive_int(m, "m")
    if m > arr.size:
        raise ValidationError(
            f"block size m={m} exceeds series length {arr.size}"
        )
    blocks = arr.size // m
    return arr[: blocks * m].reshape(blocks, m).mean(axis=1)


def aggregation_levels(
    n: int,
    *,
    min_m: int = 1,
    max_m: int | None = None,
    points_per_decade: int = 10,
    min_blocks: int = 5,
) -> List[int]:
    """Return log-spaced aggregation levels for a series of length ``n``.

    Levels are chosen roughly uniformly in ``log10(m)`` between ``min_m``
    and ``max_m`` (default: the largest ``m`` leaving ``min_blocks``
    blocks), with duplicates removed.  This mirrors how variance-time
    plots are constructed in the self-similarity literature.
    """
    n = check_positive_int(n, "n")
    min_m = check_positive_int(min_m, "min_m")
    min_blocks = check_positive_int(min_blocks, "min_blocks")
    if max_m is None:
        max_m = max(min_m, n // min_blocks)
    max_m = check_positive_int(max_m, "max_m")
    if max_m < min_m:
        raise ValidationError(
            f"max_m={max_m} must be >= min_m={min_m}"
        )
    if min_m == max_m:
        return [min_m]
    count = max(
        2,
        int(np.ceil((np.log10(max_m) - np.log10(min_m)) * points_per_decade)),
    )
    grid = np.logspace(np.log10(min_m), np.log10(max_m), count)
    levels = sorted({int(round(m)) for m in grid if m >= min_m})
    return [m for m in levels if m <= max_m]
