"""Series summary statistics used across reports and benches."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import check_1d_array

__all__ = ["SeriesSummary", "summarize"]


@dataclass(frozen=True)
class SeriesSummary:
    """First- and second-order summary of a one-dimensional series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    p95: float
    p99: float

    def as_dict(self) -> dict:
        """Return the summary as a plain dictionary (for printing)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "std": self.std,
            "min": self.minimum,
            "max": self.maximum,
            "median": self.median,
            "p95": self.p95,
            "p99": self.p99,
        }


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Compute a :class:`SeriesSummary` for ``values``."""
    arr = check_1d_array(values, "values")
    return SeriesSummary(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        median=float(np.median(arr)),
        p95=float(np.quantile(arr, 0.95)),
        p99=float(np.quantile(arr, 0.99)),
    )
