"""Random-generator helpers.

All stochastic code in the library accepts a ``random_state`` argument
that may be ``None`` (fresh entropy), an ``int`` seed, or an existing
:class:`numpy.random.Generator`.  :func:`make_rng` normalizes the three
forms; :func:`spawn_rngs` derives independent child generators for
parallel replications so that replication ``i`` is reproducible
regardless of how many replications run.

Spawn hygiene
-------------
:func:`spawn_rngs` behaves differently for the two seed forms, and the
difference matters once several consumers spawn off the same seed:

- With a **Generator**, children come from the generator's own
  ``SeedSequence.spawn`` — the sequence remembers how many children it
  has handed out, so *successive* calls yield fresh, non-overlapping
  streams.
- With an **int** (or ``None``), every call rebuilds
  ``SeedSequence(seed)`` from scratch, so two calls with the same int
  return IDENTICAL children.  That is exactly what reproducible
  pipelines want for a *single* spawn point (the CLI's phase streams),
  and exactly what sharing a seed across *independent* spawn points
  must not do — those consumers should spawn once and distribute
  children, or pass Generator children down (legs spawn chunks from
  their own child, and the spawn-key tree keeps every
  child-of-a-child globally distinct).

:func:`spawn_key` exposes the ``(entropy, spawn_key)`` identity of a
generator's seed sequence so tests can assert streams are actually
distinct (the collision canary in ``tests/test_chunked.py``).
"""

from __future__ import annotations

from typing import List, Tuple, Union

import numpy as np

from .._validation import check_positive_int

RandomState = Union[None, int, np.random.Generator]

__all__ = ["make_rng", "spawn_rngs", "spawn_key", "RandomState"]


def make_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for OS entropy, an integer seed, or an existing
        generator (returned unchanged).
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def spawn_rngs(
    random_state: RandomState, count: int
) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning, so children are
    independent of each other and of the parent stream.
    """
    count = check_positive_int(count, "count")
    if isinstance(random_state, np.random.Generator):
        seed_seq = random_state.bit_generator.seed_seq  # type: ignore[attr-defined]
        if seed_seq is None:  # pragma: no cover - exotic bit generators
            seed_seq = np.random.SeedSequence(
                random_state.integers(0, 2**63 - 1)
            )
    else:
        seed_seq = np.random.SeedSequence(random_state)
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]


def spawn_key(rng: np.random.Generator) -> Tuple:
    """Stream identity of a generator: ``(entropy, spawn chain)``.

    Two generators with the same key draw the same stream.  The key is
    hashable, so a set of keys over every child spawned in a run is the
    collision canary: its size must equal the number of children.
    Returns ``(None, ...)`` for generators whose bit generator carries
    no seed sequence (exotic/hand-rolled ones); those compare distinct
    only by object identity, so the canary should not meet any.
    """
    seed_seq = getattr(rng.bit_generator, "seed_seq", None)
    if seed_seq is None:  # pragma: no cover - exotic bit generators
        return (None, id(rng))
    entropy = seed_seq.entropy
    if isinstance(entropy, (list, np.ndarray)):
        entropy = tuple(int(e) for e in entropy)
    return (entropy, tuple(seed_seq.spawn_key))
