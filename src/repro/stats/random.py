"""Random-generator helpers.

All stochastic code in the library accepts a ``random_state`` argument
that may be ``None`` (fresh entropy), an ``int`` seed, or an existing
:class:`numpy.random.Generator`.  :func:`make_rng` normalizes the three
forms; :func:`spawn_rngs` derives independent child generators for
parallel replications so that replication ``i`` is reproducible
regardless of how many replications run.
"""

from __future__ import annotations

from typing import List, Union

import numpy as np

from .._validation import check_positive_int

RandomState = Union[None, int, np.random.Generator]

__all__ = ["make_rng", "spawn_rngs", "RandomState"]


def make_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``random_state``.

    Parameters
    ----------
    random_state:
        ``None`` for OS entropy, an integer seed, or an existing
        generator (returned unchanged).
    """
    if isinstance(random_state, np.random.Generator):
        return random_state
    return np.random.default_rng(random_state)


def spawn_rngs(
    random_state: RandomState, count: int
) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning, so children are
    independent of each other and of the parent stream.
    """
    count = check_positive_int(count, "count")
    if isinstance(random_state, np.random.Generator):
        seed_seq = random_state.bit_generator.seed_seq  # type: ignore[attr-defined]
        if seed_seq is None:  # pragma: no cover - exotic bit generators
            seed_seq = np.random.SeedSequence(
                random_state.integers(0, 2**63 - 1)
            )
    else:
        seed_seq = np.random.SeedSequence(random_state)
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]
