"""Terminal (ASCII) line plots.

The paper communicates its results almost entirely through figures.
This environment has no plotting backend, so the examples and benches
render key figures as ASCII plots: good enough to *see* the ACF knee,
the twist-search valley, and the overflow curves directly in the
terminal or a log file.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError

__all__ = ["ascii_plot"]

#: Marker characters assigned to series in insertion order.
_MARKERS = "*+ox#@%&"


def ascii_plot(
    x: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 20,
    title: Optional[str] = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one or more series as an ASCII line plot.

    Parameters
    ----------
    x:
        Shared x coordinates.
    series:
        Mapping of series name to y values (same length as ``x``).
        Non-finite y values are skipped.
    width, height:
        Plot area size in characters.
    title, x_label, y_label:
        Annotations.

    Returns
    -------
    str
        A multi-line string; print it.
    """
    width = check_positive_int(width, "width")
    height = check_positive_int(height, "height")
    if not series:
        raise ValidationError("series must not be empty")
    x_arr = np.asarray(x, dtype=float)
    if x_arr.ndim != 1 or x_arr.size < 2:
        raise ValidationError("x must be 1-D with at least two points")

    all_y = []
    for name, values in series.items():
        y_arr = np.asarray(values, dtype=float)
        if y_arr.shape != x_arr.shape:
            raise ValidationError(
                f"series {name!r} length {y_arr.size} != x length "
                f"{x_arr.size}"
            )
        all_y.append(y_arr[np.isfinite(y_arr)])
    pooled = np.concatenate([v for v in all_y if v.size]) if any(
        v.size for v in all_y
    ) else np.array([0.0])
    y_min, y_max = float(pooled.min()), float(pooled.max())
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min, x_max = float(x_arr.min()), float(x_arr.max())
    if x_max == x_min:
        raise ValidationError("x values are all equal")

    grid = [[" "] * width for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        y_arr = np.asarray(values, dtype=float)
        for xv, yv in zip(x_arr, y_arr):
            if not np.isfinite(yv):
                continue
            col = int(round((xv - x_min) / (x_max - x_min) * (width - 1)))
            row = int(
                round((y_max - yv) / (y_max - y_min) * (height - 1))
            )
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title.center(width + 12))
    top_label = f"{y_max:>10.3g} |"
    bottom_label = f"{y_min:>10.3g} |"
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label
        elif row_index == height - 1:
            prefix = bottom_label
        else:
            prefix = " " * 11 + "|"
        lines.append(prefix + "".join(row))
    lines.append(" " * 11 + "+" + "-" * width)
    x_axis = (
        " " * 12
        + f"{x_min:<12.4g}"
        + x_label.center(max(width - 24, 1))
        + f"{x_max:>12.4g}"
    )
    lines.append(x_axis)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} = {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend + f"   (y: {y_label})")
    return "\n".join(lines)
