"""Shared numeric and statistical utilities.

This subpackage holds the small, generic building blocks used throughout
the library: frequency histograms (Fig. 1, 12 of the paper), Q-Q
computations (Fig. 13), series aggregation (variance-time analysis), and
seeded random-generator helpers.
"""

from .aggregate import aggregate_series, aggregation_levels
from .asciiplot import ascii_plot
from .histogram import Histogram, frequency_histogram
from .qq import qq_points, quantiles
from .random import make_rng, spawn_rngs
from .summary import SeriesSummary, summarize

__all__ = [
    "ascii_plot",
    "Histogram",
    "frequency_histogram",
    "qq_points",
    "quantiles",
    "aggregate_series",
    "aggregation_levels",
    "make_rng",
    "spawn_rngs",
    "SeriesSummary",
    "summarize",
]
