"""Quantile-quantile computations (Fig. 13 of the paper).

The paper compares the marginal distribution of the simulated process
against the empirical trace with a Q-Q plot.  :func:`qq_points` returns
the paired quantiles; a perfectly matched marginal yields points on the
diagonal ``y = x``.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .._validation import check_1d_array, check_positive_int

__all__ = ["quantiles", "qq_points", "qq_max_deviation"]


def quantiles(values: Sequence[float], probs: Sequence[float]) -> np.ndarray:
    """Return the empirical quantiles of ``values`` at levels ``probs``."""
    arr = check_1d_array(values, "values")
    p = np.clip(check_1d_array(probs, "probs"), 0.0, 1.0)
    return np.quantile(arr, p)


def qq_points(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    *,
    count: int = 100,
) -> Tuple[np.ndarray, np.ndarray]:
    """Return paired quantiles of two samples at ``count`` levels.

    Probability levels are placed at ``(i + 0.5) / count`` so the extreme
    order statistics do not dominate the comparison.
    """
    count = check_positive_int(count, "count")
    probs = (np.arange(count) + 0.5) / count
    return quantiles(sample_a, probs), quantiles(sample_b, probs)


def qq_max_deviation(
    sample_a: Sequence[float],
    sample_b: Sequence[float],
    *,
    count: int = 100,
) -> float:
    """Return the maximum relative deviation of Q-Q points from ``y = x``.

    Deviation is measured relative to the inter-quantile scale of the
    first sample, making the metric unit-free.  A value near 0 indicates
    closely matching marginals.
    """
    qa, qb = qq_points(sample_a, sample_b, count=count)
    scale = float(np.quantile(np.asarray(sample_a, dtype=float), 0.95)) - float(
        np.quantile(np.asarray(sample_a, dtype=float), 0.05)
    )
    if scale <= 0:
        scale = max(abs(qa).max(), 1.0)
    return float(np.max(np.abs(qa - qb)) / scale)
