"""String-keyed backend registry for :class:`~repro.processes.source.GaussianSource`.

Every generation backend in the library is registered here under a
stable name with its capability flags, so consumers (the §3.2/§3.3
models, the Appendix B importance-sampling estimators, the Figs. 14-17
runners, and the CLI) select backends by string instead of hard-coding
a generator function:

>>> from repro.processes import registry
>>> spec = registry.get("davies_harte")
>>> source = spec.create(FGNCorrelation(0.8))          # doctest: +SKIP
>>> registry.names()
('davies_harte', 'farima', 'fgn', 'hosking', 'mg_infinity', 'rmd')

The ``auto`` policy
-------------------
``resolve("auto", ...)`` picks the asymptotically cheapest backend that
can serve the request:

- **unconditional fixed-length paths** → ``davies_harte`` — exact and
  O(n log n), so Fig. 8-13 style synthesis never pays Hosking's O(n^2);
- **conditional / importance-sampling stepping** → ``hosking`` — the
  only backend exposing the exact per-step conditional moments the
  likelihood ratios of Appendix B require.

Capability validation happens at *construction*: requesting conditional
stepping from a backend that cannot provide it raises
:class:`~repro.exceptions.ValidationError` immediately, never mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Tuple, Union

from ..exceptions import ValidationError
from ..observability import ensure_context
from .source import (
    DaviesHarteSource,
    FARIMASource,
    FGNSource,
    GaussianSource,
    HoskingSource,
    MGInfinitySource,
    RMDSource,
    SourceCapabilities,
)

__all__ = [
    "BackendSpec",
    "register",
    "get",
    "names",
    "create",
    "resolve",
    "merge_backend_args",
]

#: What consumers may pass wherever a backend is accepted: a registry
#: name (or ``"auto"``) or an already-constructed source instance.
BackendArg = Union[str, GaussianSource]


@dataclass(frozen=True)
class BackendSpec:
    """One registered backend: its factory plus capability flags.

    Attributes
    ----------
    name:
        Registry key.
    factory:
        ``factory(correlation, **options) -> GaussianSource``.
    capabilities:
        The backend's :class:`~repro.processes.source.SourceCapabilities`.
    summary:
        One-line description (shown in docs/CLI help).
    """

    name: str
    factory: Callable[..., GaussianSource]
    capabilities: SourceCapabilities
    summary: str

    @property
    def exact(self) -> bool:
        return self.capabilities.exact

    @property
    def conditional(self) -> bool:
        return self.capabilities.conditional

    @property
    def batch(self) -> bool:
        return self.capabilities.batch

    @property
    def chunked(self) -> bool:
        return self.capabilities.chunked

    def create(self, correlation, **options) -> GaussianSource:
        """Construct a source for ``correlation`` (model, acvf, or Hurst)."""
        return self.factory(correlation, **options)


_REGISTRY: Dict[str, BackendSpec] = {}


def _normalize(name: str) -> str:
    """Canonicalize a backend name (``"davies-harte"`` == ``"davies_harte"``)."""
    if not isinstance(name, str):
        raise ValidationError(
            f"backend must be a string or GaussianSource, got "
            f"{type(name).__name__}"
        )
    return name.strip().lower().replace("-", "_")


def register(spec: BackendSpec) -> BackendSpec:
    """Register a backend spec (last registration wins for a name)."""
    if not isinstance(spec, BackendSpec):
        raise ValidationError(
            f"spec must be a BackendSpec, got {type(spec).__name__}"
        )
    _REGISTRY[_normalize(spec.name)] = spec
    return spec


def names() -> Tuple[str, ...]:
    """Registered backend names, sorted."""
    return tuple(sorted(_REGISTRY))


def get(name: str) -> BackendSpec:
    """Look up a backend spec by name."""
    key = _normalize(name)
    try:
        return _REGISTRY[key]
    except KeyError:
        available = ", ".join(repr(n) for n in names())
        raise ValidationError(
            f"backend must be one of 'auto', {available}, got {name!r}"
        ) from None


def create(name: str, correlation, **options) -> GaussianSource:
    """Shorthand for ``get(name).create(correlation, **options)``."""
    return get(name).create(correlation, **options)


def resolve(
    backend: BackendArg,
    correlation,
    *,
    conditional: bool = False,
    chunked: bool = False,
    metrics=None,
    **options,
) -> GaussianSource:
    """Resolve a backend argument to a constructed :class:`GaussianSource`.

    Parameters
    ----------
    backend:
        ``"auto"``, a registered backend name, or an already-built
        :class:`~repro.processes.source.GaussianSource` (returned as-is
        after capability validation).
    correlation:
        Correlation model, explicit autocovariance, or Hurst exponent
        handed to the backend factory (ignored when ``backend`` is
        already a source instance).
    conditional:
        Require conditional stepwise generation.  Validated here, at
        construction: a backend without the capability raises
        :class:`~repro.exceptions.ValidationError` before any
        simulation work starts.
    chunked:
        Require chunk-stitched generation (the ``chunk_frames=``
        pipeline of :mod:`repro.processes.chunked`).  Validated at
        construction like ``conditional``; the ``auto`` policy is
        unaffected because both of its picks support chunking.
    metrics:
        Optional :class:`~repro.observability.RunContext` (or
        registry); records ``registry.resolutions`` counters labelled
        by resolved backend name and, for ``"auto"``, the
        ``registry.auto_policy`` decision.  Consumed here — never
        forwarded to the factory.
    options:
        Extra keyword arguments for the backend factory (e.g.
        ``coeff_table=`` or ``block_size=`` for ``hosking``,
        ``spectral_table=`` / ``spectrum_mode=`` for ``davies_harte``).
    """
    ctx = ensure_context(metrics)
    if isinstance(backend, GaussianSource):
        if conditional and not backend.capabilities.conditional:
            raise ValidationError(_conditional_error(backend.name))
        if chunked and not backend.capabilities.chunked:
            raise ValidationError(_chunked_error(backend.name))
        ctx.inc(
            "registry.resolutions", backend=backend.name, kind="instance"
        )
        return backend
    key = _normalize(backend)
    if key == "auto":
        key = "hosking" if conditional else "davies_harte"
        ctx.inc(
            "registry.auto_policy",
            chosen=key,
            conditional=str(bool(conditional)).lower(),
        )
    spec = get(key)
    # Capability check BEFORE the factory runs: an incapable backend
    # must fail with this error, not with whatever the factory makes of
    # options (e.g. coeff_table=) it does not understand.
    if conditional and not spec.conditional:
        raise ValidationError(_conditional_error(spec.name))
    if chunked and not spec.chunked:
        raise ValidationError(_chunked_error(spec.name))
    ctx.inc("registry.resolutions", backend=spec.name, kind="name")
    return spec.create(correlation, **options)


def _conditional_error(name: str) -> str:
    supported = ", ".join(repr(n) for n in names() if get(n).conditional)
    return (
        f"backend {name!r} does not support conditional stepwise "
        f"generation (required here); choose one of {supported}"
    )


def _chunked_error(name: str) -> str:
    supported = ", ".join(repr(n) for n in names() if get(n).chunked)
    return (
        f"backend {name!r} does not support chunk-stitched generation "
        f"(chunk_frames= requires it); choose one of {supported}"
    )


def merge_backend_args(
    method: Union[str, None], backend: Union[BackendArg, None]
) -> BackendArg:
    """Merge a legacy ``method=`` alias with the ``backend=`` argument.

    The §3.2/§3.3 models historically selected generators with
    ``method="hosking"`` / ``method="davies-harte"``; ``backend=`` is
    the registry-wide replacement.  Exactly one may be given; with
    neither, the ``auto`` policy applies.
    """
    if method is not None and backend is not None:
        raise ValidationError(
            "pass either method= (legacy alias) or backend=, not both "
            f"(got method={method!r}, backend={backend!r})"
        )
    if backend is not None:
        return backend
    if method is not None:
        return method
    return "auto"


# ---------------------------------------------------------------------
# Built-in backends
# ---------------------------------------------------------------------

register(BackendSpec(
    name="hosking",
    factory=HoskingSource,
    capabilities=HoskingSource.capabilities,
    summary=(
        "exact O(n^2) conditional-Gaussian recursion (paper eq. 1-6); "
        "the only conditional-stepping backend; block_size= routes "
        "through the blocked BLAS-3 kernel (block_size=1 = exact bypass)"
    ),
))
register(BackendSpec(
    name="davies_harte",
    factory=DaviesHarteSource,
    capabilities=DaviesHarteSource.capabilities,
    summary=(
        "exact O(n log n) circulant embedding with shared spectral "
        "cache; default for unconditional fixed-length paths; "
        "spectrum_mode= selects the real-FFT half-spectrum synthesis "
        "('real', default) or the legacy full-FFT path ('full')"
    ),
))
register(BackendSpec(
    name="fgn",
    factory=FGNSource,
    capabilities=FGNSource.capabilities,
    summary="exact fractional Gaussian noise keyed by Hurst exponent",
))
register(BackendSpec(
    name="farima",
    factory=FARIMASource,
    capabilities=FARIMASource.capabilities,
    summary="exact FARIMA(0, d, 0) with d = H - 1/2",
))
register(BackendSpec(
    name="rmd",
    factory=RMDSource,
    capabilities=RMDSource.capabilities,
    summary="O(n) random midpoint displacement (approximate fGn)",
))
register(BackendSpec(
    name="mg_infinity",
    factory=MGInfinitySource,
    capabilities=MGInfinitySource.capabilities,
    summary=(
        "standardized M/G/infinity session counts "
        "(asymptotically LRD, approximate)"
    ),
))
