"""Fractional Gaussian noise (FGN) helpers.

FGN is the increment process of fractional Brownian motion and the
"exactly self-similar" member of the paper's model family (§2).  This
module wraps the correlation model with convenience generators and the
FGN/fBm conversion used in examples and tests.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import check_1d_array, check_choice, check_hurst, check_positive_int
from ..stats.random import RandomState
from .correlation import FGNCorrelation
from .davies_harte import SpectralTableArg, davies_harte_generate
from .hosking import hosking_generate

__all__ = ["fgn_acvf", "fgn_generate", "fbm_from_fgn"]


def fgn_acvf(hurst: float, n: int) -> np.ndarray:
    """Return the exact FGN autocovariance ``r(0) .. r(n-1)``."""
    check_hurst(hurst)
    n = check_positive_int(n, "n")
    return FGNCorrelation(hurst).acvf(n)


def fgn_generate(
    hurst: float,
    n: int,
    *,
    size: Optional[int] = None,
    mean: float = 0.0,
    method: str = "davies-harte",
    random_state: RandomState = None,
    spectral_table: SpectralTableArg = None,
) -> np.ndarray:
    """Generate fractional Gaussian noise with Hurst parameter ``hurst``.

    ``method`` selects ``"davies-harte"`` (O(n log n), default) or
    ``"hosking"`` (O(n^2) exact sequential generation, eq. 1-6 of the
    paper).  Both are exact for FGN.  ``spectral_table`` controls the
    Davies-Harte spectral cache (``None`` shared, ``False`` recompute,
    or an explicit table); it is ignored by the Hosking method.
    """
    check_choice(method, "method", ("davies-harte", "hosking"))
    correlation = FGNCorrelation(hurst)
    if method == "davies-harte":
        return davies_harte_generate(
            correlation,
            n,
            size=size,
            mean=mean,
            random_state=random_state,
            on_negative_eigenvalues="raise",
            spectral_table=spectral_table,
        )
    return hosking_generate(
        correlation, n, size=size, mean=mean, random_state=random_state
    )


def fbm_from_fgn(increments: Sequence[float]) -> np.ndarray:
    """Return the fractional Brownian motion path ``B_0 = 0, B_k = sum``.

    The output has one more sample than the input.
    """
    inc = check_1d_array(increments, "increments", allow_empty=True)
    path = np.empty(inc.size + 1, dtype=float)
    path[0] = 0.0
    np.cumsum(inc, out=path[1:])
    return path
