"""Gaussian and self-similar stochastic-process substrate.

This subpackage implements everything the paper's pipeline needs to
synthesize correlated Gaussian *background* processes:

- :mod:`repro.processes.correlation` — the correlation-model hierarchy,
  including the paper's composite SRD+LRD structure (eq. 10-13), exact
  fractional Gaussian noise, FARIMA(0, d, 0), and the lag-rescaled model
  used by the composite MPEG model (eq. 15).
- :mod:`repro.processes.hosking` — Hosking's exact conditional-Gaussian
  generator (eq. 1-6), batch-vectorised across replications, plus a
  stateful incremental variant used by importance sampling.
- :mod:`repro.processes.davies_harte` — the O(n log n) circulant
  embedding generator for long traces.
- :mod:`repro.processes.spectral_cache` — shared ACVF/eigenvalue tables
  for the Davies-Harte path (the unconditional counterpart of
  :mod:`repro.processes.coeff_table`).
- :mod:`repro.processes.farima` — FARIMA(p, d, q) generation via
  fractional differencing.
- :mod:`repro.processes.fgn` — fractional Gaussian noise helpers.
- :mod:`repro.processes.source` — the :class:`GaussianSource` protocol
  unifying all six generators behind one swappable interface.
- :mod:`repro.processes.registry` — the string-keyed backend registry
  with capability flags and the ``auto`` selection policy.
- :mod:`repro.processes.chunked` — the scene-chunked, process-parallel
  generation pipeline with conditional Gaussian-bridge stitching.
"""

from .correlation import (
    CompositeCorrelation,
    CorrelationModel,
    ExponentialCorrelation,
    ExponentialMixtureCorrelation,
    FARIMACorrelation,
    FGNCorrelation,
    MixtureCorrelation,
    PowerLawCorrelation,
    RescaledCorrelation,
    TabulatedCorrelation,
    WhiteNoiseCorrelation,
)
from .coeff_table import (
    CoefficientTable,
    clear_coefficient_cache,
    coefficient_cache_info,
    get_coefficient_table,
    set_coefficient_cache_limits,
)
from .davies_harte import circulant_eigenvalues, davies_harte_generate
from .spectral_cache import (
    SpectralTable,
    clear_spectral_cache,
    get_spectral_table,
    set_spectral_cache_limits,
    spectral_cache_info,
)
from .farima import (
    farima_generate,
    fractional_diff_weights,
    fractional_integrate,
)
from .fgn import fbm_from_fgn, fgn_acvf, fgn_generate
from .forecast import GaussianForecast, conditional_forecast
from .hosking import HoskingProcess, hosking_generate
from .mg_infinity import MGInfinityConfig, mg_infinity_generate
from .partial_corr import DurbinLevinson, partial_autocorrelations
from .rmd import rmd_fbm, rmd_generate
from .chunked import (
    DEFAULT_STITCH_WINDOW,
    Chunk,
    ChunkPlan,
    ChunkReport,
    ChunkedGenerator,
    bridge_matrix,
    chunked_generate,
    plan_chunks,
    stitched_covariance,
)
from .source import (
    DaviesHarteSource,
    FARIMASource,
    FGNSource,
    GaussianSource,
    HoskingSource,
    MGInfinitySource,
    RMDSource,
    SourceCapabilities,
)
from . import registry

__all__ = [
    "CorrelationModel",
    "FGNCorrelation",
    "ExponentialCorrelation",
    "ExponentialMixtureCorrelation",
    "PowerLawCorrelation",
    "CompositeCorrelation",
    "FARIMACorrelation",
    "RescaledCorrelation",
    "MixtureCorrelation",
    "TabulatedCorrelation",
    "WhiteNoiseCorrelation",
    "DurbinLevinson",
    "partial_autocorrelations",
    "CoefficientTable",
    "get_coefficient_table",
    "clear_coefficient_cache",
    "coefficient_cache_info",
    "set_coefficient_cache_limits",
    "HoskingProcess",
    "hosking_generate",
    "davies_harte_generate",
    "circulant_eigenvalues",
    "SpectralTable",
    "get_spectral_table",
    "clear_spectral_cache",
    "spectral_cache_info",
    "set_spectral_cache_limits",
    "farima_generate",
    "fractional_diff_weights",
    "fractional_integrate",
    "fgn_acvf",
    "fgn_generate",
    "fbm_from_fgn",
    "GaussianForecast",
    "conditional_forecast",
    "rmd_generate",
    "rmd_fbm",
    "MGInfinityConfig",
    "mg_infinity_generate",
    "GaussianSource",
    "SourceCapabilities",
    "HoskingSource",
    "DaviesHarteSource",
    "FGNSource",
    "FARIMASource",
    "RMDSource",
    "MGInfinitySource",
    "registry",
    "Chunk",
    "ChunkPlan",
    "ChunkReport",
    "ChunkedGenerator",
    "DEFAULT_STITCH_WINDOW",
    "bridge_matrix",
    "chunked_generate",
    "plan_chunks",
    "stitched_covariance",
]
