"""Hosking's exact generator for correlated Gaussian processes.

This is the generation engine of the paper (§2, eq. 1-6): given the
autocorrelation ``r(k)`` of a zero-mean Gaussian process, samples are
drawn sequentially from the exact conditional distributions

.. math::

    X_k \\mid x_{k-1}, ..., x_0 \\sim
        N\\Big(\\sum_{j=1}^{k} \\phi_{kj} x_{k-j},\\; v_k\\Big)

with coefficients produced by the Durbin-Levinson recursion.  The
method is *exact* for any positive-definite ``r`` but costs O(n^2)
per realisation, which the paper notes is computationally demanding --
and which motivates both its importance-sampling scheme and our
batch-vectorised implementation.

Two interfaces are provided:

- :func:`hosking_generate` — batch generation of ``size`` independent
  replications sharing one Durbin-Levinson pass.  The coefficient
  recursion runs once regardless of the batch size, and each step's
  conditional means for all replications are computed with a single
  matrix-vector product, so generating 1000 replications is far
  cheaper than 1000 single runs (see the ablation bench).
- :class:`HoskingProcess` — a stateful, step-at-a-time generator that
  additionally exposes the per-step conditional means, variances and
  coefficient sums needed by the importance-sampling likelihood
  ratios of Appendix B.

Both interfaces read their Durbin-Levinson coefficients from a shared
:class:`~repro.processes.coeff_table.CoefficientTable` by default, so
repeated runs over the same background model — the buffer sweeps and
twist scans of Figs. 14-17 — pay for the recursion once.  Pass
``coeff_table=False`` to force the original incremental recursion
(useful for ablations); the two paths are bit-identical given shared
innovations because the table stores exactly the recursion's outputs.

Both interfaces also accept ``block_size=B`` to route generation
through the blocked BLAS-3 kernel of
:mod:`~repro.processes.hosking_blocked`, which computes each block's
old-history contribution to all ``B`` conditional means with a single
GEMM.  ``block_size=1`` (the default) is the documented exact bypass:
it runs the untouched per-step loops below and reproduces historical
outputs bit for bit.  Blocked outputs (``B > 1``) match to floating-
point reordering only — ``allclose`` at ``rtol <= 1e-10`` — because
splitting a conditional mean into an old-history partial sum and a
within-block partial sum changes the accumulation order.  A note on
why the bypass must keep the *exact* legacy formulation: numpy
evaluates ``x[:, k-1::-1][:, :k] @ phi`` (a negative-strided view)
with its internal pairwise-summation loop rather than BLAS, and every
alternative layout we measured — a contiguous copy, a positive-strided
slice of a reversed buffer, ``einsum`` — changes the reduction order
and therefore the bits.  So the per-step loops below intentionally
re-materialize the reversed view each step; the contiguously
maintained reversed buffer lives in the blocked kernel where the
contract is ``allclose``, not bit-identity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import GenerationError, ValidationError
from ..stats.random import RandomState, make_rng
from .coeff_table import (
    CoefficientTable,
    get_coefficient_table,
    resolve_acvf as _resolve_acvf,
)
from .correlation import CorrelationModel
from .hosking_blocked import (
    BlockRows,
    BlockSizeArg,
    block_width,
    gemm_fraction,
    generate_blocked,
    incremental_block_rows,
    is_block_start,
    resolve_block_size,
    table_block_rows,
)
from .partial_corr import DurbinLevinson

__all__ = ["hosking_generate", "HoskingProcess", "HoskingStep"]


def _metrics_enabled(metrics) -> bool:
    """True when ``metrics`` is a live duck-typed sink (inc/set)."""
    return metrics is not None and getattr(metrics, "enabled", True)

#: Type of the ``coeff_table`` argument shared by both interfaces:
#: ``None`` (or ``True``) uses the shared fingerprint cache, an explicit
#: :class:`CoefficientTable` is used as-is (the caller vouches that it
#: was built from the same autocovariance), and ``False`` disables
#: tables entirely in favour of the incremental recursion.
CoeffTableArg = Union[None, bool, CoefficientTable]


def _resolve_table(
    correlation: Union[CorrelationModel, Sequence[float]],
    n: int,
    coeff_table: CoeffTableArg,
) -> CoefficientTable:
    """Return the coefficient table to drive an ``n``-sample run."""
    if coeff_table is None or coeff_table is True:
        return get_coefficient_table(correlation, n)
    if not isinstance(coeff_table, CoefficientTable):
        raise ValidationError(
            "coeff_table must be a CoefficientTable, None (shared cache) "
            f"or False (incremental recursion), got {coeff_table!r}"
        )
    if coeff_table.horizon < n:
        raise ValidationError(
            f"coeff_table of horizon {coeff_table.horizon} cannot "
            f"generate {n} samples"
        )
    return coeff_table


def hosking_generate(
    correlation: Union[CorrelationModel, Sequence[float]],
    n: int,
    *,
    size: Optional[int] = None,
    mean: float = 0.0,
    random_state: RandomState = None,
    innovations: Optional[np.ndarray] = None,
    coeff_table: CoeffTableArg = None,
    block_size: BlockSizeArg = None,
    metrics=None,
) -> np.ndarray:
    """Generate exact Gaussian sample paths with correlation ``r(k)``.

    Parameters
    ----------
    correlation:
        A :class:`~repro.processes.correlation.CorrelationModel` or an
        explicit autocovariance sequence ``r(0), r(1), ...`` with
        ``r(0)`` equal to the desired variance (1 for the paper's
        background processes).
    n:
        Length of each sample path.
    size:
        Number of independent replications.  ``None`` returns a 1-D
        array of length ``n``; an integer returns shape ``(size, n)``.
    mean:
        Process mean (added after generation; the conditional recursion
        operates on the zero-mean process).
    random_state:
        Seed or generator for the innovations.
    innovations:
        Optional pre-drawn standard-normal innovations of shape
        ``(size, n)`` — or exactly ``(n,)`` when ``size is None`` —
        useful for common-random-number experiments and tests.  The
        declared shape is validated strictly; arrays that merely have
        the right number of elements are rejected.
    coeff_table:
        ``None`` (default) reads Durbin-Levinson coefficients from the
        shared fingerprint cache so repeated runs over the same model
        skip the recursion; an explicit
        :class:`~repro.processes.coeff_table.CoefficientTable` is used
        directly; ``False`` runs the original incremental recursion.
    block_size:
        ``None`` or ``1`` (default) runs the exact per-step loop —
        bit-identical to historical outputs.  ``B > 1`` routes through
        the blocked BLAS-3 kernel
        (:func:`~repro.processes.hosking_blocked.generate_blocked`):
        same conditional law, outputs ``allclose`` at
        ``rtol <= 1e-10`` to the per-step loop but not bit-identical
        (different floating-point accumulation order).
    metrics:
        Optional duck-typed metrics sink (``inc``/``set``, e.g. a
        :class:`repro.observability.RunContext`).  Records the
        ``hosking.block_size`` / ``hosking.gemm_fraction`` gauges and
        the ``hosking.blocks`` counter.

    Returns
    -------
    numpy.ndarray
        Sample paths, shape ``(n,)`` or ``(size, n)``.
    """
    n = check_positive_int(n, "n")
    flat = size is None
    batch = 1 if flat else check_positive_int(size, "size")
    resolved_block = resolve_block_size(block_size)

    if innovations is None:
        rng = make_rng(random_state)
        z = rng.standard_normal((batch, n))
    else:
        z = np.asarray(innovations, dtype=float)
        expected = (n,) if flat else (batch, n)
        if z.shape != expected:
            raise ValidationError(
                f"innovations must have shape {expected}, got {z.shape}"
            )
        if flat:
            z = z.reshape(1, n)

    if _metrics_enabled(metrics):
        metrics.set("hosking.block_size", resolved_block)
        metrics.set(
            "hosking.gemm_fraction",
            gemm_fraction(n, resolved_block) if resolved_block > 1 else 0.0,
        )
        if resolved_block > 1 and n > 1:
            # First block is [1, B); the rest start at multiples of B
            # below n, so the count is 1 + floor((n-1)/B).
            metrics.inc(
                "hosking.blocks", 1 + (n - 1) // resolved_block
            )

    if resolved_block > 1:
        if coeff_table is False:
            state = DurbinLevinson(_resolve_acvf(correlation, n))
            variance0 = state.variance

            def block_rows_for(k0: int, width: int) -> BlockRows:
                return incremental_block_rows(state, k0, width)

        else:
            table = _resolve_table(correlation, n, coeff_table)
            variance0 = table.variance(0)

            def block_rows_for(k0: int, width: int) -> BlockRows:
                return table_block_rows(table, k0, width)

        x = generate_blocked(z, n, resolved_block, block_rows_for, variance0)
        x += mean
        return x[0] if flat else x

    # block_size == 1: the exact bypass.  These two loops are kept
    # byte-for-byte as the historical implementation (including the
    # per-step reversed-view re-materialization) — see the module
    # docstring for why any layout change here would alter the bits.
    x = np.empty((batch, n), dtype=float)
    if coeff_table is False:
        acvf = _resolve_acvf(correlation, n)
        state = DurbinLevinson(acvf)
        x[:, 0] = np.sqrt(state.variance) * z[:, 0]
        for k in range(1, n):
            phi, variance = state.advance()
            # m_k = sum_j phi_kj x_{k-j}  for every replication at once.
            history = x[:, k - 1 :: -1][:, :k]
            x[:, k] = history @ phi + np.sqrt(variance) * z[:, k]
    else:
        table = _resolve_table(correlation, n, coeff_table)
        packed = table.packed_rows(n)
        sqrt_variances = table.sqrt_variances(n)
        x[:, 0] = sqrt_variances[0] * z[:, 0]
        offset = 0
        for k in range(1, n):
            phi = packed[offset : offset + k]
            offset += k
            history = x[:, k - 1 :: -1][:, :k]
            x[:, k] = history @ phi + sqrt_variances[k] * z[:, k]
    x += mean
    return x[0] if flat else x


@dataclass(frozen=True)
class HoskingStep:
    """One step of an incremental Hosking generation.

    Attributes
    ----------
    values:
        The newly generated samples, shape ``(size,)``.  Entries of
        replications retired via :meth:`HoskingProcess.retire` are 0.
    cond_mean:
        Conditional means ``m_k`` given each replication's history
        (0 for retired replications).
    cond_variance:
        Conditional variance ``v_k`` (shared across replications).
    phi_sum:
        ``sum_j phi_kj``; mean twisting by ``m*`` shifts the conditional
        mean under the original law by ``m* * phi_sum`` (Appendix B).
    innovations:
        The standard-normal draws used, shape ``(size,)``.  Drawn for
        every replication — retired or not — so the stream stays
        aligned regardless of retirement decisions.
    """

    values: np.ndarray
    cond_mean: np.ndarray
    cond_variance: float
    phi_sum: float
    innovations: np.ndarray


class HoskingProcess:
    """Stateful step-at-a-time Hosking generator for ``size`` replications.

    The importance-sampling simulator (Appendix B) needs, at every time
    step, the conditional mean and variance of the background process
    so it can compute likelihood ratios; and it wants to *stop early*
    on replications whose buffer already overflowed.  This class keeps
    the per-replication history, reads Durbin-Levinson coefficients
    from a shared table (or advances its own recursion), and yields one
    :class:`HoskingStep` per call to :meth:`step`.  Replications that
    no longer matter can be :meth:`retired <retire>`, shrinking the
    conditional-mean product to the active rows only.

    Parameters
    ----------
    correlation:
        Correlation model or explicit autocovariance sequence covering
        at least ``horizon`` lags.
    horizon:
        Maximum number of steps that will be generated.
    size:
        Number of parallel replications.
    random_state:
        Seed or generator for the innovations.
    coeff_table:
        ``None`` (default) uses the shared coefficient-table cache; an
        explicit :class:`~repro.processes.coeff_table.CoefficientTable`
        is used directly; ``False`` keeps a private incremental
        Durbin-Levinson recursion (the pre-table behaviour).
    block_size:
        ``None`` or ``1`` (default) steps with the exact legacy
        per-step products (bit-identical to historical outputs).
        ``B > 1`` precomputes, at every block boundary, the old-history
        contribution to the next ``B`` conditional means with one GEMM
        over a contiguously maintained reversed buffer; each
        :meth:`step` then only adds the short within-block tail.
        Retirement compacts at block boundaries: the GEMM gathers the
        rows active when the block starts (a *compaction event*), and
        rows retired mid-block simply stop being read.  Innovations
        are drawn for every replication each step in both modes, so
        the random stream is invariant to ``block_size`` and
        retirement alike.  Blocked conditional means are ``allclose``
        (``rtol <= 1e-10``) to the per-step ones, not bit-identical.
    metrics:
        Optional duck-typed metrics sink (``inc``/``set``).  Records
        ``hosking.block_size`` / ``hosking.gemm_fraction`` gauges and
        ``hosking.blocks`` / ``hosking.compaction_events`` counters.
    """

    def __init__(
        self,
        correlation: Union[CorrelationModel, Sequence[float]],
        horizon: int,
        *,
        size: int = 1,
        random_state: RandomState = None,
        coeff_table: CoeffTableArg = None,
        block_size: BlockSizeArg = None,
        metrics=None,
    ) -> None:
        self.horizon = check_positive_int(horizon, "horizon")
        self.size = check_positive_int(size, "size")
        if coeff_table is False:
            self._acvf = _resolve_acvf(correlation, self.horizon)
            self._table: Optional[CoefficientTable] = None
            self._state: Optional[DurbinLevinson] = DurbinLevinson(
                self._acvf
            )
        else:
            self._table = _resolve_table(
                correlation, self.horizon, coeff_table
            )
            self._acvf = np.asarray(self._table.acvf[: self.horizon])
            self._state = None
        self._rng = make_rng(random_state)
        # Zero-initialised so retired replications read as 0.0 past
        # their retirement step instead of uninitialised memory.
        self._history = np.zeros((self.size, self.horizon), dtype=float)
        self._step = 0
        self._active = np.ones(self.size, dtype=bool)
        # None encodes the everyone-active fast path (no row gathering).
        self._active_indices: Optional[np.ndarray] = None
        self._block_size = resolve_block_size(block_size)
        self._metrics = metrics if _metrics_enabled(metrics) else None
        if self._block_size > 1:
            # Reversed companion of _history: _rev[:, H-1-j] = x_j, so
            # the block GEMM and within-block tails read contiguous
            # positive-strided slices instead of re-materializing a
            # reversed view per step.
            self._rev = np.zeros((self.size, self.horizon), dtype=float)
        else:
            self._rev = None
        self._block: Optional[BlockRows] = None
        self._block_mold: Optional[np.ndarray] = None
        if self._metrics is not None:
            self._metrics.set("hosking.block_size", self._block_size)
            self._metrics.set(
                "hosking.gemm_fraction",
                gemm_fraction(self.horizon, self._block_size)
                if self._block_size > 1
                else 0.0,
            )

    @property
    def step_index(self) -> int:
        """Number of samples generated so far per replication."""
        return self._step

    @property
    def history(self) -> np.ndarray:
        """Generated samples so far, shape ``(size, step_index)``.

        Rows of retired replications are frozen: entries past the
        retirement step are 0.
        """
        return self._history[:, : self._step].copy()

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean mask of replications still being generated (a copy)."""
        return self._active.copy()

    @property
    def active_count(self) -> int:
        """Number of replications still being generated."""
        return int(self._active.sum())

    def retire(self, replications: np.ndarray) -> int:
        """Stop generating for the given replications; return active count.

        ``replications`` is either a boolean mask of shape ``(size,)``
        or an array of replication indices.  Retired rows drop out of
        the per-step conditional-mean product — the dominant cost of a
        step — so batches whose replications resolve early (e.g. they
        already crossed the buffer in an importance-sampling run) stop
        paying O(k) work per retired row.  Innovations are still drawn
        for every replication each step, so the random stream and
        therefore every *active* replication's path are bit-for-bit
        unchanged by retirement.  Retirement is permanent.
        """
        mask = np.asarray(replications)
        if mask.dtype == bool:
            if mask.shape != (self.size,):
                raise ValidationError(
                    f"boolean retire mask must have shape ({self.size},), "
                    f"got {mask.shape}"
                )
            self._active &= ~mask
        elif np.issubdtype(mask.dtype, np.integer):
            indices = mask.ravel()
            if indices.size and (
                indices.min() < -self.size or indices.max() >= self.size
            ):
                raise ValidationError(
                    f"retire indices out of range for size {self.size}"
                )
            self._active[indices] = False
        else:
            raise ValidationError(
                "retire expects a boolean mask or integer indices, got "
                f"dtype {mask.dtype}"
            )
        remaining = np.flatnonzero(self._active)
        self._active_indices = (
            None if remaining.size == self.size else remaining
        )
        return int(remaining.size)

    def _coefficients(self, k: int):
        """Return ``(phi, variance, sqrt_variance, phi_sum)`` for step k."""
        if self._table is not None:
            if k == 0:
                return (
                    None,
                    self._table.variance(0),
                    self._table.sqrt_variance(0),
                    0.0,
                )
            return (
                self._table.phi_row(k),
                self._table.variance(k),
                self._table.sqrt_variance(k),
                self._table.phi_sum(k),
            )
        if k == 0:
            variance = self._state.variance
            return None, variance, np.sqrt(variance), 0.0
        phi, variance = self._state.advance()
        return phi, variance, np.sqrt(variance), self._state.phi_sum

    def _begin_block(self, k0: int) -> None:
        """Open the block starting at step ``k0``: coefficients + GEMM.

        Gathers the rows active *now* (block-boundary retirement
        compaction), runs the old-history GEMM over them, and scatters
        the result into a full-size ``(size, width)`` buffer so
        mid-block retirement — which only ever shrinks the active set —
        keeps plain row indexing valid for the rest of the block.
        """
        width = block_width(k0, self._block_size, self.horizon)
        if self._table is not None:
            block = table_block_rows(self._table, k0, width)
        else:
            block = incremental_block_rows(self._state, k0, width)
        self._block = block
        mold = np.zeros((self.size, width), dtype=float)
        idx = self._active_indices
        tail = self._rev[:, self.horizon - k0 :]
        if idx is None:
            mold[:] = tail @ block.phi_old.T
        else:
            if self._metrics is not None:
                self._metrics.inc("hosking.compaction_events")
            if idx.size:
                mold[idx] = tail[idx] @ block.phi_old.T
        self._block_mold = mold
        if self._metrics is not None:
            self._metrics.inc("hosking.blocks")

    def _blocked_step(self, k: int, z: np.ndarray) -> HoskingStep:
        """One step of the ``block_size > 1`` engine."""
        horizon = self.horizon
        idx = self._active_indices
        if k == 0:
            variance = (
                self._table.variance(0)
                if self._table is not None
                else self._state.variance
            )
            sqrt_variance = np.sqrt(variance)
            cond_mean = np.zeros(self.size)
            if idx is None:
                values = sqrt_variance * z
                self._history[:, 0] = values
            else:
                values = np.zeros(self.size)
                if idx.size:
                    values[idx] = sqrt_variance * z[idx]
                    self._history[idx, 0] = values[idx]
            self._rev[:, horizon - 1] = values
            self._step = 1
            return HoskingStep(
                values=values,
                cond_mean=cond_mean,
                cond_variance=float(variance),
                phi_sum=0.0,
                innovations=z,
            )
        if is_block_start(k, self._block_size):
            self._begin_block(k)
        block = self._block
        i = k - block.k0
        variance = block.variances[i]
        sqrt_variance = block.sqrt_variances[i]
        phi_sum = block.phi_sums[i]
        row = block.rows[i]
        # Within-block tail operand: the samples generated since the
        # block opened, reversed — rev columns [H-k, H-k0).
        lo, hi = horizon - k, horizon - block.k0
        if idx is None:
            cond_mean = self._block_mold[:, i].copy()
            if i:
                cond_mean += self._rev[:, lo:hi] @ row[:i]
            values = cond_mean + sqrt_variance * z
            self._history[:, k] = values
        else:
            cond_mean = np.zeros(self.size)
            values = np.zeros(self.size)
            if idx.size:
                active_mean = self._block_mold[idx, i]
                if i:
                    active_mean = (
                        active_mean + self._rev[idx, lo:hi] @ row[:i]
                    )
                cond_mean[idx] = active_mean
                active_values = active_mean + sqrt_variance * z[idx]
                values[idx] = active_values
                self._history[idx, k] = active_values
        self._rev[:, horizon - k - 1] = values
        self._step = k + 1
        return HoskingStep(
            values=values,
            cond_mean=cond_mean,
            cond_variance=float(variance),
            phi_sum=float(phi_sum),
            innovations=z,
        )

    def step(self) -> HoskingStep:
        """Generate the next sample for every active replication."""
        if self._step >= self.horizon:
            raise GenerationError(
                f"horizon of {self.horizon} steps exhausted"
            )
        k = self._step
        z = self._rng.standard_normal(self.size)
        if self._block_size > 1:
            return self._blocked_step(k, z)
        phi, variance, sqrt_variance, phi_sum = self._coefficients(k)
        idx = self._active_indices
        if idx is None:
            if k == 0:
                cond_mean = np.zeros(self.size)
                values = sqrt_variance * z
            else:
                history = self._history[:, k - 1 :: -1][:, :k]
                cond_mean = history @ phi
                values = cond_mean + sqrt_variance * z
            self._history[:, k] = values
        else:
            cond_mean = np.zeros(self.size)
            values = np.zeros(self.size)
            if idx.size:
                if k == 0:
                    active_values = sqrt_variance * z[idx]
                else:
                    # Gather active rows, then the same reversed-slice
                    # product as the full-batch path (same dot order,
                    # so active rows stay bit-identical).
                    history = self._history[idx, :k][:, ::-1]
                    active_mean = history @ phi
                    cond_mean[idx] = active_mean
                    active_values = active_mean + sqrt_variance * z[idx]
                values[idx] = active_values
                self._history[idx, k] = active_values
        self._step += 1
        return HoskingStep(
            values=values,
            cond_mean=cond_mean,
            cond_variance=float(variance),
            phi_sum=phi_sum,
            innovations=z,
        )

    def run(self, steps: Optional[int] = None) -> np.ndarray:
        """Generate ``steps`` samples (default: to the horizon).

        Returns the full history so far, shape ``(size, step_index)``.
        With ``steps=None`` at an already-exhausted horizon this simply
        returns the completed history; an explicit ``steps`` that
        exceeds the remaining horizon raises
        :class:`~repro.exceptions.GenerationError`.
        """
        remaining = self.horizon - self._step
        if steps is None:
            if remaining == 0:
                return self.history
            steps = remaining
        steps = check_positive_int(steps, "steps")
        if steps > remaining:
            raise GenerationError(
                f"requested {steps} steps but only {remaining} remain"
            )
        for _ in range(steps):
            self.step()
        return self.history
