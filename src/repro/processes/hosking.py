"""Hosking's exact generator for correlated Gaussian processes.

This is the generation engine of the paper (§2, eq. 1-6): given the
autocorrelation ``r(k)`` of a zero-mean Gaussian process, samples are
drawn sequentially from the exact conditional distributions

.. math::

    X_k \\mid x_{k-1}, ..., x_0 \\sim
        N\\Big(\\sum_{j=1}^{k} \\phi_{kj} x_{k-j},\\; v_k\\Big)

with coefficients produced by the Durbin-Levinson recursion.  The
method is *exact* for any positive-definite ``r`` but costs O(n^2)
per realisation, which the paper notes is computationally demanding --
and which motivates both its importance-sampling scheme and our
batch-vectorised implementation.

Two interfaces are provided:

- :func:`hosking_generate` — batch generation of ``size`` independent
  replications sharing one Durbin-Levinson pass.  The coefficient
  recursion runs once regardless of the batch size, and each step's
  conditional means for all replications are computed with a single
  matrix-vector product, so generating 1000 replications is far
  cheaper than 1000 single runs (see the ablation bench).
- :class:`HoskingProcess` — a stateful, step-at-a-time generator that
  additionally exposes the per-step conditional means, variances and
  coefficient sums needed by the importance-sampling likelihood
  ratios of Appendix B.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import GenerationError, ValidationError
from ..stats.random import RandomState, make_rng
from .correlation import CorrelationModel
from .partial_corr import DurbinLevinson

__all__ = ["hosking_generate", "HoskingProcess", "HoskingStep"]


def _resolve_acvf(
    correlation: Union[CorrelationModel, Sequence[float]], n: int
) -> np.ndarray:
    """Return ``r(0..n-1)`` from a model or an explicit sequence."""
    if isinstance(correlation, CorrelationModel):
        return correlation.acvf(n)
    acvf = np.asarray(correlation, dtype=float)
    if acvf.ndim != 1:
        raise ValidationError(
            f"acvf must be one-dimensional, got shape {acvf.shape}"
        )
    if acvf.size < n:
        raise ValidationError(
            f"acvf of length {acvf.size} cannot generate {n} samples"
        )
    return acvf[:n]


def hosking_generate(
    correlation: Union[CorrelationModel, Sequence[float]],
    n: int,
    *,
    size: Optional[int] = None,
    mean: float = 0.0,
    random_state: RandomState = None,
    innovations: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Generate exact Gaussian sample paths with correlation ``r(k)``.

    Parameters
    ----------
    correlation:
        A :class:`~repro.processes.correlation.CorrelationModel` or an
        explicit autocovariance sequence ``r(0), r(1), ...`` with
        ``r(0)`` equal to the desired variance (1 for the paper's
        background processes).
    n:
        Length of each sample path.
    size:
        Number of independent replications.  ``None`` returns a 1-D
        array of length ``n``; an integer returns shape ``(size, n)``.
    mean:
        Process mean (added after generation; the conditional recursion
        operates on the zero-mean process).
    random_state:
        Seed or generator for the innovations.
    innovations:
        Optional pre-drawn standard-normal innovations of shape
        ``(size, n)`` (or ``(n,)`` when ``size is None``); useful for
        common-random-number experiments and tests.

    Returns
    -------
    numpy.ndarray
        Sample paths, shape ``(n,)`` or ``(size, n)``.
    """
    n = check_positive_int(n, "n")
    flat = size is None
    batch = 1 if flat else check_positive_int(size, "size")
    acvf = _resolve_acvf(correlation, n)

    if innovations is None:
        rng = make_rng(random_state)
        z = rng.standard_normal((batch, n))
    else:
        z = np.asarray(innovations, dtype=float)
        if flat:
            z = z.reshape(1, -1)
        if z.shape != (batch, n):
            raise ValidationError(
                f"innovations must have shape ({batch}, {n}), got {z.shape}"
            )

    x = np.empty((batch, n), dtype=float)
    state = DurbinLevinson(acvf)
    x[:, 0] = np.sqrt(state.variance) * z[:, 0]
    for k in range(1, n):
        phi, variance = state.advance()
        # m_k = sum_j phi_kj x_{k-j}  for every replication at once.
        history = x[:, k - 1 :: -1][:, :k]
        cond_mean = history @ phi
        x[:, k] = cond_mean + np.sqrt(variance) * z[:, k]
    x += mean
    return x[0] if flat else x


@dataclass(frozen=True)
class HoskingStep:
    """One step of an incremental Hosking generation.

    Attributes
    ----------
    values:
        The newly generated samples, shape ``(size,)``.
    cond_mean:
        Conditional means ``m_k`` given each replication's history.
    cond_variance:
        Conditional variance ``v_k`` (shared across replications).
    phi_sum:
        ``sum_j phi_kj``; mean twisting by ``m*`` shifts the conditional
        mean under the original law by ``m* * phi_sum`` (Appendix B).
    innovations:
        The standard-normal draws used, shape ``(size,)``.
    """

    values: np.ndarray
    cond_mean: np.ndarray
    cond_variance: float
    phi_sum: float
    innovations: np.ndarray


class HoskingProcess:
    """Stateful step-at-a-time Hosking generator for ``size`` replications.

    The importance-sampling simulator (Appendix B) needs, at every time
    step, the conditional mean and variance of the background process
    so it can compute likelihood ratios; and it wants to *stop early*
    on replications whose buffer already overflowed.  This class keeps
    the Durbin-Levinson state and the per-replication history and
    yields one :class:`HoskingStep` per call to :meth:`step`.

    Parameters
    ----------
    correlation:
        Correlation model or explicit autocovariance sequence covering
        at least ``horizon`` lags.
    horizon:
        Maximum number of steps that will be generated.
    size:
        Number of parallel replications.
    random_state:
        Seed or generator for the innovations.
    """

    def __init__(
        self,
        correlation: Union[CorrelationModel, Sequence[float]],
        horizon: int,
        *,
        size: int = 1,
        random_state: RandomState = None,
    ) -> None:
        self.horizon = check_positive_int(horizon, "horizon")
        self.size = check_positive_int(size, "size")
        self._acvf = _resolve_acvf(correlation, self.horizon)
        self._state = DurbinLevinson(self._acvf)
        self._rng = make_rng(random_state)
        self._history = np.empty((self.size, self.horizon), dtype=float)
        self._step = 0

    @property
    def step_index(self) -> int:
        """Number of samples generated so far per replication."""
        return self._step

    @property
    def history(self) -> np.ndarray:
        """Generated samples so far, shape ``(size, step_index)``."""
        return self._history[:, : self._step].copy()

    def step(self) -> HoskingStep:
        """Generate the next sample for every replication."""
        if self._step >= self.horizon:
            raise GenerationError(
                f"horizon of {self.horizon} steps exhausted"
            )
        k = self._step
        z = self._rng.standard_normal(self.size)
        if k == 0:
            variance = self._state.variance
            cond_mean = np.zeros(self.size)
            phi_sum = 0.0
        else:
            phi, variance = self._state.advance()
            history = self._history[:, k - 1 :: -1][:, :k]
            cond_mean = history @ phi
            phi_sum = self._state.phi_sum
        values = cond_mean + np.sqrt(variance) * z
        self._history[:, k] = values
        self._step += 1
        return HoskingStep(
            values=values,
            cond_mean=cond_mean,
            cond_variance=float(variance),
            phi_sum=phi_sum,
            innovations=z,
        )

    def run(self, steps: Optional[int] = None) -> np.ndarray:
        """Generate ``steps`` samples (default: to the horizon).

        Returns the full history so far, shape ``(size, step_index)``.
        """
        remaining = self.horizon - self._step
        if steps is None:
            steps = remaining
        steps = check_positive_int(steps, "steps")
        if steps > remaining:
            raise GenerationError(
                f"requested {steps} steps but only {remaining} remain"
            )
        for _ in range(steps):
            self.step()
        return self.history
