"""Hosking's exact generator for correlated Gaussian processes.

This is the generation engine of the paper (§2, eq. 1-6): given the
autocorrelation ``r(k)`` of a zero-mean Gaussian process, samples are
drawn sequentially from the exact conditional distributions

.. math::

    X_k \\mid x_{k-1}, ..., x_0 \\sim
        N\\Big(\\sum_{j=1}^{k} \\phi_{kj} x_{k-j},\\; v_k\\Big)

with coefficients produced by the Durbin-Levinson recursion.  The
method is *exact* for any positive-definite ``r`` but costs O(n^2)
per realisation, which the paper notes is computationally demanding --
and which motivates both its importance-sampling scheme and our
batch-vectorised implementation.

Two interfaces are provided:

- :func:`hosking_generate` — batch generation of ``size`` independent
  replications sharing one Durbin-Levinson pass.  The coefficient
  recursion runs once regardless of the batch size, and each step's
  conditional means for all replications are computed with a single
  matrix-vector product, so generating 1000 replications is far
  cheaper than 1000 single runs (see the ablation bench).
- :class:`HoskingProcess` — a stateful, step-at-a-time generator that
  additionally exposes the per-step conditional means, variances and
  coefficient sums needed by the importance-sampling likelihood
  ratios of Appendix B.

Both interfaces read their Durbin-Levinson coefficients from a shared
:class:`~repro.processes.coeff_table.CoefficientTable` by default, so
repeated runs over the same background model — the buffer sweeps and
twist scans of Figs. 14-17 — pay for the recursion once.  Pass
``coeff_table=False`` to force the original incremental recursion
(useful for ablations); the two paths are bit-identical given shared
innovations because the table stores exactly the recursion's outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import GenerationError, ValidationError
from ..stats.random import RandomState, make_rng
from .coeff_table import (
    CoefficientTable,
    get_coefficient_table,
    resolve_acvf as _resolve_acvf,
)
from .correlation import CorrelationModel
from .partial_corr import DurbinLevinson

__all__ = ["hosking_generate", "HoskingProcess", "HoskingStep"]

#: Type of the ``coeff_table`` argument shared by both interfaces:
#: ``None`` (or ``True``) uses the shared fingerprint cache, an explicit
#: :class:`CoefficientTable` is used as-is (the caller vouches that it
#: was built from the same autocovariance), and ``False`` disables
#: tables entirely in favour of the incremental recursion.
CoeffTableArg = Union[None, bool, CoefficientTable]


def _resolve_table(
    correlation: Union[CorrelationModel, Sequence[float]],
    n: int,
    coeff_table: CoeffTableArg,
) -> CoefficientTable:
    """Return the coefficient table to drive an ``n``-sample run."""
    if coeff_table is None or coeff_table is True:
        return get_coefficient_table(correlation, n)
    if not isinstance(coeff_table, CoefficientTable):
        raise ValidationError(
            "coeff_table must be a CoefficientTable, None (shared cache) "
            f"or False (incremental recursion), got {coeff_table!r}"
        )
    if coeff_table.horizon < n:
        raise ValidationError(
            f"coeff_table of horizon {coeff_table.horizon} cannot "
            f"generate {n} samples"
        )
    return coeff_table


def hosking_generate(
    correlation: Union[CorrelationModel, Sequence[float]],
    n: int,
    *,
    size: Optional[int] = None,
    mean: float = 0.0,
    random_state: RandomState = None,
    innovations: Optional[np.ndarray] = None,
    coeff_table: CoeffTableArg = None,
) -> np.ndarray:
    """Generate exact Gaussian sample paths with correlation ``r(k)``.

    Parameters
    ----------
    correlation:
        A :class:`~repro.processes.correlation.CorrelationModel` or an
        explicit autocovariance sequence ``r(0), r(1), ...`` with
        ``r(0)`` equal to the desired variance (1 for the paper's
        background processes).
    n:
        Length of each sample path.
    size:
        Number of independent replications.  ``None`` returns a 1-D
        array of length ``n``; an integer returns shape ``(size, n)``.
    mean:
        Process mean (added after generation; the conditional recursion
        operates on the zero-mean process).
    random_state:
        Seed or generator for the innovations.
    innovations:
        Optional pre-drawn standard-normal innovations of shape
        ``(size, n)`` — or exactly ``(n,)`` when ``size is None`` —
        useful for common-random-number experiments and tests.  The
        declared shape is validated strictly; arrays that merely have
        the right number of elements are rejected.
    coeff_table:
        ``None`` (default) reads Durbin-Levinson coefficients from the
        shared fingerprint cache so repeated runs over the same model
        skip the recursion; an explicit
        :class:`~repro.processes.coeff_table.CoefficientTable` is used
        directly; ``False`` runs the original incremental recursion.

    Returns
    -------
    numpy.ndarray
        Sample paths, shape ``(n,)`` or ``(size, n)``.
    """
    n = check_positive_int(n, "n")
    flat = size is None
    batch = 1 if flat else check_positive_int(size, "size")

    if innovations is None:
        rng = make_rng(random_state)
        z = rng.standard_normal((batch, n))
    else:
        z = np.asarray(innovations, dtype=float)
        expected = (n,) if flat else (batch, n)
        if z.shape != expected:
            raise ValidationError(
                f"innovations must have shape {expected}, got {z.shape}"
            )
        if flat:
            z = z.reshape(1, n)

    x = np.empty((batch, n), dtype=float)
    if coeff_table is False:
        acvf = _resolve_acvf(correlation, n)
        state = DurbinLevinson(acvf)
        x[:, 0] = np.sqrt(state.variance) * z[:, 0]
        for k in range(1, n):
            phi, variance = state.advance()
            # m_k = sum_j phi_kj x_{k-j}  for every replication at once.
            history = x[:, k - 1 :: -1][:, :k]
            x[:, k] = history @ phi + np.sqrt(variance) * z[:, k]
    else:
        table = _resolve_table(correlation, n, coeff_table)
        packed = table.packed_rows(n)
        sqrt_variances = table.sqrt_variances(n)
        x[:, 0] = sqrt_variances[0] * z[:, 0]
        offset = 0
        for k in range(1, n):
            phi = packed[offset : offset + k]
            offset += k
            history = x[:, k - 1 :: -1][:, :k]
            x[:, k] = history @ phi + sqrt_variances[k] * z[:, k]
    x += mean
    return x[0] if flat else x


@dataclass(frozen=True)
class HoskingStep:
    """One step of an incremental Hosking generation.

    Attributes
    ----------
    values:
        The newly generated samples, shape ``(size,)``.  Entries of
        replications retired via :meth:`HoskingProcess.retire` are 0.
    cond_mean:
        Conditional means ``m_k`` given each replication's history
        (0 for retired replications).
    cond_variance:
        Conditional variance ``v_k`` (shared across replications).
    phi_sum:
        ``sum_j phi_kj``; mean twisting by ``m*`` shifts the conditional
        mean under the original law by ``m* * phi_sum`` (Appendix B).
    innovations:
        The standard-normal draws used, shape ``(size,)``.  Drawn for
        every replication — retired or not — so the stream stays
        aligned regardless of retirement decisions.
    """

    values: np.ndarray
    cond_mean: np.ndarray
    cond_variance: float
    phi_sum: float
    innovations: np.ndarray


class HoskingProcess:
    """Stateful step-at-a-time Hosking generator for ``size`` replications.

    The importance-sampling simulator (Appendix B) needs, at every time
    step, the conditional mean and variance of the background process
    so it can compute likelihood ratios; and it wants to *stop early*
    on replications whose buffer already overflowed.  This class keeps
    the per-replication history, reads Durbin-Levinson coefficients
    from a shared table (or advances its own recursion), and yields one
    :class:`HoskingStep` per call to :meth:`step`.  Replications that
    no longer matter can be :meth:`retired <retire>`, shrinking the
    conditional-mean product to the active rows only.

    Parameters
    ----------
    correlation:
        Correlation model or explicit autocovariance sequence covering
        at least ``horizon`` lags.
    horizon:
        Maximum number of steps that will be generated.
    size:
        Number of parallel replications.
    random_state:
        Seed or generator for the innovations.
    coeff_table:
        ``None`` (default) uses the shared coefficient-table cache; an
        explicit :class:`~repro.processes.coeff_table.CoefficientTable`
        is used directly; ``False`` keeps a private incremental
        Durbin-Levinson recursion (the pre-table behaviour).
    """

    def __init__(
        self,
        correlation: Union[CorrelationModel, Sequence[float]],
        horizon: int,
        *,
        size: int = 1,
        random_state: RandomState = None,
        coeff_table: CoeffTableArg = None,
    ) -> None:
        self.horizon = check_positive_int(horizon, "horizon")
        self.size = check_positive_int(size, "size")
        if coeff_table is False:
            self._acvf = _resolve_acvf(correlation, self.horizon)
            self._table: Optional[CoefficientTable] = None
            self._state: Optional[DurbinLevinson] = DurbinLevinson(
                self._acvf
            )
        else:
            self._table = _resolve_table(
                correlation, self.horizon, coeff_table
            )
            self._acvf = np.asarray(self._table.acvf[: self.horizon])
            self._state = None
        self._rng = make_rng(random_state)
        # Zero-initialised so retired replications read as 0.0 past
        # their retirement step instead of uninitialised memory.
        self._history = np.zeros((self.size, self.horizon), dtype=float)
        self._step = 0
        self._active = np.ones(self.size, dtype=bool)
        # None encodes the everyone-active fast path (no row gathering).
        self._active_indices: Optional[np.ndarray] = None

    @property
    def step_index(self) -> int:
        """Number of samples generated so far per replication."""
        return self._step

    @property
    def history(self) -> np.ndarray:
        """Generated samples so far, shape ``(size, step_index)``.

        Rows of retired replications are frozen: entries past the
        retirement step are 0.
        """
        return self._history[:, : self._step].copy()

    @property
    def active_mask(self) -> np.ndarray:
        """Boolean mask of replications still being generated (a copy)."""
        return self._active.copy()

    @property
    def active_count(self) -> int:
        """Number of replications still being generated."""
        return int(self._active.sum())

    def retire(self, replications: np.ndarray) -> int:
        """Stop generating for the given replications; return active count.

        ``replications`` is either a boolean mask of shape ``(size,)``
        or an array of replication indices.  Retired rows drop out of
        the per-step conditional-mean product — the dominant cost of a
        step — so batches whose replications resolve early (e.g. they
        already crossed the buffer in an importance-sampling run) stop
        paying O(k) work per retired row.  Innovations are still drawn
        for every replication each step, so the random stream and
        therefore every *active* replication's path are bit-for-bit
        unchanged by retirement.  Retirement is permanent.
        """
        mask = np.asarray(replications)
        if mask.dtype == bool:
            if mask.shape != (self.size,):
                raise ValidationError(
                    f"boolean retire mask must have shape ({self.size},), "
                    f"got {mask.shape}"
                )
            self._active &= ~mask
        elif np.issubdtype(mask.dtype, np.integer):
            indices = mask.ravel()
            if indices.size and (
                indices.min() < -self.size or indices.max() >= self.size
            ):
                raise ValidationError(
                    f"retire indices out of range for size {self.size}"
                )
            self._active[indices] = False
        else:
            raise ValidationError(
                "retire expects a boolean mask or integer indices, got "
                f"dtype {mask.dtype}"
            )
        remaining = np.flatnonzero(self._active)
        self._active_indices = (
            None if remaining.size == self.size else remaining
        )
        return int(remaining.size)

    def _coefficients(self, k: int):
        """Return ``(phi, variance, sqrt_variance, phi_sum)`` for step k."""
        if self._table is not None:
            if k == 0:
                return (
                    None,
                    self._table.variance(0),
                    self._table.sqrt_variance(0),
                    0.0,
                )
            return (
                self._table.phi_row(k),
                self._table.variance(k),
                self._table.sqrt_variance(k),
                self._table.phi_sum(k),
            )
        if k == 0:
            variance = self._state.variance
            return None, variance, np.sqrt(variance), 0.0
        phi, variance = self._state.advance()
        return phi, variance, np.sqrt(variance), self._state.phi_sum

    def step(self) -> HoskingStep:
        """Generate the next sample for every active replication."""
        if self._step >= self.horizon:
            raise GenerationError(
                f"horizon of {self.horizon} steps exhausted"
            )
        k = self._step
        z = self._rng.standard_normal(self.size)
        phi, variance, sqrt_variance, phi_sum = self._coefficients(k)
        idx = self._active_indices
        if idx is None:
            if k == 0:
                cond_mean = np.zeros(self.size)
                values = sqrt_variance * z
            else:
                history = self._history[:, k - 1 :: -1][:, :k]
                cond_mean = history @ phi
                values = cond_mean + sqrt_variance * z
            self._history[:, k] = values
        else:
            cond_mean = np.zeros(self.size)
            values = np.zeros(self.size)
            if idx.size:
                if k == 0:
                    active_values = sqrt_variance * z[idx]
                else:
                    # Gather active rows, then the same reversed-slice
                    # product as the full-batch path (same dot order,
                    # so active rows stay bit-identical).
                    history = self._history[idx, :k][:, ::-1]
                    active_mean = history @ phi
                    cond_mean[idx] = active_mean
                    active_values = active_mean + sqrt_variance * z[idx]
                values[idx] = active_values
                self._history[idx, k] = active_values
        self._step += 1
        return HoskingStep(
            values=values,
            cond_mean=cond_mean,
            cond_variance=float(variance),
            phi_sum=phi_sum,
            innovations=z,
        )

    def run(self, steps: Optional[int] = None) -> np.ndarray:
        """Generate ``steps`` samples (default: to the horizon).

        Returns the full history so far, shape ``(size, step_index)``.
        With ``steps=None`` at an already-exhausted horizon this simply
        returns the completed history; an explicit ``steps`` that
        exceeds the remaining horizon raises
        :class:`~repro.exceptions.GenerationError`.
        """
        remaining = self.horizon - self._step
        if steps is None:
            if remaining == 0:
                return self.history
            steps = remaining
        steps = check_positive_int(steps, "steps")
        if steps > remaining:
            raise GenerationError(
                f"requested {steps} steps but only {remaining} remain"
            )
        for _ in range(steps):
            self.step()
        return self.history
