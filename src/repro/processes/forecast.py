"""Exact conditional forecasting for Gaussian processes.

Given a zero-mean Gaussian process with known autocovariance and an
observed history, the conditional law of the next ``horizon`` samples
is Gaussian with mean and covariance given by the partitioned-Gaussian
formulas

.. math::

    \\mu_{2|1} = \\Sigma_{21} \\Sigma_{11}^{-1} x, \\qquad
    \\Sigma_{2|1} = \\Sigma_{22} - \\Sigma_{21} \\Sigma_{11}^{-1}
                    \\Sigma_{12}.

This is the machinery behind bandwidth forecasting / connection
admission control applications of the paper's model: given the recent
frame sizes of a video source, predict the distribution of its near
future (map through the marginal transform to get byte forecasts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Union

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from .._validation import check_1d_array, check_positive_int
from ..exceptions import CorrelationError, ValidationError
from ..stats.random import RandomState, make_rng
from .correlation import CorrelationModel

__all__ = ["GaussianForecast", "conditional_forecast"]


@dataclass(frozen=True)
class GaussianForecast:
    """Conditional forecast of the next ``horizon`` samples.

    Attributes
    ----------
    mean:
        Conditional mean path, shape ``(horizon,)``.
    covariance:
        Conditional covariance matrix, shape ``(horizon, horizon)``.
    """

    mean: np.ndarray
    covariance: np.ndarray

    @property
    def std(self) -> np.ndarray:
        """Per-step conditional standard deviations."""
        return np.sqrt(np.clip(np.diag(self.covariance), 0.0, None))

    def interval(self, z: float = 1.96):
        """Return ``(low, high)`` pointwise prediction bands."""
        half = z * self.std
        return self.mean - half, self.mean + half

    def sample(
        self, size: int, random_state: RandomState = None
    ) -> np.ndarray:
        """Draw ``size`` conditional future paths, shape (size, horizon)."""
        check_positive_int(size, "size")
        rng = make_rng(random_state)
        jitter = 1e-12 * float(np.trace(self.covariance)) / max(
            self.covariance.shape[0], 1
        )
        cov = self.covariance + jitter * np.eye(self.covariance.shape[0])
        return rng.multivariate_normal(
            self.mean, cov, size=size, method="cholesky"
        )


def conditional_forecast(
    correlation: Union[CorrelationModel, Sequence[float]],
    history: Sequence[float],
    horizon: int,
) -> GaussianForecast:
    """Exact conditional forecast of a zero-mean Gaussian process.

    Parameters
    ----------
    correlation:
        Correlation model, or an explicit autocovariance sequence
        covering at least ``len(history) + horizon`` lags.
    history:
        The observed samples ``x_1 .. x_n`` (oldest first).
    horizon:
        Number of future samples to forecast.

    Raises
    ------
    CorrelationError
        If the history covariance matrix is not positive definite.
    """
    x = check_1d_array(history, "history")
    horizon = check_positive_int(horizon, "horizon")
    n = x.size
    total = n + horizon

    if isinstance(correlation, CorrelationModel):
        acvf = correlation.acvf(total)
    else:
        acvf = np.asarray(correlation, dtype=float)
        if acvf.size < total:
            raise ValidationError(
                f"need {total} autocovariances, got {acvf.size}"
            )
        acvf = acvf[:total]

    lags = np.abs(np.subtract.outer(np.arange(total), np.arange(total)))
    sigma = acvf[lags]
    sigma_11 = sigma[:n, :n]
    sigma_21 = sigma[n:, :n]
    sigma_22 = sigma[n:, n:]
    try:
        factor = cho_factor(sigma_11)
    except np.linalg.LinAlgError as exc:
        raise CorrelationError(
            "history covariance is not positive definite"
        ) from exc
    # mu = S21 S11^-1 x; Sigma = S22 - S21 S11^-1 S12.
    solved_x = cho_solve(factor, x)
    mean = sigma_21 @ solved_x
    solved_cross = cho_solve(factor, sigma_21.T)
    covariance = sigma_22 - sigma_21 @ solved_cross
    # Symmetrise against rounding.
    covariance = 0.5 * (covariance + covariance.T)
    return GaussianForecast(mean=mean, covariance=covariance)
