"""Scene-chunked generation with conditional Gaussian-bridge stitching.

The §3 recipes (Hosking, Davies-Harte) are single-pass: one call
materializes the whole horizon, so trace length is capped by the
working set of one FFT (Davies-Harte) or one coefficient table
(Hosking).  The multi-hour MPEG sequences the §4 queueing experiments
imply at scale need horizons of 10^8-10^9 frames, which only fit if
generation is *chunked*: split the horizon into scene-aligned chunks,
generate chunks as independently schedulable jobs (the architecture of
scene-chunked encoders), and stitch them so the dependence structure
survives the chunk boundaries.

Three pieces live here:

- :func:`plan_chunks` — a planner that splits a horizon into chunks
  whose edges land on an alignment grid (the GOP period ``K_I`` of
  :class:`~repro.video.gop.GopStructure`) or on explicit scene
  boundaries (:func:`~repro.video.scenes.detect_scene_changes`),
  covering the horizon exactly once while respecting a minimum-chunk
  floor.
- :class:`ChunkedGenerator` — the pipeline: per-chunk raw generation
  jobs (dispatched through :func:`~repro.simulation.parallel.run_tasks`
  in-line, on threads, or on a :class:`~concurrent.futures.ProcessPoolExecutor`)
  followed by a sequential stitch pass in chunk order.
- :func:`stitched_covariance` — the *exactly computed* covariance the
  bridge-stitched process actually has, used to state and test the
  approximation contract.

Two stitch modes
----------------
**Exact mode** (``stitch="exact"``, the default for conditional
backends): chunk ``c`` is conditioned on its *entire* boundary history
through the shared Durbin-Levinson machinery of
:mod:`~repro.processes.coeff_table`.  By linearity of Hosking's
recursion (eq. 1-6), the chunk decomposes as ``x_c = m_c + w_c`` where
the *noise path* ``w_c`` runs the recursion with zero history (it only
sees within-chunk lags — an independently schedulable O(L^2) job) and
the *mean path* ``m_c`` runs it with zero innovations (one
``(L, start)`` GEMM against the full history plus an O(L^2)
within-chunk propagation, applied sequentially in chunk order).  The
sum is the exact same linear function of the innovations as a direct
Hosking run, so the joint law over the whole horizon is preserved;
outputs are ``allclose`` (rtol <= 1e-10) to the unchunked generator
given shared innovations, not bit-identical, because the split
reassociates floating-point sums — the same contract as the blocked
BLAS-3 kernel.  The mode needs the coefficient table (O(n^2) memory),
so it is for moderate horizons; noise jobs run on threads sharing the
table.

**Bridge mode** (``stitch="bridge"``, the default for spectral
backends and the scale path): chunk ``c``'s raw job draws
``w + L`` samples of the target law via circulant embedding (O(L log L),
O(L) memory, reusing the per-process spectral cache), where ``w`` is
the *stitch window*.  The stitch then replaces the raw window with the
actual boundary history through the exact conditional-Gaussian bridge

.. math::

    x_c = y[w:] + A (h - y[:w]), \\qquad A = \\Sigma_{21}\\Sigma_{11}^{-1},

so conditional on the window values ``h`` the chunk has *exactly* the
conditional law ``N(A h, \\Sigma_{22} - A \\Sigma_{12})`` — the same
partitioned-Gaussian formulas as
:func:`~repro.processes.forecast.conditional_forecast` (``A h`` equals
its conditional mean for the same history).  The approximation is the
conditional-independence statement ``chunk ⟂ older history | window``:
the joint law of a chunk with its ``w`` predecessor samples is exact,
while dependence on samples older than the window is mediated through
the window.  :func:`stitched_covariance` computes the induced
covariance exactly so the deviation can be bounded per
(Hurst, chunk, window) geometry; the tested contract lives in
``tests/test_chunked.py`` and DESIGN.md §5g.

Seeding contract (process-count invariance)
-------------------------------------------
Chunk ``c`` draws from the ``c``-th child of
``spawn_rngs(random_state, num_chunks)``, spawned *before* any job
runs, and chunks are always stitched in chunk order.  ``processes=``
(or ``REPRO_PROCESSES``) only selects how many jobs run concurrently —
it never moves a chunk boundary, reseeds a stream, or reorders the
stitch — so for a fixed seed the output is **bit-identical at any
process count** (and whether jobs run in-line, on threads, or on a
process pool).  ``chunk_frames``, the alignment, and the stitch window,
by contrast, are part of the law: changing any of them changes which
stream a sample draws from (same distribution — exactly, for exact
mode — different bits).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from .._validation import (
    check_choice,
    check_positive_int,
)
from ..exceptions import CorrelationError, ValidationError
from ..observability import ensure_context
from ..stats.random import RandomState, spawn_rngs
from .coeff_table import get_coefficient_table, resolve_acvf
from .davies_harte import davies_harte_generate
from .source import GaussianSource

__all__ = [
    "Chunk",
    "ChunkPlan",
    "ChunkReport",
    "plan_chunks",
    "bridge_matrix",
    "ChunkedGenerator",
    "chunked_generate",
    "stitched_covariance",
    "DEFAULT_STITCH_WINDOW",
]

def _parallel():
    """The pool engine, imported lazily.

    ``repro.simulation`` pulls in the runner stack (which itself
    consumes ``repro.processes``), so a module-level import here would
    be circular; by the time a generator runs, both packages are fully
    initialized.
    """
    from ..simulation import parallel

    return parallel


#: Default boundary-history window of the bridge stitch, in frames.
#: Large enough that the window carries essentially all of the
#: dependence an LRD background has on its recent past (see the §5g
#: contract table); small enough that the per-chunk stitch GEMM and the
#: one-off ``(w, w)`` Cholesky stay negligible next to the chunk FFT.
DEFAULT_STITCH_WINDOW = 256


# ---------------------------------------------------------------------
# Chunk planning
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class Chunk:
    """One planned chunk: the half-open frame range ``[start, stop)``."""

    index: int
    start: int
    stop: int

    @property
    def length(self) -> int:
        return self.stop - self.start


@dataclass(frozen=True)
class ChunkPlan:
    """A partition of ``[0, horizon)`` into aligned chunks.

    Attributes
    ----------
    horizon:
        Total number of frames planned.
    chunks:
        The chunks, in order; they cover the horizon exactly once.
    chunk_frames:
        The requested nominal chunk size.
    alignment:
        Grid every interior edge lands on (1 = unconstrained) when no
        explicit boundaries were given.
    min_chunk:
        The enforced minimum chunk length (the final chunk may only be
        shorter when the horizon itself is).
    """

    horizon: int
    chunks: Tuple[Chunk, ...]
    chunk_frames: int
    alignment: int
    min_chunk: int

    @property
    def num_chunks(self) -> int:
        return len(self.chunks)

    @property
    def edges(self) -> np.ndarray:
        """All edges ``0 = e_0 < e_1 < ... < e_k = horizon``."""
        return np.asarray(
            [0] + [chunk.stop for chunk in self.chunks], dtype=int
        )

    def __iter__(self):
        return iter(self.chunks)


def plan_chunks(
    horizon: int,
    chunk_frames: int,
    *,
    alignment: int = 1,
    boundaries: Optional[Sequence[int]] = None,
    min_chunk: Optional[int] = None,
) -> ChunkPlan:
    """Split ``horizon`` frames into scene/GOP-aligned chunks.

    Parameters
    ----------
    horizon:
        Total number of frames to plan.
    chunk_frames:
        Nominal chunk length; every interior edge is placed as close to
        a multiple of it as the alignment allows.
    alignment:
        Interior edges land on multiples of this grid — pass the GOP
        period ``K_I`` so every chunk starts on an I frame.  Ignored
        when ``boundaries`` is given.
    boundaries:
        Explicit candidate edge positions (e.g. scene cuts from
        :func:`~repro.video.scenes.detect_scene_changes`).  Interior
        edges are then chosen from this set only: each edge is the
        boundary closest to the nominal target that keeps both
        neighbouring chunks at or above ``min_chunk``.  When no such
        boundary exists the current chunk simply extends (scene lengths
        bound chunk lengths from below, never from above).
    min_chunk:
        Minimum chunk length (default ``max(alignment, 1)``).  Every
        chunk respects it, except that a horizon shorter than
        ``min_chunk`` yields a single short chunk.

    Returns
    -------
    ChunkPlan
        Chunks covering ``[0, horizon)`` exactly once, in order.
    """
    horizon = check_positive_int(horizon, "horizon")
    chunk_frames = check_positive_int(chunk_frames, "chunk_frames")
    alignment = check_positive_int(alignment, "alignment")
    if min_chunk is None:
        min_chunk = max(alignment, 1)
    min_chunk = check_positive_int(min_chunk, "min_chunk")
    if chunk_frames < min_chunk:
        raise ValidationError(
            f"chunk_frames ({chunk_frames}) must be >= min_chunk "
            f"({min_chunk})"
        )

    allowed: Optional[np.ndarray] = None
    if boundaries is not None:
        allowed = np.unique(np.asarray(boundaries, dtype=int))
        allowed = allowed[(allowed > 0) & (allowed < horizon)]

    edges = [0]
    cursor = 0
    while horizon - cursor > chunk_frames:
        target = cursor + chunk_frames
        if allowed is not None:
            # Scene mode: the admissible boundaries leave both sides of
            # the cut at least min_chunk long.
            lo, hi = cursor + min_chunk, horizon - min_chunk
            candidates = allowed[(allowed >= lo) & (allowed <= hi)]
            candidates = candidates[candidates > cursor]
            if candidates.size == 0:
                break
            edge = int(candidates[np.argmin(np.abs(candidates - target))])
            if edge <= cursor:
                break
            # A scene longer than chunk_frames extends the chunk; never
            # loop in place.
        else:
            edge = int(round(target / alignment)) * alignment
            lo = cursor + min_chunk
            if edge < lo:
                # Round up to the first aligned edge that respects the
                # floor.
                edge = int(-(-lo // alignment)) * alignment
            if horizon - edge < min_chunk or edge >= horizon:
                break
        edges.append(edge)
        cursor = edge
    edges.append(horizon)

    chunks = tuple(
        Chunk(index=i, start=edges[i], stop=edges[i + 1])
        for i in range(len(edges) - 1)
    )
    return ChunkPlan(
        horizon=horizon,
        chunks=chunks,
        chunk_frames=chunk_frames,
        alignment=alignment,
        min_chunk=min_chunk,
    )


# ---------------------------------------------------------------------
# Bridge stitch machinery
# ---------------------------------------------------------------------


def _toeplitz(acvf: np.ndarray, n: int) -> np.ndarray:
    """Dense covariance ``Sigma[i, j] = r(|i - j|)`` over ``n`` samples."""
    lags = np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
    return acvf[lags]


def bridge_matrix(
    acvf: Union[np.ndarray, Sequence[float]],
    window: int,
    length: int,
) -> np.ndarray:
    """Conditional-mean map ``A = Sigma_21 Sigma_11^{-1}`` of a chunk.

    ``A`` maps the ``window`` boundary-history samples to the
    conditional mean of the next ``length`` samples — the same
    partitioned-Gaussian formula as
    :func:`~repro.processes.forecast.conditional_forecast` (for any
    history ``h``, ``A @ h`` equals that function's forecast mean).

    Parameters
    ----------
    acvf:
        Autocovariance ``r(0) .. r(window + length - 1)`` (longer is
        fine).
    window, length:
        The boundary-history and chunk lengths.

    Raises
    ------
    CorrelationError
        If the window covariance is not positive definite.
    """
    window = check_positive_int(window, "window")
    length = check_positive_int(length, "length")
    acvf = np.asarray(acvf, dtype=float)
    total = window + length
    if acvf.size < total:
        raise ValidationError(
            f"need {total} autocovariances for a ({window}, {length}) "
            f"bridge, got {acvf.size}"
        )
    # Only the (window, window) block and the cross block of the joint
    # Toeplitz matrix are needed; the full (total, total) matrix would
    # be O((w + L)^2) memory — tens of GB at production chunk sizes.
    # Row i of Sigma_12 is acvf[window - i : window - i + length], a
    # sliding window over the ACVF, so a strided view stands in for the
    # (window, length) block without materializing it.
    sigma_11 = _toeplitz(acvf, window)
    windows = np.lib.stride_tricks.sliding_window_view(
        acvf[:total], length
    )
    sigma_12 = windows[1 : window + 1][::-1]
    try:
        factor = cho_factor(sigma_11)
    except np.linalg.LinAlgError as exc:
        raise CorrelationError(
            "stitch-window covariance is not positive definite"
        ) from exc
    return cho_solve(factor, sigma_12).T


def _bridge_chunk_job(payload) -> np.ndarray:
    """One raw bridge-mode chunk: ``window + length`` samples of the law.

    Module-level (and all-ndarray payload) so it can cross a process
    boundary.  The circulant embedding reuses the per-process spectral
    cache; cached and uncached draws are bit-identical, so warm and
    cold workers produce the same chunk.
    """
    acvf, total, rng = payload
    return davies_harte_generate(
        acvf, int(total), random_state=rng, on_negative_eigenvalues="clip"
    )


def _exact_noise_job(payload) -> np.ndarray:
    """Zero-history noise path of one exact-mode chunk.

    Runs Hosking's recursion over steps ``[start, stop)`` with all
    history *outside the chunk* pinned to zero, so step ``k`` only sees
    its within-chunk lags: ``w_i = sum_{j<=i} phi_{k,j} w_{i-j} +
    sqrt(v_k) z_i``.  By linearity this is the innovation-driven half of
    the chunk; the history-driven half is added by the sequential
    stitch.  Jobs share the coefficient table (read-only), so they run
    on threads.
    """
    table, start, stop, rng = payload
    length = stop - start
    z = rng.standard_normal(length)
    w = np.empty(length, dtype=float)
    sqrt_variances = table.sqrt_variances(stop)
    for i in range(length):
        k = start + i
        if k == 0:
            w[0] = sqrt_variances[0] * z[0]
            continue
        value = sqrt_variances[k] * z[i]
        if i > 0:
            row = table.phi_row(k)
            value += row[:i] @ w[i - 1 :: -1]
        w[i] = value
    return w


@dataclass(frozen=True)
class ChunkReport:
    """Summary of one chunked generation run.

    Attributes
    ----------
    horizon, chunk_frames, window:
        The run geometry (``window`` is 0 in exact mode: conditioning
        is on the full history, not a window).
    num_chunks:
        Chunks generated.
    mode:
        ``"exact"`` or ``"bridge"``.
    processes:
        Pool size the chunk jobs ran on.
    generate_seconds:
        Total wall seconds spent inside chunk jobs.
    stitch_seconds:
        Total wall seconds spent in the sequential stitch pass.
    occupancy:
        Average busy workers (job seconds over pipeline wall seconds).
    peak_chunk_bytes:
        Largest per-chunk raw buffer, in bytes — the pipeline's
        working-set unit.
    """

    horizon: int
    chunk_frames: int
    window: int
    num_chunks: int
    mode: str
    processes: int
    generate_seconds: float
    stitch_seconds: float
    occupancy: float
    peak_chunk_bytes: int


class ChunkedGenerator:
    """Chunk-parallel generation of one long correlated Gaussian path.

    Parameters
    ----------
    source:
        A :class:`~repro.processes.source.GaussianSource` whose
        capabilities advertise ``chunked`` (an exact Gaussian law fully
        described by its ACVF).  Conditional sources (Hosking) default
        to the exact stitch; the rest to the bridge stitch.
    chunk_frames:
        Nominal chunk length (part of the law; see the module
        docstring's seeding contract).
    alignment, boundaries, min_chunk:
        Forwarded to :func:`plan_chunks` — pass the GOP period or scene
        cuts so chunk edges land on scene structure.
    stitch_window:
        Boundary-history window of the bridge stitch (ignored in exact
        mode).
    stitch:
        ``"auto"`` (exact when the source supports conditional
        stepping, else bridge), ``"exact"``, or ``"bridge"``.
    processes:
        Chunk-job pool size; ``None`` defers to ``REPRO_PROCESSES``
        (default 1 = in-line).  Bridge jobs run on a process pool,
        exact-mode noise jobs on a thread pool (they share the
        coefficient table; BLAS releases the GIL).  Never changes
        output bits.
    executor:
        Optional caller-managed :class:`concurrent.futures.Executor`
        reused for the chunk jobs (must match the mode's flavour).
        Without one, bridge jobs are served by the process-wide shared
        pool (:func:`~repro.simulation.parallel.shared_pool`).
    transport:
        ``"auto"`` (default), ``"shm"``, or ``"pickle"`` — how bridge
        chunk legs travel back from pool workers (see
        :mod:`repro.simulation.parallel`).  Ignored in exact mode
        (threads share memory already).  Never changes output bits.
    metrics:
        Optional :class:`~repro.observability.RunContext`; records the
        ``chunked.*`` series (see docs/observability.md).
    """

    def __init__(
        self,
        source: GaussianSource,
        *,
        chunk_frames: int,
        alignment: int = 1,
        boundaries: Optional[Sequence[int]] = None,
        min_chunk: Optional[int] = None,
        stitch_window: int = DEFAULT_STITCH_WINDOW,
        stitch: str = "auto",
        processes: Optional[int] = None,
        executor=None,
        transport: str = "auto",
        metrics=None,
    ) -> None:
        if not isinstance(source, GaussianSource):
            raise ValidationError(
                "source must be a GaussianSource, got "
                f"{type(source).__name__}"
            )
        if not source.capabilities.chunked:
            raise ValidationError(
                f"backend {source.name!r} does not support chunked "
                "generation (its sampled law is not an exact Gaussian "
                "law described by its ACVF); choose a backend whose "
                "capabilities include 'chunked'"
            )
        check_choice(stitch, "stitch", ("auto", "exact", "bridge"))
        if stitch == "auto":
            stitch = (
                "exact" if source.capabilities.conditional else "bridge"
            )
        if stitch == "exact" and not source.capabilities.conditional:
            raise ValidationError(
                f"backend {source.name!r} cannot drive the exact stitch "
                "(no conditional stepping); use stitch='bridge'"
            )
        self.source = source
        self.chunk_frames = check_positive_int(chunk_frames, "chunk_frames")
        self.alignment = check_positive_int(alignment, "alignment")
        self.boundaries = boundaries
        self.min_chunk = min_chunk
        self.stitch_window = check_positive_int(
            stitch_window, "stitch_window"
        )
        self.stitch = stitch
        # Validate eagerly (registry contract: bad options fail before
        # any simulation work), but remember whether the caller gave an
        # explicit count so generate() can re-read the environment.
        _parallel().resolve_processes(processes)
        check_choice(transport, "transport", ("auto", "shm", "pickle"))
        self._processes = processes
        self._executor = executor
        self._transport = transport
        self._metrics = ensure_context(metrics)
        self._bridge_cache: Dict[Tuple[int, int], np.ndarray] = {}
        self.last_report: Optional[ChunkReport] = None

    def plan(self, n: int) -> ChunkPlan:
        """The chunk plan :meth:`generate` would use for ``n`` frames."""
        return plan_chunks(
            n,
            self.chunk_frames,
            alignment=self.alignment,
            boundaries=self.boundaries,
            min_chunk=self.min_chunk,
        )

    # -- bridge mode ---------------------------------------------------

    def _bridge_matrix_for(
        self, acvf: np.ndarray, window: int, length: int
    ) -> np.ndarray:
        key = (window, length)
        cached = self._bridge_cache.get(key)
        if cached is None:
            cached = bridge_matrix(acvf, window, length)
            self._bridge_cache[key] = cached
        return cached

    def _generate_bridge(
        self, plan: ChunkPlan, rngs, ctx, count: int
    ) -> Tuple[np.ndarray, float, int]:
        window = self.stitch_window
        max_total = max(
            min(window, chunk.start) + chunk.length for chunk in plan
        )
        # One O(window + chunk) ACVF prefix serves every job payload
        # and every stitch matrix; nothing here scales with the horizon.
        acvf = self.source.acvf(max_total + 1)
        payloads = []
        for chunk, rng in zip(plan, rngs):
            w = min(window, chunk.start)
            total = w + chunk.length
            payloads.append((acvf[: total + 1], total, rng))
        raws = _parallel().run_tasks(
            _bridge_chunk_job,
            payloads,
            workers=count,
            kind="process",
            executor=self._executor,
            metrics=ctx,
            prefix="chunked",
            transport=self._transport,
        )
        peak_bytes = max(raw.nbytes for raw in raws)
        x = np.empty(plan.horizon, dtype=float)
        stitch_start = time.perf_counter()
        if self._uniform_stitch_ok(plan):
            self._stitch_uniform(plan, raws, acvf, x)
        else:
            self._stitch_sequential(plan, raws, acvf, x)
        stitch_seconds = time.perf_counter() - stitch_start
        return x, stitch_seconds, peak_bytes

    def _uniform_stitch_ok(self, plan: ChunkPlan) -> bool:
        """Whether the batched stitch applies: every history-providing
        chunk covers a full window, so all stitches share one ``A``.

        Depends only on the plan geometry — never on the process count
        — so the path choice keeps the bit-identical-at-any-process-
        count contract.
        """
        if plan.num_chunks < 2:
            return False
        return all(
            chunk.length >= self.stitch_window
            for chunk in plan.chunks[:-1]
        )

    def _stitch_sequential(
        self, plan: ChunkPlan, raws, acvf: np.ndarray, x: np.ndarray
    ) -> None:
        """Reference stitch: one conditional-mean GEMV per chunk."""
        window = self.stitch_window
        for chunk, raw in zip(plan, raws):
            w = min(window, chunk.start)
            if w == 0:
                x[chunk.start : chunk.stop] = raw
                continue
            a = self._bridge_matrix_for(acvf, w, chunk.length)
            history = x[chunk.start - w : chunk.start]
            x[chunk.start : chunk.stop] = raw[w:] + a @ (
                history - raw[:w]
            )

    def _stitch_uniform(
        self, plan: ChunkPlan, raws, acvf: np.ndarray, x: np.ndarray
    ) -> None:
        """Batched stitch for uniform-window plans.

        The correction of chunk ``c`` is ``A d_c`` with
        ``d_c = h_c - y_c[:w]``, and since ``h_c`` is the previous
        chunk's raw tail plus *its* correction tail, the discrepancies
        obey the w-dimensional linear recurrence

            ``d_{c+1} = (y_c[-w:] - y_{c+1}[:w]) + A[L_c-w:L_c] d_c``.

        Row ``i`` of ``A`` depends only on ``(w, i)`` (it maps the
        window to the conditional mean at offset ``i``), so one matrix
        for the longest chunk serves every chunk, the recurrence costs
        O(w^2) per chunk, and all full-length corrections collapse into
        the single BLAS-3 product ``A @ [d_1 .. d_k]``.  Serial stitch
        time stops scaling with ``horizon x window``, which is what
        keeps the multi-process pipeline out of Amdahl territory.
        """
        w = self.stitch_window
        chunks = plan.chunks[1:]
        lengths = [chunk.length for chunk in chunks]
        a = self._bridge_matrix_for(acvf, w, max(lengths))
        d = np.empty((w, len(chunks)), dtype=float)
        d[:, 0] = raws[0][-w:] - raws[1][:w]
        for j in range(1, len(chunks)):
            tail = a[lengths[j - 1] - w : lengths[j - 1], :]
            d[:, j] = (raws[j][-w:] - raws[j + 1][:w]) + tail @ d[:, j - 1]
        corrections = a @ d
        first = plan.chunks[0]
        x[: first.stop] = raws[0]
        for j, chunk in enumerate(chunks):
            x[chunk.start : chunk.stop] = (
                raws[j + 1][w:] + corrections[: chunk.length, j]
            )

    # -- exact mode ----------------------------------------------------

    def _generate_exact(
        self, plan: ChunkPlan, rngs, ctx, count: int, innovations=None
    ) -> Tuple[np.ndarray, float, int]:
        n = plan.horizon
        table = get_coefficient_table(self.source.acvf(n), n)
        if innovations is None:
            payloads = [
                (table, chunk.start, chunk.stop, rng)
                for chunk, rng in zip(plan, rngs)
            ]
            noise = _parallel().run_tasks(
                _exact_noise_job,
                payloads,
                workers=count,
                kind="thread",
                executor=self._executor,
                metrics=ctx,
                prefix="chunked",
            )
        else:
            # Test seam: shared innovations prove the chunked output is
            # the same linear map as the direct recursion.
            z = np.asarray(innovations, dtype=float)
            if z.shape != (n,):
                raise ValidationError(
                    f"innovations must have shape ({n},), got {z.shape}"
                )
            noise = [
                _exact_noise_job(
                    (table, chunk.start, chunk.stop, _FixedDraws(
                        z[chunk.start : chunk.stop]
                    ))
                )
                for chunk in plan
            ]
        peak_bytes = max(w.nbytes for w in noise)
        x = np.empty(n, dtype=float)
        stitch_start = time.perf_counter()
        for chunk, w in zip(plan, noise):
            start, stop, length = chunk.start, chunk.stop, chunk.length
            if start == 0:
                x[:stop] = w
                continue
            # History half of the linear decomposition: the (L, start)
            # coefficient block against the reversed boundary history in
            # one GEMM, then the within-chunk propagation of the mean.
            rev_hist = x[start - 1 :: -1][:start]
            h_block = np.empty((length, start), dtype=float)
            for i in range(length):
                row = table.phi_row(start + i)
                h_block[i] = row[i : i + start]
            m = h_block @ rev_hist
            for i in range(1, length):
                row = table.phi_row(start + i)
                m[i] += row[:i] @ m[i - 1 :: -1]
            x[start:stop] = m + w
        stitch_seconds = time.perf_counter() - stitch_start
        return x, stitch_seconds, peak_bytes

    # -- entry point ---------------------------------------------------

    def generate(
        self,
        n: int,
        *,
        mean: float = 0.0,
        random_state: RandomState = None,
        innovations: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Generate ``n`` frames through the chunked pipeline.

        ``innovations`` is a test seam for exact mode only: pre-drawn
        standard normals of shape ``(n,)`` consumed chunk by chunk, so
        the output can be compared ``allclose`` against a direct
        :func:`~repro.processes.hosking.hosking_generate` run on the
        same draws.
        """
        n = check_positive_int(n, "n")
        if innovations is not None and self.stitch != "exact":
            raise ValidationError(
                "innovations= is only supported by the exact stitch"
            )
        plan = self.plan(n)
        ctx = self._metrics
        rngs = (
            spawn_rngs(random_state, plan.num_chunks)
            if innovations is None
            else [None] * plan.num_chunks
        )
        # Both modes size their chunk-job pool from ``processes=`` /
        # ``REPRO_PROCESSES`` (never ``REPRO_WORKERS``): exact-mode
        # noise jobs merely run that many *threads* because they share
        # the coefficient table.
        count = _parallel().resolve_processes(self._processes)
        pipeline_start = time.perf_counter()
        if self.stitch == "bridge":
            x, stitch_seconds, peak_bytes = self._generate_bridge(
                plan, rngs, ctx, count
            )
        else:
            x, stitch_seconds, peak_bytes = self._generate_exact(
                plan, rngs, ctx, count, innovations=innovations
            )
        wall = time.perf_counter() - pipeline_start

        pool_size = min(count, plan.num_chunks)
        occupancy = 0.0
        if ctx.enabled:
            # run_tasks already computed busy-workers occupancy for the
            # chunk jobs; surface it on the report for metrics-free
            # consumers (the CLI panel).
            for entry in ctx.snapshot():
                if entry.get("name") == "chunked.occupancy":
                    occupancy = float(entry.get("value", 0.0))
        report = ChunkReport(
            horizon=n,
            chunk_frames=self.chunk_frames,
            window=self.stitch_window if self.stitch == "bridge" else 0,
            num_chunks=plan.num_chunks,
            mode=self.stitch,
            processes=pool_size,
            generate_seconds=max(wall - stitch_seconds, 0.0),
            stitch_seconds=stitch_seconds,
            occupancy=occupancy,
            peak_chunk_bytes=peak_bytes,
        )
        self.last_report = report
        ctx.inc("chunked.chunks", plan.num_chunks, mode=self.stitch)
        ctx.set("chunked.chunk_frames", self.chunk_frames)
        ctx.set("chunked.window", report.window)
        ctx.set("chunked.processes", pool_size)
        ctx.observe("chunked.stitch_seconds", stitch_seconds)
        ctx.set("chunked.peak_chunk_bytes", peak_bytes)
        if mean:
            x += mean
        return x


class _FixedDraws:
    """Stand-in RNG feeding pre-drawn innovations to a noise job."""

    def __init__(self, values: np.ndarray) -> None:
        self._values = np.asarray(values, dtype=float)

    def standard_normal(self, size: int) -> np.ndarray:
        assert size == self._values.size
        return self._values


def chunked_generate(
    source: GaussianSource,
    n: int,
    *,
    chunk_frames: int,
    alignment: int = 1,
    boundaries: Optional[Sequence[int]] = None,
    min_chunk: Optional[int] = None,
    stitch_window: int = DEFAULT_STITCH_WINDOW,
    stitch: str = "auto",
    processes: Optional[int] = None,
    transport: str = "auto",
    mean: float = 0.0,
    random_state: RandomState = None,
    metrics=None,
) -> np.ndarray:
    """One-shot convenience wrapper around :class:`ChunkedGenerator`."""
    return ChunkedGenerator(
        source,
        chunk_frames=chunk_frames,
        alignment=alignment,
        boundaries=boundaries,
        min_chunk=min_chunk,
        stitch_window=stitch_window,
        stitch=stitch,
        processes=processes,
        transport=transport,
        metrics=metrics,
    ).generate(n, mean=mean, random_state=random_state)


# ---------------------------------------------------------------------
# Approximation-contract analysis
# ---------------------------------------------------------------------


def stitched_covariance(
    correlation,
    plan: ChunkPlan,
    *,
    stitch_window: int = DEFAULT_STITCH_WINDOW,
) -> np.ndarray:
    """Exact covariance of the bridge-stitched process.

    The stitched process is a fixed linear map of independent Gaussian
    draws, so its covariance can be computed exactly by propagating the
    per-chunk affine update: chunk ``c`` contributes

    .. math::

        x_c = A h + u, \\qquad u \\sim N(0, \\Sigma_{22} - A \\Sigma_{12})

    with ``u`` independent of everything generated before, giving the
    block recursion ``Cov(x_c, x_{prev}) = A Cov(h, x_{prev})`` and
    ``Cov(x_c) = A Cov(h) A^T + \\Sigma_{2|1}``.

    Intended for the approximation-contract tests (O(horizon^2) dense
    algebra — use small horizons).  The deviation from the target
    Toeplitz covariance is exactly the price of the overlap-window
    truncation; within a chunk, and between a chunk and its in-window
    history, the law is exact up to the (second-order) deviation already
    accumulated in the window itself.
    """
    n = plan.horizon
    acvf = resolve_acvf(correlation, n + 1)
    cov = np.zeros((n, n), dtype=float)
    for chunk in plan:
        start, stop, length = chunk.start, chunk.stop, chunk.length
        w = min(stitch_window, start)
        total = w + length
        sigma = _toeplitz(acvf[:total], total)
        if w == 0:
            cov[:stop, :stop] = sigma
            continue
        a = bridge_matrix(acvf, w, length)
        sigma_12 = sigma[:w, w:]
        cond = sigma[w:, w:] - a @ sigma_12
        win = slice(start - w, start)
        cross = a @ cov[win, :start]
        cov[start:stop, :start] = cross
        cov[:start, start:stop] = cross.T
        cov[start:stop, start:stop] = (
            a @ cov[win, win] @ a.T + cond
        )
    return cov
