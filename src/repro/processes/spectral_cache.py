"""Shared circulant-embedding spectra with an acvf-keyed cache.

The Davies-Harte generator is the backend the registry's ``auto``
policy picks for every unconditional request — the long-trace synthesis
of Figs. 8-13 and the replicated buffer sweeps of the §4 experiments —
yet the seed implementation re-evaluated the model autocovariance and
re-ran the circulant FFT from scratch on every call, even when all legs
of a sweep share one fitted background model.  This module factors the
spectral decomposition out into a :class:`SpectralTable`, the
unconditional-path counterpart of the conditional path's
:class:`~repro.processes.coeff_table.CoefficientTable`:

- **Memoized ACVF with prefix extension.**  Each table stores one
  autocovariance prefix ``r(0) .. r(L)``; a longer request
  :meth:`extends <SpectralTable.extend>` the prefix in place and a
  shorter one slices it, so the model's ``acvf`` is evaluated once at
  the longest lag any consumer has touched.  All built-in
  :class:`~repro.processes.correlation.CorrelationModel` evaluations
  are prefix-stable (lag ``k``'s value does not depend on the requested
  length), so a sliced prefix is bit-identical to a fresh short
  evaluation — the property test in ``tests/test_spectral_cache.py``
  pins this down.
- **Eigenvalue entries per path length.**  The circulant eigenvalues
  for an ``n``-sample path (one real FFT of the length-``2n``
  embedding of ``r(0) .. r(n)``, storing only the ``n + 1`` distinct
  half-spectrum values — the embedding is real and even, so the other
  half is a bitwise mirror materialized on demand)
  are cached per table as immutable :class:`EigenvalueEntry` records,
  built lock-safely for concurrent thread-pool readers: construction is
  double-checked under the table lock, published entries are read-only,
  and readers of an existing entry never take the lock.
- **Fingerprint cache plus a per-model memo.**  :func:`get_spectral_table`
  memoizes tables behind the same fingerprint-keyed LRU discipline as
  :func:`~repro.processes.coeff_table.get_coefficient_table` (leading
  lags hashed, full prefix equality verified on every hit), with an
  identity-keyed weak per-model memo on top so repeated requests for
  the same live :class:`CorrelationModel` skip the acvf evaluation
  entirely when the cached prefix already covers them.

Clipping bookkeeping (the count, total mass, and extrema of any
negative eigenvalues) is recorded per entry so the generator's
``on_negative_eigenvalues`` policy behaves identically on a cache hit
and on a miss, and so degenerate fitted ACFs surface in metrics exports
(the ``spectral.clipped_eigenvalues`` counter).

Everything here is RNG-neutral: a cached spectrum is bit-identical to a
freshly computed one, so cached and uncached generation draw the same
samples in the same order.
"""

from __future__ import annotations

import threading
import time
import warnings
import weakref
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, List, NamedTuple, Optional, Sequence, Union

import numpy as np

from .._validation import check_choice, check_min_length, check_positive_int
from ..exceptions import CorrelationError, ValidationError
from .coeff_table import acvf_fingerprint
from .correlation import CorrelationModel

__all__ = [
    "EigenvalueEntry",
    "SpectralTable",
    "circulant_eigenvalues",
    "mirror_spectrum",
    "build_eigenvalue_entry",
    "apply_eigenvalue_policy",
    "get_spectral_table",
    "clear_spectral_cache",
    "spectral_cache_info",
    "set_spectral_cache_limits",
    "spectral_cache_metrics",
]

#: Default cache capacity (number of tables kept alive).
_DEFAULT_MAX_TABLES = 8

#: Default largest path length served from the shared cache.  A table
#: costs O(path length) doubles per eigenvalue entry (linear, unlike the
#: quadratic coefficient tables), so the cap is generous: it covers the
#: paper's full 238,626-frame trace with room to spare.  Longer requests
#: bypass the cache (callers may still build and pass an explicit table).
_DEFAULT_MAX_CACHED_LENGTH = 1 << 20

#: Default number of per-path-length eigenvalue entries kept per table
#: (insertion-order eviction).  A Fig. 16 sweep touches one entry per
#: buffer size, so a few dozen covers every runner in the repository.
_DEFAULT_MAX_ENTRIES = 32

#: Relative threshold separating numerical clipping noise from a
#: materially non-embeddable correlation (same value as the seed
#: generator used): a warning is emitted only when the most negative
#: eigenvalue is below ``-threshold * max eigenvalue``.
_MATERIAL_CLIP_RATIO = 1e-6


def mirror_spectrum(half: np.ndarray) -> np.ndarray:
    """Mirror a half spectrum ``h_0 .. h_n`` into the full DFT order.

    The circulant embedding of ``r(0) .. r(n)`` is real and even, so
    its full length-``2n`` spectrum is ``[h_0 .. h_n, h_{n-1} .. h_1]``
    — every full-spectrum value is a bitwise copy of a half-spectrum
    one, which is what makes the two :func:`circulant_eigenvalues`
    views (and the two :class:`EigenvalueEntry` views) agree bit for
    bit by construction.
    """
    half = np.asarray(half)
    return np.concatenate([half, half[-2:0:-1]])


def circulant_eigenvalues(
    acvf: Sequence[float], *, spectrum: str = "half"
) -> np.ndarray:
    """Return the eigenvalues of the circulant embedding of ``acvf``.

    ``acvf`` supplies ``r(0) .. r(n)``; the embedding is the length-2n
    sequence ``r(0), ..., r(n), r(n-1), ..., r(1)`` whose DFT gives the
    eigenvalues.  All eigenvalues non-negative means exact generation
    is possible.

    ``spectrum`` selects the view:

    - ``"full"`` — all ``2n`` eigenvalues, in DFT order.  This is what
      the legacy full-FFT synthesis path consumes.
    - ``"half"`` — the ``n + 1`` distinct eigenvalues (the embedding is
      real and even, so the spectrum is symmetric:
      ``eig[2n - j] == eig[j]``).  This is what the real-FFT synthesis
      path consumes, and all the storage the cache keeps.

    Both views come from **one** half-length real FFT
    (``numpy.fft.rfft`` — the embedding is real, so the redundant
    negative-frequency half is never computed): the full spectrum is
    the mirror ``[h_0 .. h_n, h_{n-1} .. h_1]`` of the half spectrum,
    so the two views agree bit for bit *by construction*.  (An earlier
    revision computed the two views with two different FFT calls, which
    differed at the last-ulp level — enough to break the
    cached/uncached bit-identity contract.  Deriving one view from the
    other makes the agreement structural rather than numerical.)
    """
    check_choice(spectrum, "spectrum", ("half", "full"))
    r = check_min_length(acvf, "acvf", 2)
    circ = np.concatenate([r, r[-2:0:-1]])
    # .copy() detaches the real view from the complex rfft output so
    # the cache stores n + 1 doubles, not a view pinning 2(n + 1).
    half = np.fft.rfft(circ).real.copy()
    return mirror_spectrum(half) if spectrum == "full" else half


class EigenvalueEntry:
    """One cached circulant spectrum with its clipping bookkeeping.

    Only the ``n + 1`` distinct half-spectrum values are *stored* (the
    embedding spectrum is symmetric); the legacy full-spectrum view is
    materialized lazily — and cached — on first access, as the bitwise
    mirror of the half spectrum (:func:`mirror_spectrum`), so the two
    views always agree bit for bit and consumers of the real-FFT
    synthesis path never pay for the redundant half.

    Attributes
    ----------
    half_eigenvalues:
        The ``n + 1`` distinct eigenvalues ``h_0 .. h_n`` with
        negatives clipped to zero, read-only.  This is all the cache
        stores.
    eigenvalues:
        Full-spectrum view (length ``2n``, DFT order), read-only —
        lazily mirrored from :attr:`half_eigenvalues` and cached, so
        repeated access returns the identical object.
    clipped_count:
        Number of negative eigenvalues that were clipped, counted with
        *full-spectrum multiplicity* (interior half-spectrum values
        appear twice in the embedding); 0 for an exactly embeddable
        correlation.
    clipped_mass:
        Total absolute mass ``sum |eig_j|`` over the clipped
        eigenvalues (full-spectrum multiplicity).
    min_eigenvalue:
        Most negative raw eigenvalue (0.0 when nothing was clipped).
    max_eigenvalue:
        Largest raw eigenvalue, the scale the materiality threshold is
        relative to (0.0 when nothing was clipped — it is only
        computed, and only meaningful, alongside clipping).
    """

    __slots__ = (
        "_half",
        "_full",
        "clipped_count",
        "clipped_mass",
        "min_eigenvalue",
        "max_eigenvalue",
    )

    def __init__(
        self,
        eigenvalues: Optional[np.ndarray] = None,
        clipped_count: int = 0,
        clipped_mass: float = 0.0,
        min_eigenvalue: float = 0.0,
        max_eigenvalue: float = 0.0,
        *,
        half_eigenvalues: Optional[np.ndarray] = None,
    ) -> None:
        if (eigenvalues is None) == (half_eigenvalues is None):
            raise ValidationError(
                "EigenvalueEntry takes exactly one of eigenvalues= "
                "(full spectrum) or half_eigenvalues="
            )
        if half_eigenvalues is not None:
            half = np.asarray(half_eigenvalues, dtype=float)
            half.flags.writeable = False
            self._half = half
            self._full: Optional[np.ndarray] = None
        else:
            full = np.asarray(eigenvalues, dtype=float)
            full.flags.writeable = False
            # The distinct values are the first m/2 + 1 (DFT order);
            # a read-only slice view, so no storage is duplicated.
            half = full[: full.size // 2 + 1]
            half.flags.writeable = False
            self._half = half
            self._full = full
        self.clipped_count = int(clipped_count)
        self.clipped_mass = float(clipped_mass)
        self.min_eigenvalue = float(min_eigenvalue)
        self.max_eigenvalue = float(max_eigenvalue)

    @property
    def half_eigenvalues(self) -> np.ndarray:
        """The stored ``n + 1`` distinct (clipped) eigenvalues."""
        return self._half

    @property
    def eigenvalues(self) -> np.ndarray:
        """Full-spectrum view, mirrored lazily and cached."""
        if self._full is None:
            full = mirror_spectrum(self._half)
            full.flags.writeable = False
            self._full = full
        return self._full

    @property
    def material(self) -> bool:
        """Whether the clipping is material rather than numerical noise."""
        return (
            self.clipped_count > 0
            and self.min_eigenvalue
            < -_MATERIAL_CLIP_RATIO * self.max_eigenvalue
        )

    @property
    def nbytes(self) -> int:
        """Bytes held by the stored spectra (owning arrays only)."""
        total = 0
        for array in (self._half, self._full):
            if array is not None and array.base is None:
                total += array.nbytes
        return int(total)

    def __repr__(self) -> str:
        return (
            f"EigenvalueEntry(n={self._half.size - 1}, "
            f"clipped_count={self.clipped_count})"
        )


def build_eigenvalue_entry(acvf: Sequence[float]) -> EigenvalueEntry:
    """Build an :class:`EigenvalueEntry` from ``r(0) .. r(n)``.

    The raw half spectrum comes from :func:`circulant_eigenvalues`
    (``spectrum="half"`` — one real FFT); negatives are clipped to
    zero here, once, with the count/mass/extrema recorded at
    *full-spectrum multiplicity* (interior values count twice, the DC
    and Nyquist endpoints once) so the per-call policy in the
    generator warns or raises identically to the legacy full-spectrum
    build on every reuse.
    """
    raw = circulant_eigenvalues(acvf, spectrum="half")
    # Fast path first: embeddable correlations (the common case) need
    # only the min/max scan, not the mask allocations below — the
    # bypass path pays this on every generate() call, so it is bounded
    # to a small fraction of a generation in the ablation bench.
    minimum = float(raw.min())
    if minimum >= 0.0:
        count = 0
        clipped_mass = 0.0
        minimum = 0.0
        maximum = 0.0
        half = raw
    else:
        negative = raw < 0
        # Full-spectrum multiplicity: index j of the half spectrum
        # appears twice in the embedding except the endpoints (DC and
        # Nyquist), which appear once.
        weights = np.full(raw.size, 2.0)
        weights[0] = 1.0
        weights[-1] = 1.0
        count = int((weights[negative]).sum())
        clipped_mass = float(-(weights[negative] * raw[negative]).sum())
        maximum = float(raw.max())
        half = np.where(negative, 0.0, raw)
    return EigenvalueEntry(
        half_eigenvalues=half,
        clipped_count=count,
        clipped_mass=clipped_mass,
        min_eigenvalue=minimum,
        max_eigenvalue=maximum,
    )


def apply_eigenvalue_policy(
    entry: EigenvalueEntry,
    on_negative_eigenvalues: str,
    *,
    metrics=None,
    stacklevel: int = 3,
    spectrum: str = "full",
) -> np.ndarray:
    """Enforce the negative-eigenvalue policy for one generation call.

    Returns the (clipped) eigenvalues to generate with — the full
    2n-point spectrum by default, or the stored ``n + 1`` distinct
    values with ``spectrum="half"`` (what the real-FFT synthesis path
    consumes; the two views are bitwise-consistent mirrors).
    ``"raise"`` raises :class:`~repro.exceptions.CorrelationError`
    whenever the entry records clipping; ``"clip"`` counts the clipped
    eigenvalues (module statistics plus the optional ``metrics``
    context's ``spectral.clipped_eigenvalues`` counter) and warns when
    the clipping is material.  Because the entry carries the
    raw-spectrum bookkeeping, the policy behaves identically whether
    the entry came from a cache hit or was just built.
    """
    check_choice(spectrum, "spectrum", ("half", "full"))
    if entry.clipped_count:
        if on_negative_eigenvalues == "raise":
            raise CorrelationError(
                "circulant embedding has negative eigenvalues "
                f"(min {entry.min_eigenvalue:.3e}); the correlation is "
                "not embeddable"
            )
        with _stats_lock:
            _stats["clipped_eigenvalues"] += entry.clipped_count
        if metrics is not None and getattr(metrics, "enabled", True):
            metrics.inc(
                "spectral.clipped_eigenvalues", entry.clipped_count
            )
        if entry.material:
            warnings.warn(
                "circulant embedding clipped "
                f"{entry.clipped_count} negative eigenvalues "
                f"(min {entry.min_eigenvalue:.3e}, total mass "
                f"{entry.clipped_mass:.3e} against max eigenvalue "
                f"{entry.max_eigenvalue:.3e}); output correlation is "
                "approximate",
                RuntimeWarning,
                stacklevel=stacklevel,
            )
    return (
        entry.half_eigenvalues if spectrum == "half" else entry.eigenvalues
    )


class SpectralTable:
    """All circulant spectra for one autocovariance, built lazily.

    Parameters
    ----------
    acvf:
        Autocovariance sequence ``r(0), ..., r(L)`` (copied).  The
        table supports path lengths up to ``L`` — an ``n``-sample
        generation reads the prefix ``r(0) .. r(n)``.

    Notes
    -----
    The table is safe to share across threads: eigenvalue entries are
    built under an internal lock with a double-checked lookup, stored
    entries are immutable (read-only arrays), and :meth:`extend` only
    grows the acvf prefix — entries built from a shorter prefix stay
    valid because extension never changes already-covered lags.
    """

    def __init__(
        self, acvf: Union[Sequence[float], np.ndarray]
    ) -> None:
        if isinstance(acvf, CorrelationModel):
            raise ValidationError(
                "SpectralTable takes an explicit acvf sequence; use "
                "get_spectral_table(model, n) for model-driven lookup"
            )
        r = np.array(np.asarray(acvf, dtype=float), copy=True)
        if r.ndim != 1 or r.size < 2:
            raise ValidationError(
                "acvf must be a 1-D sequence of at least 2 lags "
                f"(r(0), r(1), ...), got shape {r.shape}"
            )
        self._lock = threading.RLock()
        self._acvf = r
        self._entries: "OrderedDict[int, EigenvalueEntry]" = OrderedDict()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def horizon(self) -> int:
        """Number of stored autocovariance lags (``len(acvf)``)."""
        return self._acvf.size

    @property
    def max_length(self) -> int:
        """Longest path length this table can drive (``horizon - 1``)."""
        return self._acvf.size - 1

    @property
    def acvf(self) -> np.ndarray:
        """The autocovariance backing this table (read-only view)."""
        view = self._acvf[:]
        view.flags.writeable = False
        return view

    @property
    def entry_count(self) -> int:
        """Number of cached eigenvalue entries."""
        return len(self._entries)

    def acvf_prefix(self, length: int) -> np.ndarray:
        """Read-only view of ``r(0) .. r(length - 1)``."""
        length = check_positive_int(length, "length")
        acvf = self._acvf
        if length > acvf.size:
            raise ValidationError(
                f"table holds {acvf.size} lags, requested {length}"
            )
        view = acvf[:length]
        view.flags.writeable = False
        return view

    def nbytes(self) -> int:
        """Approximate memory footprint of the cached spectra."""
        with self._lock:
            return int(
                self._acvf.nbytes
                + sum(
                    entry.nbytes for entry in self._entries.values()
                )
            )

    # ------------------------------------------------------------------
    # Eigenvalue entries
    # ------------------------------------------------------------------

    def eigenvalues(self, n: int) -> EigenvalueEntry:
        """The (clipped) circulant spectrum for an ``n``-sample path.

        Built from ``r(0) .. r(n)`` on first request and cached;
        concurrent requests for the same length build it exactly once
        (double-checked under the table lock).  Readers of an existing
        entry never block.
        """
        n = check_positive_int(n, "n")
        entry = self._entries.get(n)
        if entry is not None:
            _note_entry_hit()
            return entry
        with self._lock:
            entry = self._entries.get(n)
            if entry is not None:
                _note_entry_hit()
                return entry
            if n + 1 > self._acvf.size:
                raise ValidationError(
                    f"table of horizon {self.horizon} lags supports "
                    f"path lengths up to {self.max_length}, "
                    f"requested {n}"
                )
            start = time.perf_counter()
            entry = build_eigenvalue_entry(self._acvf[: n + 1])
            elapsed = time.perf_counter() - start
            while len(self._entries) >= _max_entries:
                self._entries.popitem(last=False)
            self._entries[n] = entry
        _note_entry_build(elapsed)
        return entry

    # ------------------------------------------------------------------
    # Prefix sharing
    # ------------------------------------------------------------------

    def is_prefix_of(self, acvf: np.ndarray) -> bool:
        """True if this table's acvf is a leading prefix of ``acvf``."""
        other = np.asarray(acvf, dtype=float)
        mine = self._acvf
        m = min(mine.size, other.size)
        return bool(np.array_equal(mine[:m], other[:m]))

    def extend(
        self, acvf: Union[Sequence[float], np.ndarray]
    ) -> "SpectralTable":
        """Grow the stored acvf in place to cover a longer prefix.

        ``acvf`` must extend the current sequence exactly (bit-for-bit
        prefix match).  Cached eigenvalue entries are kept: each was
        built from a prefix the extension does not touch, so they stay
        bit-identical to what a fresh build would produce.
        """
        new = np.array(np.asarray(acvf, dtype=float), copy=True)
        if new.ndim != 1:
            raise ValidationError(
                f"acvf must be one-dimensional, got shape {new.shape}"
            )
        with self._lock:
            if not self.is_prefix_of(new):
                raise ValidationError(
                    "extension acvf disagrees with the table's prefix"
                )
            if new.size <= self._acvf.size:
                return self
            self._acvf = new
        return self

    def __repr__(self) -> str:
        return (
            f"SpectralTable(horizon={self.horizon}, "
            f"entries={self.entry_count})"
        )


class SpectralCacheInfo(NamedTuple):
    """Statistics for :func:`get_spectral_table` and the entry builds."""

    hits: int
    misses: int
    extensions: int
    evictions: int
    tables: int
    eigenvalue_entries: int
    eigenvalue_builds: int
    eigenvalue_hits: int
    clipped_eigenvalues: int
    max_tables: int
    max_cached_length: int


_cache_lock = threading.RLock()
_cache: "OrderedDict[bytes, List[SpectralTable]]" = OrderedDict()
#: Identity-keyed weak memo: the last table resolved for a live model.
#: Identity implies the exact same acvf values (model evaluation is
#: deterministic), so a memo hit needs no prefix verification and —
#: when the cached horizon already covers the request — no acvf
#: evaluation at all.
_model_memo: "weakref.WeakKeyDictionary[CorrelationModel, SpectralTable]" = (
    weakref.WeakKeyDictionary()
)
#: Leaf lock for the statistics dict: taken with other locks held but
#: never while acquiring one, so table/cache locks cannot deadlock on it.
_stats_lock = threading.Lock()
_stats: Dict[str, float] = {
    "hits": 0,
    "misses": 0,
    "extensions": 0,
    "evictions": 0,
    "entry_builds": 0,
    "entry_hits": 0,
    "entry_build_seconds": 0.0,
    "clipped_eigenvalues": 0,
}
_max_tables = _DEFAULT_MAX_TABLES
_max_cached_length = _DEFAULT_MAX_CACHED_LENGTH
_max_entries = _DEFAULT_MAX_ENTRIES


def _note_entry_hit() -> None:
    with _stats_lock:
        _stats["entry_hits"] += 1


def _note_entry_build(elapsed: float) -> None:
    with _stats_lock:
        _stats["entry_builds"] += 1
        _stats["entry_build_seconds"] += elapsed


def _resolve_request_acvf(
    correlation: Union[CorrelationModel, Sequence[float], np.ndarray],
    lags: int,
) -> np.ndarray:
    """``r(0) .. r(lags - 1)`` from a model or an explicit sequence."""
    if isinstance(correlation, CorrelationModel):
        return correlation.acvf(lags)
    acvf = np.asarray(correlation, dtype=float)
    if acvf.ndim != 1:
        raise ValidationError(
            f"acvf must be one-dimensional, got shape {acvf.shape}"
        )
    if acvf.size < lags:
        raise ValidationError(
            f"acvf of length {acvf.size} supplies too few lags for the "
            f"requested path length (needs {lags})"
        )
    return acvf[:lags]


def get_spectral_table(
    correlation: Union[CorrelationModel, Sequence[float], np.ndarray],
    n: int,
) -> SpectralTable:
    """Return a (possibly shared) spectral table covering ``n`` samples.

    ``n`` is the *path length*; the table resolves the ``n + 1``
    autocovariance lags the circulant embedding needs.  Lookup order:

    1. the weak per-model memo (identity hit — for a live
       :class:`CorrelationModel` whose cached prefix already covers the
       request, the acvf is not re-evaluated at all);
    2. the fingerprint-keyed LRU with full prefix verification, reusing
       a covering table directly or :meth:`extending
       <SpectralTable.extend>` a shorter prefix-exact one in place;
    3. a fresh table on a miss.

    Requests beyond the configured length cap (see
    :func:`set_spectral_cache_limits`) return an uncached table.
    """
    n = check_positive_int(n, "n")
    lags = n + 1
    if n > _max_cached_length:
        return SpectralTable(_resolve_request_acvf(correlation, lags))

    is_model = isinstance(correlation, CorrelationModel)
    if is_model:
        with _cache_lock:
            table = _model_memo.get(correlation)
        if table is not None and table.horizon >= lags:
            with _stats_lock:
                _stats["hits"] += 1
            return table

    acvf = _resolve_request_acvf(correlation, lags)
    key = acvf_fingerprint(acvf)
    with _cache_lock:
        bucket = _cache.get(key)
        if bucket is not None:
            for table in bucket:
                if table.is_prefix_of(acvf):
                    if table.horizon < lags:
                        table.extend(acvf)
                        with _stats_lock:
                            _stats["extensions"] += 1
                    else:
                        with _stats_lock:
                            _stats["hits"] += 1
                    _cache.move_to_end(key)
                    if is_model:
                        _model_memo[correlation] = table
                    return table
        with _stats_lock:
            _stats["misses"] += 1
        table = SpectralTable(acvf)
        _cache.setdefault(key, []).append(table)
        _cache.move_to_end(key)
        if is_model:
            _model_memo[correlation] = table
        _evict_locked()
    return table


def _evict_locked() -> None:
    """Drop least-recently-used buckets beyond the table budget."""
    total = sum(len(bucket) for bucket in _cache.values())
    while total > _max_tables and _cache:
        _, bucket = _cache.popitem(last=False)
        total -= len(bucket)
        with _stats_lock:
            _stats["evictions"] += len(bucket)


def clear_spectral_cache() -> None:
    """Empty the shared table cache and reset its statistics."""
    with _cache_lock:
        _cache.clear()
        _model_memo.clear()
        with _stats_lock:
            _stats.update(
                hits=0,
                misses=0,
                extensions=0,
                evictions=0,
                entry_builds=0,
                entry_hits=0,
                entry_build_seconds=0.0,
                clipped_eigenvalues=0,
            )


def spectral_cache_info() -> SpectralCacheInfo:
    """Current hit/miss/extension/build counters and capacity settings."""
    with _cache_lock:
        tables = sum(len(bucket) for bucket in _cache.values())
        entries = sum(
            table.entry_count
            for bucket in _cache.values()
            for table in bucket
        )
        with _stats_lock:
            return SpectralCacheInfo(
                hits=int(_stats["hits"]),
                misses=int(_stats["misses"]),
                extensions=int(_stats["extensions"]),
                evictions=int(_stats["evictions"]),
                tables=tables,
                eigenvalue_entries=entries,
                eigenvalue_builds=int(_stats["entry_builds"]),
                eigenvalue_hits=int(_stats["entry_hits"]),
                clipped_eigenvalues=int(_stats["clipped_eigenvalues"]),
                max_tables=_max_tables,
                max_cached_length=_max_cached_length,
            )


@contextmanager
def spectral_cache_metrics(metrics, **labels):
    """Record spectral-cache activity within a block into ``metrics``.

    Snapshots the shared cache counters on entry and exit and records
    the deltas as ``spectral.hits`` / ``.misses`` / ``.extensions`` /
    ``.evictions`` / ``.eigenvalue_builds`` / ``.eigenvalue_hits``
    counters, the accumulated ``spectral.eigenvalue_build_seconds``
    (as a summary observation, the PR 3 timer convention), and a
    ``spectral.tables`` gauge.

    ``metrics`` is duck-typed (anything with ``inc``/``set``/
    ``observe``, e.g. a :class:`repro.observability.RunContext`) so
    this module never imports :mod:`repro.observability` — same
    layering rule as :func:`~repro.processes.coeff_table.cache_metrics`.
    ``None`` or a disabled context makes the block free.
    """
    enabled = metrics is not None and getattr(metrics, "enabled", True)
    if not enabled:
        yield
        return
    with _stats_lock:
        before = dict(_stats)
    try:
        yield
    finally:
        with _cache_lock:
            tables = sum(len(bucket) for bucket in _cache.values())
            with _stats_lock:
                after = dict(_stats)
        for key in (
            "hits",
            "misses",
            "extensions",
            "evictions",
            "entry_builds",
            "entry_hits",
        ):
            delta = after.get(key, 0) - before.get(key, 0)
            if delta:
                name = key.replace("entry_", "eigenvalue_")
                metrics.inc(f"spectral.{name}", delta, **labels)
        build_seconds = after.get("entry_build_seconds", 0.0) - before.get(
            "entry_build_seconds", 0.0
        )
        if build_seconds > 0:
            metrics.observe(
                "spectral.eigenvalue_build_seconds",
                build_seconds,
                **labels,
            )
        metrics.set("spectral.tables", tables, **labels)


def set_spectral_cache_limits(
    *,
    max_tables: Optional[int] = None,
    max_cached_length: Optional[int] = None,
    max_entries_per_table: Optional[int] = None,
) -> None:
    """Adjust the cache budget.

    ``max_tables`` bounds the number of live tables (LRU eviction);
    ``max_cached_length`` bounds the path length served from the cache
    (a cached entry costs ``2n`` doubles — linear, so the default cap
    is far above the coefficient-table one); ``max_entries_per_table``
    bounds the per-table eigenvalue entries (insertion-order eviction).
    """
    global _max_tables, _max_cached_length, _max_entries
    with _cache_lock:
        if max_tables is not None:
            _max_tables = check_positive_int(max_tables, "max_tables")
        if max_cached_length is not None:
            _max_cached_length = check_positive_int(
                max_cached_length, "max_cached_length"
            )
        if max_entries_per_table is not None:
            _max_entries = check_positive_int(
                max_entries_per_table, "max_entries_per_table"
            )
        _evict_locked()
