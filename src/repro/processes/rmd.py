"""Random midpoint displacement (RMD) generation of fractional noise.

RMD was the era's fast approximate fBm generator (popularised by
Mandelbrot's fractal work, the paper's reference [19], and used by
Lau, Erramilli, Wang & Willinger for traffic synthesis): recursively
bisect the interval, displacing each midpoint by a Gaussian whose
variance shrinks by ``2^{-2H}`` per level.  It costs O(n) and needs no
autocovariance machinery — but it is *approximate*: the increments are
not exactly stationary and their correlation deviates from true fGn at
short lags.  The ablation bench quantifies that bias against the exact
Hosking/Davies-Harte generators, which is precisely why this library
uses the exact methods for the paper's experiments.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._validation import check_hurst, check_positive_int
from ..stats.random import RandomState, make_rng

__all__ = ["rmd_generate", "rmd_fbm"]


def rmd_fbm(
    hurst: float,
    levels: int,
    *,
    random_state: RandomState = None,
) -> np.ndarray:
    """Approximate fBm path on ``2^levels + 1`` points via RMD.

    The path starts at 0 and ends at a ``N(0, 1)`` draw; midpoints are
    recursively displaced with level-``l`` variance
    ``(1 - 2^{2H-2}) 2^{-2Hl}``, the classical RMD schedule.
    """
    hurst = check_hurst(hurst)
    levels = check_positive_int(levels, "levels")
    rng = make_rng(random_state)
    n = (1 << levels) + 1
    path = np.zeros(n)
    path[-1] = rng.standard_normal()
    # Displacement variance at the first bisection level.
    variance = (1.0 - 2.0 ** (2.0 * hurst - 2.0)) / 4.0 ** hurst
    step = n - 1
    while step > 1:
        half = step // 2
        midpoints = np.arange(half, n - 1, step)
        averages = 0.5 * (path[midpoints - half] + path[midpoints + half])
        path[midpoints] = averages + np.sqrt(variance) * (
            rng.standard_normal(midpoints.size)
        )
        variance /= 4.0 ** hurst
        step = half
    return path


def rmd_generate(
    hurst: float,
    n: int,
    *,
    size: Optional[int] = None,
    random_state: RandomState = None,
) -> np.ndarray:
    """Approximate fGn of length ``n`` as differenced RMD fBm.

    Increments are rescaled to unit variance.  Fast (O(n)) but biased:
    prefer :func:`~repro.processes.fgn.fgn_generate` for anything
    quantitative; this generator exists for speed comparisons and as
    the historical baseline.
    """
    check_hurst(hurst)
    n = check_positive_int(n, "n")
    levels = max(1, int(np.ceil(np.log2(n))))
    rng = make_rng(random_state)
    batch = 1 if size is None else check_positive_int(size, "size")
    out = np.empty((batch, n))
    for row in range(batch):
        path = rmd_fbm(hurst, levels, random_state=rng)
        increments = np.diff(path)[:n]
        std = increments.std()
        out[row] = increments / (std if std > 0 else 1.0)
    return out[0] if size is None else out
