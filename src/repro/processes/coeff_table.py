"""Shared Durbin-Levinson coefficient tables with an acvf-keyed cache.

Hosking's exact generator (paper eq. 1-6) spends a large share of its
O(n^2) budget on the Durbin-Levinson recursion itself, and the paper's
queueing experiments (Figs. 14-17) re-run that recursion for every
buffer size, every competing correlation model, and every twisted-mean
candidate even though the background autocovariance never changes.
This module factors the recursion out into a :class:`CoefficientTable`
that is computed once per *autocovariance sequence* and shared by every
generator run over the same background model:

- **Packed storage.**  Row ``k`` of the recursion (``phi_k1 .. phi_kk``)
  is stored in a packed lower-triangular buffer at offset
  ``k (k - 1) / 2``; conditional variances ``v_k``, their square roots,
  and the coefficient sums ``s_k = sum_j phi_kj`` (needed by the
  mean-twisting likelihood ratios of Appendix B) are stored alongside.
- **Lazy, prefix-shareable rows.**  Rows are materialized on demand up
  to the highest step any consumer has touched, so a horizon-``k`` run
  is literally a prefix read of a horizon-``n`` table — exactly the
  shape of the ``horizon = 10 b`` buffer sweeps of Fig. 16.  A table
  can also be :meth:`extended <CoefficientTable.extend>` in place when
  a longer prefix-compatible autocovariance arrives, resuming the
  recursion from its last built row instead of starting over.
- **Fingerprint cache.**  :func:`get_coefficient_table` memoizes tables
  behind a small LRU cache keyed by a fingerprint of the leading
  autocovariance lags, so independent call sites (the batch generator,
  the incremental generator, the importance-sampling runners) all share
  one table per background model without coordinating.

Because the table wraps the exact same
:class:`~repro.processes.partial_corr.DurbinLevinson` recursion, every
stored coefficient is bit-identical to what the incremental path would
have produced — table-backed generation is a pure reuse optimization,
not an approximation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from contextlib import contextmanager
from typing import Dict, List, NamedTuple, Sequence, Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError
from .correlation import CorrelationModel
from .partial_corr import DurbinLevinson

__all__ = [
    "CoefficientTable",
    "acvf_fingerprint",
    "get_coefficient_table",
    "clear_coefficient_cache",
    "coefficient_cache_info",
    "set_coefficient_cache_limits",
    "cache_metrics",
    "resolve_acvf",
]

#: Number of leading lags hashed by :func:`acvf_fingerprint`.  Distinct
#: models almost always differ within the first few lags; full prefix
#: equality is verified on every cache hit, so collisions only cost a
#: comparison, never correctness.
_FINGERPRINT_LAGS = 8

#: Default cache capacity (number of tables kept alive).
_DEFAULT_MAX_TABLES = 8

#: Default largest horizon served from the shared cache.  A table costs
#: O(horizon^2 / 2) doubles, so uncapped caching of very long runs
#: would dwarf the sample paths themselves; longer requests simply
#: bypass the cache (callers may still build and pass an explicit
#: table).
_DEFAULT_MAX_CACHED_HORIZON = 4096


def resolve_acvf(
    correlation: Union[CorrelationModel, Sequence[float]], n: int
) -> np.ndarray:
    """Return ``r(0..n-1)`` from a model or an explicit sequence."""
    if isinstance(correlation, CorrelationModel):
        return correlation.acvf(n)
    acvf = np.asarray(correlation, dtype=float)
    if acvf.ndim != 1:
        raise ValidationError(
            f"acvf must be one-dimensional, got shape {acvf.shape}"
        )
    if acvf.size < n:
        raise ValidationError(
            f"acvf of length {acvf.size} cannot generate {n} samples"
        )
    return acvf[:n]


class CoefficientTable:
    """All Durbin-Levinson outputs for one autocovariance, built lazily.

    Parameters
    ----------
    acvf:
        Autocovariance sequence ``r(0), ..., r(n-1)`` (copied).  The
        table supports generating up to ``n`` samples, i.e. recursion
        steps ``1 .. n-1``.
    precompute:
        Materialize every row eagerly.  The default builds rows on
        demand (see :meth:`ensure`), so consumers that stop early —
        importance-sampling replications that all crossed the buffer,
        say — never pay for rows past their stopping time.

    Notes
    -----
    Row accessors return read-only views into the packed buffer — no
    per-step copies.  The table is safe to share across threads: row
    construction and extension are serialized by an internal lock, rows
    at or below ``_built`` are immutable, and ``_built`` is only
    advanced (and the extension buffers only published) after their
    contents are fully written, so lock-free readers of built rows
    never observe partially written data.
    """

    def __init__(
        self,
        acvf: Union[CorrelationModel, Sequence[float], np.ndarray],
        *,
        precompute: bool = False,
    ) -> None:
        if isinstance(acvf, CorrelationModel):
            raise ValidationError(
                "CoefficientTable takes an explicit acvf sequence; use "
                "get_coefficient_table(model, n) for model-driven lookup"
            )
        r = np.array(np.asarray(acvf, dtype=float), copy=True)
        if r.ndim != 1 or r.size == 0:
            raise ValidationError(
                f"acvf must be a non-empty 1-D sequence, got shape {r.shape}"
            )
        self._lock = threading.RLock()
        self._acvf = r
        self._state = DurbinLevinson(r)
        n = r.size
        self._packed = np.empty(n * (n - 1) // 2, dtype=float)
        self._variances = np.empty(n, dtype=float)
        self._sqrt_variances = np.empty(n, dtype=float)
        self._phi_sums = np.empty(n, dtype=float)
        self._variances[0] = self._state.variance
        self._sqrt_variances[0] = np.sqrt(self._state.variance)
        self._phi_sums[0] = 0.0
        self._built = 0
        if precompute:
            self.ensure(self.max_step)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def horizon(self) -> int:
        """Number of samples this table can drive (``len(acvf)``)."""
        return self._acvf.size

    @property
    def max_step(self) -> int:
        """Largest recursion step available (``horizon - 1``)."""
        return self._acvf.size - 1

    @property
    def built_step(self) -> int:
        """Highest recursion step materialized so far."""
        return self._built

    @property
    def acvf(self) -> np.ndarray:
        """The autocovariance backing this table (read-only view)."""
        view = self._acvf[:]
        view.flags.writeable = False
        return view

    def nbytes(self) -> int:
        """Approximate memory footprint of the coefficient storage."""
        return int(
            self._packed.nbytes
            + self._variances.nbytes
            + self._sqrt_variances.nbytes
            + self._phi_sums.nbytes
        )

    # ------------------------------------------------------------------
    # Row construction and access
    # ------------------------------------------------------------------

    def ensure(self, step: int) -> "CoefficientTable":
        """Materialize rows up to ``step`` (no-op if already built).

        Rows at or below :attr:`built_step` are immutable, so the
        unlocked fast path is safe; the bounds check happens under the
        lock so a request racing a concurrent :meth:`extend` sees the
        enlarged horizon rather than spuriously failing.
        """
        if step <= self._built:
            return self
        with self._lock:
            if step > self.max_step:
                raise ValidationError(
                    f"table of horizon {self.horizon} supports at most step "
                    f"{self.max_step}, requested {step}"
                )
            state = self._state
            packed = self._packed
            variances = self._variances
            sqrt_variances = self._sqrt_variances
            phi_sums = self._phi_sums
            while self._built < step:
                phi, variance = state.advance()
                k = state.step
                offset = k * (k - 1) // 2
                packed[offset : offset + k] = phi
                variances[k] = variance
                sqrt_variances[k] = np.sqrt(variance)
                phi_sums[k] = phi.sum()
                # Publish only after the row data is written so
                # lock-free readers gated on _built never see a
                # half-written row.
                self._built = k
        return self

    def phi_row(self, k: int) -> np.ndarray:
        """Coefficient row ``phi_k1 .. phi_kk`` as a read-only view."""
        if k < 1:
            raise ValidationError(
                f"step must be in [1, {self.max_step}], got {k}"
            )
        if k > self._built:
            self.ensure(k)
        offset = k * (k - 1) // 2
        view = self._packed[offset : offset + k]
        view.flags.writeable = False
        return view

    def variance(self, k: int) -> float:
        """Conditional variance ``v_k`` (``v_0 = r(0)``)."""
        if k < 0:
            raise ValidationError(
                f"step must be in [0, {self.max_step}], got {k}"
            )
        if k > self._built:
            self.ensure(k)
        return float(self._variances[k])

    def sqrt_variance(self, k: int) -> float:
        """``sqrt(v_k)``, precomputed once per row."""
        if k < 0:
            raise ValidationError(
                f"step must be in [0, {self.max_step}], got {k}"
            )
        if k > self._built:
            self.ensure(k)
        return float(self._sqrt_variances[k])

    def phi_sum(self, k: int) -> float:
        """``s_k = sum_j phi_kj`` (0 at step 0), used by mean twisting."""
        if k < 0:
            raise ValidationError(
                f"step must be in [0, {self.max_step}], got {k}"
            )
        if k > self._built:
            self.ensure(k)
        return float(self._phi_sums[k])

    def sqrt_variances(self, n: int) -> np.ndarray:
        """Read-only view of ``sqrt(v_0) .. sqrt(v_{n-1})``."""
        self.ensure(n - 1)
        view = self._sqrt_variances[:n]
        view.flags.writeable = False
        return view

    def variances(self, n: int) -> np.ndarray:
        """Read-only view of ``v_0 .. v_{n-1}`` for bulk consumers.

        The shared-path twist sweep evaluates every candidate twist's
        likelihood ratio from the stored per-step moments, so it wants
        the whole variance sequence at once rather than ``n`` scalar
        :meth:`variance` calls.
        """
        self.ensure(n - 1)
        view = self._variances[:n]
        view.flags.writeable = False
        return view

    def phi_sums(self, n: int) -> np.ndarray:
        """Read-only view of ``s_0 .. s_{n-1}`` (``s_0 = 0``).

        Mean twisting by ``m*`` shifts step ``k``'s conditional mean by
        ``m* (1 - s_k)`` (Appendix B), so sweep-style consumers read the
        full coefficient-sum sequence in one call.
        """
        self.ensure(n - 1)
        view = self._phi_sums[:n]
        view.flags.writeable = False
        return view

    def packed_rows(self, n: int) -> np.ndarray:
        """Read-only packed view of rows ``1 .. n-1`` for bulk consumers.

        Row ``k`` occupies ``[k (k-1) / 2, k (k+1) / 2)`` within the
        returned buffer; :func:`~repro.processes.hosking.hosking_generate`
        walks it with a running offset instead of calling
        :meth:`phi_row` per step.
        """
        self.ensure(n - 1)
        view = self._packed[: n * (n - 1) // 2]
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------
    # Prefix sharing
    # ------------------------------------------------------------------

    def is_prefix_of(self, acvf: np.ndarray) -> bool:
        """True if this table's acvf is a leading prefix of ``acvf``."""
        other = np.asarray(acvf, dtype=float)
        m = min(self._acvf.size, other.size)
        return bool(np.array_equal(self._acvf[:m], other[:m]))

    def extend(self, acvf: Union[Sequence[float], np.ndarray]) -> "CoefficientTable":
        """Grow the table in place to cover a longer autocovariance.

        ``acvf`` must extend the current sequence exactly (bit-for-bit
        prefix match); already-built rows are kept and the recursion
        resumes from the last built step, so extension never recomputes
        work that a shorter-horizon consumer already paid for.
        """
        new = np.array(np.asarray(acvf, dtype=float), copy=True)
        with self._lock:
            if not self.is_prefix_of(new):
                raise ValidationError(
                    "extension acvf disagrees with the table's prefix"
                )
            if new.size <= self._acvf.size:
                return self
            built = self._built
            n = new.size
            packed = np.empty(n * (n - 1) // 2, dtype=float)
            variances = np.empty(n, dtype=float)
            sqrt_variances = np.empty(n, dtype=float)
            phi_sums = np.empty(n, dtype=float)
            used = built * (built + 1) // 2
            packed[:used] = self._packed[:used]
            variances[: built + 1] = self._variances[: built + 1]
            sqrt_variances[: built + 1] = self._sqrt_variances[: built + 1]
            phi_sums[: built + 1] = self._phi_sums[: built + 1]
            state = DurbinLevinson.resume(
                new,
                step=built,
                phi=self._state.phi,
                variance=self._state.variance,
                partials=self._state.partials,
            )
            # Publish the enlarged buffers only after the prefix copy:
            # the old arrays stay valid and the new ones agree with
            # them on every row <= built, so a lock-free reader racing
            # these rebinds sees identical data either way.
            self._packed = packed
            self._variances = variances
            self._sqrt_variances = sqrt_variances
            self._phi_sums = phi_sums
            self._state = state
            self._acvf = new
        return self

    def __repr__(self) -> str:
        return (
            f"CoefficientTable(horizon={self.horizon}, "
            f"built_step={self.built_step})"
        )


def acvf_fingerprint(acvf: np.ndarray) -> bytes:
    """Cache key for an autocovariance: bytes of its leading lags.

    Only the first ``min(len(acvf), 8)`` lags are hashed — enough to
    separate real-world models — and every lookup verifies full prefix
    equality before sharing a table, so fingerprint collisions degrade
    to a plain comparison.
    """
    head = np.ascontiguousarray(
        acvf[: min(acvf.size, _FINGERPRINT_LAGS)], dtype=float
    )
    return head.tobytes()


class CacheInfo(NamedTuple):
    """Statistics for :func:`get_coefficient_table`."""

    hits: int
    misses: int
    extensions: int
    tables: int
    max_tables: int
    max_cached_horizon: int


_cache_lock = threading.RLock()
_cache: "OrderedDict[bytes, List[CoefficientTable]]" = OrderedDict()
_stats: Dict[str, int] = {
    "hits": 0, "misses": 0, "extensions": 0, "evictions": 0,
}
_max_tables = _DEFAULT_MAX_TABLES
_max_cached_horizon = _DEFAULT_MAX_CACHED_HORIZON


def get_coefficient_table(
    correlation: Union[CorrelationModel, Sequence[float], np.ndarray],
    n: int,
) -> CoefficientTable:
    """Return a (possibly shared) coefficient table covering ``n`` samples.

    The cache is keyed by :func:`acvf_fingerprint` of the resolved
    autocovariance.  A cached table whose acvf is a prefix-exact match
    is reused directly when long enough, or :meth:`extended
    <CoefficientTable.extend>` in place when the request is longer —
    either way the Durbin-Levinson recursion never runs twice over the
    same lags.  Requests beyond the configured horizon cap (see
    :func:`set_coefficient_cache_limits`) return an uncached table.
    """
    n = check_positive_int(n, "n")
    acvf = resolve_acvf(correlation, n)
    if n > _max_cached_horizon:
        return CoefficientTable(acvf)
    key = acvf_fingerprint(acvf)
    with _cache_lock:
        bucket = _cache.get(key)
        if bucket is not None:
            for table in bucket:
                if table.is_prefix_of(acvf):
                    if table.horizon < n:
                        table.extend(acvf)
                        _stats["extensions"] += 1
                    else:
                        _stats["hits"] += 1
                    _cache.move_to_end(key)
                    return table
        _stats["misses"] += 1
        table = CoefficientTable(acvf)
        _cache.setdefault(key, []).append(table)
        _cache.move_to_end(key)
        _evict_locked()
    return table


def _evict_locked() -> None:
    """Drop least-recently-used buckets beyond the table budget."""
    total = sum(len(bucket) for bucket in _cache.values())
    while total > _max_tables and _cache:
        _, bucket = _cache.popitem(last=False)
        total -= len(bucket)
        _stats["evictions"] += len(bucket)


def clear_coefficient_cache() -> None:
    """Empty the shared table cache and reset its statistics."""
    with _cache_lock:
        _cache.clear()
        _stats.update(hits=0, misses=0, extensions=0, evictions=0)


def coefficient_cache_info() -> CacheInfo:
    """Current hit/miss/extension counters and capacity settings."""
    with _cache_lock:
        return CacheInfo(
            hits=_stats["hits"],
            misses=_stats["misses"],
            extensions=_stats["extensions"],
            tables=sum(len(bucket) for bucket in _cache.values()),
            max_tables=_max_tables,
            max_cached_horizon=_max_cached_horizon,
        )


@contextmanager
def cache_metrics(metrics, **labels):
    """Record coeff-table cache activity within a block into ``metrics``.

    Snapshots the shared cache counters on entry and exit and records
    the deltas as ``coeff_table.hits`` / ``.misses`` / ``.extensions``
    / ``.evictions`` counters plus a ``coeff_table.tables`` gauge.

    ``metrics`` is duck-typed (anything with ``inc``/``set``, e.g. a
    :class:`repro.observability.RunContext`) so this module never
    imports :mod:`repro.observability` — the observability package sits
    below :mod:`repro.processes` in the import graph.  ``None`` or a
    disabled context makes the block free.
    """
    enabled = metrics is not None and getattr(metrics, "enabled", True)
    if not enabled:
        yield
        return
    with _cache_lock:
        before = dict(_stats)
    try:
        yield
    finally:
        with _cache_lock:
            after = dict(_stats)
            tables = sum(len(bucket) for bucket in _cache.values())
        for key in ("hits", "misses", "extensions", "evictions"):
            delta = after.get(key, 0) - before.get(key, 0)
            if delta:
                metrics.inc(f"coeff_table.{key}", delta, **labels)
        metrics.set("coeff_table.tables", tables, **labels)


def set_coefficient_cache_limits(
    *,
    max_tables: int = None,
    max_cached_horizon: int = None,
) -> None:
    """Adjust the cache budget (tables kept / largest cached horizon).

    ``max_tables`` bounds the number of live tables (LRU eviction);
    ``max_cached_horizon`` bounds the horizon served from the cache — a
    table costs ``~horizon^2 / 2`` doubles, so the cap keeps very long
    one-off generations from pinning large buffers.
    """
    global _max_tables, _max_cached_horizon
    with _cache_lock:
        if max_tables is not None:
            _max_tables = check_positive_int(max_tables, "max_tables")
        if max_cached_horizon is not None:
            _max_cached_horizon = check_positive_int(
                max_cached_horizon, "max_cached_horizon"
            )
        _evict_locked()
