"""Blocked BLAS-3 kernel for Hosking's conditional recursion.

Hosking's generator advances one conditional Gaussian at a time, and
the repo's per-step implementation spends essentially all of its time
in ``n`` history-times-coefficients products — one memory-bound
mat-vec per time step (``BENCH_hosking.json``: 8.13 s for Hosking vs
0.004 s for Davies-Harte at n=16384).  This module restructures that
hot path around *blocks* of ``B`` consecutive steps:

- **Old-history GEMM.**  For a block covering steps
  ``k0 .. k0+B-1``, every step's conditional mean splits into a
  contribution from the *old* history ``x_0 .. x_{k0-1}`` (already
  fully known when the block starts) and a contribution from the
  ``< B`` samples generated *inside* the block.  The old-history part
  of all ``B`` means is one matrix-matrix product

  .. math::

      M^{old} = X^{rev} \\, \\Phi_{old}^T,
      \\qquad
      \\Phi_{old}[i, t] = \\phi_{k_0+i,\\; i+1+t}

  where ``X^rev`` is the batch's reversed history
  (``X^rev[:, t] = x_{k0-1-t}``) kept in a contiguously maintained
  buffer.  Each ``Phi_old`` row is a *contiguous slice* of the packed
  Durbin-Levinson row, so assembling the operand is a straight copy.
- **Short within-block tail.**  Only the O(B^2) strictly-triangular
  within-block part remains sequential: step ``k0+i`` adds
  ``sum_{j<=i} phi_{k,j} x_{k-j}`` over the at-most-``B-1`` samples
  generated earlier in the same block.

This turns ``n`` memory-bound mat-vecs into ``n/B`` compute-bound
GEMMs plus ``n`` tiny (width ``< B``) products — the classic BLAS-2 to
BLAS-3 promotion.

Exactness contract
------------------
The blocked kernel evaluates the *same* conditional means as the
per-step loop, but accumulates them in a different floating-point
order (two partial sums, BLAS reductions).  Outputs therefore agree to
``rtol ~ 1e-12`` (tested at 1e-10) but are **not bit-identical** to
``block_size=1``.  ``block_size=1`` is the documented exact bypass: it
runs the untouched legacy step loop and reproduces historical outputs
bit for bit.  (Measured in this environment: numpy routes the legacy
negative-strided history view through its internal pairwise-summation
loop, and *any* layout change — a contiguous copy, a positive-strided
slice, ``einsum`` — alters the reduction order and hence the bits; see
``tests/test_hosking_blocked.py::TestBypassBitIdentity``.)
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError

__all__ = [
    "resolve_block_size",
    "iter_blocks",
    "is_block_start",
    "block_width",
    "stack_old_rows",
    "gemm_fraction",
]

#: The ``block_size`` argument accepted by the Hosking interfaces:
#: ``None`` means the default (the exact per-step bypass, ``1``).
BlockSizeArg = Union[None, int]


def resolve_block_size(block_size: BlockSizeArg) -> int:
    """Validate ``block_size``; ``None`` resolves to the exact bypass (1)."""
    if block_size is None:
        return 1
    if isinstance(block_size, bool):
        raise ValidationError(
            f"block_size must be a positive int or None, got {block_size!r}"
        )
    return check_positive_int(block_size, "block_size")


def iter_blocks(n: int, block_size: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(k0, width)`` blocks covering recursion steps ``1 .. n-1``.

    Boundaries sit at multiples of ``block_size`` (the first block is
    ``[1, block_size)``), so a stateful stepper can detect a block
    start from the step index alone — see :func:`is_block_start`.
    """
    k0 = 1
    while k0 < n:
        end = min((k0 // block_size + 1) * block_size, n)
        yield k0, end - k0
        k0 = end


def is_block_start(k: int, block_size: int) -> bool:
    """True when step ``k >= 1`` opens a new block of :func:`iter_blocks`."""
    return k == 1 or k % block_size == 0


def block_width(k0: int, block_size: int, horizon: int) -> int:
    """Width of the :func:`iter_blocks` block starting at step ``k0``."""
    return min((k0 // block_size + 1) * block_size, horizon) - k0


def stack_old_rows(
    rows: Sequence[np.ndarray], k0: int, out: Optional[np.ndarray] = None
) -> np.ndarray:
    """Assemble the ``Phi_old`` operand of the old-history GEMM.

    ``rows[i]`` is the full Durbin-Levinson row ``phi_{k0+i, 1..k0+i}``;
    the slice ``rows[i][i : i + k0]`` holds exactly the coefficients
    that multiply the reversed old history ``x_{k0-1} .. x_0``.  The
    result has shape ``(len(rows), k0)``; with ``k0 == 0`` (a block at
    the very start of the path) it is empty and the GEMM is skipped.
    """
    width = len(rows)
    if out is None:
        out = np.empty((width, k0), dtype=float)
    for i, row in enumerate(rows):
        out[i] = row[i : i + k0]
    return out


def gemm_fraction(n: int, block_size: int) -> float:
    """Analytic share of conditional-mean flops done by block GEMMs.

    Per block, the old-history GEMM performs ``width * k0``
    coefficient-sample products while the within-block tail performs
    ``i`` products at local step ``i`` (``sum i = width (width-1)/2``).
    The batch size scales both identically and cancels.  This is the
    value exported as the ``hosking.gemm_fraction`` gauge: 0.0 for the
    per-step bypass, approaching 1 as ``n / block_size`` grows.
    """
    gemm = 0
    tail = 0
    for k0, width in iter_blocks(n, max(block_size, 1)):
        gemm += width * k0
        tail += width * (width - 1) // 2
    total = gemm + tail
    return float(gemm / total) if total else 0.0


class BlockRows:
    """Per-block coefficient bundle consumed by the blocked steppers.

    Attributes
    ----------
    rows:
        Full coefficient rows for steps ``k0 .. k0+width-1`` (row ``i``
        has length ``k0 + i``).  Views into packed table storage for
        table-backed runs; private copies when collected from an
        incremental :class:`~repro.processes.partial_corr.DurbinLevinson`
        (whose row buffer is reused across steps).
    sqrt_variances:
        ``sqrt(v_k)`` per step of the block.
    variances / phi_sums:
        ``v_k`` and ``s_k = sum_j phi_kj`` per step (needed by the
        stateful stepper's :class:`~repro.processes.hosking.HoskingStep`
        metadata).
    phi_old:
        The stacked ``(width, k0)`` GEMM operand of
        :func:`stack_old_rows`.
    """

    __slots__ = ("k0", "rows", "sqrt_variances", "variances",
                 "phi_sums", "phi_old")

    def __init__(
        self,
        k0: int,
        rows: List[np.ndarray],
        variances: np.ndarray,
        sqrt_variances: np.ndarray,
        phi_sums: np.ndarray,
    ) -> None:
        self.k0 = k0
        self.rows = rows
        self.variances = variances
        self.sqrt_variances = sqrt_variances
        self.phi_sums = phi_sums
        self.phi_old = stack_old_rows(rows, k0)

    @property
    def width(self) -> int:
        return len(self.rows)


def table_block_rows(table, k0: int, width: int) -> BlockRows:
    """Collect a block's coefficients from a shared table (zero-copy rows)."""
    last = k0 + width - 1
    table.ensure(last)
    rows = [table.phi_row(k0 + i) for i in range(width)]
    steps = np.arange(k0, k0 + width)
    return BlockRows(
        k0,
        rows,
        np.array([table.variance(int(k)) for k in steps]),
        np.array([table.sqrt_variance(int(k)) for k in steps]),
        np.array([table.phi_sum(int(k)) for k in steps]),
    )


def incremental_block_rows(state, k0: int, width: int) -> BlockRows:
    """Advance a Durbin-Levinson recursion across a block, copying rows.

    The recursion consumes no randomness, so advancing a whole block
    ahead of generation leaves the innovation stream untouched.
    """
    rows: List[np.ndarray] = []
    variances = np.empty(width)
    sqrt_variances = np.empty(width)
    phi_sums = np.empty(width)
    for i in range(width):
        phi, variance = state.advance()
        rows.append(np.array(phi, copy=True))
        variances[i] = variance
        sqrt_variances[i] = np.sqrt(variance)
        phi_sums[i] = state.phi_sum
    return BlockRows(k0, rows, variances, sqrt_variances, phi_sums)


def generate_blocked(
    z: np.ndarray,
    n: int,
    block_size: int,
    block_rows_for,
    variance0: float,
) -> np.ndarray:
    """Batch-generate ``z.shape[0]`` paths with the blocked kernel.

    Parameters
    ----------
    z:
        Standard-normal innovations, shape ``(batch, n)``.
    n:
        Path length.
    block_size:
        Block width ``B >= 2`` (``B = 1`` callers should use the exact
        per-step bypass instead — this kernel accepts it but pays the
        GEMM bookkeeping for no benefit).
    block_rows_for:
        ``block_rows_for(k0, width) -> BlockRows`` coefficient provider
        (:func:`table_block_rows` or :func:`incremental_block_rows`
        partially applied).
    variance0:
        Unconditional variance ``v_0 = r(0)`` driving the first sample.

    Returns
    -------
    numpy.ndarray
        Sample paths, shape ``(batch, n)``.
    """
    batch = z.shape[0]
    x = np.empty((batch, n), dtype=float)
    # Reversed companion buffer: rev[:, n-1-j] = x_j, so the slice
    # rev[:, n-k:] is the contiguously maintained reversed history
    # x_{k-1} .. x_0 the GEMM consumes (no per-step re-materialization).
    rev = np.empty((batch, n), dtype=float)
    x[:, 0] = np.sqrt(variance0) * z[:, 0]
    rev[:, n - 1] = x[:, 0]
    for k0, width in iter_blocks(n, block_size):
        block = block_rows_for(k0, width)
        # Old-history contribution of every step in the block at once:
        # (batch, k0) @ (k0, width) — the BLAS-3 promotion.
        m_old = rev[:, n - k0 :] @ block.phi_old.T
        sqrt_v = block.sqrt_variances
        for i in range(width):
            k = k0 + i
            mean_k = m_old[:, i]
            if i:
                # Strictly-triangular within-block tail over the < B
                # samples generated inside this block.
                mean_k = mean_k + rev[:, n - k : n - k0] @ block.rows[i][:i]
            x[:, k] = mean_k + sqrt_v[i] * z[:, k]
            if k + 1 < n:
                rev[:, n - k - 1] = x[:, k]
    return x
