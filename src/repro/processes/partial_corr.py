"""Durbin-Levinson recursion and partial autocorrelations.

Hosking's exact generator (paper eq. 1-6) is driven by the partial
linear-regression coefficients ``phi_kj`` and conditional variances
``v_k`` of a Gaussian process with known autocorrelation ``r(k)``.
:class:`DurbinLevinson` computes them incrementally: at step ``k`` it
holds the current coefficient row ``phi_k1 .. phi_kk`` and ``v_k`` and
can advance to step ``k+1`` in O(k) time.

The recursion (paper eq. 3-6, equivalent to the classical
Durbin-Levinson algorithm) is

.. math::

    \\phi_{kk} &= \\Big(r(k) - \\sum_{j=1}^{k-1} \\phi_{k-1,j}\\, r(k-j)\\Big)
                 \\Big/ v_{k-1} \\\\
    \\phi_{kj} &= \\phi_{k-1,j} - \\phi_{kk}\\, \\phi_{k-1,k-j} \\\\
    v_k &= v_{k-1}\\,(1 - \\phi_{kk}^2)

with ``v_0 = r(0)``.  (The paper's eq. 3-4 write the same quantity with
``N_k``/``D_k`` bookkeeping; the forms are algebraically identical.)

A target correlation sequence is positive definite exactly when every
partial autocorrelation satisfies ``|phi_kk| < 1``; the recursion
therefore doubles as an exact validity check, raising
:class:`~repro.exceptions.CorrelationError` on failure.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from .._validation import check_1d_array
from ..exceptions import CorrelationError

__all__ = ["DurbinLevinson", "partial_autocorrelations", "validate_acvf_pd"]

# |phi_kk| >= 1 - _PD_MARGIN is treated as a positive-definiteness failure.
_PD_MARGIN = 1e-12


class DurbinLevinson:
    """Incremental Durbin-Levinson state for a fixed autocovariance.

    Parameters
    ----------
    acvf:
        Autocovariance sequence ``r(0), r(1), ..., r(n-1)``; ``r(0)``
        must be positive.  For the paper's unit-variance background
        processes ``r(0) = 1``.

    Attributes
    ----------
    step:
        Number of completed recursion steps; after construction the
        state describes the distribution of ``X_0`` (step 0).
    phi:
        Current coefficient row ``phi_k1 .. phi_kk`` (length ``step``).
    variance:
        Current conditional variance ``v_step``.
    """

    def __init__(self, acvf: Sequence[float]) -> None:
        r = check_1d_array(acvf, "acvf")
        if r[0] <= 0:
            raise CorrelationError(f"r(0) must be positive, got {r[0]}")
        self._r = r
        self.step = 0
        self.variance = float(r[0])
        self._phi = np.zeros(r.size, dtype=float)
        self._pacf: list = []

    @classmethod
    def resume(
        cls,
        acvf: Sequence[float],
        *,
        step: int,
        phi: Sequence[float],
        variance: float,
        partials: Sequence[float] = (),
    ) -> "DurbinLevinson":
        """Rebuild a recursion state mid-stream from stored outputs.

        Used by :class:`~repro.processes.coeff_table.CoefficientTable`
        to continue a recursion over a *longer* autocovariance whose
        prefix it has already processed: ``step``, the current row
        ``phi_k1 .. phi_kk``, and ``v_step`` are exactly the values the
        original state held, so subsequent :meth:`advance` calls produce
        bit-identical coefficients to an uninterrupted run.
        """
        state = cls(acvf)
        phi_row = np.asarray(phi, dtype=float)
        if step < 0 or step > state.max_step:
            raise CorrelationError(
                f"cannot resume at step {step} with an acvf of length "
                f"{state._r.size}"
            )
        if phi_row.ndim != 1 or phi_row.size != step:
            raise CorrelationError(
                f"resume needs a length-{step} phi row, got shape "
                f"{phi_row.shape}"
            )
        if variance <= 0:
            raise CorrelationError(
                f"resume variance must be positive, got {variance}"
            )
        state.step = step
        state._phi[:step] = phi_row
        state.variance = float(variance)
        state._pacf = [float(p) for p in partials]
        return state

    @property
    def max_step(self) -> int:
        """Largest step the tabulated autocovariance supports."""
        return self._r.size - 1

    @property
    def phi(self) -> np.ndarray:
        """Current coefficient row ``phi_k1 .. phi_kk`` (a copy)."""
        return self._phi[: self.step].copy()

    @property
    def phi_view(self) -> np.ndarray:
        """Current coefficient row as a read-only view (no copy)."""
        view = self._phi[: self.step]
        view.flags.writeable = False
        return view

    @property
    def phi_sum(self) -> float:
        """Sum of the current coefficient row (used by mean twisting)."""
        return float(self._phi[: self.step].sum())

    @property
    def partials(self) -> np.ndarray:
        """Partial autocorrelations ``phi_11 .. phi_kk`` computed so far."""
        return np.asarray(self._pacf, dtype=float)

    def advance(self) -> Tuple[np.ndarray, float]:
        """Advance one step; return the new ``(phi_row_view, variance)``.

        After the k-th call the state predicts ``X_k`` from
        ``x_{k-1} .. x_0`` via ``m_k = sum_j phi_kj x_{k-j}`` with
        conditional variance ``v_k``.

        Raises
        ------
        CorrelationError
            If the autocovariance is not positive definite up to this
            step (``|phi_kk| >= 1`` or a non-positive variance).
        """
        k = self.step + 1
        if k > self.max_step:
            raise CorrelationError(
                f"autocovariance table of length {self._r.size} supports at "
                f"most {self.max_step} steps"
            )
        phi = self._phi
        if k == 1:
            reflection = self._r[1] / self._r[0]
        else:
            # r(k) - sum_{j=1}^{k-1} phi_{k-1,j} r(k-j)
            numer = self._r[k] - phi[: k - 1] @ self._r[k - 1 : 0 : -1]
            reflection = numer / self.variance
        if abs(reflection) >= 1.0 - _PD_MARGIN:
            raise CorrelationError(
                f"autocovariance is not positive definite at lag {k}: "
                f"partial autocorrelation {reflection:.6f}"
            )
        if k > 1:
            head = phi[: k - 1]
            phi[: k - 1] = head - reflection * head[::-1]
        phi[k - 1] = reflection
        self.variance *= 1.0 - reflection * reflection
        if self.variance <= 0:  # pragma: no cover - guarded by reflection
            raise CorrelationError(
                f"conditional variance collapsed at lag {k}"
            )
        self.step = k
        self._pacf.append(float(reflection))
        return self.phi_view, self.variance


def partial_autocorrelations(acvf: Sequence[float]) -> np.ndarray:
    """Return partial autocorrelations ``phi_11 .. phi_nn`` of ``acvf``.

    ``acvf`` provides ``r(0) .. r(n)``; the result has length ``n``.
    """
    state = DurbinLevinson(acvf)
    for _ in range(state.max_step):
        state.advance()
    return state.partials


def validate_acvf_pd(acvf: Sequence[float]) -> bool:
    """Return True if ``acvf`` is positive definite, False otherwise.

    Unlike :func:`partial_autocorrelations` this never raises on an
    invalid sequence, making it suitable for feasibility probing.
    """
    try:
        partial_autocorrelations(acvf)
    except CorrelationError:
        return False
    return True
