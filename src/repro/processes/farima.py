"""FARIMA (fractional ARIMA) processes.

The paper cites the fractional ARIMA(0, d, 0) process of Hosking (1981)
as the asymptotically self-similar model used by Garrett & Willinger to
provide LRD behaviour, and notes that a full ARIMA(p, d, q) can model
both LRD and SRD but is hard to fit.  We implement both:

- exact FARIMA(0, d, 0) generation through its closed-form
  autocorrelation (:class:`~repro.processes.correlation.FARIMACorrelation`)
  fed to either Hosking's method or Davies-Harte, and
- general FARIMA(p, d, q) generation by passing an exact
  FARIMA(0, d, 0) series through the ARMA(p, q) filter
  ``phi(B) X = theta(B) W`` (exact in the fractional part; the ARMA
  filter starts from zero initial conditions, so a configurable burn-in
  removes the transient).

The fractional differencing weights ``pi_j`` of ``(1 - B)^d`` follow
the standard binomial recursion and are exposed for direct use.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np
from scipy.signal import lfilter

from .._validation import (
    check_1d_array,
    check_choice,
    check_in_range,
    check_nonnegative_int,
    check_positive_int,
)
from ..stats.random import RandomState
from .correlation import FARIMACorrelation
from .davies_harte import SpectralTableArg, davies_harte_generate
from .hosking import hosking_generate

__all__ = [
    "fractional_diff_weights",
    "fractional_integrate",
    "farima_generate",
]


def fractional_diff_weights(d: float, count: int) -> np.ndarray:
    """Return the first ``count`` weights of ``(1 - B)^d``.

    The weights satisfy ``pi_0 = 1`` and the recursion
    ``pi_j = pi_{j-1} * (j - 1 - d) / j``.  Applying them as an FIR
    filter fractionally *differences* a series; the weights of
    ``(1 - B)^{-d}`` (fractional integration) are obtained by negating
    ``d``.
    """
    d = check_in_range(d, "d", -1.0, 1.0)
    count = check_positive_int(count, "count")
    weights = np.empty(count, dtype=float)
    weights[0] = 1.0
    for j in range(1, count):
        weights[j] = weights[j - 1] * (j - 1 - d) / j
    return weights


def fractional_integrate(
    innovations: Sequence[float], d: float
) -> np.ndarray:
    """Apply ``(1 - B)^{-d}`` to ``innovations`` (truncated expansion).

    This is the direct (O(n^2) via FFT convolution) construction of a
    FARIMA(0, d, 0) path from white noise.  Because the expansion is
    truncated at the series length, the output is only asymptotically
    stationary; prefer :func:`farima_generate` (exact ACVF) unless the
    innovations themselves matter.
    """
    x = check_1d_array(innovations, "innovations")
    psi = fractional_diff_weights(-d, x.size)
    return np.convolve(x, psi)[: x.size]


def farima_generate(
    n: int,
    d: float,
    *,
    ar: Sequence[float] = (),
    ma: Sequence[float] = (),
    size: Optional[int] = None,
    method: str = "davies-harte",
    burn_in: Optional[int] = None,
    random_state: RandomState = None,
    spectral_table: SpectralTableArg = None,
) -> np.ndarray:
    """Generate a FARIMA(p, d, q) sample path.

    Parameters
    ----------
    n:
        Output length per replication.
    d:
        Fractional differencing parameter in (0, 1/2); the implied
        Hurst parameter is ``H = d + 1/2``.
    ar:
        AR coefficients ``phi_1 .. phi_p`` of ``phi(B) = 1 - phi_1 B - ...``.
    ma:
        MA coefficients ``theta_1 .. theta_q`` of ``theta(B) = 1 + theta_1 B + ...``.
    size:
        Number of replications (``None`` for a single 1-D path).
    method:
        ``"davies-harte"`` (fast, default) or ``"hosking"`` (exact
        sequential) for the fractional core.
    burn_in:
        Samples discarded to wash out the ARMA filter transient;
        defaults to ``0`` for a pure FARIMA(0, d, 0) and ``10 * (p + q)``
        otherwise.
    random_state:
        Seed or generator.
    spectral_table:
        Spectral-cache control for the Davies-Harte core (``None``
        shared cache, ``False`` recompute, or an explicit
        :class:`~repro.processes.spectral_cache.SpectralTable`);
        ignored by the Hosking method.

    Notes
    -----
    The fractional core is generated with its exact autocovariance, so
    a FARIMA(0, d, 0) output is exact.  With ARMA terms the output is
    exact up to the filter transient removed by ``burn_in``.
    """
    n = check_positive_int(n, "n")
    check_choice(method, "method", ("davies-harte", "hosking"))
    ar_arr = check_1d_array(ar, "ar", allow_empty=True)
    ma_arr = check_1d_array(ma, "ma", allow_empty=True)
    has_arma = ar_arr.size > 0 or ma_arr.size > 0
    if burn_in is None:
        burn_in = 10 * (ar_arr.size + ma_arr.size) if has_arma else 0
    burn_in = check_nonnegative_int(burn_in, "burn_in")

    correlation = FARIMACorrelation(d)
    total = n + burn_in
    if method == "davies-harte":
        core = davies_harte_generate(
            correlation,
            total,
            size=size or 1,
            random_state=random_state,
            spectral_table=spectral_table,
        )
    else:
        core = hosking_generate(
            correlation, total, size=size or 1, random_state=random_state
        )

    if has_arma:
        # phi(B) X = theta(B) core  =>  X = (theta/phi)(B) core.
        b = np.concatenate([[1.0], ma_arr])
        a = np.concatenate([[1.0], -ar_arr])
        core = lfilter(b, a, core, axis=-1)
    out = core[:, burn_in:]
    return out[0] if size is None else out
