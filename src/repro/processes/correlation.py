"""Correlation (autocorrelation-function) models.

The paper's unified approach is built around the idea that the
*background* Gaussian process is specified directly by its
autocorrelation function ``r(k)``.  This module provides a small
hierarchy of :class:`CorrelationModel` objects that

- evaluate ``r`` at arbitrary (possibly non-integer) lags, which the
  composite MPEG model needs for the lag rescaling ``r(k) = r_I(k / K_I)``
  of eq. 15,
- produce the autocovariance sequence ``r(0), r(1), ..., r(n-1)`` that
  Hosking's generator and the Davies-Harte generator consume, and
- report the implied Hurst parameter when one exists.

The key model is :class:`CompositeCorrelation`, the paper's eq. 10-13
structure: a mixture of decaying exponentials below the "knee" lag
``Kt`` (short-range dependence) and a power law ``L k^{-beta}`` at and
above it (long-range dependence).
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence, Union

import numpy as np
from scipy.special import gammaln

from .._validation import (
    check_1d_array,
    check_hurst,
    check_in_range,
    check_positive_float,
    check_positive_int,
)
from ..exceptions import CorrelationError, ValidationError

__all__ = [
    "CorrelationModel",
    "WhiteNoiseCorrelation",
    "FGNCorrelation",
    "ExponentialCorrelation",
    "ExponentialMixtureCorrelation",
    "PowerLawCorrelation",
    "CompositeCorrelation",
    "FARIMACorrelation",
    "RescaledCorrelation",
    "MixtureCorrelation",
    "TabulatedCorrelation",
]

LagsLike = Union[int, float, Sequence[float], np.ndarray]


class CorrelationModel(abc.ABC):
    """Abstract autocorrelation function ``r(k)`` of a stationary process.

    Subclasses implement :meth:`_evaluate` for strictly positive lags;
    the base class handles ``r(0) = 1``, symmetry ``r(-k) = r(k)``, and
    array/scalar dispatch.
    """

    @abc.abstractmethod
    def _evaluate(self, lags: np.ndarray) -> np.ndarray:
        """Evaluate ``r`` at an array of strictly positive lags."""

    @property
    def hurst(self) -> Optional[float]:
        """The Hurst parameter implied by the tail of ``r``, if any.

        ``None`` for short-range-dependent models whose autocorrelation
        is summable (their nominal Hurst parameter is 0.5).
        """
        return None

    def __call__(self, lags: LagsLike) -> Union[float, np.ndarray]:
        """Evaluate ``r(k)`` at scalar or array ``lags`` (symmetric in k)."""
        scalar = np.isscalar(lags)
        arr = np.atleast_1d(np.asarray(lags, dtype=float))
        if arr.ndim != 1:
            raise ValidationError(
                f"lags must be scalar or one-dimensional, got shape {arr.shape}"
            )
        arr = np.abs(arr)
        out = np.ones_like(arr)
        positive = arr > 0
        if np.any(positive):
            out[positive] = self._evaluate(arr[positive])
        if scalar:
            return float(out[0])
        return out

    def acvf(self, n: int) -> np.ndarray:
        """Return the autocovariance sequence ``r(0), ..., r(n-1)``.

        For the unit-variance processes used throughout the paper the
        autocovariance and autocorrelation coincide.
        """
        n = check_positive_int(n, "n")
        return np.asarray(self(np.arange(n)), dtype=float)

    def validate_acvf(self, n: int, *, tolerance: float = 1e-10) -> None:
        """Raise :class:`CorrelationError` if ``r(0..n-1)`` is clearly invalid.

        Checks that all values lie in ``[-1, 1]`` and ``r(0) = 1``.  Full
        positive-definiteness is verified lazily by the generators (the
        Durbin-Levinson recursion detects it exactly).
        """
        values = self.acvf(n)
        if abs(values[0] - 1.0) > tolerance:
            raise CorrelationError(f"r(0) must equal 1, got {values[0]}")
        if np.any(np.abs(values) > 1.0 + tolerance):
            bad = int(np.argmax(np.abs(values) > 1.0 + tolerance))
            raise CorrelationError(
                f"|r({bad})| = {abs(values[bad]):.6f} exceeds 1"
            )


class WhiteNoiseCorrelation(CorrelationModel):
    """Uncorrelated (i.i.d.) process: ``r(k) = 0`` for ``k != 0``."""

    def _evaluate(self, lags: np.ndarray) -> np.ndarray:
        return np.zeros_like(lags)

    def __repr__(self) -> str:
        return "WhiteNoiseCorrelation()"


class FGNCorrelation(CorrelationModel):
    """Exact fractional Gaussian noise autocorrelation.

    .. math::

        r(k) = \\tfrac{1}{2}\\left(|k+1|^{2H} - 2|k|^{2H} + |k-1|^{2H}\\right)

    which behaves asymptotically as ``H(2H-1) k^{2H-2}``; for
    ``H > 1/2`` the process is long-range dependent.  This is the
    "third model" of Fig. 17 (LRD only, no explicit SRD component).
    """

    def __init__(self, hurst: float) -> None:
        self._hurst = check_hurst(hurst)

    @property
    def hurst(self) -> float:
        return self._hurst

    def _evaluate(self, lags: np.ndarray) -> np.ndarray:
        two_h = 2.0 * self._hurst
        return 0.5 * (
            np.abs(lags + 1.0) ** two_h
            - 2.0 * np.abs(lags) ** two_h
            + np.abs(lags - 1.0) ** two_h
        )

    def __repr__(self) -> str:
        return f"FGNCorrelation(hurst={self._hurst})"


class ExponentialCorrelation(CorrelationModel):
    """Single decaying exponential ``r(k) = exp(-rate * k)``.

    This is the classic short-range-dependent (Markovian / AR(1)-like)
    autocorrelation; it is the paper's "SRD only" model in Fig. 17.
    """

    def __init__(self, rate: float) -> None:
        self.rate = check_positive_float(rate, "rate")

    def _evaluate(self, lags: np.ndarray) -> np.ndarray:
        return np.exp(-self.rate * lags)

    def __repr__(self) -> str:
        return f"ExponentialCorrelation(rate={self.rate})"


class ExponentialMixtureCorrelation(CorrelationModel):
    """Weighted mixture of decaying exponentials.

    .. math:: r(k) = \\sum_i w_i \\exp(-\\beta_i k), \\qquad \\sum_i w_i = 1

    matching the SRD part of the paper's eq. 10-11.  Weights must be
    non-negative and sum to one so that ``r(0) = 1``.
    """

    def __init__(
        self, weights: Sequence[float], rates: Sequence[float]
    ) -> None:
        self.weights = check_1d_array(weights, "weights")
        self.rates = check_1d_array(rates, "rates")
        if self.weights.size != self.rates.size:
            raise ValidationError(
                "weights and rates must have the same length, got "
                f"{self.weights.size} and {self.rates.size}"
            )
        if np.any(self.weights < 0):
            raise ValidationError("weights must be non-negative")
        if abs(self.weights.sum() - 1.0) > 1e-9:
            raise ValidationError(
                f"weights must sum to 1, got {self.weights.sum()}"
            )
        if np.any(self.rates <= 0):
            raise ValidationError("rates must be positive")

    def _evaluate(self, lags: np.ndarray) -> np.ndarray:
        # Accumulate component by component instead of a (m, j) @ (j,)
        # matmul: BLAS picks length-dependent kernels, so the matmul's
        # value at a fixed lag can change at the last ulp with the
        # number of requested lags.  Elementwise accumulation in fixed
        # component order is length-independent, which the spectral
        # cache's prefix sharing relies on (r(k) must not depend on how
        # many lags were evaluated alongside it).
        out = np.zeros_like(np.asarray(lags, dtype=float))
        for weight, rate in zip(self.weights, self.rates):
            out += weight * np.exp(-rate * lags)
        return out

    def __repr__(self) -> str:
        return (
            f"ExponentialMixtureCorrelation(weights={self.weights.tolist()}, "
            f"rates={self.rates.tolist()})"
        )


class PowerLawCorrelation(CorrelationModel):
    """Pure power-law tail ``r(k) = L k^{-beta}`` for ``k >= 1``.

    ``beta`` in (0, 1) gives a non-summable (long-range dependent)
    autocorrelation with Hurst parameter ``H = 1 - beta/2``.  The
    amplitude ``L`` must keep ``r(1) = L <= 1``.
    """

    def __init__(self, amplitude: float, exponent: float) -> None:
        self.amplitude = check_in_range(
            amplitude, "amplitude", 0.0, 1.0, inclusive_low=False
        )
        self.exponent = check_positive_float(exponent, "exponent")

    @property
    def hurst(self) -> Optional[float]:
        if 0 < self.exponent < 1:
            return 1.0 - self.exponent / 2.0
        return None

    def _evaluate(self, lags: np.ndarray) -> np.ndarray:
        out = self.amplitude * lags ** (-self.exponent)
        # Guard sub-unit lags produced by rescaling: cap at 1.
        return np.minimum(out, 1.0)

    def __repr__(self) -> str:
        return (
            f"PowerLawCorrelation(amplitude={self.amplitude}, "
            f"exponent={self.exponent})"
        )


class CompositeCorrelation(CorrelationModel):
    """The paper's composite SRD + LRD autocorrelation (eq. 10-13).

    .. math::

        r(k) = \\sum_i w_i e^{-\\beta_i k} \\; I(k < K_t)
             + L k^{-\\gamma} \\; I(k \\ge K_t)

    with mixture weights summing to one.  The paper's fitted model for
    the "Last Action Hero" trace is a single exponential,

    .. math:: \\hat r(k) = e^{-0.00565 k} I(k < 60) + 1.59 k^{-0.2} I(k \\ge 60)

    available via :meth:`paper_fit`.

    Parameters
    ----------
    srd_weights, srd_rates:
        Weights ``w_i`` (non-negative, summing to 1) and rates
        ``beta_i > 0`` of the exponential mixture used for ``k < knee``.
    lrd_amplitude, lrd_exponent:
        ``L`` and ``gamma`` of the power-law tail used for ``k >= knee``.
    knee:
        The knee lag ``K_t`` separating SRD from LRD behaviour.
    nugget:
        Optional white-noise mass at lag 0 (an extension beyond the
        strict eq. 10-11 form, where the mixture weights must sum to 1).
        With a nugget ``w_0``, the SRD part for ``0 < k < knee`` is
        ``(1 - w_0) * sum_i w_i exp(-beta_i k)`` with the ``w_i``
        normalized; empirical traces with per-frame coding noise show
        exactly this instantaneous drop from ``r(0) = 1``.
    """

    def __init__(
        self,
        *,
        srd_weights: Sequence[float],
        srd_rates: Sequence[float],
        lrd_amplitude: float,
        lrd_exponent: float,
        knee: float,
        nugget: float = 0.0,
    ) -> None:
        self.nugget = check_in_range(
            nugget, "nugget", 0.0, 1.0, inclusive_high=False
        )
        weights = np.asarray(srd_weights, dtype=float)
        if weights.sum() <= 0:
            raise ValidationError("srd_weights must have positive mass")
        self.srd = ExponentialMixtureCorrelation(
            weights / weights.sum(), srd_rates
        )
        self.knee = check_positive_float(knee, "knee")
        self.lrd_exponent = check_positive_float(lrd_exponent, "lrd_exponent")
        self.lrd_amplitude = check_positive_float(
            lrd_amplitude, "lrd_amplitude"
        )
        # The tail must stay a valid correlation at the knee.
        tail_at_knee = self.lrd_amplitude * self.knee ** (-self.lrd_exponent)
        if tail_at_knee > 1.0 + 1e-9:
            raise ValidationError(
                "power-law tail exceeds 1 at the knee: "
                f"L*knee^-gamma = {tail_at_knee:.4f}"
            )

    @classmethod
    def paper_fit(cls) -> "CompositeCorrelation":
        """Return the paper's fitted model for "Last Action Hero" (eq. 13).

        Note: the printed constants violate the continuity constraint of
        eq. 12 by about 1.3% (``exp(-0.00565*60) = 0.7126`` versus
        ``1.59468 * 60^-0.2 = 0.7032``), which makes the raw piecewise
        function *not* positive definite just past the knee.  This is a
        fitted description of the empirical ACF; before feeding a
        composite model to a generator, enforce continuity with
        :meth:`with_continuity` or :meth:`compensated` (the paper's
        Step 4 does the latter implicitly via eq. 14).
        """
        return cls(
            srd_weights=[1.0],
            srd_rates=[0.00565],
            lrd_amplitude=1.59468,
            lrd_exponent=0.2,
            knee=60.0,
        )

    def with_continuity(self) -> "CompositeCorrelation":
        """Return a copy whose tail amplitude enforces eq. 12 exactly.

        The LRD amplitude is rescaled so that the power-law tail meets
        the exponential mixture at the knee,
        ``L' = SRD(knee) * knee^gamma``.  When the result is also
        :attr:`polya_convex` (head decays at least as steeply as the
        tail at the knee — true for all empirically fitted video
        models, whose SRD decay dominates), Polya's criterion makes the
        correlation positive definite, so it can safely drive Hosking's
        generator; a nugget only adds white noise and preserves
        positive definiteness.
        """
        srd_at_knee = float(self.srd_value(self.knee))
        return CompositeCorrelation(
            srd_weights=self.srd.weights,
            srd_rates=self.srd.rates,
            lrd_amplitude=srd_at_knee * self.knee**self.lrd_exponent,
            lrd_exponent=self.lrd_exponent,
            knee=self.knee,
            nugget=self.nugget,
        )

    @property
    def hurst(self) -> Optional[float]:
        if 0 < self.lrd_exponent < 1:
            return 1.0 - self.lrd_exponent / 2.0
        return None

    @property
    def polya_convex(self) -> bool:
        """True when the model satisfies Polya's sufficient PD condition.

        Polya's criterion guarantees positive definiteness for a
        continuous, convex, decreasing correlation function.  For this
        piecewise model that requires (a) continuity at the knee (a
        tiny gap is tolerated) and (b) the head decaying at least as
        steeply as the tail *at* the knee:

        .. math::

            (1 - w_0) \\sum_i w_i \\beta_i e^{-\\beta_i K_t}
                \\;\\ge\\; \\gamma L K_t^{-\\gamma - 1}.

        Models failing the condition may still be positive definite;
        validate with the Durbin-Levinson recursion when in doubt.
        """
        if self.continuity_gap > 1e-9:
            return False
        head_slope = (1.0 - self.nugget) * float(
            np.sum(
                self.srd.weights
                * self.srd.rates
                * np.exp(-self.srd.rates * self.knee)
            )
        )
        tail_slope = (
            self.lrd_exponent
            * self.lrd_amplitude
            * self.knee ** (-self.lrd_exponent - 1.0)
        )
        return head_slope >= tail_slope - 1e-12

    def srd_value(self, lags: LagsLike) -> Union[float, np.ndarray]:
        """The SRD part ``(1 - nugget) * sum_i w_i exp(-beta_i k)``."""
        value = self.srd(lags)
        scale = 1.0 - self.nugget
        if np.isscalar(value):
            return scale * float(value)
        return scale * np.asarray(value, dtype=float)

    @property
    def continuity_gap(self) -> float:
        """|SRD(knee) - LRD(knee)|: eq. 12 asks this to be small."""
        srd_at_knee = float(self.srd_value(self.knee))
        lrd_at_knee = self.lrd_amplitude * self.knee ** (-self.lrd_exponent)
        return abs(srd_at_knee - lrd_at_knee)

    def _evaluate(self, lags: np.ndarray) -> np.ndarray:
        out = np.empty_like(lags)
        below = lags < self.knee
        if np.any(below):
            out[below] = np.asarray(
                self.srd_value(lags[below]), dtype=float
            )
        above = ~below
        if np.any(above):
            out[above] = np.minimum(
                self.lrd_amplitude * lags[above] ** (-self.lrd_exponent), 1.0
            )
        return out

    def compensated(self, attenuation: float) -> "CompositeCorrelation":
        """Pre-compensate for transform attenuation (Step 4 of §3.2).

        Given the attenuation factor ``a`` of the marginal transform,
        returns the background correlation whose *foreground* image
        matches this model: the tail becomes ``(L/a) k^{-gamma}``, and
        the SRD part is replaced by the single exponential solving
        eq. 14, ``exp(-theta * Kt) = r(Kt) / a``.
        """
        a = check_in_range(
            attenuation, "attenuation", 0.0, 1.0, inclusive_low=False
        )
        target_at_knee = (
            self.lrd_amplitude * self.knee ** (-self.lrd_exponent) / a
        )
        if not 0.0 < target_at_knee < 1.0:
            raise CorrelationError(
                "compensated correlation at the knee must lie in (0, 1), "
                f"got {target_at_knee:.4f}; attenuation {a} is too strong "
                "for this tail amplitude"
            )
        head_scale = 1.0 - self.nugget
        if target_at_knee >= head_scale:
            raise CorrelationError(
                "compensated head cannot reach the knee target "
                f"{target_at_knee:.4f} with a nugget of {self.nugget:.4f}"
            )
        theta = -np.log(target_at_knee / head_scale) / self.knee
        return CompositeCorrelation(
            srd_weights=[1.0],
            srd_rates=[theta],
            lrd_amplitude=self.lrd_amplitude / a,
            lrd_exponent=self.lrd_exponent,
            knee=self.knee,
            nugget=self.nugget,
        )

    def srd_only(self) -> ExponentialMixtureCorrelation:
        """Return the SRD component alone (Fig. 17's "SRD only" model)."""
        return self.srd

    def __repr__(self) -> str:
        return (
            "CompositeCorrelation("
            f"srd_weights={self.srd.weights.tolist()}, "
            f"srd_rates={self.srd.rates.tolist()}, "
            f"lrd_amplitude={self.lrd_amplitude}, "
            f"lrd_exponent={self.lrd_exponent}, knee={self.knee}, "
            f"nugget={self.nugget})"
        )


class FARIMACorrelation(CorrelationModel):
    """Autocorrelation of a FARIMA(0, d, 0) process (Hosking 1981).

    .. math::

        r(k) = \\frac{\\Gamma(k + d)\\,\\Gamma(1 - d)}{\\Gamma(k - d + 1)\\,\\Gamma(d)}

    valid for ``0 < d < 1/2``; the implied Hurst parameter is
    ``H = d + 1/2``.  Evaluation uses log-gamma for numerical stability
    and supports non-integer lags (needed by lag rescaling).
    """

    def __init__(self, d: float) -> None:
        self.d = check_in_range(
            d, "d", 0.0, 0.5, inclusive_low=False, inclusive_high=False
        )

    @classmethod
    def from_hurst(cls, hurst: float) -> "FARIMACorrelation":
        """Build from a Hurst parameter via ``d = H - 1/2``."""
        hurst = check_hurst(hurst)
        if hurst <= 0.5:
            raise ValidationError(
                f"FARIMA(0,d,0) requires H > 1/2, got {hurst}"
            )
        return cls(hurst - 0.5)

    @property
    def hurst(self) -> float:
        return self.d + 0.5

    def _evaluate(self, lags: np.ndarray) -> np.ndarray:
        d = self.d
        log_r = (
            gammaln(lags + d)
            - gammaln(lags - d + 1.0)
            + gammaln(1.0 - d)
            - gammaln(d)
        )
        return np.exp(log_r)

    def __repr__(self) -> str:
        return f"FARIMACorrelation(d={self.d})"


class RescaledCorrelation(CorrelationModel):
    """Lag-rescaled correlation ``r(k) = base(k / scale)`` (eq. 15).

    The composite MPEG model estimates the autocorrelation ``r_I`` of
    the I-frame subsequence (one sample every ``K_I = 12`` frames) and
    stretches it to frame resolution by evaluating at ``k / K_I``.
    """

    def __init__(self, base: CorrelationModel, scale: float) -> None:
        if not isinstance(base, CorrelationModel):
            raise ValidationError(
                f"base must be a CorrelationModel, got {type(base).__name__}"
            )
        self.base = base
        self.scale = check_positive_float(scale, "scale")

    @property
    def hurst(self) -> Optional[float]:
        return self.base.hurst

    def _evaluate(self, lags: np.ndarray) -> np.ndarray:
        return np.asarray(self.base(lags / self.scale), dtype=float)

    def __repr__(self) -> str:
        return f"RescaledCorrelation(base={self.base!r}, scale={self.scale})"


class MixtureCorrelation(CorrelationModel):
    """Variance-weighted mixture of correlation models.

    If independent zero-mean processes ``X_i`` with variances ``v_i``
    and correlations ``r_i(k)`` are superposed, the sum's correlation is

    .. math:: r(k) = \\frac{\\sum_i v_i\\, r_i(k)}{\\sum_i v_i}.

    This is the correlation calculus behind heterogeneous multiplexing
    (e.g. an intraframe source plus interframe sources sharing a link)
    and behind decomposing a fitted model into interpretable parts.
    The mixture of positive-definite components is positive definite.
    """

    def __init__(
        self,
        components: Sequence[CorrelationModel],
        weights: Sequence[float],
    ) -> None:
        if not components:
            raise ValidationError("components must not be empty")
        for component in components:
            if not isinstance(component, CorrelationModel):
                raise ValidationError(
                    "components must be CorrelationModel instances, got "
                    f"{type(component).__name__}"
                )
        w = check_1d_array(weights, "weights")
        if w.size != len(components):
            raise ValidationError(
                f"{len(components)} components but {w.size} weights"
            )
        if np.any(w <= 0):
            raise ValidationError("weights must be positive variances")
        self.components = tuple(components)
        self.weights = w / w.sum()

    @property
    def hurst(self) -> Optional[float]:
        """The largest component Hurst parameter (the tail's owner)."""
        values = [c.hurst for c in self.components if c.hurst is not None]
        return max(values) if values else None

    def _evaluate(self, lags: np.ndarray) -> np.ndarray:
        out = np.zeros_like(lags)
        for weight, component in zip(self.weights, self.components):
            out += weight * np.asarray(component(lags), dtype=float)
        return out

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{w:.3f}*{c!r}"
            for w, c in zip(self.weights, self.components)
        )
        return f"MixtureCorrelation({parts})"


class TabulatedCorrelation(CorrelationModel):
    """Correlation interpolated from tabulated values ``r(0..n-1)``.

    Useful for driving Hosking's generator directly with an *empirical*
    autocorrelation estimate.  Values beyond the table extend with the
    last tabulated value decayed geometrically toward zero, keeping the
    sequence bounded.
    """

    def __init__(self, values: Sequence[float], *, tail_decay: float = 0.999):
        arr = check_1d_array(values, "values")
        if abs(arr[0] - 1.0) > 1e-9:
            raise ValidationError(f"values[0] must be 1, got {arr[0]}")
        if np.any(np.abs(arr) > 1.0 + 1e-9):
            raise ValidationError("tabulated correlations must lie in [-1, 1]")
        self.values = arr
        self.tail_decay = check_in_range(
            tail_decay, "tail_decay", 0.0, 1.0, inclusive_low=False
        )

    def _evaluate(self, lags: np.ndarray) -> np.ndarray:
        n = self.values.size
        grid = np.arange(n, dtype=float)
        out = np.interp(lags, grid, self.values)
        beyond = lags > n - 1
        if np.any(beyond):
            last = self.values[-1]
            out[beyond] = last * self.tail_decay ** (lags[beyond] - (n - 1))
        return out

    def __repr__(self) -> str:
        return f"TabulatedCorrelation(n={self.values.size})"
