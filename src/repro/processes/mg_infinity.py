"""M/G/infinity session-count input — the other classic LRD construction.

Cox's M/G/infinity process (Poisson session arrivals, heavy-tailed
session durations, output = number of active sessions per slot) is the
second canonical explanation of long-range dependence in traffic,
complementary to the fGn/FARIMA family the paper builds on: Pareto
durations with tail index ``1 < alpha < 2`` yield an asymptotically
self-similar count process with

.. math:: H = \\frac{3 - \\alpha}{2}.

It is included as an independent LRD substrate: generating M/G/inf
input and confirming that the estimators recover ``(3 - alpha)/2``
cross-validates the whole estimation stack against a process that
shares *none* of the Gaussian machinery's assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import (
    check_in_range,
    check_positive_float,
    check_positive_int,
)
from ..stats.random import RandomState, make_rng

__all__ = ["MGInfinityConfig", "mg_infinity_generate"]


@dataclass(frozen=True)
class MGInfinityConfig:
    """Parameters of an M/G/infinity session process.

    Attributes
    ----------
    session_rate:
        Poisson arrival rate of sessions per slot (``lambda``).
    duration_alpha:
        Pareto tail index of session durations; ``1 < alpha < 2``
        gives LRD counts with ``H = (3 - alpha) / 2``.
    duration_min:
        Minimum session duration in slots.
    """

    session_rate: float = 1.0
    duration_alpha: float = 1.4
    duration_min: float = 1.0

    def __post_init__(self) -> None:
        check_positive_float(self.session_rate, "session_rate")
        check_in_range(
            self.duration_alpha, "duration_alpha", 1.0, 2.0,
            inclusive_low=False, inclusive_high=False,
        )
        check_positive_float(self.duration_min, "duration_min")

    @property
    def hurst(self) -> float:
        """Implied Hurst parameter ``(3 - alpha) / 2``."""
        return (3.0 - self.duration_alpha) / 2.0

    @property
    def mean_duration(self) -> float:
        """Mean session duration ``alpha * d_min / (alpha - 1)``."""
        return (
            self.duration_alpha
            * self.duration_min
            / (self.duration_alpha - 1.0)
        )

    @property
    def mean_active(self) -> float:
        """Mean number of active sessions (Little: ``lambda E[D]``)."""
        return self.session_rate * self.mean_duration


def mg_infinity_generate(
    config: MGInfinityConfig,
    n: int,
    *,
    warmup: Optional[int] = None,
    random_state: RandomState = None,
) -> np.ndarray:
    """Generate ``n`` slots of active-session counts.

    Sessions arrive as a Poisson stream; each draws an integer Pareto
    duration and contributes 1 to every slot it spans.  A warm-up
    period (default: ten mean durations) is simulated and discarded so
    the output starts near stationarity — exact stationary start would
    need the heavy-tailed residual-life distribution, whose mean is
    infinite for ``alpha < 2``; the truncation this warm-up implies is
    the standard, documented compromise.

    Returns an integer-valued float array of length ``n``.
    """
    n = check_positive_int(n, "n")
    rng = make_rng(random_state)
    if warmup is None:
        warmup = int(10 * config.mean_duration)
    warmup = int(warmup)
    total = n + warmup
    counts = np.zeros(total + 1, dtype=float)

    arrivals = rng.poisson(config.session_rate, size=total)
    active_slots = np.nonzero(arrivals)[0]
    for slot in active_slots:
        k = int(arrivals[slot])
        durations = np.ceil(
            config.duration_min
            * (1.0 - rng.uniform(size=k))
            ** (-1.0 / config.duration_alpha)
        ).astype(int)
        for duration in durations:
            end = min(slot + duration, total)
            # Difference-array trick: +1 at start, -1 after end.
            counts[slot] += 1.0
            counts[end] -= 1.0
    occupancy = np.cumsum(counts[:total])
    return occupancy[warmup:]
