"""Davies-Harte (circulant embedding) generation of Gaussian processes.

Hosking's method is exact but O(n^2); generating a trace the length of
the paper's empirical record (238,626 frames) that way is impractical.
The Davies-Harte method embeds the target covariance in a circulant
matrix, diagonalises it with an FFT, and synthesizes exact samples in
O(n log n) — provided the circulant eigenvalues are non-negative, which
holds for fractional Gaussian noise and is checked (with an optional
clipping fallback) for arbitrary correlation models.

This generator is what makes the long synthetic "empirical" trace
substitute feasible; the ablation bench compares it against Hosking.

The spectral decomposition (model ACVF plus circulant eigenvalues) is
shared across calls through :mod:`repro.processes.spectral_cache` —
the unconditional-path counterpart of the Hosking path's coefficient
tables.  ``spectral_table=`` follows the same convention as
``coeff_table=`` there: ``None``/``True`` use the shared fingerprint
cache, ``False`` recomputes from scratch (the seed behaviour), and an
explicit :class:`~repro.processes.spectral_cache.SpectralTable` is
used as-is.  Caching is RNG-neutral: every variant draws the same
samples in the same order.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import check_choice, check_min_length, check_positive_int
from ..exceptions import ValidationError
from ..stats.random import RandomState, make_rng
from .correlation import CorrelationModel
from .spectral_cache import (
    EigenvalueEntry,
    SpectralTable,
    apply_eigenvalue_policy,
    build_eigenvalue_entry,
    circulant_eigenvalues,
    get_spectral_table,
)

__all__ = [
    "davies_harte_generate",
    "circulant_eigenvalues",
    "SpectralTableArg",
    "SPECTRUM_MODES",
    "workspace_stats",
    "reset_workspace_stats",
]

#: Synthesis spectrum modes: ``"real"`` (default) drives the
#: ``rfft``/``irfft`` half-spectrum path — half the FFT flops and
#: scratch of the legacy path, same law, allclose within 1e-10;
#: ``"full"`` is the legacy complex full-spectrum path, kept as an
#: opt-out and bit-identical to previous releases.
SPECTRUM_MODES = ("real", "full")

#: Type of the ``spectral_table`` argument: ``None`` (or ``True``) uses
#: the shared fingerprint cache, an explicit :class:`SpectralTable` is
#: used as-is (the caller vouches that it was built from the same
#: autocovariance), and ``False`` recomputes the spectrum per call.
SpectralTableArg = Union[None, bool, SpectralTable]

# ---------------------------------------------------------------------
# Per-worker noise workspace
# ---------------------------------------------------------------------
# The aggregate engine calls this generator once per (batch, horizon)
# block — hundreds of times per feed with identical geometry — and the
# white-noise buffer is the largest allocation of a call (batch x 2n
# doubles).  One buffer per thread (workers in a process pool are
# single-threaded processes, so "per thread" is "per worker"), keyed by
# shape and replaced when the geometry changes, removes that churn.
# Reuse is RNG-neutral: ``Generator.standard_normal(out=buf)`` draws
# the same stream, and writes the same bits, as a fresh allocation.

_workspace_tls = threading.local()
_workspace_lock = threading.Lock()
_workspace_stats: Dict[str, int] = {"hits": 0, "builds": 0}


def _noise_buffer(shape: Tuple[int, int]) -> np.ndarray:
    """A per-thread float64 buffer of ``shape``, reused across calls."""
    buffer = getattr(_workspace_tls, "noise", None)
    if buffer is not None and buffer.shape == shape:
        with _workspace_lock:
            _workspace_stats["hits"] += 1
        return buffer
    buffer = np.empty(shape, dtype=float)
    _workspace_tls.noise = buffer
    with _workspace_lock:
        _workspace_stats["builds"] += 1
    return buffer


def workspace_stats() -> Dict[str, int]:
    """Snapshot of this process's workspace reuse counters.

    ``hits`` counts calls served by an existing same-shape buffer,
    ``builds`` counts (re)allocations.  Counters are process-local: a
    process-pool worker accumulates its own (its deltas surface in the
    parent's metrics only for in-line execution).
    """
    with _workspace_lock:
        return dict(_workspace_stats)


def reset_workspace_stats() -> None:
    """Zero the workspace counters (tests and benches)."""
    with _workspace_lock:
        _workspace_stats["hits"] = 0
        _workspace_stats["builds"] = 0


def _resolve_entry(
    correlation: Union[CorrelationModel, np.ndarray],
    n: int,
    spectral_table: SpectralTableArg,
) -> EigenvalueEntry:
    """The eigenvalue entry driving an ``n``-sample generation."""
    if spectral_table is None or spectral_table is True:
        return get_spectral_table(correlation, n).eigenvalues(n)
    if spectral_table is False:
        if isinstance(correlation, CorrelationModel):
            acvf = correlation.acvf(n + 1)
        else:
            acvf = correlation[: n + 1]
        return build_eigenvalue_entry(acvf)
    if not isinstance(spectral_table, SpectralTable):
        raise ValidationError(
            "spectral_table must be a SpectralTable, None (shared "
            f"cache) or False (recompute per call), got {spectral_table!r}"
        )
    if spectral_table.max_length < n:
        raise ValidationError(
            f"spectral_table of horizon {spectral_table.horizon} lags "
            f"cannot generate {n} samples"
        )
    return spectral_table.eigenvalues(n)


def davies_harte_generate(
    correlation: Union[CorrelationModel, Sequence[float]],
    n: int,
    *,
    size: Optional[int] = None,
    mean: float = 0.0,
    random_state: RandomState = None,
    on_negative_eigenvalues: str = "clip",
    spectral_table: SpectralTableArg = None,
    spectrum_mode: str = "real",
    metrics=None,
) -> np.ndarray:
    """Generate Gaussian sample paths via circulant embedding.

    Parameters
    ----------
    correlation:
        Correlation model or explicit autocovariance ``r(0) .. r(n)``
        (at least ``n + 1`` values when given as a sequence).
    n:
        Length of each sample path.
    size:
        Number of replications; ``None`` returns a 1-D array.  Batched
        requests share one FFT pass over all replications and draw the
        exact same streams as ``size`` sequential single-path calls on
        spawned generators would.
    mean:
        Process mean added to the zero-mean output.
    random_state:
        Seed or generator.
    on_negative_eigenvalues:
        ``"clip"`` zeroes negative eigenvalues (warning when they are
        material, reporting the count and total mass clipped),
        ``"raise"`` raises :class:`~repro.exceptions.CorrelationError`.
        FGN embeddings are provably non-negative; fitted composite
        models occasionally produce tiny negative values from
        discretisation.
    spectral_table:
        ``None``/``True`` resolve the spectrum through the shared
        cache (:func:`~repro.processes.spectral_cache.get_spectral_table`),
        ``False`` recomputes it for this call, an explicit
        :class:`~repro.processes.spectral_cache.SpectralTable` is used
        directly.  All three produce bit-identical output.
    spectrum_mode:
        ``"real"`` (default) synthesizes through ``rfft``/``irfft``
        over the half spectrum — half the FFT flops and scratch memory
        of the legacy path; same law, same random stream, output
        allclose within 1e-10 of ``"full"``.  ``"full"`` is the legacy
        complex full-spectrum path, bit-identical to previous releases.
    metrics:
        Optional duck-typed metrics context (e.g. a
        :class:`repro.observability.RunContext`); receives the
        ``spectral.clipped_eigenvalues`` counter when clipping occurs.

    Returns
    -------
    numpy.ndarray
        Shape ``(n,)`` or ``(size, n)``.

    Notes
    -----
    Both modes draw the *same* white noise ``g`` (one
    ``standard_normal`` fill of ``batch x 2n`` values from the same
    stream) and apply the same spectral filter ``sqrt(eigenvalues)``:
    the legacy path computes ``ifft(fft(g) * sqrt(eig)).real``, the
    real path computes ``irfft(rfft(g) * sqrt(eig_half))``.  Because
    ``g`` is real and the eigenvalues are symmetric, the filtered
    spectrum is Hermitian and the two expressions are mathematically
    identical — they differ only in floating-point rounding (observed
    relative differences ~1e-15; the pinned contract is rtol 1e-10).
    """
    n = check_positive_int(n, "n")
    check_choice(
        on_negative_eigenvalues, "on_negative_eigenvalues", ("clip", "raise")
    )
    check_choice(spectrum_mode, "spectrum_mode", SPECTRUM_MODES)
    flat = size is None
    batch = 1 if flat else check_positive_int(size, "size")

    if not isinstance(correlation, CorrelationModel):
        correlation = check_min_length(correlation, "correlation", n + 1)[
            : n + 1
        ]
    entry = _resolve_entry(correlation, n, spectral_table)
    eigenvalues = apply_eigenvalue_policy(
        entry,
        on_negative_eigenvalues,
        metrics=metrics,
        stacklevel=3,
        spectrum="half" if spectrum_mode == "real" else "full",
    )

    m = 2 * n
    rng = make_rng(random_state)
    # Per-worker workspace: the same stream bits land in a reused
    # buffer instead of a fresh allocation per call.
    g = rng.standard_normal(out=_noise_buffer((batch, m)))
    if spectrum_mode == "real":
        # Real-FFT path: rfft never computes the redundant conjugate
        # half, irfft never materializes a complex output.
        spectrum = np.fft.rfft(g, axis=1)
        spectrum *= np.sqrt(eigenvalues)
        paths = np.fft.irfft(spectrum, n=m, axis=1)[:, :n]
    else:
        # Legacy full-spectrum path (bit-identical to prior releases):
        # complex Gaussian spectrum with Hermitian symmetry via full
        # FFT of real white noise.
        scale = np.sqrt(eigenvalues / m)
        spectrum = np.fft.fft(g, axis=1) * scale
        paths = np.fft.ifft(spectrum * np.sqrt(m), axis=1).real[:, :n]
    paths += mean
    return paths[0] if flat else paths
