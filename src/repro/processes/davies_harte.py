"""Davies-Harte (circulant embedding) generation of Gaussian processes.

Hosking's method is exact but O(n^2); generating a trace the length of
the paper's empirical record (238,626 frames) that way is impractical.
The Davies-Harte method embeds the target covariance in a circulant
matrix, diagonalises it with an FFT, and synthesizes exact samples in
O(n log n) — provided the circulant eigenvalues are non-negative, which
holds for fractional Gaussian noise and is checked (with an optional
clipping fallback) for arbitrary correlation models.

This generator is what makes the long synthetic "empirical" trace
substitute feasible; the ablation bench compares it against Hosking.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence, Union

import numpy as np

from .._validation import check_choice, check_min_length, check_positive_int
from ..exceptions import CorrelationError
from ..stats.random import RandomState, make_rng
from .correlation import CorrelationModel

__all__ = ["davies_harte_generate", "circulant_eigenvalues"]


def circulant_eigenvalues(acvf: Sequence[float]) -> np.ndarray:
    """Return the eigenvalues of the circulant embedding of ``acvf``.

    ``acvf`` supplies ``r(0) .. r(n)``; the embedding is the length-2n
    sequence ``r(0), ..., r(n), r(n-1), ..., r(1)`` whose DFT gives the
    eigenvalues.  All eigenvalues non-negative means exact generation
    is possible.
    """
    r = check_min_length(acvf, "acvf", 2)
    circ = np.concatenate([r, r[-2:0:-1]])
    return np.fft.rfft(circ).real


def davies_harte_generate(
    correlation: Union[CorrelationModel, Sequence[float]],
    n: int,
    *,
    size: Optional[int] = None,
    mean: float = 0.0,
    random_state: RandomState = None,
    on_negative_eigenvalues: str = "clip",
) -> np.ndarray:
    """Generate Gaussian sample paths via circulant embedding.

    Parameters
    ----------
    correlation:
        Correlation model or explicit autocovariance ``r(0) .. r(n)``
        (at least ``n + 1`` values when given as a sequence).
    n:
        Length of each sample path.
    size:
        Number of replications; ``None`` returns a 1-D array.
    mean:
        Process mean added to the zero-mean output.
    random_state:
        Seed or generator.
    on_negative_eigenvalues:
        ``"clip"`` zeroes small negative eigenvalues (with a warning if
        they are material), ``"raise"`` raises
        :class:`~repro.exceptions.CorrelationError`.  FGN embeddings are
        provably non-negative; fitted composite models occasionally
        produce tiny negative values from discretisation.

    Returns
    -------
    numpy.ndarray
        Shape ``(n,)`` or ``(size, n)``.
    """
    n = check_positive_int(n, "n")
    check_choice(
        on_negative_eigenvalues, "on_negative_eigenvalues", ("clip", "raise")
    )
    flat = size is None
    batch = 1 if flat else check_positive_int(size, "size")

    if isinstance(correlation, CorrelationModel):
        acvf = correlation.acvf(n + 1)
    else:
        acvf = check_min_length(correlation, "correlation", n + 1)[: n + 1]

    m = 2 * n
    circ = np.concatenate([acvf, acvf[-2:0:-1]])
    eigenvalues = np.fft.fft(circ).real
    negative = eigenvalues < 0
    if np.any(negative):
        worst = float(eigenvalues.min())
        if on_negative_eigenvalues == "raise":
            raise CorrelationError(
                "circulant embedding has negative eigenvalues "
                f"(min {worst:.3e}); the correlation is not embeddable"
            )
        if worst < -1e-6 * float(eigenvalues.max()):
            warnings.warn(
                "circulant embedding clipped material negative eigenvalues "
                f"(min {worst:.3e}); output correlation is approximate",
                RuntimeWarning,
                stacklevel=2,
            )
        eigenvalues = np.where(negative, 0.0, eigenvalues)

    rng = make_rng(random_state)
    scale = np.sqrt(eigenvalues / m)
    # Complex Gaussian spectrum with Hermitian symmetry via full FFT of
    # real white noise: W = FFT(g) has the right covariance structure.
    g = rng.standard_normal((batch, m))
    spectrum = np.fft.fft(g, axis=1) * scale
    paths = np.fft.ifft(spectrum * np.sqrt(m), axis=1).real[:, :n]
    paths += mean
    return paths[0] if flat else paths
