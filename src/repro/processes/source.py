"""The unified ``GaussianSource`` protocol over the generator zoo.

The paper needs Gaussian background paths in three distinct regimes —
unconditional synthesis for Figs. 8-13, conditional stepwise generation
for the importance-sampling estimators of Appendix B (eq. 42-48), and
the GOP-phase composite arrivals of §3.3 — yet the repository grew six
generators (``hosking``, ``davies_harte``, ``fgn``, ``farima``,
``rmd``, ``mg_infinity``) as unrelated functions.  This module wraps
them behind one small interface so every consumer can swap backends:

- :class:`GaussianSource` — the protocol: ``sample(n, size=...)`` for
  fixed-length paths, ``stream(horizon, size=...)`` for conditional
  step-at-a-time generation (only backends whose
  :attr:`~GaussianSource.capabilities` advertise it), ``acvf(n)`` for
  the autocovariance the source actually targets, an
  :attr:`~GaussianSource.exact` flag, and :meth:`~GaussianSource.describe`
  provenance metadata.
- :class:`SourceCapabilities` — the per-backend capability flags
  (exact vs approximate, supports-conditional-stepping, supports-batch)
  consulted by the registry's ``auto`` policy and validated *at
  construction* by consumers that need conditional stepping.
- Six adapters, one per existing generator.  The correlation-driven
  backends (:class:`HoskingSource`, :class:`DaviesHarteSource`) accept
  any correlation model or explicit autocovariance; the
  parameter-driven backends (:class:`FGNSource`, :class:`FARIMASource`,
  :class:`RMDSource`, :class:`MGInfinitySource`) accept a Hurst
  exponent directly or extract it from a correlation model — they
  match the *Hurst exponent* of an arbitrary model, not its full ACF,
  and their :meth:`~GaussianSource.acvf` reports the law they actually
  sample so conformance checks stay self-consistent.

String-keyed construction and the ``auto`` selection policy live in
:mod:`repro.processes.registry`.
"""

from __future__ import annotations

import abc
from typing import ClassVar, Dict, NamedTuple, Optional, Sequence, Union

import numpy as np

from .._validation import check_hurst
from ..exceptions import ValidationError
from ..stats.random import RandomState, make_rng, spawn_rngs
from .coeff_table import resolve_acvf
from .correlation import CorrelationModel, FGNCorrelation, FARIMACorrelation
from .davies_harte import (
    SPECTRUM_MODES,
    SpectralTableArg,
    davies_harte_generate,
)
from .farima import farima_generate
from .hosking import CoeffTableArg, HoskingProcess, hosking_generate
from .hosking_blocked import BlockSizeArg, resolve_block_size
from .mg_infinity import MGInfinityConfig, mg_infinity_generate
from .rmd import rmd_generate

__all__ = [
    "SourceCapabilities",
    "GaussianSource",
    "HoskingSource",
    "DaviesHarteSource",
    "FGNSource",
    "FARIMASource",
    "RMDSource",
    "MGInfinitySource",
]

CorrelationLike = Union[CorrelationModel, Sequence[float]]


class SourceCapabilities(NamedTuple):
    """Capability flags of one generation backend.

    Attributes
    ----------
    exact:
        The sampled law matches :meth:`GaussianSource.acvf` exactly
        (up to floating point), not just asymptotically.
    conditional:
        :meth:`GaussianSource.stream` is supported: the backend can
        generate step-at-a-time from exact conditional distributions,
        exposing the per-step conditional moments the
        importance-sampling likelihood ratios need.
    batch:
        ``sample(n, size=k)`` is natively vectorised across
        replications (a single shared pass); backends without the flag
        still honor ``size`` by looping per replication.
    chunked:
        The source can drive the scene-chunked pipeline of
        :mod:`repro.processes.chunked`: its sampled law is an exact
        Gaussian law fully described by :meth:`GaussianSource.acvf`,
        so per-chunk draws stitched through conditional-Gaussian
        bridges reproduce (exactly or within the documented window
        contract) the law of a single long pass.  Backends whose
        output is only asymptotically Gaussian (``rmd``,
        ``mg_infinity``) cannot be chunk-stitched this way.
    """

    exact: bool
    conditional: bool
    batch: bool
    chunked: bool = False


class GaussianSource(abc.ABC):
    """A swappable source of correlated Gaussian background paths.

    Implementations wrap one generation algorithm and advertise what it
    can do through :attr:`capabilities`.  Consumers pick a source by
    name through :mod:`repro.processes.registry` (or construct adapters
    directly) and then only ever talk to this interface.
    """

    #: Registry key of the backend (provenance; set per subclass).
    name: ClassVar[str] = "abstract"
    #: Capability flags (set per subclass).
    capabilities: ClassVar[SourceCapabilities] = SourceCapabilities(
        exact=False, conditional=False, batch=False
    )

    @property
    def exact(self) -> bool:
        """Whether the sampled law matches :meth:`acvf` exactly."""
        return self.capabilities.exact

    @abc.abstractmethod
    def sample(
        self,
        n: int,
        *,
        size: Optional[int] = None,
        mean: float = 0.0,
        random_state: RandomState = None,
    ) -> np.ndarray:
        """Generate fixed-length sample paths.

        Returns shape ``(n,)`` when ``size is None``, else ``(size, n)``.
        """

    def stream(
        self,
        horizon: int,
        *,
        size: int = 1,
        random_state: RandomState = None,
        metrics=None,
    ) -> HoskingProcess:
        """Return a conditional step-at-a-time generator.

        The returned object exposes the incremental interface of
        :class:`~repro.processes.hosking.HoskingProcess` (``step()``
        with conditional moments, ``retire()``, ``run()``), which is
        what the importance-sampling machinery consumes.  ``metrics``
        is an optional duck-typed sink forwarded to the generator (the
        ``hosking.*`` engine gauges/counters).  Backends whose
        :attr:`capabilities` lack ``conditional`` raise
        :class:`~repro.exceptions.ValidationError` — consumers should
        check the flag (or call this) at construction, not mid-run.
        """
        raise ValidationError(
            f"backend {self.name!r} does not support conditional "
            "stepwise generation; choose a backend whose capabilities "
            "include 'conditional' (e.g. 'hosking')"
        )

    @abc.abstractmethod
    def acvf(self, n: int) -> np.ndarray:
        """Autocovariance ``r(0) .. r(n-1)`` of the law this source targets."""

    def describe(self) -> Dict[str, object]:
        """Provenance metadata: backend name, capability flags, parameters."""
        info: Dict[str, object] = {
            "backend": self.name,
            "exact": self.capabilities.exact,
            "conditional": self.capabilities.conditional,
            "batch": self.capabilities.batch,
            "chunked": self.capabilities.chunked,
        }
        info.update(self._params())
        return info

    def _params(self) -> Dict[str, object]:
        """Backend-specific parameters for :meth:`describe`."""
        return {}

    def __repr__(self) -> str:
        params = ", ".join(
            f"{k}={v!r}" for k, v in self._params().items()
        )
        return f"{type(self).__name__}({params})"


def _hurst_from(
    correlation: Union[float, CorrelationLike], backend: str
) -> float:
    """Extract a Hurst exponent for the parameter-driven backends.

    Accepts a plain Hurst value or a correlation model exposing a
    ``hurst`` property; explicit autocovariance sequences carry no
    Hurst exponent and are rejected with a pointer to the
    correlation-driven backends.
    """
    if isinstance(correlation, CorrelationModel):
        hurst = correlation.hurst
        if hurst is None:
            raise ValidationError(
                f"backend {backend!r} needs a Hurst exponent but "
                f"{correlation!r} does not define one; use the "
                "'hosking' or 'davies_harte' backend for arbitrary "
                "correlation models"
            )
        return check_hurst(hurst)
    if isinstance(correlation, (int, float, np.integer, np.floating)):
        return check_hurst(float(correlation))
    raise ValidationError(
        f"backend {backend!r} requires a Hurst exponent or a "
        "correlation model with a defined Hurst exponent, got "
        f"{type(correlation).__name__}; explicit autocovariance "
        "sequences are only supported by the 'hosking' and "
        "'davies_harte' backends"
    )


class HoskingSource(GaussianSource):
    """Hosking's exact conditional-Gaussian generator (paper eq. 1-6).

    Exact for any positive-definite autocovariance, O(n^2) per path,
    and the only backend that supports conditional stepping — the
    regime the importance-sampling estimators of Appendix B require.

    ``block_size=B`` (default 1, the exact bypass) routes both
    :meth:`sample` and :meth:`stream` through the blocked BLAS-3
    kernel of :mod:`~repro.processes.hosking_blocked`; see
    :func:`~repro.processes.hosking.hosking_generate` for the
    exactness contract.
    """

    name = "hosking"
    capabilities = SourceCapabilities(
        exact=True, conditional=True, batch=True, chunked=True
    )

    def __init__(
        self,
        correlation: CorrelationLike,
        *,
        coeff_table: CoeffTableArg = None,
        block_size: BlockSizeArg = None,
    ) -> None:
        self._correlation = correlation
        self._coeff_table = coeff_table
        # Validate at construction (registry contract: bad options fail
        # before any simulation work starts).
        self._block_size = resolve_block_size(block_size)

    def sample(self, n, *, size=None, mean=0.0, random_state=None):
        return hosking_generate(
            self._correlation,
            n,
            size=size,
            mean=mean,
            random_state=random_state,
            coeff_table=self._coeff_table,
            block_size=self._block_size,
        )

    def stream(self, horizon, *, size=1, random_state=None, metrics=None):
        return HoskingProcess(
            self._correlation,
            horizon,
            size=size,
            random_state=random_state,
            coeff_table=self._coeff_table,
            block_size=self._block_size,
            metrics=metrics,
        )

    def acvf(self, n: int) -> np.ndarray:
        return resolve_acvf(self._correlation, n)

    def _params(self) -> Dict[str, object]:
        return {
            "correlation": self._correlation,
            "block_size": self._block_size,
        }


class DaviesHarteSource(GaussianSource):
    """Circulant-embedding generation, exact and O(n log n).

    The fast path for unconditional fixed-length synthesis (the
    Figs. 8-13 regime); the ``auto`` registry policy routes
    unconditional requests here.
    """

    name = "davies_harte"
    capabilities = SourceCapabilities(
        exact=True, conditional=False, batch=True, chunked=True
    )

    def __init__(
        self,
        correlation: CorrelationLike,
        *,
        on_negative_eigenvalues: str = "clip",
        spectral_table: SpectralTableArg = None,
        spectrum_mode: str = "real",
    ) -> None:
        self._correlation = correlation
        self._on_negative = on_negative_eigenvalues
        self._spectral_table = spectral_table
        # Validate at construction (registry contract: bad options fail
        # before any simulation work starts).
        if spectrum_mode not in SPECTRUM_MODES:
            raise ValidationError(
                "spectrum_mode must be one of "
                f"{SPECTRUM_MODES}, got {spectrum_mode!r}"
            )
        self._spectrum_mode = spectrum_mode

    def sample(self, n, *, size=None, mean=0.0, random_state=None):
        return davies_harte_generate(
            self._correlation,
            n,
            size=size,
            mean=mean,
            random_state=random_state,
            on_negative_eigenvalues=self._on_negative,
            spectral_table=self._spectral_table,
            spectrum_mode=self._spectrum_mode,
        )

    def acvf(self, n: int) -> np.ndarray:
        return resolve_acvf(self._correlation, n)

    def _params(self) -> Dict[str, object]:
        return {
            "correlation": self._correlation,
            "on_negative_eigenvalues": self._on_negative,
            "spectrum_mode": self._spectrum_mode,
        }


class FGNSource(GaussianSource):
    """Exact fractional Gaussian noise keyed by Hurst exponent alone.

    Matches an arbitrary correlation model only through its Hurst
    exponent (the sampled law is exact fGn); use the correlation-driven
    backends when the full SRD+LRD structure matters.
    """

    name = "fgn"
    capabilities = SourceCapabilities(
        exact=True, conditional=False, batch=True, chunked=True
    )

    def __init__(self, correlation: Union[float, CorrelationLike]) -> None:
        self._hurst = _hurst_from(correlation, self.name)
        self._model = FGNCorrelation(self._hurst)

    def sample(self, n, *, size=None, mean=0.0, random_state=None):
        return davies_harte_generate(
            self._model,
            n,
            size=size,
            mean=mean,
            random_state=random_state,
            on_negative_eigenvalues="raise",
        )

    def acvf(self, n: int) -> np.ndarray:
        return self._model.acvf(n)

    def _params(self) -> Dict[str, object]:
        return {"hurst": self._hurst}


class FARIMASource(GaussianSource):
    """Exact FARIMA(0, d, 0) with ``d = H - 1/2`` (requires ``H > 1/2``)."""

    name = "farima"
    capabilities = SourceCapabilities(
        exact=True, conditional=False, batch=True, chunked=True
    )

    def __init__(self, correlation: Union[float, CorrelationLike]) -> None:
        self._hurst = _hurst_from(correlation, self.name)
        self._model = FARIMACorrelation.from_hurst(self._hurst)

    @property
    def d(self) -> float:
        """The fractional differencing parameter."""
        return self._model.d

    def sample(self, n, *, size=None, mean=0.0, random_state=None):
        out = farima_generate(
            n,
            self._model.d,
            size=size,
            method="davies-harte",
            random_state=random_state,
        )
        return out + mean if mean else out

    def acvf(self, n: int) -> np.ndarray:
        return self._model.acvf(n)

    def _params(self) -> Dict[str, object]:
        return {"hurst": self._hurst, "d": self._model.d}


class RMDSource(GaussianSource):
    """Random midpoint displacement — O(n) but approximate.

    The increments are not exactly stationary and deviate from true
    fGn at short lags; :meth:`acvf` reports the fGn target the method
    approximates.  Kept for speed comparisons and as the historical
    baseline.
    """

    name = "rmd"
    capabilities = SourceCapabilities(
        exact=False, conditional=False, batch=True
    )

    def __init__(self, correlation: Union[float, CorrelationLike]) -> None:
        self._hurst = _hurst_from(correlation, self.name)
        self._model = FGNCorrelation(self._hurst)

    def sample(self, n, *, size=None, mean=0.0, random_state=None):
        out = rmd_generate(
            self._hurst, n, size=size, random_state=random_state
        )
        return out + mean if mean else out

    def acvf(self, n: int) -> np.ndarray:
        return self._model.acvf(n)

    def _params(self) -> Dict[str, object]:
        return {"hurst": self._hurst}


class MGInfinitySource(GaussianSource):
    """Standardized M/G/infinity session counts (asymptotically LRD).

    Cox's construction: Poisson session arrivals with Pareto durations
    of tail index ``alpha = 3 - 2H``.  The stationary count marginal is
    Poisson(``lambda E[D]``), which this adapter standardizes to zero
    mean and unit variance so it can stand in for a Gaussian background
    (it is only asymptotically Gaussian as the mean session count
    grows).  :meth:`acvf` evaluates the continuous-Pareto covariance
    ``r(k) = E[(D - k)^+] / E[D]`` — approximate for the integer-ceil
    durations actually simulated, hence ``exact=False``.
    """

    name = "mg_infinity"
    capabilities = SourceCapabilities(
        exact=False, conditional=False, batch=False
    )

    def __init__(
        self,
        correlation: Union[float, CorrelationLike, MGInfinityConfig],
        *,
        session_rate: float = 20.0,
    ) -> None:
        if isinstance(correlation, MGInfinityConfig):
            self._config = correlation
        else:
            hurst = _hurst_from(correlation, self.name)
            if not 0.5 < hurst < 1.0:
                raise ValidationError(
                    f"backend 'mg_infinity' requires 1/2 < hurst < 1 "
                    f"(alpha = 3 - 2H in (1, 2)), got {hurst}"
                )
            self._config = MGInfinityConfig(
                session_rate=session_rate,
                duration_alpha=3.0 - 2.0 * hurst,
            )

    @property
    def config(self) -> MGInfinityConfig:
        """The underlying M/G/infinity configuration."""
        return self._config

    def sample(self, n, *, size=None, mean=0.0, random_state=None):
        scale = np.sqrt(self._config.mean_active)
        if size is None:
            counts = mg_infinity_generate(
                self._config, n, random_state=make_rng(random_state)
            )
            return (counts - self._config.mean_active) / scale + mean
        out = np.empty((size, n), dtype=float)
        # One spawned child per replication so replication i is
        # reproducible regardless of the batch size.
        for row, rng in enumerate(spawn_rngs(random_state, size)):
            counts = mg_infinity_generate(
                self._config, n, random_state=rng
            )
            out[row] = (counts - self._config.mean_active) / scale
        return out + mean if mean else out

    def acvf(self, n: int) -> np.ndarray:
        cfg = self._config
        k = np.arange(n, dtype=float)
        alpha, dm = cfg.duration_alpha, cfg.duration_min
        mean_d = cfg.mean_duration
        # E[(D - k)^+] for continuous Pareto(alpha, dm):
        #   k <  dm: (dm - k) + dm / (alpha - 1)
        #   k >= dm: dm^alpha * k^(1 - alpha) / (alpha - 1)
        below = k < dm
        excess = np.where(
            below,
            (dm - k) + dm / (alpha - 1.0),
            dm**alpha * np.maximum(k, dm) ** (1.0 - alpha) / (alpha - 1.0),
        )
        return excess / mean_d

    def _params(self) -> Dict[str, object]:
        return {
            "session_rate": self._config.session_rate,
            "duration_alpha": self._config.duration_alpha,
            "hurst": self._config.hurst,
        }
