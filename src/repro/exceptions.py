"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "NotFittedError",
    "CorrelationError",
    "GenerationError",
    "EstimationError",
    "SimulationError",
    "SimulationWarning",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, shape, or value)."""


class NotFittedError(ReproError, RuntimeError):
    """A model method requiring a prior ``fit()`` was called before fitting."""


class CorrelationError(ReproError, ValueError):
    """A correlation structure is invalid (e.g. not positive definite)."""


class GenerationError(ReproError, RuntimeError):
    """Sample-path generation failed (e.g. conditional variance collapsed)."""


class EstimationError(ReproError, RuntimeError):
    """A statistical estimator could not produce a result."""


class SimulationError(ReproError, RuntimeError):
    """A queueing or rare-event simulation failed or was mis-configured."""


class SimulationWarning(UserWarning):
    """A simulation produced a result that is formally valid but suspect.

    Emitted (alongside a metrics counter) when, e.g., every replication
    of a twisted background is retired before the horizon, or an
    importance-sampling estimate finishes with zero overflow hits —
    situations that previously degraded silently to zero-information
    estimates.
    """
