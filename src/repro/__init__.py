"""repro — unified modeling & simulation of self-similar VBR video.

A from-scratch reproduction of

    C. Huang, M. Devetsikiotis, I. Lambadaris, A. R. Kaye,
    "Modeling and Simulation of Self-Similar Variable Bit Rate
    Compressed Video: A Unified Approach", ACM SIGCOMM 1995.

The package is organized as:

- :mod:`repro.core` — the unified VBR model (§3.2) and the composite
  MPEG I/B/P model (§3.3);
- :mod:`repro.processes` — exact Gaussian process generation (Hosking,
  Davies-Harte), FARIMA, fGn, and the composite SRD+LRD correlation
  family (eq. 10-13);
- :mod:`repro.estimators` — Hurst estimators (variance-time, R/S,
  periodogram, DFA), sample ACF, and the SRD/LRD ACF fitter;
- :mod:`repro.marginals` — empirical histogram inversion, parametric
  marginals, the eq. 7 transform, and Appendix A attenuation analysis;
- :mod:`repro.video` — GOP structure, trace containers, and the
  synthetic MPEG-1 codec that substitutes for the paper's proprietary
  "Last Action Hero" trace;
- :mod:`repro.queueing` — the slotted ATM multiplexer (eq. 16-17);
- :mod:`repro.simulation` — importance-sampling rare-event estimation
  (Appendix B) and the experiment runners for Figs. 14-17;
- :mod:`repro.observability` — opt-in run metrics (counters, timers,
  IS convergence diagnostics such as the effective sample size) with
  JSON-lines and Prometheus-style export.

Quickstart::

    from repro import SyntheticCodecConfig, SyntheticMPEGCodec, UnifiedVBRModel

    trace = SyntheticMPEGCodec(
        SyntheticCodecConfig.intraframe_paper_like(num_frames=60_000)
    ).generate(random_state=1)
    model = UnifiedVBRModel().fit(trace)
    synthetic = model.generate(10_000, random_state=2)
"""

from .core import (
    AggregateFeed,
    AggregateVBRModel,
    CompositeMPEGModel,
    ModelFitReport,
    ShardedAggregateModel,
    SourceClass,
    SourcePopulation,
    UnifiedVBRModel,
    fit_report,
)
from .estimators import (
    dfa_estimate,
    fit_composite_acf,
    fit_farima,
    periodogram_estimate,
    rs_estimate,
    sample_acf,
    variance_time_estimate,
    whittle_estimate,
)
from .exceptions import (
    CorrelationError,
    EstimationError,
    GenerationError,
    NotFittedError,
    ReproError,
    SimulationError,
    SimulationWarning,
    ValidationError,
)
from .observability import (
    MetricsRegistry,
    RunContext,
    render_prometheus,
    to_json_lines,
)
from .marginals import (
    EmpiricalDistribution,
    GammaDistribution,
    GammaParetoDistribution,
    MarginalTransform,
    ParetoDistribution,
)
from .processes import (
    CoefficientTable,
    CompositeCorrelation,
    ExponentialCorrelation,
    FARIMACorrelation,
    FGNCorrelation,
    GaussianSource,
    SourceCapabilities,
    conditional_forecast,
    SpectralTable,
    davies_harte_generate,
    farima_generate,
    fgn_generate,
    get_coefficient_table,
    get_spectral_table,
    hosking_generate,
    registry,
)
from .queueing import AtmMultiplexer, lindley_recursion
from .simulation import (
    effective_sample_size,
    is_overflow_probability,
    overflow_vs_buffer_curve,
    search_twisted_mean,
)
from .video import (
    FrameType,
    GopStructure,
    SyntheticCodecConfig,
    SyntheticMPEGCodec,
    VideoTrace,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "UnifiedVBRModel",
    "CompositeMPEGModel",
    "AggregateVBRModel",
    "SourceClass",
    "SourcePopulation",
    "ShardedAggregateModel",
    "AggregateFeed",
    "ModelFitReport",
    "fit_report",
    # processes
    "FGNCorrelation",
    "ExponentialCorrelation",
    "CompositeCorrelation",
    "FARIMACorrelation",
    "CoefficientTable",
    "get_coefficient_table",
    "SpectralTable",
    "get_spectral_table",
    "hosking_generate",
    "davies_harte_generate",
    "fgn_generate",
    "farima_generate",
    "GaussianSource",
    "SourceCapabilities",
    "registry",
    # estimators
    "sample_acf",
    "variance_time_estimate",
    "rs_estimate",
    "periodogram_estimate",
    "dfa_estimate",
    "whittle_estimate",
    "fit_composite_acf",
    "fit_farima",
    "conditional_forecast",
    # marginals
    "EmpiricalDistribution",
    "GammaDistribution",
    "ParetoDistribution",
    "GammaParetoDistribution",
    "MarginalTransform",
    # video
    "FrameType",
    "GopStructure",
    "VideoTrace",
    "SyntheticCodecConfig",
    "SyntheticMPEGCodec",
    # queueing / simulation
    "AtmMultiplexer",
    "lindley_recursion",
    "is_overflow_probability",
    "overflow_vs_buffer_curve",
    "search_twisted_mean",
    "effective_sample_size",
    # observability
    "MetricsRegistry",
    "RunContext",
    "to_json_lines",
    "render_prometheus",
    # exceptions
    "ReproError",
    "ValidationError",
    "NotFittedError",
    "CorrelationError",
    "GenerationError",
    "EstimationError",
    "SimulationError",
    "SimulationWarning",
]
