"""Estimate containers and diagnostics for importance-sampling runs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..exceptions import ValidationError

__all__ = ["ISEstimate", "effective_sample_size"]


def effective_sample_size(weights) -> float:
    """Kish effective sample size ``(sum w)^2 / sum w^2`` of IS weights.

    The ESS measures how many *plain* Monte Carlo replications the
    weighted sample is worth: ``n`` when every weight is equal, and
    close to 1 when a single likelihood ratio dominates — the classic
    symptom of over-twisting (``m*`` past the variance valley of
    Fig. 14).  Zero-hit replications carry weight 0 and contribute
    nothing, so an estimate's ESS is computed over its hit weights.

    Parameters
    ----------
    weights:
        Array-like of non-negative importance weights.  An empty array
        or all-zero weights give ``0.0``.

    Returns
    -------
    float
        The effective sample size, in ``[0, len(weights)]``.
    """
    w = np.asarray(weights, dtype=float).ravel()
    if w.size == 0:
        return 0.0
    if np.any(w < 0):
        raise ValidationError("importance weights must be non-negative")
    total = float(np.sum(w))
    if total <= 0.0:
        return 0.0
    sum_sq = float(np.sum(w * w))
    return total * total / sum_sq


@dataclass(frozen=True)
class ISEstimate:
    """An importance-sampling estimate of a rare-event probability.

    Attributes
    ----------
    probability:
        The unbiased IS estimate ``(1/N) sum I_n L_n``.
    variance:
        Variance of the estimator (sample variance of ``I L`` over N).
    replications:
        Number of replications ``N``.
    hits:
        Number of replications in which the rare event occurred under
        the twisted law.
    twisted_mean:
        The twist ``m*`` used (0 for plain Monte Carlo).
    mean_hit_time:
        Average first-passage slot among hit replications (NaN if no
        hits); useful for diagnosing over/under-twisting.
    ess:
        Kish effective sample size of the hit weights (see
        :func:`effective_sample_size`); NaN when the estimator did not
        compute it.
    """

    probability: float
    variance: float
    replications: int
    hits: int
    twisted_mean: float
    mean_hit_time: float = float("nan")
    ess: float = float("nan")

    @property
    def std_error(self) -> float:
        """Standard error of the estimate."""
        return float(np.sqrt(max(self.variance, 0.0)))

    @property
    def relative_error(self) -> float:
        """Standard error over the estimate (inf for a zero estimate)."""
        if self.probability <= 0:
            return float("inf")
        return self.std_error / self.probability

    @property
    def normalized_variance(self) -> float:
        """Per-replication variance over the squared estimate.

        This is the quantity whose "valley" over ``m*`` locates the
        favorable twist (Fig. 14): ``N var(estimator) / P^2``.  For
        plain Monte Carlo on a rare event it approaches ``1/P``; a good
        twist drives it toward a small constant, and the ratio of the
        two is the variance-reduction factor.
        """
        if self.probability <= 0:
            return float("inf")
        return self.replications * self.variance / self.probability**2

    @property
    def log10_probability(self) -> float:
        """``log10 P``; ``-inf`` when the estimate is zero."""
        if self.probability <= 0:
            return float("-inf")
        return float(np.log10(self.probability))

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation confidence interval ``(low, high)``."""
        half = z * self.std_error
        return (max(self.probability - half, 0.0), self.probability + half)
