"""Estimate containers for importance-sampling simulations."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["ISEstimate"]


@dataclass(frozen=True)
class ISEstimate:
    """An importance-sampling estimate of a rare-event probability.

    Attributes
    ----------
    probability:
        The unbiased IS estimate ``(1/N) sum I_n L_n``.
    variance:
        Variance of the estimator (sample variance of ``I L`` over N).
    replications:
        Number of replications ``N``.
    hits:
        Number of replications in which the rare event occurred under
        the twisted law.
    twisted_mean:
        The twist ``m*`` used (0 for plain Monte Carlo).
    mean_hit_time:
        Average first-passage slot among hit replications (NaN if no
        hits); useful for diagnosing over/under-twisting.
    """

    probability: float
    variance: float
    replications: int
    hits: int
    twisted_mean: float
    mean_hit_time: float = float("nan")

    @property
    def std_error(self) -> float:
        """Standard error of the estimate."""
        return float(np.sqrt(max(self.variance, 0.0)))

    @property
    def relative_error(self) -> float:
        """Standard error over the estimate (inf for a zero estimate)."""
        if self.probability <= 0:
            return float("inf")
        return self.std_error / self.probability

    @property
    def normalized_variance(self) -> float:
        """Per-replication variance over the squared estimate.

        This is the quantity whose "valley" over ``m*`` locates the
        favorable twist (Fig. 14): ``N var(estimator) / P^2``.  For
        plain Monte Carlo on a rare event it approaches ``1/P``; a good
        twist drives it toward a small constant, and the ratio of the
        two is the variance-reduction factor.
        """
        if self.probability <= 0:
            return float("inf")
        return self.replications * self.variance / self.probability**2

    @property
    def log10_probability(self) -> float:
        """``log10 P``; ``-inf`` when the estimate is zero."""
        if self.probability <= 0:
            return float("-inf")
        return float(np.log10(self.probability))

    def confidence_interval(self, z: float = 1.96) -> Tuple[float, float]:
        """Normal-approximation confidence interval ``(low, high)``."""
        half = z * self.std_error
        return (max(self.probability - half, 0.0), self.probability + half)
