"""Zero-copy shared-memory transport for cross-process ndarray results.

The process-parallel engines (the sharded aggregate model's per-block
partial sums, the chunked pipeline's stitched chunk legs) return large
``float64`` arrays from worker processes.  By default those arrays
travel back through pickle over a pipe — one serialize, one byte-copy
through the OS, one deserialize per result.  This module replaces that
round trip with POSIX shared memory: the *worker* copies its result
into a fresh :mod:`multiprocessing.shared_memory` segment and returns
only a tiny :class:`ShmArrayRef` descriptor ``(segment, offset, shape,
dtype)``; the *parent* maps the segment, reads the array in place (or
copies it once into caller-owned memory), and unlinks the segment.

Lifetime contract
-----------------
Segments are created by workers and owned by the parent from the moment
the descriptor is redeemed.  Every segment is unlinked on exactly one
of three paths, in order of preference:

1. normal redemption (:func:`redeem_copy` or attach/``release``);
2. the exception drain in :mod:`repro.simulation.parallel`, which
   awaits in-flight futures after a failure and discards any
   descriptors they produced;
3. the :func:`sweep_segments` ``atexit`` hook, which unlinks any
   ``/dev/shm`` entry carrying this process's name prefix.

Python's :mod:`multiprocessing.resource_tracker` would otherwise
double-manage these segments — it registers every segment on both
create *and* attach, and the worker-side and parent-side
register/unregister messages race through the tracker pipe, producing
spurious ``KeyError`` noise at best and double unlinks at worst.  Every
``SharedMemory`` call in this module therefore runs under
:func:`_tracker_bypass`, which scopes out tracker registration
entirely; lifetime is managed here alone.

Everything in this module is transport only: it never touches a random
stream, so results are bit-identical to the pickle path.
"""

from __future__ import annotations

import atexit
import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import ValidationError

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import resource_tracker as _resource_tracker
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover - platforms without _posixshmem
    _resource_tracker = None
    _shared_memory = None

__all__ = [
    "DEFAULT_MIN_BYTES",
    "MIN_BYTES_ENV",
    "ShmArrayRef",
    "ShmExportTask",
    "shm_available",
    "export_array",
    "redeem_copy",
    "attach",
    "release",
    "discard",
    "resolve_min_bytes",
    "note_pickled",
    "shm_stats",
    "reset_shm_stats",
    "sweep_segments",
]

#: Results smaller than this (bytes) ride the pickle path even under
#: ``transport="auto"`` — a pipe round trip beats segment setup for
#: tiny arrays.  Overridden by ``REPRO_SHM_MIN_BYTES``.
DEFAULT_MIN_BYTES = 64 * 1024

#: Environment variable overriding :data:`DEFAULT_MIN_BYTES`.
MIN_BYTES_ENV = "REPRO_SHM_MIN_BYTES"

_SHM_DIR = "/dev/shm"

_lock = threading.RLock()
_stats: Dict[str, int] = {
    "segments_received": 0,
    "segments_unlinked": 0,
    "bytes_zero_copy": 0,
    "bytes_pickled": 0,
    "fallbacks": 0,
}
#: Names of segments attached in this process and not yet unlinked.
_live: set = set()
_seq = 0
_available: Optional[bool] = None


@dataclass(frozen=True)
class ShmArrayRef:
    """Descriptor for an ndarray parked in a shared-memory segment.

    This is the only thing that crosses the pipe on the zero-copy path:
    the segment name, a byte offset, and the shape/dtype needed to
    reconstruct the array view on the parent side.
    """

    segment: str
    offset: int
    shape: Tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        """Payload size in bytes described by this reference."""
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return int(np.dtype(self.dtype).itemsize) * count


@contextmanager
def _tracker_bypass():
    """Scope out resource-tracker bookkeeping for this module's segments.

    The stdlib registers every segment with the tracker on both create
    and attach and unregisters on unlink; with one side in a worker and
    the other in the parent those messages race, and the tracker would
    also unlink anything it still tracks at exit — fighting the
    explicit lifetime contract above.  Within this context manager
    ``shared_memory``'s register/unregister calls become no-ops for the
    ``"shared_memory"`` rtype (other rtypes pass through).  Held under
    ``_lock``, so concurrent callers of this module serialize; other
    threads creating *their own* tracked segments during the (tiny)
    window would skip registration, which no repro code path does.
    """
    if _resource_tracker is None:  # pragma: no cover
        yield
        return
    with _lock:
        orig_register = _resource_tracker.register
        orig_unregister = _resource_tracker.unregister

        def register(name, rtype):
            if rtype != "shared_memory":  # pragma: no cover - passthrough
                orig_register(name, rtype)

        def unregister(name, rtype):
            if rtype != "shared_memory":  # pragma: no cover - passthrough
                orig_unregister(name, rtype)

        _resource_tracker.register = register
        _resource_tracker.unregister = unregister
        try:
            yield
        finally:
            _resource_tracker.register = orig_register
            _resource_tracker.unregister = orig_unregister


def shm_available() -> bool:
    """Whether POSIX shared memory works in this environment (cached)."""
    global _available
    if _available is None:
        if _shared_memory is None:  # pragma: no cover
            _available = False
        else:
            try:
                with _tracker_bypass():
                    probe = _shared_memory.SharedMemory(create=True, size=1)
            except (OSError, ValueError):  # pragma: no cover - no /dev/shm
                _available = False
            else:
                probe.close()
                with _tracker_bypass():
                    try:
                        probe.unlink()
                    except OSError:  # pragma: no cover
                        pass
                _available = True
    return _available


def _segment_name() -> str:
    """Fresh segment name carrying the parent-process sweep prefix.

    Workers are forked from the parent, so ``os.getppid()`` inside a
    worker is the process that will run :func:`sweep_segments` — the
    prefix is what lets that atexit hook find orphans.
    """
    global _seq
    with _lock:
        _seq += 1
        seq = _seq
    return f"repro{os.getppid()}_{os.getpid()}_{seq}"


def export_array(array: np.ndarray) -> ShmArrayRef:
    """Copy ``array`` into a fresh shared segment and return its descriptor.

    Runs on the *worker* side.  The parent owns the segment once the
    descriptor is returned; it is unlinked here only if the copy itself
    fails.
    """
    array = np.asarray(array)
    size = max(int(array.nbytes), 1)
    while True:
        name = _segment_name()
        try:
            with _tracker_bypass():
                segment = _shared_memory.SharedMemory(
                    name=name, create=True, size=size
                )
            break
        except FileExistsError:  # recycled pid; bump the counter and retry
            continue
    try:
        if array.nbytes:
            view = np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
            np.copyto(view, array)
            del view
        ref = ShmArrayRef(
            segment=name,
            offset=0,
            shape=tuple(int(dim) for dim in array.shape),
            dtype=str(array.dtype),
        )
    except BaseException:
        segment.close()
        with _tracker_bypass():
            try:
                segment.unlink()
            except OSError:  # pragma: no cover
                pass
        raise
    segment.close()
    return ref


def attach(ref: ShmArrayRef):
    """Map ``ref``'s segment and return ``(array_view, segment)``.

    Runs on the *parent* side.  The caller must drop every view into
    ``array_view`` before calling :func:`release` on the segment.
    """
    with _tracker_bypass():
        segment = _shared_memory.SharedMemory(name=ref.segment, create=False)
    array = np.ndarray(
        ref.shape, dtype=ref.dtype, buffer=segment.buf, offset=ref.offset
    )
    with _lock:
        _stats["segments_received"] += 1
        _stats["bytes_zero_copy"] += ref.nbytes
        _live.add(ref.segment)
    return array, segment


def release(ref: ShmArrayRef, segment) -> None:
    """Close and unlink a segment returned by :func:`attach`."""
    try:
        segment.close()
    except BufferError:  # a consumer kept a view; unlink still frees the name
        pass
    with _tracker_bypass():
        try:
            segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - gone
            pass
    with _lock:
        _stats["segments_unlinked"] += 1
        _live.discard(ref.segment)


def redeem_copy(ref: ShmArrayRef) -> np.ndarray:
    """Attach, copy into caller-owned memory, and unlink in one step."""
    array, segment = attach(ref)
    try:
        result = np.array(array)
    finally:
        del array
        release(ref, segment)
    return result


def discard(ref: ShmArrayRef) -> None:
    """Unlink a descriptor without materializing it (error-drain path)."""
    try:
        with _tracker_bypass():
            segment = _shared_memory.SharedMemory(
                name=ref.segment, create=False
            )
    except (OSError, FileNotFoundError):  # pragma: no cover - already swept
        return
    with _lock:
        _stats["segments_received"] += 1
        _live.add(ref.segment)
    release(ref, segment)


def resolve_min_bytes(transport: str) -> int:
    """Zero-copy size threshold for a transport choice.

    ``"shm"`` forces every ndarray result through shared memory;
    ``"auto"`` applies ``REPRO_SHM_MIN_BYTES`` (default
    :data:`DEFAULT_MIN_BYTES`).  Resolved in the parent at call time so
    the environment is read from the calling process, never from a
    long-lived worker's stale copy.
    """
    if transport == "shm":
        return 0
    raw = os.environ.get(MIN_BYTES_ENV, "")
    stripped = raw.strip()
    if not raw:
        return DEFAULT_MIN_BYTES
    try:
        value = int(stripped) if stripped else None
    except ValueError:
        value = None
    if value is None or value < 0:
        raise ValidationError(
            f"{MIN_BYTES_ENV} must be a non-negative integer, got {raw!r}"
        )
    return value


class ShmExportTask:
    """Picklable task wrapper exporting large ndarray results via shm.

    Wraps a module-level task function; results that are ndarrays of at
    least ``min_bytes`` bytes come back as :class:`ShmArrayRef`
    descriptors, everything else takes the normal pickle path.  The
    threshold is captured in the parent and shipped inside the wrapper
    so stale worker environments cannot influence it.
    """

    __slots__ = ("fn", "min_bytes")

    def __init__(self, fn, min_bytes: int):
        self.fn = fn
        self.min_bytes = int(min_bytes)

    def __getstate__(self):
        return (self.fn, self.min_bytes)

    def __setstate__(self, state):
        fn, min_bytes = state
        object.__setattr__(self, "fn", fn)
        object.__setattr__(self, "min_bytes", min_bytes)

    def __call__(self, payload):
        result = self.fn(payload)
        if isinstance(result, np.ndarray) and result.nbytes >= self.min_bytes:
            return export_array(result)
        return result


def note_pickled(nbytes: int) -> None:
    """Record ndarray bytes that crossed the pipe via pickle instead."""
    with _lock:
        _stats["bytes_pickled"] += int(nbytes)


def note_fallback() -> None:
    """Record a forced-shm request served by pickle (shm unavailable)."""
    with _lock:
        _stats["fallbacks"] += 1


def shm_stats() -> Dict[str, int]:
    """Snapshot of transport counters (plus the ``segments_live`` gauge)."""
    with _lock:
        out = dict(_stats)
        out["segments_live"] = len(_live)
    return out


def reset_shm_stats() -> None:
    """Zero the counters (test/bench seam); the live set is untouched."""
    with _lock:
        for key in _stats:
            _stats[key] = 0


def live_segments() -> List[str]:
    """Names of segments attached but not yet unlinked (should be empty)."""
    with _lock:
        return sorted(_live)


def sweep_segments() -> int:
    """Unlink any leftover ``/dev/shm`` entry with this process's prefix.

    Registered with :mod:`atexit` as the last-resort leak backstop; safe
    to call at any time (a normal run has nothing to sweep).  Returns
    the number of entries removed.
    """
    prefix = f"repro{os.getpid()}_"
    removed = 0
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        names = []
    for name in names:
        if name.startswith(prefix):
            try:
                os.unlink(os.path.join(_SHM_DIR, name))
                removed += 1
            except OSError:  # pragma: no cover - raced with a release
                continue
    if removed:
        with _lock:
            _live.clear()
    return removed


atexit.register(sweep_segments)
