"""High-level experiment runners for the paper's queueing figures.

These functions orchestrate replications across buffer sizes,
utilizations, and competing correlation models, producing exactly the
series plotted in Figs. 15-17.  They are deliberately thin: all the
statistical machinery lives in :mod:`repro.simulation.importance`.

Every runner takes a ``workers`` argument (default: the
``REPRO_WORKERS`` environment variable, else serial).  Legs are seeded
with independent child generators *before* any leg runs, so the curves
are bit-for-bit identical at any worker count — see
:mod:`repro.simulation.parallel`.  Legs over one background model also
share one Durbin-Levinson coefficient table (the ``horizon = 10 b``
sweep reads prefixes of a single table), which is where most of the
speedup over per-leg recursions comes from.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ValidationError
from ..observability import RunContext, ensure_context
from ..processes import registry
from ..processes.coeff_table import cache_metrics
from ..processes.correlation import CorrelationModel
from ..processes.registry import BackendArg
from ..processes.spectral_cache import (
    get_spectral_table,
    spectral_cache_metrics,
)
from ..core.aggregate import ShardedAggregateModel, SourcePopulation
from ..processes.source import GaussianSource
from ..queueing.multiplexer import service_rate_for_utilization
from ..queueing.overflow import (
    OverflowEstimate,
    steady_state_overflow_from_trace,
    transient_overflow_mc,
)
from ..stats.random import RandomState, spawn_rngs
from .estimators import ISEstimate
from .importance import (
    ArrivalTransform,
    batched_arrivals,
    is_overflow_probability,
    is_transient_overflow_curve,
)
from .parallel import resolve_processes, run_legs, run_tasks

__all__ = [
    "OverflowCurve",
    "ModelComparisonResult",
    "overflow_vs_buffer_curve",
    "mc_overflow_vs_buffer_curve",
    "transient_overflow_curves",
    "model_comparison_curves",
    "aggregate_overflow_curve",
]


@dataclass(frozen=True)
class OverflowCurve:
    """Overflow probability as a function of (normalized) buffer size.

    Attributes
    ----------
    utilization:
        The utilization this curve was run at.
    buffer_sizes:
        Normalized buffer sizes ``b``.
    estimates:
        One estimate per buffer size — :class:`~.estimators.ISEstimate`
        from the importance-sampling runners,
        :class:`~repro.queueing.overflow.OverflowEstimate` from the
        plain Monte Carlo runner; both expose ``probability`` and
        ``log10_probability``.
    """

    utilization: float
    buffer_sizes: np.ndarray
    estimates: List[Union[ISEstimate, OverflowEstimate]]

    @property
    def log10_probabilities(self) -> np.ndarray:
        """``log10 P(Q > b)`` per buffer size (the Fig. 16/17 y-axis)."""
        return np.array([e.log10_probability for e in self.estimates])


def _check_buffers(buffer_sizes: Sequence[float]) -> np.ndarray:
    buffers = np.asarray(list(buffer_sizes), dtype=float)
    if buffers.ndim != 1 or buffers.size == 0:
        raise ValidationError("buffer_sizes must be a non-empty sequence")
    return buffers


def _buffer_leg_jobs(
    correlation: Union[CorrelationModel, Sequence[float]],
    transform: ArrivalTransform,
    *,
    service_rate: float,
    buffers: np.ndarray,
    replications: int,
    twisted_mean: float,
    horizon_factor: int,
    random_state: RandomState,
    backend: BackendArg = "auto",
    block_size=None,
    metrics=None,
) -> Tuple[List[Callable[[], ISEstimate]], List[RunContext]]:
    """One :func:`is_overflow_probability` job per buffer size.

    Child generators are spawned here, in buffer order, so each leg's
    stream — and therefore its estimate — is independent of how (or
    whether) the legs are parallelized.  ``backend`` is forwarded to
    every leg; the ``spawn_rngs`` seeding is untouched, so estimates
    stay bit-for-bit identical at any worker count for a given backend.

    Returns ``(jobs, children)``: each job records into its own child
    :class:`~repro.observability.RunContext` labelled by leg index and
    buffer size, so parallel workers never share a registry; the caller
    folds the children back with
    :meth:`~repro.observability.RunContext.merge_children` in
    submission order once every leg is done.
    """
    ctx = ensure_context(metrics)
    rngs = spawn_rngs(random_state, buffers.size)
    children = [
        ctx.child(leg=i, buffer=float(b)) for i, b in enumerate(buffers)
    ]
    jobs = [
        partial(
            is_overflow_probability,
            correlation,
            transform,
            service_rate=service_rate,
            buffer_size=float(b),
            horizon=max(int(horizon_factor * b), 1),
            twisted_mean=twisted_mean,
            replications=replications,
            random_state=rng,
            backend=backend,
            block_size=block_size,
            metrics=child,
        )
        for b, rng, child in zip(buffers, rngs, children)
    ]
    return jobs, children


def overflow_vs_buffer_curve(
    correlation: Union[CorrelationModel, Sequence[float]],
    transform: ArrivalTransform,
    *,
    utilization: float,
    buffer_sizes: Sequence[float],
    replications: int,
    twisted_mean: float,
    horizon_factor: int = 10,
    random_state: RandomState = None,
    workers: Optional[int] = None,
    backend: BackendArg = "auto",
    block_size=None,
    metrics=None,
) -> OverflowCurve:
    """Fig. 16-style curve: ``log P(Q > b)`` versus ``b`` at one utilization.

    Uses the paper's stop-time convention ``k = horizon_factor * b``
    (the paper uses ``k = 10 b`` as its approximately-steady-state
    horizon).  Arrivals must be unit-mean so buffer sizes are
    normalized; the service rate is then ``1 / utilization``.
    ``workers`` runs buffer sizes concurrently (same estimates at any
    worker count).  ``backend`` selects the conditional generation
    backend for every leg (validated at construction); ``block_size``
    routes its conditional stepping through the blocked BLAS-3 Hosking
    kernel (default: exact per-step loop).  ``metrics``
    (optional :class:`~repro.observability.RunContext`) collects per-leg
    timings, ESS per twist, pool occupancy and coefficient-cache deltas;
    the child contexts are merged in buffer order, so the snapshot is as
    deterministic as the estimates.
    """
    check_positive_int(replications, "replications")
    check_positive_int(horizon_factor, "horizon_factor")
    buffers = _check_buffers(buffer_sizes)
    ctx = ensure_context(metrics)
    mu = service_rate_for_utilization(1.0, utilization)
    with cache_metrics(ctx):
        jobs, children = _buffer_leg_jobs(
            correlation,
            transform,
            service_rate=mu,
            buffers=buffers,
            replications=replications,
            twisted_mean=twisted_mean,
            horizon_factor=horizon_factor,
            random_state=random_state,
            backend=backend,
            block_size=block_size,
            metrics=ctx,
        )
        estimates = run_legs(jobs, workers, metrics=ctx)
    ctx.merge_children(children)
    return OverflowCurve(
        utilization=float(utilization),
        buffer_sizes=buffers,
        estimates=estimates,
    )


# Batched transform application now lives in repro.simulation.importance
# (shared with the shared-path twist sweep); keep the historical private
# name importable for downstream code.
_batched_arrivals = batched_arrivals


def _mc_buffer_leg(
    correlation: Union[CorrelationModel, Sequence[float]],
    transform: ArrivalTransform,
    *,
    service_rate: float,
    buffer_size: float,
    horizon: int,
    replications: int,
    random_state: RandomState,
    backend: BackendArg,
    metrics=None,
) -> OverflowEstimate:
    """One plain-MC leg: batched paths, transform, Lindley indicator."""
    ctx = ensure_context(metrics)
    with ctx.time("mc.leg_seconds", buffer=float(buffer_size)):
        source = registry.resolve(backend, correlation, metrics=ctx)
        paths = source.sample(
            horizon, size=replications, random_state=random_state
        )
        arrivals = _batched_arrivals(transform, paths)
        estimate = transient_overflow_mc(
            arrivals, service_rate, buffer_size
        )
    ctx.inc(
        "mc.replications", replications, buffer=float(buffer_size)
    )
    ctx.inc(
        "mc.hits",
        int(round(estimate.probability * estimate.replications)),
        buffer=float(buffer_size),
    )
    return estimate


def mc_overflow_vs_buffer_curve(
    correlation: Union[CorrelationModel, Sequence[float]],
    transform: ArrivalTransform,
    *,
    utilization: float,
    buffer_sizes: Sequence[float],
    replications: int,
    horizon_factor: int = 10,
    random_state: RandomState = None,
    workers: Optional[int] = None,
    backend: BackendArg = "auto",
    metrics=None,
) -> OverflowCurve:
    """Fig. 16-style curve by plain (untwisted) Monte Carlo.

    The unconditional counterpart of :func:`overflow_vs_buffer_curve`:
    instead of conditional stepping with importance sampling, each leg
    draws all of its replications as **one batched** fixed-length
    generation — a single FFT pass over ``(replications, horizon)``
    under the ``auto``/Davies-Harte backend — maps them through the
    arrival transform, and estimates ``P(Q_k > b)`` with
    :func:`~repro.queueing.overflow.transient_overflow_mc`.  Only
    practical for the moderate probabilities plain MC can resolve, but
    it is the regime where the spectral cache amortizes completely: all
    legs of the ``horizon = horizon_factor * b`` sweep read prefixes of
    a single ACVF/eigenvalue table, prewarmed here at the largest
    horizon.

    Seeding matches the IS runners (one spawned child generator per
    leg, in buffer order), so the curve is bit-for-bit identical at any
    worker count, and each leg's batched draw is bit-identical to
    generating its replications one at a time from the same child
    generator.  ``metrics`` collects per-leg timings, replication/hit
    counters, and spectral/coefficient cache deltas.
    """
    check_positive_int(replications, "replications")
    check_positive_int(horizon_factor, "horizon_factor")
    buffers = _check_buffers(buffer_sizes)
    ctx = ensure_context(metrics)
    mu = service_rate_for_utilization(1.0, utilization)
    horizons = [max(int(horizon_factor * b), 1) for b in buffers]
    rngs = spawn_rngs(random_state, buffers.size)
    children = [
        ctx.child(leg=i, buffer=float(b)) for i, b in enumerate(buffers)
    ]
    with spectral_cache_metrics(ctx), cache_metrics(ctx):
        if isinstance(correlation, CorrelationModel) and _spectral_backend(
            backend
        ):
            # Resolve the shared table once at the longest horizon so
            # every leg — in any order, on any worker — reads a prefix
            # instead of racing to extend it.
            get_spectral_table(correlation, max(horizons))
        jobs = [
            partial(
                _mc_buffer_leg,
                correlation,
                transform,
                service_rate=mu,
                buffer_size=float(b),
                horizon=horizon,
                replications=replications,
                random_state=rng,
                backend=backend,
                metrics=child,
            )
            for b, horizon, rng, child in zip(
                buffers, horizons, rngs, children
            )
        ]
        estimates = run_legs(jobs, workers, metrics=ctx)
    ctx.merge_children(children)
    return OverflowCurve(
        utilization=float(utilization),
        buffer_sizes=buffers,
        estimates=estimates,
    )


def _spectral_backend(backend: BackendArg) -> bool:
    """Whether ``backend`` routes unconditional paths to Davies-Harte."""
    if not isinstance(backend, str):
        return False
    return backend.strip().lower().replace("-", "_") in (
        "auto",
        "davies_harte",
    )


def transient_overflow_curves(
    correlation: Union[CorrelationModel, Sequence[float]],
    transform: ArrivalTransform,
    *,
    utilization: float,
    buffer_size: float,
    horizon: int,
    replications: int,
    twisted_mean: float,
    random_state: RandomState = None,
    workers: Optional[int] = None,
    backend: BackendArg = "auto",
    block_size=None,
    metrics=None,
) -> Dict[str, np.ndarray]:
    """Fig. 15: transient ``P(Q_j > b)`` for empty and full initial buffers.

    Returns a mapping with keys ``"empty"`` and ``"full"``; each value
    is the per-slot estimate curve of length ``horizon``.  The two
    initial conditions are independent legs and run concurrently when
    ``workers > 1``.  ``backend`` selects the conditional generation
    backend (validated at construction).  ``metrics`` collects per-leg
    timings and weight diagnostics, labelled ``start="empty"/"full"``.
    """
    check_positive_int(horizon, "horizon")
    check_positive_int(replications, "replications")
    ctx = ensure_context(metrics)
    mu = service_rate_for_utilization(1.0, utilization)
    rng_empty, rng_full = spawn_rngs(random_state, 2)
    children = [ctx.child(start="empty"), ctx.child(start="full")]
    with cache_metrics(ctx):
        jobs = [
            partial(
                is_transient_overflow_curve,
                correlation,
                transform,
                service_rate=mu,
                buffer_size=buffer_size,
                horizon=horizon,
                twisted_mean=twisted_mean,
                replications=replications,
                initial=initial,
                random_state=rng,
                backend=backend,
                block_size=block_size,
                metrics=child,
            )
            for (initial, rng), child in zip(
                ((0.0, rng_empty), (float(buffer_size), rng_full)),
                children,
            )
        ]
        empty, full = run_legs(jobs, workers, metrics=ctx)
    ctx.merge_children(children)
    return {"empty": empty, "full": full}


@dataclass(frozen=True)
class ModelComparisonResult:
    """Fig. 17-style comparison of correlation models at one utilization."""

    utilization: float
    buffer_sizes: np.ndarray
    curves: Dict[str, OverflowCurve]

    def log10_table(self) -> Dict[str, np.ndarray]:
        """``log10 P`` arrays keyed by model name."""
        return {
            name: curve.log10_probabilities
            for name, curve in self.curves.items()
        }


def model_comparison_curves(
    models: Dict[str, Union[CorrelationModel, Sequence[float]]],
    transform: ArrivalTransform,
    *,
    utilization: float,
    buffer_sizes: Sequence[float],
    replications: int,
    twisted_mean: float,
    horizon_factor: int = 10,
    random_state: RandomState = None,
    workers: Optional[int] = None,
    backend: BackendArg = "auto",
    block_size=None,
    metrics=None,
) -> ModelComparisonResult:
    """Run :func:`overflow_vs_buffer_curve` for several background models.

    ``models`` maps display names (e.g. ``"SRD+LRD"``, ``"SRD only"``,
    ``"FGN"``) to background correlation models sharing one marginal
    transform — the paper's Fig. 17 setup.  All ``models x buffers``
    legs are flattened into one pool, so ``workers`` parallelism is not
    limited by the model count; seeding follows the same two-level
    spawn (per model, then per buffer) as the serial path.  ``backend``
    selects the conditional generation backend for every leg.
    ``metrics`` collects the same per-leg diagnostics as
    :func:`overflow_vs_buffer_curve`, additionally labelled by model
    name.
    """
    if not models:
        raise ValidationError("models must not be empty")
    check_positive_int(replications, "replications")
    check_positive_int(horizon_factor, "horizon_factor")
    buffers = _check_buffers(buffer_sizes)
    ctx = ensure_context(metrics)
    mu = service_rate_for_utilization(1.0, utilization)
    rngs = spawn_rngs(random_state, len(models))
    jobs: List[Callable[[], ISEstimate]] = []
    children: List[RunContext] = []
    with cache_metrics(ctx):
        for (name, correlation), rng in zip(models.items(), rngs):
            model_jobs, model_children = _buffer_leg_jobs(
                correlation,
                transform,
                service_rate=mu,
                buffers=buffers,
                replications=replications,
                twisted_mean=twisted_mean,
                horizon_factor=horizon_factor,
                random_state=rng,
                backend=backend,
                block_size=block_size,
                metrics=ctx.scoped(model=name),
            )
            jobs.extend(model_jobs)
            children.extend(model_children)
        estimates = run_legs(jobs, workers, metrics=ctx)
    ctx.merge_children(children)
    curves = {}
    for index, name in enumerate(models):
        chunk = estimates[index * buffers.size : (index + 1) * buffers.size]
        curves[name] = OverflowCurve(
            utilization=float(utilization),
            buffer_sizes=buffers,
            estimates=list(chunk),
        )
    return ModelComparisonResult(
        utilization=float(utilization),
        buffer_sizes=buffers,
        curves=curves,
    )


def _aggregate_replication_job(payload) -> np.ndarray:
    """Pool task: one full replication of the aggregate overflow curve.

    Rebuilds the engine from its population (workers re-resolve
    sources; see :mod:`repro.core.aggregate`), generates one feed with
    its pre-spawned child generator, and runs the Lindley recursion —
    returning the per-buffer overflow fractions as one float vector.
    ``processes=1`` inside the task: pool workers are daemonic and must
    not nest pools, and the parallelism budget is already spent across
    replications.
    """
    (classes, batch_size, horizon, shards, service, buffers, warmup,
     rng) = payload
    engine = ShardedAggregateModel(
        SourcePopulation(classes), batch_size=batch_size
    )
    feed = engine.generate(
        horizon, shards=shards, processes=1, random_state=rng
    )
    per_path = steady_state_overflow_from_trace(
        feed.normalized, service, buffers, warmup=warmup
    )
    return np.fromiter(
        (e.probability for e in per_path), dtype=float, count=buffers.size
    )


def aggregate_overflow_curve(
    engine: ShardedAggregateModel,
    buffer_sizes: Sequence[float],
    *,
    utilization: float,
    horizon: int,
    replications: int = 1,
    shards: int = 1,
    warmup: int = 0,
    processes: Optional[int] = None,
    transport: str = "auto",
    random_state: RandomState = None,
    metrics=None,
) -> OverflowCurve:
    """Steady-state ``P(Q > b)`` of a sharded heterogeneous aggregate.

    Generates ``replications`` independent aggregate feeds from a
    :class:`~repro.core.aggregate.ShardedAggregateModel`, normalizes
    each by the population's aggregate mean rate (so ``buffer_sizes``
    follow the paper's normalized-buffer convention and the service
    rate is ``1 / utilization``), and pools the per-path time-average
    overflow fractions.  Peak memory is O(batch_size x horizon) during
    generation and O(horizon) during queueing — N never enters.

    ``processes`` (``None`` defers to ``REPRO_PROCESSES``) spends the
    parallelism budget at the widest grain available: with more than
    one replication, whole replications dispatch onto the process-wide
    shared pool (each pre-seeded from :func:`spawn_rngs`, so the curve
    is bit-identical at any worker count); with a single replication
    the budget is forwarded to the engine's block-level pooled
    generation instead.  ``transport`` picks the cross-process result
    path (see :mod:`repro.simulation.parallel`).  Neither changes the
    curve's bits.

    Variance across replications is the sample variance of the
    per-path estimates over ``replications`` (NaN for a single path,
    matching
    :func:`~repro.queueing.overflow.steady_state_overflow_from_trace`).
    """
    if not isinstance(engine, ShardedAggregateModel):
        raise ValidationError(
            "engine must be a ShardedAggregateModel, got "
            f"{type(engine).__name__}"
        )
    buffers = _check_buffers(buffer_sizes)
    horizon = check_positive_int(horizon, "horizon")
    replications = check_positive_int(replications, "replications")
    ctx = ensure_context(metrics)
    service = service_rate_for_utilization(1.0, utilization)
    procs = resolve_processes(processes)
    rngs = spawn_rngs(random_state, replications)
    probabilities = np.empty((replications, buffers.size), dtype=float)
    with ctx.time("capacity.overflow_curve_seconds"):
        if procs > 1 and replications > 1:
            classes = tuple(engine.population.classes)
            instance_backed = [
                klass.name for klass in classes
                if isinstance(klass.backend, GaussianSource)
            ]
            if instance_backed:
                raise ValidationError(
                    "processes > 1 requires registry-name backends "
                    "(replication workers re-resolve sources; built "
                    "source instances hold per-interpreter caches that "
                    "cannot cross a process boundary) — classes with "
                    "instance backends: "
                    + ", ".join(repr(name) for name in instance_backed)
                )
            payloads = [
                (classes, engine.batch_size, horizon, shards, service,
                 buffers, warmup, rngs[r])
                for r in range(replications)
            ]
            rows = run_tasks(
                _aggregate_replication_job,
                payloads,
                workers=procs,
                kind="process",
                metrics=ctx,
                prefix="runner_pool",
                transport=transport,
            )
            for r, row in enumerate(rows):
                probabilities[r] = row
        else:
            for r in range(replications):
                feed = engine.generate(
                    horizon,
                    shards=shards,
                    processes=procs,
                    transport=transport,
                    random_state=rngs[r],
                )
                per_path = steady_state_overflow_from_trace(
                    feed.normalized, service, buffers, warmup=warmup
                )
                probabilities[r] = np.fromiter(
                    (e.probability for e in per_path),
                    dtype=float,
                    count=buffers.size,
                )
    pooled = probabilities.mean(axis=0)
    if replications > 1:
        variances = probabilities.var(axis=0, ddof=1) / replications
    else:
        variances = np.full(buffers.size, float("nan"))
    estimates = [
        OverflowEstimate(
            probability=float(p),
            variance=float(v),
            replications=replications,
        )
        for p, v in zip(pooled, variances)
    ]
    return OverflowCurve(
        utilization=float(utilization),
        buffer_sizes=buffers,
        estimates=estimates,
    )
