"""Mean-twisted background processes and IS overflow estimators.

Implements Appendix B of the paper.  The twisted background process is
``X'_k = X_k + m*`` — same correlation, shifted mean.  Simulating under
the twisted law and unbiasing with the likelihood ratio

.. math:: L(k) = \\frac{f_X(x'_1, ..., x'_k)}{f_{X'}(x'_1, ..., x'_k)}

gives an unbiased estimator of rare overflow probabilities whose
variance collapses near the right ``m*``.

Both densities factor into the conditional Gaussians produced by
Hosking's recursion, which share the conditional variance ``v_k`` and
coefficients ``phi_kj`` (eq. 35-41).  Writing ``e_k = x_k - m_k`` for
the innovation of the *untwisted* path and ``s_k = sum_j phi_kj``, the
per-step log likelihood-ratio increment reduces to

.. math::

    \\log L_k = -\\frac{2 e_k c_k + c_k^2}{2 v_k},
    \\qquad c_k = m^* (1 - s_k)

which is algebraically identical to the paper's eq. 45-48 but evaluated
in log space for numerical stability (``s_1 = 0`` recovers eq. 48 for
the first sample).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple, Union

import numpy as np

from .._validation import (
    check_positive_float,
    check_positive_int,
)
from ..exceptions import SimulationError, SimulationWarning, ValidationError
from ..observability import ensure_context
from ..processes import registry
from ..processes.correlation import CorrelationModel
from ..processes.hosking import CoeffTableArg
from ..processes.hosking_blocked import BlockSizeArg
from ..processes.registry import BackendArg
from ..processes.source import GaussianSource
from ..stats.random import RandomState
from .estimators import ISEstimate, effective_sample_size

__all__ = [
    "TwistedBackground",
    "is_overflow_probability",
    "is_transient_overflow_curve",
]

ArrivalTransform = Callable[[np.ndarray], np.ndarray]


def _apply_transform(
    transform: ArrivalTransform, values: np.ndarray, step: int
) -> np.ndarray:
    """Apply a stationary or time-varying arrival transform.

    Transforms carrying a truthy ``time_varying`` attribute are called
    as ``transform(values, step)`` — used by GOP-phase-aware composite
    video transforms whose marginal depends on the slot's frame type.
    """
    if getattr(transform, "time_varying", False):
        return np.asarray(transform(values, step), dtype=float)
    return np.asarray(transform(values), dtype=float)


def batched_arrivals(
    transform: ArrivalTransform, paths: np.ndarray
) -> np.ndarray:
    """Map batched background paths ``(size, k)`` through ``transform``.

    Stationary transforms are applied to the whole batch in one call
    (they are elementwise, so the 2-D pass is exact); time-varying
    transforms (``transform.time_varying``) are called per slot with
    the replication vector and the step index, matching the
    importance-sampling convention ``transform(values, step)``.  Shared
    by the batched plain-MC runner and the shared-path twist sweep.
    """
    if getattr(transform, "time_varying", False):
        arrivals = np.empty_like(paths)
        for step in range(paths.shape[1]):
            arrivals[:, step] = np.asarray(
                transform(paths[:, step], step), dtype=float
            )
        return arrivals
    arrivals = np.asarray(transform(paths), dtype=float)
    if arrivals.shape != paths.shape:
        raise ValidationError(
            "stationary transform must be elementwise "
            f"(shape-preserving); mapped {paths.shape} to "
            f"{arrivals.shape}"
        )
    return arrivals


@dataclass(frozen=True)
class TwistedStep:
    """One step of a twisted background generation.

    Attributes
    ----------
    twisted_values:
        The twisted samples ``x'_k = x_k + m*`` for every replication.
    log_lr_increment:
        Per-replication increment of ``log L``.
    """

    twisted_values: np.ndarray
    log_lr_increment: np.ndarray


class TwistedBackground:
    """Step-at-a-time twisted background process with likelihood ratios.

    Parameters
    ----------
    correlation:
        Correlation model (or autocovariance sequence) of the
        *untwisted* background process — or an already-built
        :class:`~repro.processes.source.GaussianSource` advertising
        conditional stepping.
    horizon:
        Maximum number of steps.
    twisted_mean:
        The twist ``m*`` (0 gives plain Monte Carlo with ``L = 1``).
    size:
        Number of parallel replications.
    random_state:
        Seed or generator.
    coeff_table:
        Passed through to the conditional backend:
        ``None`` (default) shares Durbin-Levinson coefficients via the
        fingerprint cache, an explicit table is used directly, and
        ``False`` keeps a private incremental recursion.
    backend:
        Registry name of the conditional generation backend (or a
        :class:`~repro.processes.source.GaussianSource` instance).
        ``"auto"`` (default) selects Hosking — the only backend exposing
        the exact per-step conditional moments the likelihood ratios
        need.  Backends without the conditional capability are rejected
        here, at construction, never mid-run.
    block_size:
        Forwarded to the conditional backend factory (``B > 1`` routes
        Hosking stepping through the blocked BLAS-3 kernel; the default
        keeps the exact per-step loop — see
        :func:`~repro.processes.hosking.hosking_generate`).  Ignored
        when an already-built source instance is supplied — instances
        carry their own block size from construction.
    metrics:
        Optional :class:`~repro.observability.RunContext`; records
        retirement counters and the all-retired-early degeneracy
        signal.  Never touches the random stream.
    """

    def __init__(
        self,
        correlation: Union[
            CorrelationModel, Sequence[float], GaussianSource
        ],
        horizon: int,
        *,
        twisted_mean: float = 0.0,
        size: int = 1,
        random_state: RandomState = None,
        coeff_table: CoeffTableArg = None,
        backend: BackendArg = "auto",
        block_size: BlockSizeArg = None,
        metrics=None,
    ) -> None:
        self.twisted_mean = float(twisted_mean)
        self._metrics = ensure_context(metrics)
        if isinstance(correlation, GaussianSource):
            source = registry.resolve(
                correlation, None, conditional=True, metrics=self._metrics
            )
        elif isinstance(backend, GaussianSource):
            source = registry.resolve(
                backend, None, conditional=True, metrics=self._metrics
            )
        else:
            source = registry.resolve(
                backend,
                correlation,
                conditional=True,
                coeff_table=coeff_table,
                block_size=block_size,
                metrics=self._metrics,
            )
        self._source = source
        self._process = source.stream(
            horizon,
            size=size,
            random_state=random_state,
            metrics=self._metrics,
        )
        # Plain Monte Carlo (m* == 0) has identically-zero log-LR
        # increments; hand out one cached read-only buffer instead of
        # allocating a fresh np.zeros(size) every step.
        if self.twisted_mean == 0.0:
            zero = np.zeros(self._process.size)
            zero.flags.writeable = False
            self._zero_increments = zero
        else:
            self._zero_increments = None

    @property
    def source(self) -> GaussianSource:
        """The conditional :class:`GaussianSource` driving this process."""
        return self._source

    @property
    def size(self) -> int:
        """Number of parallel replications."""
        return self._process.size

    @property
    def horizon(self) -> int:
        """Maximum number of steps."""
        return self._process.horizon

    @property
    def step_index(self) -> int:
        """Number of steps generated so far."""
        return self._process.step_index

    @property
    def active_count(self) -> int:
        """Number of replications still being generated."""
        return self._process.active_count

    def retire(self, replications: np.ndarray) -> int:
        """Stop generating the given replications; return active count.

        Delegates to :meth:`repro.processes.hosking.HoskingProcess.retire`;
        active replications' paths and likelihood ratios are bit-for-bit
        unchanged by retirement (innovations are still drawn for every
        replication to keep the stream aligned).

        Retiring the *last* active replication before the horizon is a
        degeneracy signal — every subsequent :meth:`step` is pure
        bookkeeping with no surviving path — so it emits a
        :class:`~repro.exceptions.SimulationWarning` and an
        ``is.all_retired`` counter.  (The overflow estimators never
        trigger this: they stop calling ``retire`` once no survivors
        remain.)
        """
        before = self._process.active_count
        remaining = self._process.retire(replications)
        retired = before - remaining
        if retired:
            self._metrics.inc(
                "is.retired", retired, twist=self.twisted_mean
            )
            if (
                remaining == 0
                and self._process.step_index < self._process.horizon
            ):
                self._metrics.inc(
                    "is.all_retired", twist=self.twisted_mean
                )
                warnings.warn(
                    "every replication of the twisted background "
                    f"(m*={self.twisted_mean:g}) was retired at step "
                    f"{self._process.step_index} of "
                    f"{self._process.horizon}; further steps carry no "
                    "information",
                    SimulationWarning,
                    stacklevel=2,
                )
        return remaining

    def step(self) -> TwistedStep:
        """Generate the next twisted samples and log-LR increments."""
        hs = self._process.step()
        m_star = self.twisted_mean
        if m_star == 0.0:
            increments = self._zero_increments
        else:
            innovation = hs.values - hs.cond_mean
            c = m_star * (1.0 - hs.phi_sum)
            increments = -(2.0 * innovation * c + c * c) / (
                2.0 * hs.cond_variance
            )
        return TwistedStep(
            twisted_values=hs.values + m_star,
            log_lr_increment=increments,
        )


def _check_common(
    transform: ArrivalTransform,
    service_rate: float,
    buffer_size: float,
    horizon: int,
    replications: int,
) -> Tuple[float, float, int, int]:
    if not callable(transform):
        raise ValidationError("transform must be a callable array -> array")
    return (
        check_positive_float(service_rate, "service_rate"),
        check_positive_float(buffer_size, "buffer_size"),
        check_positive_int(horizon, "horizon"),
        check_positive_int(replications, "replications"),
    )


def is_overflow_probability(
    correlation: Union[CorrelationModel, Sequence[float]],
    transform: ArrivalTransform,
    *,
    service_rate: float,
    buffer_size: float,
    horizon: int,
    twisted_mean: float,
    replications: int,
    random_state: RandomState = None,
    coeff_table: CoeffTableArg = None,
    backend: BackendArg = "auto",
    block_size: BlockSizeArg = None,
    metrics=None,
) -> ISEstimate:
    """IS estimate of ``P(Q_k > b)`` via the workload-crossing event.

    This is the paper's Appendix B procedure: per replication, generate
    the twisted background step by step, map through the marginal
    transform to arrivals, accumulate the workload
    ``W_i = sum (Y'_j - mu)``, and on the first crossing ``W_i > b``
    record the likelihood ratio ``L(i)`` accumulated so far and stop
    that replication.  Replications that never cross contribute 0.

    Parameters
    ----------
    correlation:
        Background correlation model.
    transform:
        Maps background samples to arrivals per slot (should produce
        unit-mean arrivals so that ``buffer_size`` is the paper's
        normalized buffer size).
    service_rate:
        Service per slot, ``mu = 1 / utilization`` for unit-mean input.
    buffer_size:
        Normalized buffer threshold ``b``.
    horizon:
        Simulation stop time ``k`` (the paper uses ``k = 10 b`` for its
        steady-state-like estimates).
    twisted_mean:
        The twist ``m*`` (0 = plain Monte Carlo).
    replications:
        Number of i.i.d. replications ``N``.
    random_state:
        Seed or generator.
    coeff_table:
        Durbin-Levinson coefficient source (see
        :class:`TwistedBackground`).
    backend:
        Conditional generation backend (registry name or
        :class:`~repro.processes.source.GaussianSource`; see
        :class:`TwistedBackground`).  Validated at construction.
    block_size:
        Blocked-kernel block size for the conditional backend (see
        :class:`TwistedBackground`); the default keeps the exact
        per-step loop.
    metrics:
        Optional :class:`~repro.observability.RunContext`; records the
        estimate's wall time, replication/hit/retirement counters, the
        likelihood-ratio weight summary and the effective sample size —
        all labelled by the twist ``m*``.  Purely observational: the
        estimate and its random stream are bit-identical with or
        without it.
    """
    mu, b, k, n = _check_common(
        transform, service_rate, buffer_size, horizon, replications
    )
    ctx = ensure_context(metrics)
    twist = float(twisted_mean)
    with ctx.time("is.leg_seconds", twist=twist):
        background = TwistedBackground(
            correlation,
            k,
            twisted_mean=twisted_mean,
            size=n,
            random_state=random_state,
            coeff_table=coeff_table,
            backend=backend,
            block_size=block_size,
            metrics=ctx,
        )
        workload = np.zeros(n)
        log_lr = np.zeros(n)
        weights = np.zeros(n)
        hit_times = np.full(n, -1, dtype=int)
        active = np.ones(n, dtype=bool)
        for i in range(k):
            # Check activity BEFORE stepping: once every replication has
            # crossed (or been retired) there is nothing left to simulate,
            # and a Hosking step costs O(active * i).
            if not np.any(active):
                break
            ts = background.step()
            arrivals = _apply_transform(transform, ts.twisted_values, i)
            if arrivals.shape != (n,):
                raise SimulationError(
                    "transform must map (n,) background samples to (n,) "
                    "arrivals"
                )
            log_lr[active] += ts.log_lr_increment[active]
            workload[active] += arrivals[active] - mu
            newly_hit = active & (workload > b)
            if np.any(newly_hit):
                weights[newly_hit] = np.exp(log_lr[newly_hit])
                hit_times[newly_hit] = i
                active[newly_hit] = False
                # Row compaction: crossed replications stop paying for
                # the conditional-mean product inside subsequent Hosking
                # steps.  Skipped when no survivors remain — the loop
                # exits on the next iteration anyway, and retiring the
                # last row would spuriously trip the all-retired-early
                # degeneracy warning on what is a *successful* batch.
                if np.any(active):
                    background.retire(newly_hit)
        probability = float(weights.mean())
        variance = (
            float(weights.var(ddof=1)) / n if n > 1 else float("nan")
        )
        hit_mask = hit_times >= 0
        hits = int(hit_mask.sum())
        mean_hit_time = (
            float(hit_times[hit_mask].mean()) if hits else float("nan")
        )
        ess = effective_sample_size(weights[hit_mask])
    ctx.inc("is.replications", n, twist=twist)
    ctx.inc("is.hits", hits, twist=twist)
    ctx.inc("is.steps", int(background.step_index), twist=twist)
    ctx.set("is.ess", ess, twist=twist)
    if hits:
        ctx.observe_many("is.weight", weights[hit_mask], twist=twist)
    else:
        ctx.inc("is.zero_hit_estimates", twist=twist)
        warnings.warn(
            f"importance-sampling estimate at m*={twist:g} finished "
            f"with 0 overflow hits in {n} replications (horizon {k}, "
            f"buffer {b:g}); the zero estimate carries no information — "
            "increase replications or move the twist toward the "
            "variance valley",
            SimulationWarning,
            stacklevel=2,
        )
    return ISEstimate(
        probability=probability,
        variance=variance,
        replications=n,
        hits=hits,
        twisted_mean=twist,
        mean_hit_time=mean_hit_time,
        ess=ess,
    )


def is_transient_overflow_curve(
    correlation: Union[CorrelationModel, Sequence[float]],
    transform: ArrivalTransform,
    *,
    service_rate: float,
    buffer_size: float,
    horizon: int,
    twisted_mean: float,
    replications: int,
    initial: float = 0.0,
    random_state: RandomState = None,
    coeff_table: CoeffTableArg = None,
    backend: BackendArg = "auto",
    block_size: BlockSizeArg = None,
    metrics=None,
) -> np.ndarray:
    """IS estimates of the transient ``P(Q_j > b)`` for all ``j <= k``.

    Runs the Lindley recursion from ``initial`` under the twisted law
    and, at every slot ``j``, forms the unbiased estimate
    ``mean(1{Q_j > b} exp(log L_j))``.  One batch of replications thus
    yields the whole transient curve of Fig. 15 — for both the
    empty-buffer (``initial=0``) and full-buffer (``initial=b``)
    starting conditions.

    Returns an array of length ``horizon`` with the estimate per slot.
    """
    mu, b, k, n = _check_common(
        transform, service_rate, buffer_size, horizon, replications
    )
    if initial < 0:
        raise ValidationError("initial queue content must be non-negative")
    ctx = ensure_context(metrics)
    twist = float(twisted_mean)
    with ctx.time("is.leg_seconds", twist=twist, initial=float(initial)):
        background = TwistedBackground(
            correlation,
            k,
            twisted_mean=twisted_mean,
            size=n,
            random_state=random_state,
            coeff_table=coeff_table,
            backend=backend,
            block_size=block_size,
            metrics=ctx,
        )
        queue = np.full(n, float(initial))
        log_lr = np.zeros(n)
        curve = np.empty(k, dtype=float)
        for j in range(k):
            ts = background.step()
            arrivals = _apply_transform(transform, ts.twisted_values, j)
            log_lr += ts.log_lr_increment
            queue = np.maximum(queue + arrivals - mu, 0.0)
            indicator = queue > b
            if np.any(indicator):
                curve[j] = float(np.exp(log_lr[indicator]).sum()) / n
            else:
                curve[j] = 0.0
    ctx.inc("is.replications", n, twist=twist, initial=float(initial))
    ctx.inc("is.steps", k, twist=twist, initial=float(initial))
    if ctx.enabled:
        final_weights = np.exp(log_lr)
        ctx.set(
            "is.ess",
            effective_sample_size(final_weights),
            twist=twist,
            initial=float(initial),
        )
        ctx.observe_many(
            "is.weight", final_weights, twist=twist, initial=float(initial)
        )
    return curve
