"""Rare-event (importance sampling) simulation substrate (Appendix B).

To estimate tiny overflow probabilities, the paper *twists* the mean of
the background Gaussian process (``X' = X + m*``), simulates the queue
under the twisted law, and unbiases each replication with the exact
likelihood ratio of the two conditional-Gaussian path densities
(eq. 42-48).  The near-optimal twist is found by scanning the
estimator's normalized variance for its "valley" (Fig. 14).
"""

from .estimators import ISEstimate, effective_sample_size
from .importance import (
    TwistedBackground,
    is_overflow_probability,
    is_transient_overflow_curve,
)
from .parallel import (
    pool_scope,
    pool_stats,
    shared_pool,
    shutdown_shared_pool,
)
from .shm import shm_stats
from .runner import (
    ModelComparisonResult,
    OverflowCurve,
    aggregate_overflow_curve,
    mc_overflow_vs_buffer_curve,
    model_comparison_curves,
    overflow_vs_buffer_curve,
    transient_overflow_curves,
)
from .twist_search import (
    TwistSearchResult,
    refine_twisted_mean,
    search_twisted_mean,
    sweep_twists,
)

__all__ = [
    "ISEstimate",
    "effective_sample_size",
    "shared_pool",
    "pool_scope",
    "shutdown_shared_pool",
    "pool_stats",
    "shm_stats",
    "TwistedBackground",
    "is_overflow_probability",
    "is_transient_overflow_curve",
    "TwistSearchResult",
    "search_twisted_mean",
    "sweep_twists",
    "refine_twisted_mean",
    "OverflowCurve",
    "ModelComparisonResult",
    "overflow_vs_buffer_curve",
    "mc_overflow_vs_buffer_curve",
    "transient_overflow_curves",
    "model_comparison_curves",
    "aggregate_overflow_curve",
]
