"""Heuristic search for the favorable twisted mean (Fig. 14).

A closed-form optimal twist is intractable after the marginal
transform (paper §4), so the paper scans candidate values of ``m*``,
plots the estimator's normalized variance, and picks the bottom of the
clearly visible "valley" — reporting ``m* = 3.2`` and a variance
reduction of roughly 1000x for its configuration.
:func:`search_twisted_mean` automates exactly that scan.

Two evaluation strategies are offered:

- **Independent streams** (the default): every grid point runs its own
  batch of :func:`~repro.simulation.importance.is_overflow_probability`
  — ``T`` grid points cost ``T`` full Hosking generations.
- **Shared paths** (:func:`sweep_twists`, or
  ``search_twisted_mean(..., shared_paths=True)``): mean twisting only
  *shifts* the background (``X' = X + m*``), so one batch of untwisted
  paths plus the per-step conditional moments determines every
  candidate's estimator exactly.  The log-LR increment
  ``-(2 e_k c_k + c_k^2) / (2 v_k)`` with ``c_k = m* (1 - s_k)`` needs
  only the stored innovations ``e_k = sqrt(v_k) z_k`` and the table
  moments ``v_k``/``s_k`` — the whole Fig. 14 scan collapses from
  ``T`` generations to one.  The shared strategy evaluates all grid
  points on *common* random numbers (one path batch), so its estimates
  agree with independent streams within Monte-Carlo error, not
  bit-for-bit; grid points are positively correlated with each other,
  which actually *smooths* the valley shape for the argmin decision.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Union

import numpy as np

from .._validation import check_1d_array, check_positive_int
from ..exceptions import SimulationError, SimulationWarning, ValidationError
from ..observability import ensure_context
from ..processes.coeff_table import (
    CoefficientTable,
    cache_metrics,
    resolve_acvf,
)
from ..processes.correlation import CorrelationModel
from ..processes.hosking import (
    CoeffTableArg,
    _resolve_table,
    hosking_generate,
)
from ..processes.hosking_blocked import BlockSizeArg
from ..processes.registry import BackendArg
from ..stats.random import RandomState, make_rng, spawn_rngs
from .estimators import ISEstimate, effective_sample_size
from .importance import (
    ArrivalTransform,
    _check_common,
    batched_arrivals,
    is_overflow_probability,
)
from .parallel import run_legs

__all__ = [
    "TwistSearchResult",
    "search_twisted_mean",
    "sweep_twists",
    "refine_twisted_mean",
]


@dataclass(frozen=True)
class TwistSearchResult:
    """Outcome of a normalized-variance scan over twist values.

    Attributes
    ----------
    twist_values:
        The scanned ``m*`` grid.
    estimates:
        One :class:`~repro.simulation.estimators.ISEstimate` per grid
        point (same order).
    """

    twist_values: np.ndarray
    estimates: List[ISEstimate]

    @property
    def normalized_variances(self) -> np.ndarray:
        """Normalized variance per grid point (the Fig. 14 y-axis)."""
        return np.array([e.normalized_variance for e in self.estimates])

    @property
    def scaled_variances(self) -> np.ndarray:
        """Normalized variances rescaled to a max of 1 (plot scaling)."""
        values = self.normalized_variances
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            return values
        peak = float(finite.max())
        return values / peak if peak > 0 else values

    @property
    def best_index(self) -> int:
        """Index of the valley bottom (minimum finite normalized variance)."""
        values = self.normalized_variances
        finite = np.where(np.isfinite(values), values, np.inf)
        if not np.any(np.isfinite(values)):
            raise SimulationError(
                "no twist value produced a finite normalized variance; "
                "increase replications or widen the grid"
            )
        return int(np.argmin(finite))

    @property
    def best_twist(self) -> float:
        """The favorable (near-optimal) ``m*``."""
        return float(self.twist_values[self.best_index])

    @property
    def best_estimate(self) -> ISEstimate:
        """The estimate at the favorable twist."""
        return self.estimates[self.best_index]

    def variance_reduction_vs(self, baseline_index: int = 0) -> float:
        """Variance-reduction factor of the best twist vs a grid point.

        With index 0 pointing at ``m* = 0`` (plain Monte Carlo) this is
        the paper's "required number of replications ... reduced by
        1000" figure of merit.
        """
        baseline = self.estimates[baseline_index].normalized_variance
        best = self.best_estimate.normalized_variance
        if not np.isfinite(baseline) or best <= 0:
            return float("inf")
        return baseline / best


def search_twisted_mean(
    correlation: Union[CorrelationModel, Sequence[float]],
    transform: ArrivalTransform,
    *,
    service_rate: float,
    buffer_size: float,
    horizon: int,
    twist_values: Sequence[float],
    replications: int,
    random_state: RandomState = None,
    workers: Optional[int] = None,
    backend: BackendArg = "auto",
    block_size: BlockSizeArg = None,
    shared_paths: bool = False,
    metrics=None,
) -> TwistSearchResult:
    """Scan twist values and measure the estimator's normalized variance.

    By default each grid point runs an independent batch of
    :func:`~repro.simulation.importance.is_overflow_probability` with
    ``replications`` replications (independent streams are spawned per
    point so results are reproducible regardless of grid ordering).
    Every grid point shares the background model, hence one shared
    Durbin-Levinson coefficient table; ``workers`` additionally runs
    grid points concurrently without changing any estimate.
    ``backend`` selects the conditional generation backend (validated
    at construction; see
    :class:`~repro.simulation.importance.TwistedBackground`) and
    ``block_size`` routes Hosking stepping through the blocked BLAS-3
    kernel.

    ``shared_paths=True`` switches to :func:`sweep_twists`: one batch
    of untwisted paths evaluates the whole grid (common random numbers
    across grid points; estimates agree with the independent-stream
    default within Monte-Carlo error, not bit-for-bit).  In shared
    mode the grid has no independent legs, so ``workers`` is unused,
    and the moments come from the Hosking recursion — ``backend`` must
    be ``"auto"`` or ``"hosking"``.

    ``metrics`` (optional :class:`~repro.observability.RunContext`)
    records the valley trajectory — a ``twist_search.normalized_variance``
    gauge per probed ``m*`` plus the chosen ``twist_search.best_twist``
    — alongside each grid point's leg timings and ESS.
    """
    if shared_paths:
        _require_hosking_backend(backend, "shared_paths=True")
        return sweep_twists(
            correlation,
            transform,
            service_rate=service_rate,
            buffer_size=buffer_size,
            horizon=horizon,
            twist_values=twist_values,
            replications=replications,
            random_state=random_state,
            block_size=block_size,
            metrics=metrics,
        )
    grid = check_1d_array(twist_values, "twist_values")
    check_positive_int(replications, "replications")
    ctx = ensure_context(metrics)
    rngs = spawn_rngs(random_state, grid.size)
    children = [
        ctx.child(probe=i, twist=float(m_star))
        for i, m_star in enumerate(grid)
    ]
    with cache_metrics(ctx):
        jobs = [
            partial(
                is_overflow_probability,
                correlation,
                transform,
                service_rate=service_rate,
                buffer_size=buffer_size,
                horizon=horizon,
                twisted_mean=float(m_star),
                replications=replications,
                random_state=rng,
                backend=backend,
                block_size=block_size,
                metrics=child,
            )
            for m_star, rng, child in zip(grid, rngs, children)
        ]
        estimates = run_legs(jobs, workers, metrics=ctx)
    ctx.merge_children(children)
    result = TwistSearchResult(twist_values=grid, estimates=estimates)
    _record_trajectory(ctx, result)
    return result


def _require_hosking_backend(backend: BackendArg, what: str) -> None:
    """Reject backends the shared-path sweep cannot serve.

    The sweep reads conditional moments straight from the
    Durbin-Levinson coefficient table, so only the Hosking recursion
    (the sole conditional backend) is meaningful.
    """
    if isinstance(backend, str) and backend.strip().lower().replace(
        "-", "_"
    ) in ("auto", "hosking"):
        return
    raise ValidationError(
        f"{what} evaluates twists from Hosking conditional moments and "
        f"supports backend='auto' or 'hosking' only, got {backend!r}"
    )


def sweep_twists(
    correlation: Union[CorrelationModel, Sequence[float]],
    transform: ArrivalTransform,
    *,
    service_rate: float,
    buffer_size: float,
    horizon: int,
    twist_values: Sequence[float],
    replications: int,
    random_state: RandomState = None,
    coeff_table: CoeffTableArg = None,
    block_size: BlockSizeArg = None,
    metrics=None,
) -> TwistSearchResult:
    """Evaluate a whole Fig. 14 twist grid from ONE background generation.

    Twisting is a mean shift: under the twisted law the background is
    ``X'_k = X_k + m*`` with unchanged conditional variances and
    coefficients.  So one batch of *untwisted* paths ``X`` (plus the
    innovations ``e_k = sqrt(v_k) z_k`` and the table moments ``v_k``,
    ``s_k``) determines, for **every** candidate ``m*`` at once:

    - the twisted arrivals — ``transform(X + m*)`` per slot;
    - the cumulative log likelihood ratio — per-step increments
      ``-(2 e_k c_k + c_k^2) / (2 v_k)`` with ``c_k = m* (1 - s_k)``
      (the paper's eq. 45-48 in log space, exactly as
      :class:`~repro.simulation.importance.TwistedBackground` computes
      them step by step);
    - the workload-crossing time — first ``i`` with
      ``sum_{j<=i} (Y'_j - mu) > b``.

    Each grid point's estimator is then identical in form to
    :func:`~repro.simulation.importance.is_overflow_probability`
    (weight ``exp(log L)`` at the first crossing, 0 on no crossing),
    evaluated on this shared path batch instead of an independent one —
    collapsing the scan from ``T`` Hosking generations to one.  All
    grid points share the same paths (common random numbers), so
    estimates match independent per-twist runs within Monte-Carlo
    error, and the grid points are mutually correlated.

    Parameters mirror :func:`search_twisted_mean`; ``coeff_table``
    follows the usual convention (``None`` = shared fingerprint cache,
    explicit table used directly, ``False`` = private table built from
    scratch) and ``block_size`` selects the generation kernel for the
    single path batch.

    ``metrics`` records ``twist_sweep.generations`` (always 1 per
    call), ``twist_sweep.paths``, ``twist_sweep.twists``, per-twist
    ``twist_sweep.hits``, the ``twist_sweep.seconds`` timer, the
    ``hosking.*`` engine gauges of the one generation, and the same
    ``twist_search.*`` valley trajectory as the independent-stream
    scan.
    """
    grid = check_1d_array(twist_values, "twist_values")
    mu, b, k, n = _check_common(
        transform, service_rate, buffer_size, horizon, replications
    )
    ctx = ensure_context(metrics)
    with ctx.time("twist_sweep.seconds"), cache_metrics(ctx):
        if coeff_table is False:
            table = CoefficientTable(resolve_acvf(correlation, k))
        else:
            table = _resolve_table(correlation, k, coeff_table)
        variances = np.asarray(table.variances(k))
        sqrt_variances = np.asarray(table.sqrt_variances(k))
        phi_sums = np.asarray(table.phi_sums(k))
        rng = make_rng(random_state)
        z = rng.standard_normal((n, k))
        paths = hosking_generate(
            correlation,
            k,
            size=n,
            innovations=z,
            coeff_table=table,
            block_size=block_size,
            metrics=ctx,
        )
        ctx.inc("twist_sweep.generations")
        ctx.inc("twist_sweep.paths", n)
        ctx.inc("twist_sweep.twists", grid.size)
        # Innovations of the untwisted paths: e_k = x_k - m_k
        # = sqrt(v_k) z_k — no conditional means need storing.
        innovations = z * sqrt_variances
        estimates: List[ISEstimate] = []
        for m_star in grid:
            estimates.append(
                _evaluate_twist(
                    float(m_star),
                    paths,
                    innovations,
                    variances,
                    phi_sums,
                    transform,
                    mu=mu,
                    b=b,
                    ctx=ctx,
                )
            )
    result = TwistSearchResult(twist_values=grid, estimates=estimates)
    _record_trajectory(ctx, result)
    return result


def _evaluate_twist(
    m_star: float,
    paths: np.ndarray,
    innovations: np.ndarray,
    variances: np.ndarray,
    phi_sums: np.ndarray,
    transform: ArrivalTransform,
    *,
    mu: float,
    b: float,
    ctx,
) -> ISEstimate:
    """One grid point of :func:`sweep_twists` on the shared path batch."""
    n, k = paths.shape
    arrivals = batched_arrivals(transform, paths + m_star)
    workload = np.cumsum(arrivals - mu, axis=1)
    crossed = workload > b
    hit = crossed.any(axis=1)
    first = np.argmax(crossed, axis=1)
    hits = int(hit.sum())
    weights = np.zeros(n)
    if m_star == 0.0:
        # Plain Monte Carlo: L = 1 identically.
        weights[hit] = 1.0
    elif hits:
        c = m_star * (1.0 - phi_sums)
        log_lr = np.cumsum(
            -(2.0 * innovations * c + c * c) / (2.0 * variances), axis=1
        )
        rows = np.flatnonzero(hit)
        weights[rows] = np.exp(log_lr[rows, first[rows]])
    probability = float(weights.mean())
    variance = float(weights.var(ddof=1)) / n if n > 1 else float("nan")
    mean_hit_time = float(first[hit].mean()) if hits else float("nan")
    ess = effective_sample_size(weights[hit])
    ctx.inc("twist_sweep.hits", hits, twist=m_star)
    ctx.set("is.ess", ess, twist=m_star)
    if not hits:
        ctx.inc("twist_sweep.zero_hit_estimates", twist=m_star)
        warnings.warn(
            f"shared-path sweep at m*={m_star:g} finished with 0 "
            f"overflow hits in {n} replications (horizon {k}, buffer "
            f"{b:g}); the zero estimate carries no information",
            SimulationWarning,
            stacklevel=3,
        )
    return ISEstimate(
        probability=probability,
        variance=variance,
        replications=n,
        hits=hits,
        twisted_mean=m_star,
        mean_hit_time=mean_hit_time,
        ess=ess,
    )


def _record_trajectory(ctx, result: TwistSearchResult) -> None:
    """Record a search's variance-valley trajectory into ``ctx``."""
    if not ctx.enabled:
        return
    for probe, (m_star, estimate) in enumerate(
        zip(result.twist_values, result.estimates)
    ):
        ctx.set(
            "twist_search.normalized_variance",
            float(estimate.normalized_variance),
            probe=probe,
            twist=float(m_star),
        )
    ctx.inc("twist_search.probes", len(result.estimates))
    try:
        ctx.set("twist_search.best_twist", result.best_twist)
    except SimulationError:
        # No finite-variance probe: leave the gauge unset; the zero-hit
        # counters/warnings from the estimator already flag the cause.
        pass


def refine_twisted_mean(
    correlation: Union[CorrelationModel, Sequence[float]],
    transform: ArrivalTransform,
    *,
    service_rate: float,
    buffer_size: float,
    horizon: int,
    bracket: tuple,
    replications: int,
    iterations: int = 6,
    random_state: RandomState = None,
    backend: BackendArg = "auto",
    block_size: BlockSizeArg = None,
    metrics=None,
) -> TwistSearchResult:
    """Golden-section refinement of the variance valley.

    After a coarse grid scan locates the valley's neighbourhood, this
    narrows the bracket by golden-section steps on the (noisy)
    normalized-variance objective.  Each probe is an independent IS
    batch; with the per-probe sampling noise, a handful of iterations
    is the useful maximum — the goal is "favorable", not "optimal",
    exactly as the paper frames it.  Probes are inherently sequential
    (each bracket update depends on the previous objective value), so
    this runner has no ``workers`` knob; it still benefits from the
    shared coefficient table, since every probe reuses the same
    background model and horizon.

    Returns a :class:`TwistSearchResult` over every probed twist (in
    probing order) whose :attr:`~TwistSearchResult.best_twist` is the
    refined choice.  ``metrics`` records the probing trajectory exactly
    as :func:`search_twisted_mean` does (probe index = probing order).
    """
    if len(bracket) != 2 or not bracket[0] < bracket[1]:
        raise SimulationError(
            f"bracket must be an increasing pair, got {bracket!r}"
        )
    check_positive_int(replications, "replications")
    ctx = ensure_context(metrics)
    iterations = max(1, int(iterations))
    rngs = spawn_rngs(random_state, 2 * iterations + 2)
    rng_iter = iter(rngs)
    probes: List[float] = []
    estimates: List[ISEstimate] = []

    def objective(m_star: float) -> float:
        estimate = is_overflow_probability(
            correlation,
            transform,
            service_rate=service_rate,
            buffer_size=buffer_size,
            horizon=horizon,
            twisted_mean=float(m_star),
            replications=replications,
            random_state=next(rng_iter),
            backend=backend,
            block_size=block_size,
            metrics=ctx.scoped(probe=len(probes), twist=float(m_star)),
        )
        probes.append(float(m_star))
        estimates.append(estimate)
        value = estimate.normalized_variance
        return value if np.isfinite(value) else np.inf

    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    low, high = float(bracket[0]), float(bracket[1])
    with cache_metrics(ctx):
        x1 = high - inv_phi * (high - low)
        x2 = low + inv_phi * (high - low)
        f1, f2 = objective(x1), objective(x2)
        for _ in range(iterations - 1):
            if f1 <= f2:
                high, x2, f2 = x2, x1, f1
                x1 = high - inv_phi * (high - low)
                f1 = objective(x1)
            else:
                low, x1, f1 = x1, x2, f2
                x2 = low + inv_phi * (high - low)
                f2 = objective(x2)
    result = TwistSearchResult(
        twist_values=np.asarray(probes), estimates=estimates
    )
    _record_trajectory(ctx, result)
    return result
