"""Heuristic search for the favorable twisted mean (Fig. 14).

A closed-form optimal twist is intractable after the marginal
transform (paper §4), so the paper scans candidate values of ``m*``,
plots the estimator's normalized variance, and picks the bottom of the
clearly visible "valley" — reporting ``m* = 3.2`` and a variance
reduction of roughly 1000x for its configuration.
:func:`search_twisted_mean` automates exactly that scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import List, Optional, Sequence, Union

import numpy as np

from .._validation import check_1d_array, check_positive_int
from ..exceptions import SimulationError
from ..observability import ensure_context
from ..processes.coeff_table import cache_metrics
from ..processes.correlation import CorrelationModel
from ..processes.registry import BackendArg
from ..stats.random import RandomState, spawn_rngs
from .estimators import ISEstimate
from .importance import ArrivalTransform, is_overflow_probability
from .parallel import run_legs

__all__ = [
    "TwistSearchResult",
    "search_twisted_mean",
    "refine_twisted_mean",
]


@dataclass(frozen=True)
class TwistSearchResult:
    """Outcome of a normalized-variance scan over twist values.

    Attributes
    ----------
    twist_values:
        The scanned ``m*`` grid.
    estimates:
        One :class:`~repro.simulation.estimators.ISEstimate` per grid
        point (same order).
    """

    twist_values: np.ndarray
    estimates: List[ISEstimate]

    @property
    def normalized_variances(self) -> np.ndarray:
        """Normalized variance per grid point (the Fig. 14 y-axis)."""
        return np.array([e.normalized_variance for e in self.estimates])

    @property
    def scaled_variances(self) -> np.ndarray:
        """Normalized variances rescaled to a max of 1 (plot scaling)."""
        values = self.normalized_variances
        finite = values[np.isfinite(values)]
        if finite.size == 0:
            return values
        peak = float(finite.max())
        return values / peak if peak > 0 else values

    @property
    def best_index(self) -> int:
        """Index of the valley bottom (minimum finite normalized variance)."""
        values = self.normalized_variances
        finite = np.where(np.isfinite(values), values, np.inf)
        if not np.any(np.isfinite(values)):
            raise SimulationError(
                "no twist value produced a finite normalized variance; "
                "increase replications or widen the grid"
            )
        return int(np.argmin(finite))

    @property
    def best_twist(self) -> float:
        """The favorable (near-optimal) ``m*``."""
        return float(self.twist_values[self.best_index])

    @property
    def best_estimate(self) -> ISEstimate:
        """The estimate at the favorable twist."""
        return self.estimates[self.best_index]

    def variance_reduction_vs(self, baseline_index: int = 0) -> float:
        """Variance-reduction factor of the best twist vs a grid point.

        With index 0 pointing at ``m* = 0`` (plain Monte Carlo) this is
        the paper's "required number of replications ... reduced by
        1000" figure of merit.
        """
        baseline = self.estimates[baseline_index].normalized_variance
        best = self.best_estimate.normalized_variance
        if not np.isfinite(baseline) or best <= 0:
            return float("inf")
        return baseline / best


def search_twisted_mean(
    correlation: Union[CorrelationModel, Sequence[float]],
    transform: ArrivalTransform,
    *,
    service_rate: float,
    buffer_size: float,
    horizon: int,
    twist_values: Sequence[float],
    replications: int,
    random_state: RandomState = None,
    workers: Optional[int] = None,
    backend: BackendArg = "auto",
    metrics=None,
) -> TwistSearchResult:
    """Scan twist values and measure the estimator's normalized variance.

    Each grid point runs an independent batch of
    :func:`~repro.simulation.importance.is_overflow_probability` with
    ``replications`` replications (independent streams are spawned per
    point so results are reproducible regardless of grid ordering).
    Every grid point shares the background model, hence one shared
    Durbin-Levinson coefficient table; ``workers`` additionally runs
    grid points concurrently without changing any estimate.
    ``backend`` selects the conditional generation backend (validated
    at construction; see
    :class:`~repro.simulation.importance.TwistedBackground`).
    ``metrics`` (optional :class:`~repro.observability.RunContext`)
    records the valley trajectory — a ``twist_search.normalized_variance``
    gauge per probed ``m*`` plus the chosen ``twist_search.best_twist``
    — alongside each grid point's leg timings and ESS.
    """
    grid = check_1d_array(twist_values, "twist_values")
    check_positive_int(replications, "replications")
    ctx = ensure_context(metrics)
    rngs = spawn_rngs(random_state, grid.size)
    children = [
        ctx.child(probe=i, twist=float(m_star))
        for i, m_star in enumerate(grid)
    ]
    with cache_metrics(ctx):
        jobs = [
            partial(
                is_overflow_probability,
                correlation,
                transform,
                service_rate=service_rate,
                buffer_size=buffer_size,
                horizon=horizon,
                twisted_mean=float(m_star),
                replications=replications,
                random_state=rng,
                backend=backend,
                metrics=child,
            )
            for m_star, rng, child in zip(grid, rngs, children)
        ]
        estimates = run_legs(jobs, workers, metrics=ctx)
    ctx.merge_children(children)
    result = TwistSearchResult(twist_values=grid, estimates=estimates)
    _record_trajectory(ctx, result)
    return result


def _record_trajectory(ctx, result: TwistSearchResult) -> None:
    """Record a search's variance-valley trajectory into ``ctx``."""
    if not ctx.enabled:
        return
    for probe, (m_star, estimate) in enumerate(
        zip(result.twist_values, result.estimates)
    ):
        ctx.set(
            "twist_search.normalized_variance",
            float(estimate.normalized_variance),
            probe=probe,
            twist=float(m_star),
        )
    ctx.inc("twist_search.probes", len(result.estimates))
    try:
        ctx.set("twist_search.best_twist", result.best_twist)
    except SimulationError:
        # No finite-variance probe: leave the gauge unset; the zero-hit
        # counters/warnings from the estimator already flag the cause.
        pass


def refine_twisted_mean(
    correlation: Union[CorrelationModel, Sequence[float]],
    transform: ArrivalTransform,
    *,
    service_rate: float,
    buffer_size: float,
    horizon: int,
    bracket: tuple,
    replications: int,
    iterations: int = 6,
    random_state: RandomState = None,
    backend: BackendArg = "auto",
    metrics=None,
) -> TwistSearchResult:
    """Golden-section refinement of the variance valley.

    After a coarse grid scan locates the valley's neighbourhood, this
    narrows the bracket by golden-section steps on the (noisy)
    normalized-variance objective.  Each probe is an independent IS
    batch; with the per-probe sampling noise, a handful of iterations
    is the useful maximum — the goal is "favorable", not "optimal",
    exactly as the paper frames it.  Probes are inherently sequential
    (each bracket update depends on the previous objective value), so
    this runner has no ``workers`` knob; it still benefits from the
    shared coefficient table, since every probe reuses the same
    background model and horizon.

    Returns a :class:`TwistSearchResult` over every probed twist (in
    probing order) whose :attr:`~TwistSearchResult.best_twist` is the
    refined choice.  ``metrics`` records the probing trajectory exactly
    as :func:`search_twisted_mean` does (probe index = probing order).
    """
    if len(bracket) != 2 or not bracket[0] < bracket[1]:
        raise SimulationError(
            f"bracket must be an increasing pair, got {bracket!r}"
        )
    check_positive_int(replications, "replications")
    ctx = ensure_context(metrics)
    iterations = max(1, int(iterations))
    rngs = spawn_rngs(random_state, 2 * iterations + 2)
    rng_iter = iter(rngs)
    probes: List[float] = []
    estimates: List[ISEstimate] = []

    def objective(m_star: float) -> float:
        estimate = is_overflow_probability(
            correlation,
            transform,
            service_rate=service_rate,
            buffer_size=buffer_size,
            horizon=horizon,
            twisted_mean=float(m_star),
            replications=replications,
            random_state=next(rng_iter),
            backend=backend,
            metrics=ctx.scoped(probe=len(probes), twist=float(m_star)),
        )
        probes.append(float(m_star))
        estimates.append(estimate)
        value = estimate.normalized_variance
        return value if np.isfinite(value) else np.inf

    inv_phi = (np.sqrt(5.0) - 1.0) / 2.0
    low, high = float(bracket[0]), float(bracket[1])
    with cache_metrics(ctx):
        x1 = high - inv_phi * (high - low)
        x2 = low + inv_phi * (high - low)
        f1, f2 = objective(x1), objective(x2)
        for _ in range(iterations - 1):
            if f1 <= f2:
                high, x2, f2 = x2, x1, f1
                x1 = high - inv_phi * (high - low)
                f1 = objective(x1)
            else:
                low, x1, f1 = x1, x2, f2
                x2 = low + inv_phi * (high - low)
                f2 = objective(x2)
    result = TwistSearchResult(
        twist_values=np.asarray(probes), estimates=estimates
    )
    _record_trajectory(ctx, result)
    return result
