"""Worker-pool execution of independent simulation legs.

The queueing figures are embarrassingly parallel across *legs*: one
buffer size, one background model, or one twisted-mean candidate per
leg (Figs. 14, 16, 17).  Each leg is seeded with its own child
generator from :func:`~repro.stats.random.spawn_rngs` *before* any leg
runs, so results are bit-for-bit identical whatever the worker count
or completion order — parallelism only reorders wall-clock time, never
randomness.

Threads (not processes) are used deliberately: the heavy per-step work
(BLAS matrix-vector products, bulk normal draws) releases the GIL, the
shared :mod:`~repro.processes.coeff_table` cache stays shared, and
nothing needs to be pickled.

Knobs
-----
``workers=`` on the runners selects the pool size per call; ``None``
defers to the ``REPRO_WORKERS`` environment variable (default 1 =
serial in-line execution, which bypasses the pool entirely).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from .._validation import check_positive_int
from ..observability import ensure_context

__all__ = ["default_workers", "resolve_workers", "run_legs"]

T = TypeVar("T")

#: Environment variable consulted when ``workers=None``.
WORKERS_ENV = "REPRO_WORKERS"


def default_workers() -> int:
    """Worker count implied by the environment (``REPRO_WORKERS``).

    Returns 1 (serial) when the variable is unset or unparsable.
    """
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(1, value)


def resolve_workers(workers: Optional[int]) -> int:
    """Validate an explicit ``workers`` argument or fall back to the env."""
    if workers is None:
        return default_workers()
    return check_positive_int(workers, "workers")


def run_legs(
    jobs: Sequence[Callable[[], T]],
    workers: Optional[int] = None,
    *,
    metrics=None,
) -> List[T]:
    """Run independent zero-argument jobs, serially or on a thread pool.

    Results are returned in submission order.  ``workers=1`` (or an
    empty/singleton job list) runs in-line with no pool overhead.  Any
    job exception propagates to the caller, as it would serially.

    ``metrics`` (an optional :class:`~repro.observability.RunContext`)
    records a ``parallel.workers`` gauge, a ``parallel.legs`` counter, a
    ``parallel.job_seconds`` summary of per-job wall time, and a
    ``parallel.occupancy`` gauge — total job seconds over the pool's
    wall-clock seconds, i.e. the average number of busy workers.  All
    bookkeeping happens outside the jobs themselves, so seeded jobs
    remain bit-identical.
    """
    jobs = list(jobs)
    count = resolve_workers(workers)
    ctx = ensure_context(metrics)
    pooled = count > 1 and len(jobs) > 1
    pool_size = min(count, len(jobs)) if pooled else 1
    ctx.set("parallel.workers", pool_size)
    ctx.inc("parallel.legs", len(jobs))
    if not ctx.enabled:
        if not pooled:
            return [job() for job in jobs]
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            futures = [pool.submit(job) for job in jobs]
            return [future.result() for future in futures]

    job_seconds = [0.0] * len(jobs)

    def timed(index: int, job: Callable[[], T]) -> T:
        start = time.perf_counter()
        try:
            return job()
        finally:
            job_seconds[index] = time.perf_counter() - start

    wall_start = time.perf_counter()
    if not pooled:
        results = [timed(i, job) for i, job in enumerate(jobs)]
    else:
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            futures = [
                pool.submit(timed, i, job) for i, job in enumerate(jobs)
            ]
            results = [future.result() for future in futures]
    wall = time.perf_counter() - wall_start
    ctx.observe_many("parallel.job_seconds", job_seconds)
    if wall > 0.0:
        ctx.set("parallel.occupancy", sum(job_seconds) / wall)
    return results
