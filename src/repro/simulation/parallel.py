"""Worker-pool execution of independent simulation legs and chunk jobs.

The queueing figures are embarrassingly parallel across *legs*: one
buffer size, one background model, or one twisted-mean candidate per
leg (Figs. 14, 16, 17).  Each leg is seeded with its own child
generator from :func:`~repro.stats.random.spawn_rngs` *before* any leg
runs, so results are bit-for-bit identical whatever the worker count
or completion order — parallelism only reorders wall-clock time, never
randomness.

Two pool flavours share one execution engine (:func:`run_tasks`):

- **Threads** for the leg runners (:func:`run_legs`): the heavy
  per-step work (BLAS matrix-vector products, bulk normal draws)
  releases the GIL, the shared :mod:`~repro.processes.coeff_table`
  cache stays shared, and nothing needs to be pickled.
- **Processes** for the scene-chunked generation pipeline
  (:mod:`repro.processes.chunked`): chunk jobs are pure picklable
  payloads (an autocovariance prefix, a geometry, a spawned child
  generator), so they sidestep the GIL entirely and scale FFT-bound
  synthesis across cores.

Knobs and precedence
--------------------
``workers=`` on the runners selects the thread-pool size per call;
``None`` defers to the ``REPRO_WORKERS`` environment variable (default
1 = serial in-line execution, which bypasses the pool entirely).
``processes=`` on the chunked pipeline works the same way against
``REPRO_PROCESSES``.  The two variables are independent: a chunked
generation running inside a threaded leg pool reads ``REPRO_PROCESSES``
for its chunk jobs and never consults ``REPRO_WORKERS``, and the leg
runners never consult ``REPRO_PROCESSES``.  An explicit argument always
wins over its environment variable.  Neither knob ever changes results:
pool sizing only reorders wall-clock time.

Callers may also hand :func:`run_tasks` / :func:`run_legs` an
``executor=`` instance (any :class:`concurrent.futures.Executor`) to
reuse a long-lived pool across calls; the pool is used as-is and never
shut down here.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, TypeVar

from .._validation import check_choice, check_positive_int
from ..exceptions import ValidationError
from ..observability import ensure_context

__all__ = [
    "default_workers",
    "resolve_workers",
    "default_processes",
    "resolve_processes",
    "run_legs",
    "run_tasks",
    "reduce_tasks",
]

T = TypeVar("T")
P = TypeVar("P")

#: Environment variable consulted when ``workers=None`` (thread legs).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment variable consulted when ``processes=None`` (chunk jobs).
PROCESSES_ENV = "REPRO_PROCESSES"


def _env_count(name: str) -> int:
    """Pool size implied by environment variable ``name`` (min 1)."""
    raw = os.environ.get(name, "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(1, value)


def default_workers() -> int:
    """Worker count implied by the environment (``REPRO_WORKERS``).

    Returns 1 (serial) when the variable is unset or unparsable.
    """
    return _env_count(WORKERS_ENV)


def resolve_workers(workers: Optional[int]) -> int:
    """Validate an explicit ``workers`` argument or fall back to the env."""
    if workers is None:
        return default_workers()
    return check_positive_int(workers, "workers")


def default_processes() -> int:
    """Process count implied by the environment (``REPRO_PROCESSES``).

    Returns 1 (in-line) when the variable is unset or unparsable.
    """
    return _env_count(PROCESSES_ENV)


def resolve_processes(processes: Optional[int]) -> int:
    """Validate an explicit ``processes`` argument or fall back to the env."""
    if processes is None:
        return default_processes()
    return check_positive_int(processes, "processes")


def _invoke(job: Callable[[], T]) -> T:
    """Run a zero-argument leg job (the ``run_legs`` task function)."""
    return job()


def _timed_call(fn, payload):
    """Run ``fn(payload)`` and return ``(result, wall_seconds)``.

    Module-level so it can cross a process boundary; the timing happens
    inside the worker and never touches a random stream.
    """
    start = time.perf_counter()
    result = fn(payload)
    return result, time.perf_counter() - start


def run_tasks(
    fn: Callable[[P], T],
    payloads: Sequence[P],
    *,
    workers: Optional[int] = None,
    kind: str = "thread",
    executor: Optional[Executor] = None,
    metrics=None,
    prefix: str = "parallel",
) -> List[T]:
    """Run ``fn(payload)`` for each payload, serially or on a pool.

    This is the shared execution engine behind :func:`run_legs`
    (threads) and the chunked generation pipeline (processes).  Results
    are returned in submission order; any task exception propagates to
    the caller as it would serially.

    Parameters
    ----------
    fn:
        Task function.  For ``kind="process"`` it must be picklable
        (a module-level function), as must every payload.
    payloads:
        One payload per task.
    workers:
        Pool size; ``None`` defers to ``REPRO_WORKERS``
        (``kind="thread"``) or ``REPRO_PROCESSES`` (``kind="process"``).
        ``1`` — or an empty/singleton payload list — runs in-line with
        no pool.
    kind:
        ``"thread"`` or ``"process"``.  Ignored when ``executor`` is
        given.
    executor:
        Optional caller-managed :class:`concurrent.futures.Executor`;
        tasks are submitted to it as-is and it is *not* shut down here.
        The caller remains responsible for matching the executor flavour
        to the task functions (process pools need picklable tasks).
    metrics:
        Optional :class:`~repro.observability.RunContext`.  Records a
        ``<prefix>.workers`` gauge, a ``<prefix>.legs`` counter, a
        ``<prefix>.job_seconds`` per-task wall-time summary, and a
        ``<prefix>.occupancy`` gauge (total task seconds over pool
        wall-clock seconds, i.e. the average number of busy workers).
        All bookkeeping happens outside the tasks' random streams, so
        seeded tasks remain bit-identical with metrics on or off.
    prefix:
        Metric-name prefix (``"parallel"`` for the leg runners,
        ``"chunked"`` for the chunk pipeline).
    """
    payloads = list(payloads)
    check_choice(kind, "kind", ("thread", "process"))
    if executor is not None and not isinstance(executor, Executor):
        raise ValidationError(
            "executor must be a concurrent.futures.Executor, got "
            f"{type(executor).__name__}"
        )
    if workers is None and executor is not None:
        # A caller-managed pool decides its own size; it only needs to
        # be engaged when there is more than one task.
        count = 2 if len(payloads) > 1 else 1
    elif kind == "process":
        count = resolve_processes(workers)
    else:
        count = resolve_workers(workers)
    ctx = ensure_context(metrics)
    pooled = count > 1 and len(payloads) > 1
    pool_size = min(count, len(payloads)) if pooled else 1
    ctx.set(f"{prefix}.workers", pool_size)
    ctx.inc(f"{prefix}.legs", len(payloads))

    def run_inline() -> tuple:
        if not ctx.enabled:
            return [fn(payload) for payload in payloads], None
        results: List[T] = []
        job_seconds: List[float] = []
        for payload in payloads:
            result, seconds = _timed_call(fn, payload)
            results.append(result)
            job_seconds.append(seconds)
        return results, job_seconds

    def run_pooled(pool: Executor) -> tuple:
        if not ctx.enabled:
            futures = [pool.submit(fn, payload) for payload in payloads]
            return [future.result() for future in futures], None
        futures = [
            pool.submit(_timed_call, fn, payload) for payload in payloads
        ]
        results: List[T] = []
        job_seconds: List[float] = []
        for future in futures:
            result, seconds = future.result()
            results.append(result)
            job_seconds.append(seconds)
        return results, job_seconds

    wall_start = time.perf_counter()
    if not pooled:
        results, job_seconds = run_inline()
    elif executor is not None:
        results, job_seconds = run_pooled(executor)
    elif kind == "process":
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            results, job_seconds = run_pooled(pool)
    else:
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            results, job_seconds = run_pooled(pool)
    if job_seconds is not None:
        wall = time.perf_counter() - wall_start
        ctx.observe_many(f"{prefix}.job_seconds", job_seconds)
        if wall > 0.0:
            ctx.set(f"{prefix}.occupancy", sum(job_seconds) / wall)
    return results


def reduce_tasks(
    fn: Callable[[P], T],
    payloads: Sequence[P],
    reducer: Callable[[T, int], None],
    *,
    workers: Optional[int] = None,
    kind: str = "process",
    executor: Optional[Executor] = None,
    metrics=None,
    prefix: str = "parallel",
    max_pending: Optional[int] = None,
) -> int:
    """Run ``fn(payload)`` per payload and *stream* results into ``reducer``.

    The streaming counterpart of :func:`run_tasks` for reductions whose
    combined results would dwarf the reduced value (e.g. the aggregate
    engine folding per-block ``(horizon,)`` partial sums into one
    feed).  ``reducer(result, index)`` is called strictly in submission
    order — index 0 first, then 1, and so on — and each result is
    released before the next is awaited, so peak memory is bounded by
    the in-flight window (at most ``max_pending`` undelivered results,
    default ``2 x pool size``), **not** by ``len(payloads)``.

    The ordered fold is what keeps floating-point reductions
    bit-identical at any pool size: the reducer observes exactly the
    serial order whatever the completion order, so worker count only
    reorders wall-clock time, never arithmetic.  Exceptions from any
    task propagate to the caller (tasks already submitted are awaited
    by their executors as usual).

    Parameters mirror :func:`run_tasks` (``workers=None`` defers to
    ``REPRO_PROCESSES`` for ``kind="process"`` / ``REPRO_WORKERS`` for
    threads; ``executor=`` reuses a caller-managed pool); ``metrics``
    records the same ``<prefix>.workers`` / ``.legs`` /
    ``.job_seconds`` / ``.occupancy`` series.  Returns the number of
    payloads reduced.
    """
    payloads = list(payloads)
    check_choice(kind, "kind", ("thread", "process"))
    if executor is not None and not isinstance(executor, Executor):
        raise ValidationError(
            "executor must be a concurrent.futures.Executor, got "
            f"{type(executor).__name__}"
        )
    if workers is None and executor is not None:
        count = 2 if len(payloads) > 1 else 1
    elif kind == "process":
        count = resolve_processes(workers)
    else:
        count = resolve_workers(workers)
    ctx = ensure_context(metrics)
    pooled = count > 1 and len(payloads) > 1
    pool_size = min(count, len(payloads)) if pooled else 1
    if max_pending is None:
        max_pending = 2 * pool_size
    max_pending = check_positive_int(max_pending, "max_pending")
    ctx.set(f"{prefix}.workers", pool_size)
    ctx.inc(f"{prefix}.legs", len(payloads))

    def reduce_inline() -> Optional[List[float]]:
        if not ctx.enabled:
            for index, payload in enumerate(payloads):
                reducer(fn(payload), index)
            return None
        job_seconds: List[float] = []
        for index, payload in enumerate(payloads):
            result, seconds = _timed_call(fn, payload)
            job_seconds.append(seconds)
            reducer(result, index)
        return job_seconds

    def reduce_pooled(pool: Executor) -> Optional[List[float]]:
        timed = ctx.enabled
        job_seconds: Optional[List[float]] = [] if timed else None
        pending: List = []
        submitted = 0
        delivered = 0
        try:
            while delivered < len(payloads):
                while (
                    submitted < len(payloads)
                    and len(pending) < max_pending
                ):
                    payload = payloads[submitted]
                    pending.append(
                        pool.submit(_timed_call, fn, payload)
                        if timed
                        else pool.submit(fn, payload)
                    )
                    submitted += 1
                future = pending.pop(0)
                outcome = future.result()
                if timed:
                    result, seconds = outcome
                    job_seconds.append(seconds)
                else:
                    result = outcome
                reducer(result, delivered)
                result = None  # release before awaiting the next
                delivered += 1
        finally:
            for future in pending:
                future.cancel()
        return job_seconds

    wall_start = time.perf_counter()
    if not pooled:
        job_seconds = reduce_inline()
    elif executor is not None:
        job_seconds = reduce_pooled(executor)
    elif kind == "process":
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            job_seconds = reduce_pooled(pool)
    else:
        with ThreadPoolExecutor(max_workers=pool_size) as pool:
            job_seconds = reduce_pooled(pool)
    if job_seconds is not None:
        wall = time.perf_counter() - wall_start
        ctx.observe_many(f"{prefix}.job_seconds", job_seconds)
        if wall > 0.0:
            ctx.set(f"{prefix}.occupancy", sum(job_seconds) / wall)
    return len(payloads)


def run_legs(
    jobs: Sequence[Callable[[], T]],
    workers: Optional[int] = None,
    *,
    metrics=None,
    executor: Optional[Executor] = None,
) -> List[T]:
    """Run independent zero-argument jobs, serially or on a thread pool.

    Results are returned in submission order.  ``workers=1`` (or an
    empty/singleton job list) runs in-line with no pool overhead.  Any
    job exception propagates to the caller, as it would serially.

    ``metrics`` (an optional :class:`~repro.observability.RunContext`)
    records a ``parallel.workers`` gauge, a ``parallel.legs`` counter, a
    ``parallel.job_seconds`` summary of per-job wall time, and a
    ``parallel.occupancy`` gauge — total job seconds over the pool's
    wall-clock seconds, i.e. the average number of busy workers.  All
    bookkeeping happens outside the jobs themselves, so seeded jobs
    remain bit-identical.

    ``executor`` optionally reuses a caller-managed thread pool (see
    :func:`run_tasks`); leg jobs are closures, so a process pool is not
    a valid executor here.
    """
    return run_tasks(
        _invoke,
        jobs,
        workers=workers,
        kind="thread",
        executor=executor,
        metrics=metrics,
        prefix="parallel",
    )
